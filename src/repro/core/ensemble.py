"""Columnar instance ensembles: struct-of-arrays storage with lazy views.

The paper's experiments (Section 8) and the scenario sweeps evaluate
thousands of ``(chain, platform)`` instances per curve.  Materializing
one :class:`~repro.core.chain.TaskChain` and one
:class:`~repro.core.platform.Platform` per draw makes per-instance
object construction and per-object hashing the hot path long before any
solver runs — the scaling bottleneck named by the ROADMAP after the
draw-level vectorization of the scenario layer.

:class:`Ensemble` stores a whole ensemble as a handful of 2-D arrays
(struct of arrays, one row per instance)::

    work           (m, n)   task work amounts w_i
    output         (m, n)   task output sizes o_i (last column 0)
    speeds         (m*, p)  processor speeds s_u
    failure_rates  (m*, p)  processor failure rates lambda_u

plus one scalar column each for the link bandwidth, the link failure
rate, and the replication bound K (homogeneous across the ensemble, as
in every scenario spec).  ``m*`` is 1 when all instances share one
platform (the Section 8.1 shape) — the single stored row broadcasts,
and every view then shares one cached :class:`Platform` object.

Rows materialize *lazily*: ``ensemble[i]`` is an :class:`InstanceView`
that behaves like the familiar ``(chain, platform)`` pair but only
builds (and caches) the objects when they are actually touched.  A
sweep served from a warm result cache therefore never constructs a
single ``TaskChain`` or ``Platform``.

Identity is content-addressed at two grains:

* :func:`instance_digest` / :meth:`InstanceView.row_hash` — a stable
  SHA-256 over one instance's raw array bytes and scalars, shared by
  the columnar and the materialized representations (the result cache
  derives its per-unit keys from these);
* :meth:`Ensemble.content_hash` — one digest over the whole ensemble's
  raw arrays, computed once.

Paired (Section 8.2-shaped) ensembles carry ``hom_counterpart_speed``;
their views expose the heterogeneous side, :attr:`Ensemble.hom_platform`
is the shared homogeneous counterpart, and
:meth:`Ensemble.hom_counterpart` is the whole counterpart ensemble in
columnar form.
"""

from __future__ import annotations

import hashlib
from typing import Iterator, Sequence

import numpy as np

from repro.core.chain import TaskChain
from repro.core.platform import Platform
from repro.util.validation import check_nonnegative, check_positive

__all__ = [
    "Ensemble",
    "InstanceView",
    "instance_digest",
    "ensembles_from_instances",
]


def _le_bytes(arr: np.ndarray) -> bytes:
    """Raw little-endian float64 bytes (no copy on the usual platforms)."""
    return np.ascontiguousarray(arr, dtype="<f8").tobytes()


def instance_digest(
    work: np.ndarray,
    output: np.ndarray,
    speeds: np.ndarray,
    failure_rates: np.ndarray,
    bandwidth: float,
    link_failure_rate: float,
    max_replication: int,
) -> str:
    """Stable SHA-256 content digest of one instance.

    Hashes the raw array bytes directly — no JSON encoding, no object
    construction — so an :class:`Ensemble` row and the materialized
    ``(TaskChain, Platform)`` pair built from it digest identically.
    The result cache keys sweep units and grid probes with this (see
    :mod:`repro.experiments.cache`), which is what lets a warm sweep
    skip materialization entirely.
    """
    h = hashlib.sha256(b"repro-instance-v1")
    for arr in (work, output, speeds, failure_rates):
        data = _le_bytes(arr)
        h.update(len(data).to_bytes(8, "little"))
        h.update(data)
    h.update(
        f"{float(bandwidth)!r}|{float(link_failure_rate)!r}|{int(max_replication)}".encode()
    )
    return h.hexdigest()


class InstanceView:
    """One ensemble row, materializing ``(chain, platform)`` on demand.

    Behaves like the 2-tuple the harness historically consumed —
    ``chain, platform = view`` unpacks — while construction stays lazy
    and cached in the owning :class:`Ensemble`, so cheap consumers
    (cache-key derivation, column reads) never pay for objects.
    """

    __slots__ = ("_ensemble", "_index")

    def __init__(self, ensemble: "Ensemble", index: int) -> None:
        self._ensemble = ensemble
        self._index = index

    # -- identity --------------------------------------------------------

    @property
    def ensemble(self) -> "Ensemble":
        return self._ensemble

    @property
    def index(self) -> int:
        return self._index

    @property
    def row_hash(self) -> str:
        """The instance's content digest (see :func:`instance_digest`)."""
        return self._ensemble.row_hash(self._index)

    # -- raw columns (no materialization) --------------------------------

    @property
    def work(self) -> np.ndarray:
        return self._ensemble.work[self._index]

    @property
    def output(self) -> np.ndarray:
        return self._ensemble.output[self._index]

    @property
    def speeds(self) -> np.ndarray:
        return self._ensemble.speeds[self._index]

    @property
    def failure_rates(self) -> np.ndarray:
        return self._ensemble.failure_rates[self._index]

    @property
    def bandwidth(self) -> float:
        return self._ensemble.bandwidth

    @property
    def link_failure_rate(self) -> float:
        return self._ensemble.link_failure_rate

    @property
    def max_replication(self) -> int:
        return self._ensemble.max_replication

    @property
    def homogeneous(self) -> bool:
        """True when this row's platform is homogeneous."""
        return bool(self._ensemble.homogeneous_rows()[self._index])

    # -- materialization -------------------------------------------------

    @property
    def chain(self) -> TaskChain:
        return self._ensemble.chain(self._index)

    @property
    def platform(self) -> Platform:
        return self._ensemble.platform(self._index)

    def problem(
        self,
        max_period: float = float("inf"),
        max_latency: float = float("inf"),
        objective: str = "reliability",
        min_reliability: float = 0.0,
    ):
        """Materialize this row as a :class:`repro.solve.Problem`."""
        from repro.solve.problem import Problem

        return Problem(
            self.chain,
            self.platform,
            max_period=max_period,
            max_latency=max_latency,
            objective=objective,
            min_reliability=min_reliability,
        )

    # -- tuple compatibility ---------------------------------------------

    def __iter__(self):
        yield self.chain
        yield self.platform

    def __len__(self) -> int:
        return 2

    def __getitem__(self, item: int):
        return (self.chain, self.platform)[item]

    def __repr__(self) -> str:
        e = self._ensemble
        return (
            f"InstanceView({self._index} of {e.n_instances}, "
            f"{e.n_tasks} tasks x {e.p} procs)"
        )


class Ensemble:
    """Frozen struct-of-arrays container for an instance ensemble.

    Parameters
    ----------
    work, output:
        ``(m, n)`` arrays of task work amounts (``> 0``) and output
        sizes (``>= 0``) — one row per instance.
    speeds, failure_rates:
        ``(m, p)`` arrays of processor speeds (``> 0``) and failure
        rates (``>= 0``).  A single row is accepted as shorthand for
        "all instances share one platform" and broadcasts.
    bandwidth, link_failure_rate, max_replication:
        The scalar platform columns, shared by the whole ensemble
        (every scenario spec fixes them per concrete variant).
    hom_counterpart_speed:
        When set, the ensemble is *paired* (Section 8.2 shape): every
        instance also has the homogeneous counterpart platform of this
        speed (requires a single common failure rate).
    """

    __slots__ = (
        "_work",
        "_output",
        "_speeds",
        "_rates",
        "_bandwidth",
        "_link_rate",
        "_K",
        "_hom_speed",
        "_chains",
        "_platforms",
        "_shared_platform",
        "_hom_platform",
        "_content_hash",
        "_row_hashes",
        "_hom_rows",
    )

    def __init__(
        self,
        work,
        output,
        speeds,
        failure_rates,
        bandwidth: float = 1.0,
        link_failure_rate: float = 0.0,
        max_replication: int = 1,
        hom_counterpart_speed: "float | None" = None,
    ) -> None:
        w = np.ascontiguousarray(work, dtype=float)
        o = np.ascontiguousarray(output, dtype=float)
        s = np.atleast_2d(np.ascontiguousarray(speeds, dtype=float))
        lam = np.atleast_2d(np.ascontiguousarray(failure_rates, dtype=float))
        if w.ndim != 2 or w.size == 0:
            raise ValueError(f"work must be a non-empty (m, n) array, got shape {w.shape}")
        if o.shape != w.shape:
            raise ValueError(
                f"work and output must have the same shape, got {w.shape} and {o.shape}"
            )
        if s.ndim != 2 or s.size == 0:
            raise ValueError(f"speeds must be a non-empty (m, p) array, got shape {s.shape}")
        if lam.shape != s.shape:
            raise ValueError(
                f"speeds and failure_rates must have the same shape, "
                f"got {s.shape} and {lam.shape}"
            )
        m = w.shape[0]
        if s.shape[0] not in (1, m):
            raise ValueError(
                f"speeds/failure_rates must have 1 or {m} rows, got {s.shape[0]}"
            )
        for name, arr in (("work", w), ("output", o), ("speeds", s), ("failure_rates", lam)):
            if np.any(~np.isfinite(arr)):
                raise ValueError(f"{name} must contain only finite values")
        if np.any(w <= 0):
            raise ValueError("all work amounts must be > 0")
        if np.any(o < 0):
            raise ValueError("all output sizes must be >= 0")
        if np.any(s <= 0):
            raise ValueError("all processor speeds must be > 0")
        if np.any(lam < 0):
            raise ValueError("all processor failure rates must be >= 0")
        check_positive(bandwidth, "bandwidth")
        check_nonnegative(link_failure_rate, "link_failure_rate")
        if not isinstance(max_replication, (int, np.integer)) or max_replication < 1:
            raise ValueError(
                f"max_replication must be an integer >= 1, got {max_replication!r}"
            )
        if hom_counterpart_speed is not None:
            if not hom_counterpart_speed > 0:
                raise ValueError(
                    f"hom_counterpart_speed must be > 0 (or None), "
                    f"got {hom_counterpart_speed!r}"
                )
            if np.unique(lam).size != 1:
                raise ValueError(
                    "a paired ensemble needs one common processor failure rate "
                    "for the homogeneous counterpart (Section 8.2 keeps "
                    "lambda_u constant)"
                )
        for arr in (w, o, s, lam):
            arr.setflags(write=False)
        self._work = w
        self._output = o
        self._speeds = s
        self._rates = lam
        self._bandwidth = float(bandwidth)
        self._link_rate = float(link_failure_rate)
        self._K = int(max_replication)
        self._hom_speed = None if hom_counterpart_speed is None else float(hom_counterpart_speed)
        # Lazy caches: one chain per row, one platform per platform row
        # (a single shared Platform when the platform rows broadcast).
        self._chains: "list[TaskChain | None]" = [None] * m
        self._platforms: "list[Platform | None]" = [None] * s.shape[0]
        self._shared_platform = s.shape[0] == 1
        self._hom_platform: "Platform | None" = None
        self._content_hash: "str | None" = None
        self._row_hashes: "list[str | None]" = [None] * m
        self._hom_rows: "np.ndarray | None" = None

    # -- dimensions ------------------------------------------------------

    @property
    def n_instances(self) -> int:
        return self._work.shape[0]

    @property
    def n_tasks(self) -> int:
        return self._work.shape[1]

    @property
    def p(self) -> int:
        return self._speeds.shape[1]

    def __len__(self) -> int:
        return self.n_instances

    # -- columns ---------------------------------------------------------

    @property
    def work(self) -> np.ndarray:
        """Read-only ``(m, n)`` work matrix."""
        return self._work

    @property
    def output(self) -> np.ndarray:
        """Read-only ``(m, n)`` output-size matrix."""
        return self._output

    @property
    def speeds(self) -> np.ndarray:
        """Read-only ``(m, p)`` speed matrix (broadcast when shared)."""
        return np.broadcast_to(self._speeds, (self.n_instances, self.p))

    @property
    def failure_rates(self) -> np.ndarray:
        """Read-only ``(m, p)`` failure-rate matrix (broadcast when shared)."""
        return np.broadcast_to(self._rates, (self.n_instances, self.p))

    @property
    def bandwidth(self) -> float:
        return self._bandwidth

    @property
    def link_failure_rate(self) -> float:
        return self._link_rate

    @property
    def max_replication(self) -> int:
        return self._K

    @property
    def hom_counterpart_speed(self) -> "float | None":
        return self._hom_speed

    @property
    def paired(self) -> bool:
        """True for Section 8.2-shaped ensembles (het + hom counterpart)."""
        return self._hom_speed is not None

    @property
    def platform_shared(self) -> bool:
        """True when all instances share one stored platform row."""
        return self._shared_platform

    def homogeneous_rows(self) -> np.ndarray:
        """Boolean ``(m,)`` vector: which rows have homogeneous platforms.

        Vectorized over the columns — no :class:`Platform` objects are
        built.  Broadcast (shared-platform) ensembles answer from the
        single stored row.
        """
        if self._hom_rows is None:
            s, lam = self._speeds, self._rates
            rows = np.all(s == s[:, :1], axis=1) & np.all(lam == lam[:, :1], axis=1)
            hom = np.broadcast_to(rows, (self.n_instances,)) if rows.size == 1 else rows
            hom = np.ascontiguousarray(hom)
            hom.setflags(write=False)
            self._hom_rows = hom
        return self._hom_rows

    @property
    def all_homogeneous(self) -> bool:
        """True when every row's platform is homogeneous."""
        return bool(np.all(self.homogeneous_rows()))

    # -- lazy materialization --------------------------------------------

    def chain(self, i: int) -> TaskChain:
        """The row's :class:`TaskChain` (built once, then cached)."""
        i = self._row(i)
        cached = self._chains[i]
        if cached is None:
            cached = TaskChain(work=self._work[i], output=self._output[i])
            self._chains[i] = cached
        return cached

    def platform(self, i: int) -> Platform:
        """The row's :class:`Platform` (cached; one shared object when
        the platform columns broadcast)."""
        i = self._row(i)
        pi = 0 if self._shared_platform else i
        cached = self._platforms[pi]
        if cached is None:
            cached = Platform(
                speeds=self._speeds[pi],
                failure_rates=self._rates[pi],
                bandwidth=self._bandwidth,
                link_failure_rate=self._link_rate,
                max_replication=self._K,
            )
            self._platforms[pi] = cached
        return cached

    @property
    def hom_platform(self) -> Platform:
        """The shared homogeneous counterpart platform (paired only)."""
        if self._hom_speed is None:
            raise ValueError("not a paired ensemble (hom_counterpart_speed unset)")
        if self._hom_platform is None:
            self._hom_platform = Platform.homogeneous_platform(
                self.p,
                speed=self._hom_speed,
                failure_rate=float(self._rates.flat[0]),
                bandwidth=self._bandwidth,
                link_failure_rate=self._link_rate,
                max_replication=self._K,
            )
        return self._hom_platform

    def hom_counterpart(self) -> "Ensemble":
        """The homogeneous-counterpart side as a columnar ensemble.

        Same chains; the platform columns collapse to the single shared
        counterpart row — the shape the het experiments sweep against.
        """
        if self._hom_speed is None:
            raise ValueError("not a paired ensemble (hom_counterpart_speed unset)")
        return Ensemble(
            work=self._work,
            output=self._output,
            speeds=np.full((1, self.p), self._hom_speed),
            failure_rates=np.full((1, self.p), float(self._rates.flat[0])),
            bandwidth=self._bandwidth,
            link_failure_rate=self._link_rate,
            max_replication=self._K,
        )

    def materialize(self) -> list:
        """Materialize every row.

        Returns ``(chain, platform)`` tuples — or
        :class:`~repro.experiments.instances.HetInstancePair` records
        for paired ensembles — exactly the shapes the pre-columnar
        generator produced.
        """
        if self.paired:
            # Lazy: repro.experiments imports the harness, which imports
            # this module during package init.
            from repro.experiments.instances import HetInstancePair

            hom = self.hom_platform
            return [
                HetInstancePair(self.chain(i), self.platform(i), hom)
                for i in range(self.n_instances)
            ]
        return [(self.chain(i), self.platform(i)) for i in range(self.n_instances)]

    # -- views -----------------------------------------------------------

    def __getitem__(self, i: int) -> InstanceView:
        return InstanceView(self, self._row(i))

    def __iter__(self) -> Iterator[InstanceView]:
        for i in range(self.n_instances):
            yield InstanceView(self, i)

    def _row(self, i: int) -> int:
        if not isinstance(i, (int, np.integer)):
            raise TypeError(f"row index must be an integer, got {type(i).__name__}")
        m = self.n_instances
        if i < 0:
            i += m
        if not 0 <= i < m:
            raise IndexError(f"row {i} out of range for {m} instances")
        return int(i)

    # -- identity --------------------------------------------------------

    def row_hash(self, i: int) -> str:
        """Per-instance content digest (cached; see :func:`instance_digest`)."""
        i = self._row(i)
        cached = self._row_hashes[i]
        if cached is None:
            pi = 0 if self._shared_platform else i
            cached = instance_digest(
                self._work[i],
                self._output[i],
                self._speeds[pi],
                self._rates[pi],
                self._bandwidth,
                self._link_rate,
                self._K,
            )
            self._row_hashes[i] = cached
        return cached

    def content_hash(self) -> str:
        """One stable SHA-256 over the whole ensemble's raw arrays."""
        if self._content_hash is None:
            h = hashlib.sha256(b"repro-ensemble-v1")
            for arr in (self._work, self._output, self._speeds, self._rates):
                h.update(np.int64(arr.shape).tobytes())
                h.update(_le_bytes(arr))
                h.update(b"\x1f")
            h.update(
                f"{self._bandwidth!r}|{self._link_rate!r}|{self._K}|{self._hom_speed!r}".encode()
            )
            self._content_hash = h.hexdigest()
        return self._content_hash

    def to_dict(self) -> dict:
        """Encode as the tagged payload consumed by ``repro.io``."""
        return {
            "type": "Ensemble",
            "work": self._work.tolist(),
            "output": self._output.tolist(),
            "speeds": self._speeds.tolist(),
            "failure_rates": self._rates.tolist(),
            "bandwidth": self._bandwidth,
            "link_failure_rate": self._link_rate,
            "max_replication": self._K,
            "hom_counterpart_speed": self._hom_speed,
        }

    # -- construction from materialized instances ------------------------

    @classmethod
    def from_instances(cls, instances: Sequence) -> "Ensemble":
        """Build a columnar ensemble from materialized instances.

        Accepts ``(chain, platform)`` pairs (or :class:`InstanceView`
        objects) and ``HetInstancePair`` records.  All instances must
        share the chain length, processor count, and scalar platform
        columns — for mixed collections use
        :func:`ensembles_from_instances`, which groups first.
        """
        if not instances:
            raise ValueError("need at least one instance")
        paired = hasattr(instances[0], "het_platform")
        chains, platforms, homs = [], [], []
        for inst in instances:
            if hasattr(inst, "het_platform"):
                chains.append(inst.chain)
                platforms.append(inst.het_platform)
                homs.append(inst.hom_platform)
            else:
                chain, platform = inst
                chains.append(chain)
                platforms.append(platform)
        n = chains[0].n
        first = platforms[0]
        if any(c.n != n for c in chains) or any(
            (
                pl.p != first.p
                or pl.bandwidth != first.bandwidth
                or pl.link_failure_rate != first.link_failure_rate
                or pl.max_replication != first.max_replication
            )
            for pl in platforms
        ):
            raise ValueError(
                "instances mix chain lengths or platform profiles; "
                "use ensembles_from_instances() to group them first"
            )
        hom_speed = None
        if paired:
            if any(h != homs[0] for h in homs) or not homs[0].homogeneous:
                raise ValueError(
                    "paired instances must share one homogeneous counterpart platform"
                )
            hom_speed = float(homs[0].speeds[0])
        speeds = np.stack([pl.speeds for pl in platforms])
        rates = np.stack([pl.failure_rates for pl in platforms])
        if len(platforms) > 1 and np.all(speeds == speeds[0]) and np.all(rates == rates[0]):
            speeds, rates = speeds[:1], rates[:1]
        ensemble = cls(
            work=np.stack([c.work for c in chains]),
            output=np.stack([c.output for c in chains]),
            speeds=speeds,
            failure_rates=rates,
            bandwidth=first.bandwidth,
            link_failure_rate=first.link_failure_rate,
            max_replication=first.max_replication,
            hom_counterpart_speed=hom_speed,
        )
        # The materialized objects are already on hand — seed the caches
        # so round-tripping costs no reconstruction.
        ensemble._chains = list(chains)
        if ensemble._shared_platform:
            ensemble._platforms = [platforms[0]]
        else:
            ensemble._platforms = list(platforms)
        if paired:
            ensemble._hom_platform = homs[0]
        return ensemble

    # -- dunder conveniences ---------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Ensemble):
            return NotImplemented
        return bool(
            np.array_equal(self._work, other._work)
            and np.array_equal(self._output, other._output)
            and np.array_equal(self.speeds, other.speeds)
            and np.array_equal(self.failure_rates, other.failure_rates)
            and self._bandwidth == other._bandwidth
            and self._link_rate == other._link_rate
            and self._K == other._K
            and self._hom_speed == other._hom_speed
        )

    def __hash__(self) -> int:
        return hash(self.content_hash())

    def __repr__(self) -> str:
        shared = ", shared platform" if self._shared_platform else ""
        paired = f", paired(hom speed {self._hom_speed:g})" if self.paired else ""
        return (
            f"Ensemble({self.n_instances} instances, {self.n_tasks} tasks x "
            f"{self.p} procs{shared}{paired})"
        )


def ensembles_from_instances(instances: Sequence) -> "list[Ensemble]":
    """Group materialized instances into columnar ensembles.

    Consecutive instances sharing a profile (chain length, processor
    count, scalar platform columns) land in one :class:`Ensemble`;
    iterating the returned ensembles' views in order reproduces the
    input order exactly.  Already-columnar inputs pass through.
    """
    if isinstance(instances, Ensemble):
        return [instances]
    instances = list(instances)
    if instances and all(isinstance(e, Ensemble) for e in instances):
        return instances
    groups: "list[list]" = []
    profile = None
    for inst in instances:
        if hasattr(inst, "het_platform"):
            chain, platform = inst.chain, inst.het_platform
        else:
            chain, platform = inst
        key = (
            type(inst).__name__,
            chain.n,
            platform.p,
            platform.bandwidth,
            platform.link_failure_rate,
            platform.max_replication,
        )
        if key != profile:
            groups.append([])
            profile = key
        groups[-1].append(inst)
    return [Ensemble.from_instances(group) for group in groups]
