"""Evaluation of a given mapping (Section 4, Equations (1)-(9)).

Given a :class:`~repro.core.mapping.Mapping`, this module computes:

* the **reliability** of the mapping (Eq. (9)) assuming the routing
  operations of Figure 5, so that the RBD is serial-parallel and the
  computation is linear in the number of intervals — carried in the log
  domain (see :mod:`repro.util.logrel`);
* the **expected** and **worst-case computation cost** of each interval
  on its replica set (Eqs. (3) and (4));
* the **expected / worst-case latency** (Eqs. (5) and (7));
* the **expected / worst-case period** (Eqs. (6) and (8)).

All results are gathered in a :class:`MappingEvaluation` record, the
uniform currency used by heuristics, exact solvers, the experiment
harness, and the benchmarks.

Equation-to-code map
--------------------
=============================  ==========================================
Paper                          Here
=============================  ==========================================
Eq. (1)  ``r_{u,i}``           :func:`interval_log_reliability` (1 task)
Eq. (2)  ``r_{u,I}``           :func:`interval_log_reliability`
Eq. (3)  ``ec(I, P_I)``        :func:`expected_cost`
Eq. (4)  ``wc(I, P_I)``        :func:`worst_case_cost`
Eq. (5)  ``EL``                :attr:`MappingEvaluation.expected_latency`
Eq. (6)  ``EP``                :attr:`MappingEvaluation.expected_period`
Eq. (7)  ``WL``                :attr:`MappingEvaluation.worst_case_latency`
Eq. (8)  ``WP``                :attr:`MappingEvaluation.worst_case_period`
Eq. (9)  ``r``                 :func:`mapping_log_reliability`
=============================  ==========================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.chain import TaskChain
from repro.core.mapping import Mapping
from repro.core.platform import Platform
from repro.util import logrel

__all__ = [
    "comm_log_reliability",
    "interval_log_reliability",
    "stage_log_reliability",
    "mapping_log_reliability",
    "expected_cost",
    "worst_case_cost",
    "MappingEvaluation",
    "evaluate_mapping",
]


def comm_log_reliability(platform: Platform, data_size: float) -> float:
    """Log-reliability of one communication of *data_size* (``rcomm``).

    ``rcomm = exp(-lambda_link * o / b)``; a zero-size communication
    (the ``o_0 = 0`` / ``o_n = 0`` conventions) is perfectly reliable.
    """
    if data_size < 0:
        raise ValueError(f"data size must be >= 0, got {data_size!r}")
    return logrel.from_rate(platform.link_failure_rate, data_size / platform.bandwidth)


def interval_log_reliability(
    chain: TaskChain, platform: Platform, start: int, stop: int, proc: int
) -> float:
    """Log-reliability of interval ``[start, stop)`` on processor *proc*.

    Eq. (2): ``r_{u,I} = exp(-lambda_u * W / s_u)``.  With a single task
    this degenerates to Eq. (1).
    """
    work = chain.work_between(start, stop)
    return logrel.from_rate(
        float(platform.failure_rates[proc]), work / float(platform.speeds[proc])
    )


def stage_log_reliability(
    chain: TaskChain,
    platform: Platform,
    start: int,
    stop: int,
    procs: Sequence[int],
) -> float:
    """Log-reliability of one *stage* of the serial-parallel RBD (Fig. 5).

    One parenthesized factor of Eq. (9): the parallel composition, over
    the replicas ``P_u`` of the interval, of the serial branch

        ``rcomm_in * r_{u,I} * rcomm_out``

    where ``rcomm_in`` / ``rcomm_out`` are the communications from the
    upstream routing operation and to the downstream one.  The first
    interval has ``rcomm_in = 1`` (``o_0 = 0``) and the last has
    ``rcomm_out = 1`` when the chain follows the ``o_n = 0`` convention.
    """
    if not procs:
        raise ValueError("a stage needs at least one replica")
    ell_in = comm_log_reliability(platform, chain.input_of(start))
    ell_out = comm_log_reliability(platform, chain.output_of(stop))
    branches = [
        ell_in + interval_log_reliability(chain, platform, start, stop, u) + ell_out
        for u in procs
    ]
    return logrel.parallel(branches)


def mapping_log_reliability(mapping: Mapping) -> float:
    """Log-reliability of a full mapping — Eq. (9).

    Serial composition of the per-interval stages.  Routing operations
    have reliability 1 and therefore do not appear.
    """
    chain, platform = mapping.chain, mapping.platform
    return sum(
        stage_log_reliability(chain, platform, iv.start, iv.stop, procs)
        for iv, procs in mapping
    )


def expected_cost(
    chain: TaskChain,
    platform: Platform,
    start: int,
    stop: int,
    procs: Sequence[int],
) -> float:
    """Expected computation time of an interval on its replica set — Eq. (3).

    Replicas are ordered from fastest to slowest (ties broken by
    processor index, stable).  The expectation conditions on the interval
    succeeding: term ``u`` covers the event "the ``u-1`` fastest replicas
    fail and replica ``u`` succeeds", in which case the routing operation
    forwards replica ``u``'s result after ``W / s_u`` time units; the
    denominator ``1 - prod_u (1 - r_u)`` renormalizes over success.

    Communication reliabilities do not enter Eq. (3) (they affect the
    system reliability, not the conditional timing); communication
    *times* are added separately in Eqs. (5)-(8).
    """
    if not procs:
        raise ValueError("expected cost needs at least one replica")
    work = chain.work_between(start, stop)
    speeds = np.array([platform.speeds[u] for u in procs], dtype=float)
    rates = np.array([platform.failure_rates[u] for u in procs], dtype=float)
    order = np.argsort(-speeds, kind="stable")  # fastest first
    speeds, rates = speeds[order], rates[order]
    # Per-replica success probability r_u = exp(-lambda_u W / s_u).  The
    # probabilities here are safely representable in plain floats: the
    # result is a *time*, not a reliability, so log-domain care is not
    # needed for the final value; but the denominator is computed with
    # expm1 to stay exact for very reliable replicas.
    ell = -rates * work / speeds
    r = np.exp(ell)
    f = -np.expm1(ell)  # 1 - r, exact for tiny failure probabilities
    prefix_fail = np.concatenate(([1.0], np.cumprod(f)[:-1]))  # prod_{v<u} f_v
    numerator = float(np.sum(r * prefix_fail / speeds))
    # 1 - prod f computed fully in the log domain (log failure taken
    # straight from ell, not from the rounded f): the direct product
    # cancels catastrophically when every replica is *likely* to fail,
    # and even log(f) from f loses ~half the digits when f is near 1.
    log_prod_f = float(np.sum(logrel.log1mexp(ell)))
    denominator = 1.0 if log_prod_f == -math.inf else -math.expm1(log_prod_f)
    if denominator <= 0.0:
        # All replicas fail almost surely; Eq. (3) conditions on success,
        # which is then a measure-zero event.  Fall back to the worst case.
        return work / float(speeds[-1])
    return work * numerator / denominator


def worst_case_cost(
    chain: TaskChain,
    platform: Platform,
    start: int,
    stop: int,
    procs: Sequence[int],
) -> float:
    """Worst-case computation time of an interval — Eq. (4): ``W / s_t``.

    ``s_t`` is the speed of the slowest enrolled replica: the result is
    valid no matter which replicas fail (provided at least one succeeds).
    """
    if not procs:
        raise ValueError("worst-case cost needs at least one replica")
    work = chain.work_between(start, stop)
    slowest = min(float(platform.speeds[u]) for u in procs)
    return work / slowest


@dataclass(frozen=True)
class MappingEvaluation:
    """All objectives of Section 4 for one mapping.

    Attributes
    ----------
    log_reliability:
        ``log r`` with ``r`` from Eq. (9).
    expected_latency, worst_case_latency:
        ``EL`` (Eq. (5)) and ``WL`` (Eq. (7)).
    expected_period, worst_case_period:
        ``EP`` (Eq. (6)) and ``WP`` (Eq. (8)).
    expected_costs, worst_case_costs:
        Per-interval ``ec`` / ``wc`` vectors (diagnostics, reporting).
    """

    log_reliability: float
    expected_latency: float
    worst_case_latency: float
    expected_period: float
    worst_case_period: float
    expected_costs: tuple[float, ...]
    worst_case_costs: tuple[float, ...]

    @property
    def reliability(self) -> float:
        """Plain reliability ``r = exp(log_reliability)``."""
        return logrel.reliability(self.log_reliability)

    @property
    def failure_probability(self) -> float:
        """``1 - r`` computed without cancellation (``-expm1``)."""
        return logrel.failure(self.log_reliability)

    def meets(
        self,
        max_period: float = math.inf,
        max_latency: float = math.inf,
        min_log_reliability: float = -math.inf,
        worst_case: bool = True,
    ) -> bool:
        """Check the real-time and dependability constraints (Section 2.6).

        With ``worst_case=True`` (default, the real-time guarantee) the
        worst-case period/latency are compared against the bounds;
        otherwise the expected values are used.  On homogeneous platforms
        the two coincide.
        """
        period = self.worst_case_period if worst_case else self.expected_period
        latency = self.worst_case_latency if worst_case else self.expected_latency
        return (
            period <= max_period
            and latency <= max_latency
            and self.log_reliability >= min_log_reliability
        )


def evaluate_mapping(mapping: Mapping) -> MappingEvaluation:
    """Compute every objective of Section 4 for *mapping*.

    Runs in time linear in the number of intervals and replicas, as
    guaranteed by the routing-operation construction (Figure 5).
    """
    chain, platform = mapping.chain, mapping.platform
    b = platform.bandwidth

    log_rel = 0.0
    ecs: list[float] = []
    wcs: list[float] = []
    comm_times: list[float] = []
    for iv, procs in mapping:
        log_rel += stage_log_reliability(chain, platform, iv.start, iv.stop, procs)
        ecs.append(expected_cost(chain, platform, iv.start, iv.stop, procs))
        wcs.append(worst_case_cost(chain, platform, iv.start, iv.stop, procs))
        comm_times.append(chain.output_of(iv.stop) / b)

    expected_latency = sum(e + c for e, c in zip(ecs, comm_times))
    worst_latency = sum(w + c for w, c in zip(wcs, comm_times))
    expected_period = max(max(comm_times), max(ecs))
    worst_period = max(max(comm_times), max(wcs))
    return MappingEvaluation(
        log_reliability=log_rel,
        expected_latency=expected_latency,
        worst_case_latency=worst_latency,
        expected_period=expected_period,
        worst_case_period=worst_period,
        expected_costs=tuple(ecs),
        worst_case_costs=tuple(wcs),
    )
