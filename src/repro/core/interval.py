"""Intervals of consecutive tasks and chain partitions (Section 2.3).

An *interval mapping* divides the chain into ``m`` intervals of
consecutive tasks.  We represent an interval with Python half-open
semantics ``[start, stop)`` over 0-based task indices; the paper's
interval ``I_j = (f_j .. l_j)`` (1-based, inclusive) is
``Interval(f_j - 1, l_j)`` here.

A *partition* of a chain of ``n`` tasks is a list of contiguous intervals
whose union is ``[0, n)``; equivalently, a set of *cut points* after
selected tasks.  Helpers here enumerate partitions (compositions of
``n``) and convert between the two representations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

__all__ = [
    "Interval",
    "partition_from_cuts",
    "cuts_from_partition",
    "validate_partition",
    "compositions",
    "partitions_with_m_intervals",
]


@dataclass(frozen=True, order=True)
class Interval:
    """Half-open interval ``[start, stop)`` of 0-based task indices.

    Examples
    --------
    >>> iv = Interval(2, 5)       # paper tasks tau_3, tau_4, tau_5
    >>> len(iv)
    3
    >>> list(iv.tasks)
    [2, 3, 4]
    """

    start: int
    stop: int

    def __post_init__(self) -> None:
        if not isinstance(self.start, int) or not isinstance(self.stop, int):
            raise TypeError("interval bounds must be integers")
        if self.start < 0 or self.stop <= self.start:
            raise ValueError(
                f"interval must satisfy 0 <= start < stop, got [{self.start}, {self.stop})"
            )

    def __len__(self) -> int:
        return self.stop - self.start

    @property
    def tasks(self) -> range:
        """The 0-based task indices covered by this interval."""
        return range(self.start, self.stop)

    def __contains__(self, task: int) -> bool:
        return self.start <= task < self.stop


def partition_from_cuts(n: int, cuts: Iterable[int]) -> list[Interval]:
    """Build a partition of ``[0, n)`` from cut positions.

    A cut at position ``c`` (``1 <= c <= n - 1``) separates task ``c - 1``
    from task ``c``; i.e. cuts are interval *boundaries* expressed as the
    ``stop`` of the interval they close.

    Examples
    --------
    >>> partition_from_cuts(5, [2, 3])
    [Interval(start=0, stop=2), Interval(start=2, stop=3), Interval(start=3, stop=5)]
    """
    if n < 1:
        raise ValueError(f"chain length must be >= 1, got {n!r}")
    cut_list = sorted(set(int(c) for c in cuts))
    for c in cut_list:
        if not 1 <= c <= n - 1:
            raise ValueError(f"cut position {c} out of range [1, {n - 1}]")
    bounds = [0, *cut_list, n]
    return [Interval(a, b) for a, b in zip(bounds[:-1], bounds[1:])]


def cuts_from_partition(partition: Sequence[Interval]) -> list[int]:
    """Inverse of :func:`partition_from_cuts`: interior boundaries only."""
    return [iv.stop for iv in partition[:-1]]


def validate_partition(n: int, partition: Sequence[Interval]) -> None:
    """Check that *partition* covers ``[0, n)`` contiguously, in order.

    Raises
    ------
    ValueError
        If intervals are empty (impossible by construction), out of
        order, overlapping, gapped, or do not cover exactly ``[0, n)``.
    """
    if not partition:
        raise ValueError("partition must contain at least one interval")
    if partition[0].start != 0:
        raise ValueError(f"first interval must start at 0, got {partition[0].start}")
    for prev, cur in zip(partition[:-1], partition[1:]):
        if cur.start != prev.stop:
            raise ValueError(
                f"intervals must be contiguous: [{prev.start},{prev.stop}) then "
                f"[{cur.start},{cur.stop})"
            )
    if partition[-1].stop != n:
        raise ValueError(
            f"last interval must stop at {n}, got {partition[-1].stop}"
        )


def compositions(n: int, m: int) -> Iterator[list[Interval]]:
    """Yield every partition of ``[0, n)`` into exactly ``m`` intervals.

    There are ``C(n-1, m-1)`` of them.  Used by brute-force oracles and
    tests; the production algorithms never enumerate.
    """
    if n < 1:
        raise ValueError(f"chain length must be >= 1, got {n!r}")
    if not 1 <= m <= n:
        return
    if m == 1:
        yield [Interval(0, n)]
        return

    def rec(start: int, remaining: int) -> Iterator[list[Interval]]:
        if remaining == 1:
            yield [Interval(start, n)]
            return
        # leave at least `remaining - 1` tasks for the rest
        for stop in range(start + 1, n - remaining + 2):
            head = Interval(start, stop)
            for tail in rec(stop, remaining - 1):
                yield [head, *tail]

    yield from rec(0, m)


def partitions_with_m_intervals(n: int, max_m: int | None = None) -> Iterator[list[Interval]]:
    """Yield all partitions of ``[0, n)`` with at most *max_m* intervals.

    ``max_m`` defaults to ``n`` (all ``2**(n-1)`` partitions).
    """
    limit = n if max_m is None else min(max_m, n)
    for m in range(1, limit + 1):
        yield from compositions(n, m)
