"""Multiprocessor interval mappings with replication (Sections 2.3, 2.5, 2.6).

A :class:`Mapping` assigns each interval of a chain partition to a
non-empty set of at most ``K`` processors (its *replicas*), with every
processor executing at most one interval.  Routing operations between
consecutive intervals are implicit: the evaluation (Eq. (9)) and the
simulator both assume the serial-parallel RBD form of Figure 5.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.chain import TaskChain
from repro.core.interval import Interval, validate_partition
from repro.core.platform import Platform

__all__ = ["Mapping"]


class Mapping:
    """An interval mapping: ordered ``(interval, replica processors)`` pairs.

    Parameters
    ----------
    chain:
        The application chain being mapped.
    platform:
        The target platform.
    assignment:
        Sequence of ``(Interval, processors)`` pairs in chain order.
        ``processors`` is any iterable of distinct 0-based processor
        indices; it is stored as a sorted tuple.

    Raises
    ------
    ValueError
        If the intervals do not partition the chain, a processor is
        reused across intervals (or within one), an interval has no
        replica, or an interval exceeds ``K`` replicas.

    Examples
    --------
    >>> chain = TaskChain([1.0, 2.0, 3.0], [1.0, 1.0, 0.0])
    >>> plat = Platform.homogeneous_platform(4, failure_rate=1e-6,
    ...                                      max_replication=2)
    >>> m = Mapping(chain, plat, [(Interval(0, 2), (0, 1)),
    ...                           (Interval(2, 3), (2,))])
    >>> m.m
    2
    >>> m.processors_used
    3
    """

    __slots__ = ("_chain", "_platform", "_intervals", "_replicas")

    def __init__(
        self,
        chain: TaskChain,
        platform: Platform,
        assignment: Sequence[tuple[Interval, Sequence[int]]],
    ) -> None:
        intervals = [iv for iv, _ in assignment]
        validate_partition(chain.n, intervals)
        replicas: list[tuple[int, ...]] = []
        seen: set[int] = set()
        for iv, procs in assignment:
            procs = tuple(sorted(int(u) for u in procs))
            if not procs:
                raise ValueError(f"interval [{iv.start},{iv.stop}) has no replica")
            if len(set(procs)) != len(procs):
                raise ValueError(
                    f"interval [{iv.start},{iv.stop}) lists a processor twice: {procs}"
                )
            if len(procs) > platform.max_replication:
                raise ValueError(
                    f"interval [{iv.start},{iv.stop}) has {len(procs)} replicas, "
                    f"exceeding K={platform.max_replication}"
                )
            for u in procs:
                if not 0 <= u < platform.p:
                    raise ValueError(
                        f"processor index {u} out of range [0, {platform.p})"
                    )
                if u in seen:
                    raise ValueError(
                        f"processor {u} assigned to more than one interval"
                    )
                seen.add(u)
            replicas.append(procs)
        self._chain = chain
        self._platform = platform
        self._intervals = tuple(intervals)
        self._replicas = tuple(replicas)

    # -- accessors ------------------------------------------------------------

    @property
    def chain(self) -> TaskChain:
        """The mapped application chain."""
        return self._chain

    @property
    def platform(self) -> Platform:
        """The target platform."""
        return self._platform

    @property
    def m(self) -> int:
        """Number of intervals."""
        return len(self._intervals)

    @property
    def intervals(self) -> tuple[Interval, ...]:
        """The chain partition, in order."""
        return self._intervals

    @property
    def replicas(self) -> tuple[tuple[int, ...], ...]:
        """Replica processor tuples, aligned with :attr:`intervals`."""
        return self._replicas

    @property
    def processors_used(self) -> int:
        """Total number of processors enrolled by the mapping."""
        return sum(len(r) for r in self._replicas)

    @property
    def replication_level(self) -> float:
        """Average number of replicas per interval (Section 1)."""
        return self.processors_used / self.m

    def __iter__(self) -> Iterator[tuple[Interval, tuple[int, ...]]]:
        return iter(zip(self._intervals, self._replicas))

    def __len__(self) -> int:
        return self.m

    # -- structured accessors ---------------------------------------------------

    def interval_work(self, j: int) -> float:
        """Work ``W_j`` of interval *j* (0-based)."""
        iv = self._intervals[j]
        return self._chain.work_between(iv.start, iv.stop)

    def interval_output(self, j: int) -> float:
        """Output data size ``o_{l_j}`` of interval *j* (0 for the last one
        when the chain follows the ``o_n = 0`` convention)."""
        return self._chain.output_of(self._intervals[j].stop)

    def interval_input(self, j: int) -> float:
        """Input data size of interval *j* (``o_0 = 0`` for the first)."""
        return self._chain.input_of(self._intervals[j].start)

    # -- dunder conveniences ------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return (
            self._chain == other._chain
            and self._platform == other._platform
            and self._intervals == other._intervals
            and self._replicas == other._replicas
        )

    def __hash__(self) -> int:
        return hash((self._chain, self._platform, self._intervals, self._replicas))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"[{iv.start},{iv.stop})->{list(procs)}"
            for iv, procs in zip(self._intervals, self._replicas)
        )
        return f"Mapping({parts})"
