"""Random chains and platforms following the paper's distributions (Section 8).

The experiments draw computation costs uniformly from ``[1, 100]`` and
communication costs from ``[1, 10]``; heterogeneous speeds come from
``[1, 100]``.  The paper does not state whether draws are integral; we
default to integers (typical of the authors' earlier generators and of
the plotted ranges) but expose ``integral=False`` for continuous draws.
The canonical experiment suites live in :mod:`repro.experiments.instances`;
these functions are the reusable building blocks, and
:func:`draw_uniform` is the shared draw primitive — the declarative
scenario layer (:mod:`repro.scenarios`) calls the same primitive with
the same argument order, which is what makes its re-expression of the
Section 8 suites bit-identical to the functions here.

:func:`random_chain_batch` and :func:`random_platform_batch` are the
vectorized counterparts: one numpy call draws a whole ensemble matrix
(``n_instances x n_tasks``), which the scenario layer's ``"batched"``
RNG mode uses to build thousand-instance ensembles without a Python
loop per draw.
"""

from __future__ import annotations

import numpy as np

from repro.core.chain import TaskChain
from repro.core.platform import Platform
from repro.util.rng import ensure_rng

__all__ = [
    "draw_uniform",
    "random_chain",
    "random_platform",
    "random_chain_batch",
    "random_platform_batch",
]


def draw_uniform(
    rng: np.random.Generator,
    low: float,
    high: float,
    size: "int | tuple[int, ...]",
    integral: bool,
) -> np.ndarray:
    """Inclusive uniform draw, integral or continuous.

    The one primitive behind every uniform cost/speed draw in the
    library.  Centralized so the per-instance generators here and the
    batched scenario generators consume the *same* numpy calls — a
    requirement for cross-layer bit-identity of seeded ensembles.
    """
    if integral:
        return rng.integers(int(low), int(high), size=size, endpoint=True).astype(float)
    return rng.uniform(low, high, size=size)


#: Backward-compatible private alias (pre-scenario releases used ``_draw``).
_draw = draw_uniform


def random_chain(
    n: int,
    rng: "int | None | np.random.Generator" = None,
    work_range: tuple[float, float] = (1.0, 100.0),
    output_range: tuple[float, float] = (1.0, 10.0),
    integral: bool = True,
    last_output_zero: bool = True,
) -> TaskChain:
    """Random task chain with the Section 8 cost distributions.

    Parameters
    ----------
    n:
        Number of tasks.
    rng:
        Seed or generator (see :func:`repro.util.rng.ensure_rng`).
    work_range, output_range:
        Inclusive draw ranges for ``w_i`` and ``o_i``.
    integral:
        Draw integer costs (default) or continuous ones.
    last_output_zero:
        Enforce the paper's ``o_n = 0`` convention (default).
    """
    if n < 1:
        raise ValueError(f"chain length must be >= 1, got {n!r}")
    gen = ensure_rng(rng)
    work = _draw(gen, *work_range, size=n, integral=integral)
    output = _draw(gen, *output_range, size=n, integral=integral)
    if last_output_zero:
        output[-1] = 0.0
    return TaskChain(work=work, output=output)


def random_platform(
    p: int,
    rng: "int | None | np.random.Generator" = None,
    speed_range: tuple[float, float] = (1.0, 100.0),
    failure_rate: float = 1e-8,
    bandwidth: float = 1.0,
    link_failure_rate: float = 1e-5,
    max_replication: int = 3,
    integral_speeds: bool = True,
) -> Platform:
    """Random heterogeneous platform with the Section 8.2 distributions.

    Speeds are drawn from *speed_range*; processor failure rates are the
    constant *failure_rate* (the paper keeps ``lambda_u = 1e-8`` in the
    heterogeneous experiments; speed is the source of heterogeneity).
    """
    if p < 1:
        raise ValueError(f"platform needs at least one processor, got {p!r}")
    gen = ensure_rng(rng)
    speeds = _draw(gen, *speed_range, size=p, integral=integral_speeds)
    return Platform(
        speeds=speeds,
        failure_rates=[failure_rate] * p,
        bandwidth=bandwidth,
        link_failure_rate=link_failure_rate,
        max_replication=max_replication,
    )


def random_chain_batch(
    n_instances: int,
    n_tasks: int,
    rng: "int | None | np.random.Generator" = None,
    work_range: tuple[float, float] = (1.0, 100.0),
    output_range: tuple[float, float] = (1.0, 10.0),
    integral: bool = True,
    last_output_zero: bool = True,
) -> list[TaskChain]:
    """Draw a whole ensemble of chains with two batched numpy calls.

    Semantically a faster ``[random_chain(n_tasks, ...) for _ in
    range(n_instances)]`` — but the draws come from *one* stream filling
    ``(n_instances, n_tasks)`` matrices row-major, so the per-chain
    values differ from the per-instance-stream construction.  Use the
    scenario layer's ``rng_mode`` to pick which contract you need
    (bit-compatibility with the Section 8 suites vs. throughput).
    """
    if n_instances < 0:
        raise ValueError(f"cannot draw {n_instances!r} chains")
    if n_tasks < 1:
        raise ValueError(f"chain length must be >= 1, got {n_tasks!r}")
    gen = ensure_rng(rng)
    work = draw_uniform(gen, *work_range, size=(n_instances, n_tasks), integral=integral)
    output = draw_uniform(gen, *output_range, size=(n_instances, n_tasks), integral=integral)
    if last_output_zero and n_instances:
        output[:, -1] = 0.0
    return [TaskChain(work=w, output=o) for w, o in zip(work, output)]


def random_platform_batch(
    n_instances: int,
    p: int,
    rng: "int | None | np.random.Generator" = None,
    speed_range: tuple[float, float] = (1.0, 100.0),
    failure_rate: float = 1e-8,
    bandwidth: float = 1.0,
    link_failure_rate: float = 1e-5,
    max_replication: int = 3,
    integral_speeds: bool = True,
) -> list[Platform]:
    """Batched counterpart of :func:`random_platform` (one speeds draw)."""
    if n_instances < 0:
        raise ValueError(f"cannot draw {n_instances!r} platforms")
    if p < 1:
        raise ValueError(f"platform needs at least one processor, got {p!r}")
    gen = ensure_rng(rng)
    speeds = draw_uniform(gen, *speed_range, size=(n_instances, p), integral=integral_speeds)
    rates = [failure_rate] * p
    return [
        Platform(
            speeds=s,
            failure_rates=rates,
            bandwidth=bandwidth,
            link_failure_rate=link_failure_rate,
            max_replication=max_replication,
        )
        for s in speeds
    ]
