"""Random chains and platforms following the paper's distributions (Section 8).

The experiments draw computation costs uniformly from ``[1, 100]`` and
communication costs from ``[1, 10]``; heterogeneous speeds come from
``[1, 100]``.  The paper does not state whether draws are integral; we
default to integers (typical of the authors' earlier generators and of
the plotted ranges) but expose ``integral=False`` for continuous draws.
The canonical experiment suites live in :mod:`repro.experiments.instances`;
these functions are the reusable building blocks.
"""

from __future__ import annotations

import numpy as np

from repro.core.chain import TaskChain
from repro.core.platform import Platform
from repro.util.rng import ensure_rng

__all__ = ["random_chain", "random_platform"]


def _draw(
    rng: np.random.Generator, low: float, high: float, size: int, integral: bool
) -> np.ndarray:
    if integral:
        return rng.integers(int(low), int(high), size=size, endpoint=True).astype(float)
    return rng.uniform(low, high, size=size)


def random_chain(
    n: int,
    rng: "int | None | np.random.Generator" = None,
    work_range: tuple[float, float] = (1.0, 100.0),
    output_range: tuple[float, float] = (1.0, 10.0),
    integral: bool = True,
    last_output_zero: bool = True,
) -> TaskChain:
    """Random task chain with the Section 8 cost distributions.

    Parameters
    ----------
    n:
        Number of tasks.
    rng:
        Seed or generator (see :func:`repro.util.rng.ensure_rng`).
    work_range, output_range:
        Inclusive draw ranges for ``w_i`` and ``o_i``.
    integral:
        Draw integer costs (default) or continuous ones.
    last_output_zero:
        Enforce the paper's ``o_n = 0`` convention (default).
    """
    if n < 1:
        raise ValueError(f"chain length must be >= 1, got {n!r}")
    gen = ensure_rng(rng)
    work = _draw(gen, *work_range, size=n, integral=integral)
    output = _draw(gen, *output_range, size=n, integral=integral)
    if last_output_zero:
        output[-1] = 0.0
    return TaskChain(work=work, output=output)


def random_platform(
    p: int,
    rng: "int | None | np.random.Generator" = None,
    speed_range: tuple[float, float] = (1.0, 100.0),
    failure_rate: float = 1e-8,
    bandwidth: float = 1.0,
    link_failure_rate: float = 1e-5,
    max_replication: int = 3,
    integral_speeds: bool = True,
) -> Platform:
    """Random heterogeneous platform with the Section 8.2 distributions.

    Speeds are drawn from *speed_range*; processor failure rates are the
    constant *failure_rate* (the paper keeps ``lambda_u = 1e-8`` in the
    heterogeneous experiments; speed is the source of heterogeneity).
    """
    if p < 1:
        raise ValueError(f"platform needs at least one processor, got {p!r}")
    gen = ensure_rng(rng)
    speeds = _draw(gen, *speed_range, size=p, integral=integral_speeds)
    return Platform(
        speeds=speeds,
        failure_rates=[failure_rate] * p,
        bandwidth=bandwidth,
        link_failure_rate=link_failure_rate,
        max_replication=max_replication,
    )
