"""Core models of the paper: task chains, platforms, interval mappings,
and the evaluation of a mapping's reliability / latency / period
(Section 2 "Framework" and Section 4 "Evaluation of a given mapping").
"""

from repro.core.chain import TaskChain
from repro.core.platform import Platform
from repro.core.ensemble import (
    Ensemble,
    InstanceView,
    ensembles_from_instances,
    instance_digest,
)
from repro.core.interval import Interval, compositions, partition_from_cuts
from repro.core.mapping import Mapping
from repro.core.evaluation import (
    MappingEvaluation,
    evaluate_mapping,
    expected_cost,
    worst_case_cost,
    interval_log_reliability,
    stage_log_reliability,
    mapping_log_reliability,
)
from repro.core.generate import random_chain, random_platform

__all__ = [
    "TaskChain",
    "Platform",
    "Ensemble",
    "InstanceView",
    "ensembles_from_instances",
    "instance_digest",
    "Interval",
    "Mapping",
    "MappingEvaluation",
    "compositions",
    "partition_from_cuts",
    "evaluate_mapping",
    "expected_cost",
    "worst_case_cost",
    "interval_log_reliability",
    "stage_log_reliability",
    "mapping_log_reliability",
    "random_chain",
    "random_platform",
]
