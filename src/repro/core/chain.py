"""The application model: a linear chain of tasks (Section 2.1).

An application is a chain of ``n`` tasks ``tau_1 .. tau_n``.  Task ``i``
is the pair ``(w_i, o_i)``: a known amount of work and the size of its
output data set.  By the paper's convention ``o_n = 0`` because the last
task emits its result directly to the environment through actuator
drivers; :class:`TaskChain` does *not* force this (some algebraic
identities are easier to test with a free last output), but the canonical
generators in :mod:`repro.core.generate` and the experiment suites follow
the convention.

Indexing is 0-based throughout the code; the paper is 1-based.  Paper
task ``tau_i`` is index ``i - 1`` here.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.validation import as_float_array

__all__ = ["TaskChain"]


class TaskChain:
    """Immutable chain of ``n`` tasks with work and output-size vectors.

    Parameters
    ----------
    work:
        ``w_i > 0`` for each task — the amount of computation, in work
        units (executing on a processor of speed ``s`` takes ``w/s`` time
        units).
    output:
        ``o_i >= 0`` for each task — the size of the output data set
        (transmitting over a link of bandwidth ``b`` takes ``o/b`` time
        units).  ``output[-1]`` is conventionally 0.

    Examples
    --------
    >>> chain = TaskChain(work=[4.0, 2.0, 6.0], output=[1.0, 3.0, 0.0])
    >>> chain.n
    3
    >>> chain.work_between(0, 2)   # w_1 + w_2 in paper terms
    6.0
    """

    __slots__ = ("_work", "_output", "_prefix", "_hash")

    def __init__(self, work: Sequence[float], output: Sequence[float]) -> None:
        w = as_float_array(work, "work")
        o = as_float_array(output, "output")
        if w.shape != o.shape:
            raise ValueError(
                f"work and output must have the same length, got {w.size} and {o.size}"
            )
        if np.any(w <= 0):
            raise ValueError("all work amounts must be > 0")
        if np.any(o < 0):
            raise ValueError("all output sizes must be >= 0")
        w.setflags(write=False)
        o.setflags(write=False)
        self._work = w
        self._output = o
        # Prefix sums for O(1) interval-work queries: prefix[i] = sum(w[:i]).
        prefix = np.concatenate(([0.0], np.cumsum(w)))
        prefix.setflags(write=False)
        self._prefix = prefix
        self._hash: "int | None" = None

    # -- basic accessors ----------------------------------------------------

    @property
    def n(self) -> int:
        """Number of tasks in the chain."""
        return self._work.size

    def __len__(self) -> int:
        return self.n

    @property
    def work(self) -> np.ndarray:
        """Read-only vector of work amounts ``w_i``."""
        return self._work

    @property
    def output(self) -> np.ndarray:
        """Read-only vector of output data sizes ``o_i``."""
        return self._output

    @property
    def total_work(self) -> float:
        """Sum of all work — invariant under any interval partition."""
        return float(self._prefix[-1])

    # -- interval queries ---------------------------------------------------

    def work_between(self, start: int, stop: int) -> float:
        """Total work of tasks ``start .. stop-1`` (half-open, 0-based).

        This is the paper's ``W_j`` for the interval covering those tasks.
        """
        if not 0 <= start < stop <= self.n:
            raise ValueError(
                f"invalid interval [{start}, {stop}) for a chain of {self.n} tasks"
            )
        return float(self._prefix[stop] - self._prefix[start])

    def output_of(self, stop: int) -> float:
        """Output size of the interval ending at ``stop`` (half-open).

        Equals ``o_{l_j}`` — the output of the interval's last task.
        """
        if not 0 < stop <= self.n:
            raise ValueError(f"invalid interval end {stop} for {self.n} tasks")
        return float(self._output[stop - 1])

    def input_of(self, start: int) -> float:
        """Input size consumed by the interval starting at ``start``.

        Equals the output of the preceding task, or 0 for the first
        interval (the paper's ``o_0 = 0`` convention).
        """
        if not 0 <= start < self.n:
            raise ValueError(f"invalid interval start {start} for {self.n} tasks")
        return 0.0 if start == 0 else float(self._output[start - 1])

    # -- dunder conveniences --------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskChain):
            return NotImplemented
        return bool(
            np.array_equal(self._work, other._work)
            and np.array_equal(self._output, other._output)
        )

    def __hash__(self) -> int:
        # Cached: the arrays are frozen at construction, so the digest
        # never changes (mirrors Platform.__hash__).
        if self._hash is None:
            self._hash = hash((self._work.tobytes(), self._output.tobytes()))
        return self._hash

    def __repr__(self) -> str:
        return f"TaskChain(n={self.n}, total_work={self.total_work:g})"
