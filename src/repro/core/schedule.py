"""Static periodic schedules and the Section 1 deadline model.

The paper's real-time constraint: data sets enter the system with period
``P``; data set ``K`` enters at time ``K * P`` and has deadline
``K * P + L``.  "The deadline of each data set will be met as soon as we
derive a schedule whose period does not exceed P and whose latency does
not exceed L."  This module makes that claim concrete: it builds the
canonical static schedule of a mapping — every replica of interval ``j``
starts data set ``K`` at offset ``S_j + K * P`` where

    ``S_j = sum_{i < j} (wc_i + o_i / b)``

(worst-case stage offsets, so the schedule is valid whatever subset of
replicas fail) — validates it (no processor overlap, deadlines met), and
renders an ASCII Gantt chart.  A test cross-checks the claim against the
discrete-event simulator: in a fault-free run every completion time is
bounded by the static schedule's.

Periods below ``WP`` (Eq. (8)) are rejected: some replica would still be
busy with data set ``K`` when ``K + 1`` arrives.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.evaluation import evaluate_mapping
from repro.core.mapping import Mapping

__all__ = ["StaticSchedule", "build_schedule"]


@dataclass(frozen=True)
class StaticSchedule:
    """The canonical periodic schedule of a mapping.

    Attributes
    ----------
    mapping:
        The scheduled mapping.
    period:
        Injection period ``P`` (>= the mapping's worst-case period).
    stage_offsets:
        ``S_j`` — the time at which stage ``j`` of data set 0 starts
        (every replica starts together; incoming data is available).
    stage_durations:
        Worst-case computation time ``wc_j`` per stage.
    comm_times:
        Outgoing communication time ``o_{l_j} / b`` per stage.
    """

    mapping: Mapping
    period: float
    stage_offsets: tuple[float, ...]
    stage_durations: tuple[float, ...]
    comm_times: tuple[float, ...]

    @property
    def latency(self) -> float:
        """Completion offset of any data set — equals ``WL`` (Eq. (7))."""
        return self.stage_offsets[-1] + self.stage_durations[-1] + self.comm_times[-1]

    def start_time(self, stage: int, dataset: int) -> float:
        """Start of *stage* for data set *dataset* (any replica)."""
        if not 0 <= stage < self.mapping.m:
            raise ValueError(f"stage {stage} out of range")
        if dataset < 0:
            raise ValueError("dataset index must be >= 0")
        return self.stage_offsets[stage] + dataset * self.period

    def completion_time(self, dataset: int) -> float:
        """Output time of data set *dataset* under the static schedule."""
        if dataset < 0:
            raise ValueError("dataset index must be >= 0")
        return self.latency + dataset * self.period

    def meets_deadlines(self, max_latency: float) -> bool:
        """Section 1: deadline of data set K is ``K * P + max_latency``;
        the static schedule meets all of them iff its latency does."""
        return self.latency <= max_latency

    def processor_busy_intervals(
        self, proc: int, n_datasets: int
    ) -> list[tuple[float, float]]:
        """Busy windows of *proc* over the first *n_datasets* data sets."""
        for j, (_iv, procs) in enumerate(self.mapping):
            if proc in procs:
                w = self.mapping.interval_work(j)
                dur = w / float(self.mapping.platform.speeds[proc])
                return [
                    (self.stage_offsets[j] + k * self.period,
                     self.stage_offsets[j] + k * self.period + dur)
                    for k in range(n_datasets)
                ]
        return []

    def gantt(self, n_datasets: int = 3, width: int = 72) -> str:
        """ASCII Gantt chart of the first *n_datasets* data sets.

        One row per processor; digits mark which data set occupies each
        time slot (``.`` = idle).  Rows are labelled ``P<u>:I<j>``.
        """
        if n_datasets < 1:
            raise ValueError("n_datasets must be >= 1")
        horizon = self.latency + (n_datasets - 1) * self.period
        scale = width / horizon
        lines = [
            f"period={self.period:g} latency={self.latency:g} "
            f"({n_datasets} data sets, {width} cols = {horizon:g} time units)"
        ]
        for j, (_iv, procs) in enumerate(self.mapping):
            for u in procs:
                row = ["."] * width
                for k, (a, b) in enumerate(
                    self.processor_busy_intervals(u, n_datasets)
                ):
                    lo = min(int(a * scale), width - 1)
                    hi = min(max(int(math.ceil(b * scale)), lo + 1), width)
                    for c in range(lo, hi):
                        row[c] = str(k % 10)
                lines.append(f"P{u:<3d} I{j}: " + "".join(row))
        return "\n".join(lines)


def build_schedule(mapping: Mapping, period: float | None = None) -> StaticSchedule:
    """Build the canonical static schedule of *mapping*.

    Parameters
    ----------
    period:
        Injection period; defaults to the mapping's worst-case period
        ``WP`` (the fastest valid rate).  Must be ``>= WP`` — otherwise
        some processor would need to start a data set before finishing
        the previous one.

    Raises
    ------
    ValueError
        If *period* is below the mapping's worst-case period.
    """
    ev = evaluate_mapping(mapping)
    if period is None:
        period = ev.worst_case_period
    if period < ev.worst_case_period - 1e-12:
        raise ValueError(
            f"period {period} below the mapping's worst-case period "
            f"{ev.worst_case_period}: processors cannot keep up"
        )
    b = mapping.platform.bandwidth
    offsets: list[float] = []
    durations: list[float] = []
    comms: list[float] = []
    t = 0.0
    for j in range(mapping.m):
        offsets.append(t)
        durations.append(ev.worst_case_costs[j])
        comms.append(mapping.interval_output(j) / b)
        t += durations[j] + comms[j]
    return StaticSchedule(
        mapping=mapping,
        period=float(period),
        stage_offsets=tuple(offsets),
        stage_durations=tuple(durations),
        comm_times=tuple(comms),
    )
