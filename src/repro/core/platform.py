"""The platform model (Section 2.2) and failure model (Section 2.4).

A platform is ``p`` processors connected by point-to-point links.
Links are homogeneous: one bandwidth ``b`` and one failure rate
``lambda_link`` for all of them.  Processors may differ in speed ``s_u``
and failure rate ``lambda_u`` (heterogeneous platform); when all speeds
and all failure rates coincide the platform is *homogeneous* and the
polynomial algorithms of Section 5 apply.

The bounded multi-port assumption (at most ``K`` simultaneous outgoing
connections per processor) caps the number of replicas per interval at
``K`` (Section 2.5).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.validation import as_float_array, check_positive, check_nonnegative

__all__ = ["Platform"]


class Platform:
    """Immutable distributed platform description.

    Parameters
    ----------
    speeds:
        Processor speeds ``s_u > 0`` (work units per time unit).
    failure_rates:
        Processor failure rates ``lambda_u >= 0`` per time unit.
    bandwidth:
        Common link bandwidth ``b > 0`` (data units per time unit).
    link_failure_rate:
        Common link failure rate ``lambda_link >= 0`` per time unit.
    max_replication:
        The bound ``K >= 1`` on outgoing connections, hence on the number
        of replicas per interval.

    Examples
    --------
    >>> plat = Platform(speeds=[1.0] * 4, failure_rates=[1e-8] * 4,
    ...                 bandwidth=1.0, link_failure_rate=1e-5,
    ...                 max_replication=3)
    >>> plat.homogeneous
    True
    """

    __slots__ = ("_speeds", "_rates", "_bandwidth", "_link_rate", "_K", "_hash")

    def __init__(
        self,
        speeds: Sequence[float],
        failure_rates: Sequence[float],
        bandwidth: float = 1.0,
        link_failure_rate: float = 0.0,
        max_replication: int = 1,
    ) -> None:
        s = as_float_array(speeds, "speeds")
        lam = as_float_array(failure_rates, "failure_rates")
        if s.shape != lam.shape:
            raise ValueError(
                f"speeds and failure_rates must have the same length, "
                f"got {s.size} and {lam.size}"
            )
        if np.any(s <= 0):
            raise ValueError("all processor speeds must be > 0")
        if np.any(lam < 0):
            raise ValueError("all processor failure rates must be >= 0")
        check_positive(bandwidth, "bandwidth")
        check_nonnegative(link_failure_rate, "link_failure_rate")
        if not isinstance(max_replication, (int, np.integer)) or max_replication < 1:
            raise ValueError(f"max_replication must be an integer >= 1, got {max_replication!r}")
        s.setflags(write=False)
        lam.setflags(write=False)
        self._speeds = s
        self._rates = lam
        self._bandwidth = float(bandwidth)
        self._link_rate = float(link_failure_rate)
        self._K = int(max_replication)
        self._hash: "int | None" = None

    # -- accessors ------------------------------------------------------------

    @property
    def p(self) -> int:
        """Number of processors."""
        return self._speeds.size

    def __len__(self) -> int:
        return self.p

    @property
    def speeds(self) -> np.ndarray:
        """Read-only vector of processor speeds ``s_u``."""
        return self._speeds

    @property
    def failure_rates(self) -> np.ndarray:
        """Read-only vector of processor failure rates ``lambda_u``."""
        return self._rates

    @property
    def bandwidth(self) -> float:
        """Common link bandwidth ``b``."""
        return self._bandwidth

    @property
    def link_failure_rate(self) -> float:
        """Common link failure rate ``lambda_link``."""
        return self._link_rate

    @property
    def max_replication(self) -> int:
        """The bounded multi-port constant ``K`` (max replicas per interval)."""
        return self._K

    @property
    def homogeneous(self) -> bool:
        """True iff all processors share one speed and one failure rate.

        Exactly the paper's definition (Section 2.4): heterogeneity may
        come from speeds *or* from failure rates.
        """
        return bool(
            np.all(self._speeds == self._speeds[0])
            and np.all(self._rates == self._rates[0])
        )

    # -- convenience constructors ---------------------------------------------

    @classmethod
    def homogeneous_platform(
        cls,
        p: int,
        speed: float = 1.0,
        failure_rate: float = 0.0,
        bandwidth: float = 1.0,
        link_failure_rate: float = 0.0,
        max_replication: int = 1,
    ) -> "Platform":
        """Build a fully homogeneous platform of ``p`` identical processors."""
        if p < 1:
            raise ValueError(f"platform needs at least one processor, got {p!r}")
        return cls(
            speeds=[speed] * p,
            failure_rates=[failure_rate] * p,
            bandwidth=bandwidth,
            link_failure_rate=link_failure_rate,
            max_replication=max_replication,
        )

    # -- dunder conveniences ----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Platform):
            return NotImplemented
        return bool(
            np.array_equal(self._speeds, other._speeds)
            and np.array_equal(self._rates, other._rates)
            and self._bandwidth == other._bandwidth
            and self._link_rate == other._link_rate
            and self._K == other._K
        )

    def __hash__(self) -> int:
        # Cached: the arrays are frozen at construction, so the digest
        # never changes — rehashing dict/set-heavy sweep code used to
        # re-serialize both arrays on every call.
        if self._hash is None:
            self._hash = hash(
                (
                    self._speeds.tobytes(),
                    self._rates.tobytes(),
                    self._bandwidth,
                    self._link_rate,
                    self._K,
                )
            )
        return self._hash

    def __repr__(self) -> str:
        kind = "homogeneous" if self.homogeneous else "heterogeneous"
        return (
            f"Platform(p={self.p}, {kind}, b={self._bandwidth:g}, "
            f"lambda_link={self._link_rate:g}, K={self._K})"
        )
