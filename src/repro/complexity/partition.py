"""2-PARTITION: exact pseudo-polynomial solver and instance generators.

2-PARTITION (Garey & Johnson SP12): given positive integers
``a_1 .. a_n``, is there a subset ``A'`` with
``sum(A') = sum(A) / 2``?  NP-complete, but solvable in ``O(n * T)``
time by the classic subset-sum dynamic program — which is all the
Theorem 3 reduction tests need.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.util.rng import ensure_rng

__all__ = ["two_partition_solve", "random_yes_instance", "random_instance"]


def two_partition_solve(values: Sequence[int]) -> list[int] | None:
    """Return indices of a half-sum subset, or ``None`` if none exists.

    Subset-sum DP over reachable sums with parent pointers.

    Examples
    --------
    >>> two_partition_solve([1, 2, 3])
    [0, 1]
    >>> two_partition_solve([1, 2, 5]) is None
    True
    """
    vals = [int(v) for v in values]
    if not vals:
        return []
    if any(v <= 0 for v in vals):
        raise ValueError("2-PARTITION values must be positive integers")
    total = sum(vals)
    if total % 2:
        return None
    target = total // 2
    # parent[s] = (previous sum, item index) for one way to reach s.
    parent: dict[int, tuple[int, int] | None] = {0: None}
    for i, v in enumerate(vals):
        # Iterate a snapshot: each item used at most once.
        for s in list(parent):
            ns = s + v
            if ns <= target and ns not in parent:
                parent[ns] = (s, i)
    if target not in parent:
        return None
    subset: list[int] = []
    s = target
    while parent[s] is not None:
        prev, idx = parent[s]  # type: ignore[misc]
        subset.append(idx)
        s = prev
    return sorted(subset)


def random_yes_instance(
    n: int, rng: "int | None | np.random.Generator" = None, high: int = 20
) -> list[int]:
    """Random 2-PARTITION instance guaranteed solvable.

    Draws ``n - 1`` values, then appends whatever balances the halves
    (splitting one value if needed); rejects-and-retries degenerate
    draws.  All values positive.
    """
    if n < 2:
        raise ValueError("need at least two values")
    gen = ensure_rng(rng)
    while True:
        vals = [int(v) for v in gen.integers(1, high, size=n - 1)]
        total = sum(vals)
        # Choose a random subset of the drawn values and add the value
        # that makes that subset half of the new total:
        # need x with subset_sum + x == (total + x) / 2 when x joins the
        # subset's complement... simpler: x = |total - 2 * subset_sum|.
        mask = gen.random(n - 1) < 0.5
        ssum = int(sum(v for v, m in zip(vals, mask) if m))
        x = abs(total - 2 * ssum)
        if x > 0:
            vals.append(x)
            assert two_partition_solve(vals) is not None
            return vals


def random_instance(
    n: int, rng: "int | None | np.random.Generator" = None, high: int = 20
) -> list[int]:
    """Uniform random instance (may or may not be solvable)."""
    if n < 1:
        raise ValueError("need at least one value")
    gen = ensure_rng(rng)
    return [int(v) for v in gen.integers(1, high, size=n)]
