"""Executable NP-completeness reductions (Theorems 3 and 5).

Each builder turns a source-problem instance into the mapping instance
of the corresponding proof, including the decision thresholds, so tests
can check the equivalence *"source instance solvable iff mapping
instance achievable"* with the library's exact solvers.

Fidelity notes
--------------
* Theorem 3 (2-PARTITION -> homogeneous (reliability, latency)): built
  exactly as printed — ``3n + 1`` tasks, ``6n`` processors, ``K = 2``,
  ``lambda = 1e-8 * 10^-n * a_max^-3n``, perfectly reliable links
  (``rcomm = 1``), latency bound ``L = (n+1)B + n/2 + 3T``, and the
  reliability threshold of the proof.  All reliabilities live at scales
  like ``1 - 1e-30``: only the log-domain arithmetic of
  :mod:`repro.util.logrel` makes the instance decidable in double
  precision (the decisive differences are ~1e-3 *relative* to the log).
* Theorem 5 (n-way equal-sum partition -> heterogeneous reliability):
  the printed parameters set ``w_i = 1/n`` yet the proof's algebra
  treats every task's execution time as 1 (e.g. ``r_{u,i} =
  e^{-lambda gamma^{a_u}}``); with the literal ``1/n`` the threshold
  would not discriminate (every allocation's failure shrinks by
  ``n^3``).  We therefore build tasks of work 1 — the form under which
  every inequality of the proof holds as written.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.chain import TaskChain
from repro.core.platform import Platform
from repro.util import logrel

__all__ = [
    "Theorem3Instance",
    "Theorem5Instance",
    "build_theorem3_instance",
    "build_theorem5_instance",
]


@dataclass(frozen=True)
class Theorem3Instance:
    """The homogeneous (reliability | latency) instance of Theorem 3."""

    chain: TaskChain
    platform: Platform
    max_latency: float
    min_log_reliability: float
    #: Parameters of the construction, for inspection.
    B: float
    lam: float
    T: int


def build_theorem3_instance(a: list[int]) -> Theorem3Instance:
    """Build instance ``I2`` of the Theorem 3 proof from 2-PARTITION
    instance ``I1 = {a_1 .. a_n}`` (positive integers, even total)."""
    if not a or any(v <= 0 or not isinstance(v, int) for v in a):
        raise ValueError("2-PARTITION values must be positive integers")
    n = len(a)
    total = sum(a)
    if total % 2:
        raise ValueError("2-PARTITION total must be even (odd totals are trivial)")
    T = total // 2
    a_min, a_max = min(a), max(a)
    lam = 1e-8 * (10.0 ** -n) * float(a_max) ** (-3 * n)
    B = (n / 4 + n * a_max**2 + T + 2) / (2 * a_min)

    work: list[float] = []
    output: list[float] = []
    for ai in a:
        work += [B, 0.5, float(ai)]
        output += [0.0, float(ai), 0.0]
    work.append(B)
    output.append(0.0)
    chain = TaskChain(work=work, output=output)
    platform = Platform.homogeneous_platform(
        6 * n,
        speed=1.0,
        failure_rate=lam,
        bandwidth=1.0,
        link_failure_rate=0.0,  # rcomm_i = 1 in the construction
        max_replication=2,
    )
    max_latency = (n + 1) * B + n / 2 + 3 * T

    # Reliability threshold of the proof:
    #   r = (1 - (1 - e^{-lam B})^2)^{n+1}
    #       * (1 - lam^2 (n/4 + sum a_i^2 + T) - lam^4 2^{2n} (a_max+1)^n)
    ell_B = (n + 1) * logrel.parallel_k(-lam * B, 2)
    slack = lam**2 * (n / 4 + sum(v * v for v in a) + T) + lam**4 * (
        2.0 ** (2 * n)
    ) * float(a_max + 1) ** n
    min_log_reliability = ell_B + math.log1p(-slack)
    return Theorem3Instance(
        chain=chain,
        platform=platform,
        max_latency=max_latency,
        min_log_reliability=min_log_reliability,
        B=B,
        lam=lam,
        T=T,
    )


@dataclass(frozen=True)
class Theorem5Instance:
    """The heterogeneous reliability instance of Theorem 5."""

    chain: TaskChain
    platform: Platform
    min_log_reliability: float
    lam: float
    gamma: float
    T: int


def build_theorem5_instance(a: list[int]) -> Theorem5Instance:
    """Build instance ``I2`` of the Theorem 5 proof from the ``3n``
    numbers ``a`` (positive integers with ``sum = n * T``)."""
    if not a or len(a) % 3 or any(v <= 0 or not isinstance(v, int) for v in a):
        raise ValueError("need 3n positive integers")
    n = len(a) // 3
    total = sum(a)
    if total % n:
        raise ValueError(f"sum {total} is not divisible by n = {n}")
    T = total // n
    if T < 2:
        raise ValueError("T must be >= 2 for gamma to be defined")
    lam = 1e-8 / (n * T * T)
    gamma = 1.0 + 1.0 / (2.0 * (T - 1))

    chain = TaskChain(work=[1.0] * n, output=[0.0] * n)
    platform = Platform(
        speeds=[1.0] * (3 * n),
        failure_rates=[lam * gamma ** float(au) for au in a],
        bandwidth=1.0,
        link_failure_rate=0.0,
        max_replication=3,
    )
    # Threshold: r = (1 - lam^3 gamma^T)^n.
    min_log_reliability = n * math.log1p(-(lam**3) * gamma**T)
    return Theorem5Instance(
        chain=chain,
        platform=platform,
        min_log_reliability=min_log_reliability,
        lam=lam,
        gamma=gamma,
        T=T,
    )
