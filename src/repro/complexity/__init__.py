"""NP-completeness machinery (Sections 5.3 and 6).

The paper's two hardness results are reductions:

* Theorem 3 — bi-criteria (reliability, latency) on *homogeneous*
  platforms, from 2-PARTITION;
* Theorem 5 — mono-criterion reliability on *heterogeneous* platforms,
  from 3-PARTITION (the ``n`` equal-sum-subsets form used in the proof).

This subpackage makes the reductions executable: exact solvers for the
source problems (:mod:`repro.complexity.partition`,
:mod:`repro.complexity.three_partition`) and instance builders that
produce the mapping instances of the proofs
(:mod:`repro.complexity.reductions`), so the equivalences can be
checked end to end on small inputs — a rare kind of test for
theoretical results.
"""

from repro.complexity.partition import (
    two_partition_solve,
    random_yes_instance,
    random_instance,
)
from repro.complexity.three_partition import n_way_partition_solve
from repro.complexity.reductions import (
    Theorem3Instance,
    Theorem5Instance,
    build_theorem3_instance,
    build_theorem5_instance,
)

__all__ = [
    "two_partition_solve",
    "random_yes_instance",
    "random_instance",
    "n_way_partition_solve",
    "Theorem3Instance",
    "Theorem5Instance",
    "build_theorem3_instance",
    "build_theorem5_instance",
]
