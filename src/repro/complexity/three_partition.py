"""The n-way equal-sum partition problem behind Theorem 5.

The paper's "3-PARTITION" instance (Section 6) asks: given ``3n``
numbers summing to ``n * T``, do there exist ``n`` pairwise-disjoint
subsets each summing to ``T``?  (Subset sizes are unconstrained in the
proof — it is the reduction that ensures three replicas per task via
``K = 3``.)  This solver finds such a partition by backtracking with
standard symmetry-breaking pruning; exponential in general, instant at
test sizes.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["n_way_partition_solve"]


def n_way_partition_solve(
    values: Sequence[int], n_groups: int
) -> list[list[int]] | None:
    """Partition index set into *n_groups* groups of equal value sums.

    Returns the groups as lists of indices into *values*, or ``None``.

    Examples
    --------
    >>> n_way_partition_solve([1, 2, 3, 4, 5, 9], 2)
    [[2, 5], [0, 1, 3, 4]]
    >>> n_way_partition_solve([1, 1, 1, 5], 2) is None
    True
    """
    vals = [int(v) for v in values]
    if n_groups < 1:
        raise ValueError("n_groups must be >= 1")
    if any(v <= 0 for v in vals):
        raise ValueError("values must be positive integers")
    total = sum(vals)
    if total % n_groups:
        return None
    target = total // n_groups
    if any(v > target for v in vals):
        return None

    # Sort descending for fail-fast packing; remember original indices.
    order = sorted(range(len(vals)), key=lambda i: -vals[i])
    sums = [0] * n_groups
    groups: list[list[int]] = [[] for _ in range(n_groups)]

    def place(k: int) -> bool:
        if k == len(order):
            return all(s == target for s in sums)
        idx = order[k]
        v = vals[idx]
        seen: set[int] = set()
        for g in range(n_groups):
            if sums[g] + v > target or sums[g] in seen:
                # Symmetry breaking: identical current sums are
                # interchangeable; try only one of them.
                seen.add(sums[g])
                continue
            seen.add(sums[g])
            sums[g] += v
            groups[g].append(idx)
            if place(k + 1):
                return True
            sums[g] -= v
            groups[g].pop()
        return False

    if not place(0):
        return None
    return [sorted(g) for g in groups]
