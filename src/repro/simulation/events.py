"""Event records and the deterministic priority queue of the simulator.

Events are ordered by ``(time, priority, seq)``: time first, then an
explicit priority (lets routers forward before later work at the same
instant), then insertion order — making every simulation fully
deterministic given its seed.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable

__all__ = ["Event", "EventQueue"]


@dataclass(frozen=True, order=False)
class Event:
    """One scheduled occurrence.

    Attributes
    ----------
    time:
        Simulated timestamp.
    action:
        Zero-argument callable executed when the event fires.
    priority:
        Secondary ordering at equal times (lower fires first).
    label:
        Debugging aid shown in traces.
    """

    time: float
    action: Callable[[], None]
    priority: int = 0
    label: str = ""


class EventQueue:
    """A stable min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = itertools.count()

    def push(self, event: Event) -> None:
        if event.time < 0:
            raise ValueError(f"event time must be >= 0, got {event.time!r}")
        heapq.heappush(
            self._heap, (event.time, event.priority, next(self._seq), event)
        )

    def pop(self) -> Event:
        if not self._heap:
            raise IndexError("pop from empty event queue")
        return heapq.heappop(self._heap)[3]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def next_time(self) -> float:
        """Timestamp of the earliest pending event."""
        if not self._heap:
            raise IndexError("empty event queue has no next time")
        return self._heap[0][0]
