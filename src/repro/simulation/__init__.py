"""Discrete-event simulation of pipelined execution with transient faults.

The paper evaluates reliability, latency, and period *analytically*
(Eqs. (3), (5)-(9)); this subpackage provides the executable
counterpart: a discrete-event simulator that runs a mapping over a
stream of data sets (data set ``K`` enters at time ``K * P``, Section 1)
on fail-silent processors and links whose transient faults follow the
Shatz-Wang model, with replica fan-out and routing-operation semantics
(Figure 5).  Monte Carlo aggregation then validates the closed forms —
the closest executable stand-in for the real failure-prone platforms
the model abstracts (see DESIGN.md, substitutions).

Layers:

* :mod:`repro.simulation.events` — event records and the deterministic
  priority queue;
* :mod:`repro.simulation.engine` — the generic event loop;
* :mod:`repro.simulation.faults` — fault injectors (per-operation
  Bernoulli, and an explicit Poisson-arrival sampler; the two are
  distributionally identical for fail-silent operations, which a test
  verifies);
* :mod:`repro.simulation.pipeline` — the pipelined-execution model;
* :mod:`repro.simulation.montecarlo` — aggregation and
  analytical-vs-simulated validation helpers.
"""

from repro.simulation.engine import Engine
from repro.simulation.faults import BernoulliFaults, PoissonFaults, NoFaults
from repro.simulation.pipeline import PipelineSimulator, SimulationRun
from repro.simulation.montecarlo import (
    SimulationSummary,
    simulate_mapping,
    validate_against_analytical,
)

__all__ = [
    "Engine",
    "BernoulliFaults",
    "PoissonFaults",
    "NoFaults",
    "PipelineSimulator",
    "SimulationRun",
    "SimulationSummary",
    "simulate_mapping",
    "validate_against_analytical",
]
