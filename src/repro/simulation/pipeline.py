"""Pipelined execution of a mapping over a stream of data sets.

Model (Sections 1, 2.2, 2.5):

* data set ``d`` enters the system at time ``d * period`` (the
  real-time arrival law of Section 1);
* every replica of every interval processes every data set, in arrival
  order, one at a time (a processor computes one operation at a time;
  communications are overlapped with computations, Section 2.2);
* between consecutive intervals sits a routing operation, executing in
  zero time with reliability 1 ([17]); it forwards the *first*
  successful replica result to every replica of the next interval;
* a fault on a replica (or a link) silently kills that replica's
  contribution *for that data set only* — the hot transient model: the
  replica keeps processing later data sets;
* a data set completes iff at every stage at least one replica chain
  (incoming communication, computation, outgoing communication)
  succeeds end to end.

Timing accounting (``accounting``):

* ``"analytical"`` (default) charges each boundary communication once —
  mirroring Eqs. (5)-(8), which count ``o_i / b`` once per interval even
  though the routed data physically hops twice (the +3.88% routing
  overhead noted in [17] is ignored by the paper's formulas);
* ``"physical"`` charges both hops (replica -> router -> replica).

With ``"analytical"`` accounting, no faults, and single-replica
intervals, a data set's latency is exactly ``WL`` (Eq. (7)); with
replication and negligible fault rates it approaches ``EL`` (Eq. (5))
because the fastest replica's result is forwarded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

import numpy as np

from repro.core.mapping import Mapping
from repro.simulation.engine import Engine
from repro.simulation.faults import BernoulliFaults, FaultInjector

__all__ = ["PipelineSimulator", "SimulationRun"]

Accounting = Literal["analytical", "physical"]


@dataclass
class SimulationRun:
    """Outcome of one pipelined simulation.

    Attributes
    ----------
    n_datasets:
        Number of data sets injected.
    period:
        Injection period used.
    completion_times:
        Per-data-set completion timestamp (NaN when the data set was
        lost to faults).
    entry_times:
        Per-data-set injection timestamp (``d * period``).
    stage_losses:
        Per-stage count of data sets lost at that stage.
    events_processed:
        Total discrete events executed.
    """

    n_datasets: int
    period: float
    completion_times: np.ndarray
    entry_times: np.ndarray
    stage_losses: list[int]
    events_processed: int

    @property
    def completed(self) -> np.ndarray:
        """Boolean mask of data sets that survived every stage."""
        return ~np.isnan(self.completion_times)

    @property
    def n_completed(self) -> int:
        return int(self.completed.sum())

    @property
    def success_rate(self) -> float:
        """Empirical per-data-set reliability."""
        return self.n_completed / self.n_datasets

    @property
    def latencies(self) -> np.ndarray:
        """Latencies of completed data sets (completion - entry)."""
        mask = self.completed
        return self.completion_times[mask] - self.entry_times[mask]

    @property
    def observed_period(self) -> float:
        """Median inter-completion time in steady state (NaN if < 2
        completions).  The median is robust to the pipeline-fill
        transient and to gaps left by lost data sets."""
        times = np.sort(self.completion_times[self.completed])
        if times.size < 2:
            return float("nan")
        return float(np.median(np.diff(times)))


class PipelineSimulator:
    """Simulates one mapping under a fault injector.

    Parameters
    ----------
    mapping:
        The interval mapping to execute.
    faults:
        A :class:`~repro.simulation.faults.FaultInjector`; defaults to
        Bernoulli sampling with a fresh seed (pass a seeded injector
        for reproducibility).
    accounting:
        Communication-time accounting; see the module docstring.
    """

    def __init__(
        self,
        mapping: Mapping,
        faults: FaultInjector | None = None,
        accounting: Accounting = "analytical",
    ) -> None:
        if accounting not in ("analytical", "physical"):
            raise ValueError(f"unknown accounting mode {accounting!r}")
        self.mapping = mapping
        self.faults = faults if faults is not None else BernoulliFaults()
        self.accounting: Accounting = accounting

    def run(self, n_datasets: int, period: float) -> SimulationRun:
        """Inject ``n_datasets`` data sets at the given *period* and run
        to completion."""
        if n_datasets < 1:
            raise ValueError("n_datasets must be >= 1")
        if period <= 0:
            raise ValueError("period must be > 0")
        mapping = self.mapping
        chain, platform = mapping.chain, mapping.platform
        m = mapping.m
        b = platform.bandwidth
        lam_link = platform.link_failure_rate
        engine = Engine()
        faults = self.faults

        works = [mapping.interval_work(j) for j in range(m)]
        outs = [mapping.interval_output(j) for j in range(m)]

        # Replica state: next-free time per (stage, replica) processor.
        busy = {(j, u): 0.0 for j in range(m) for u in mapping.replicas[j]}
        # Router state: earliest successful arrival per (stage, dataset).
        forwarded: set[tuple[int, int]] = set()
        # Pending replica results per (stage, dataset): count outstanding.
        outstanding = {
            (j, d): len(mapping.replicas[j])
            for j in range(m)
            for d in range(n_datasets)
        }

        completion = np.full(n_datasets, np.nan)
        entry = np.arange(n_datasets, dtype=float) * period
        stage_losses = [0] * m

        def router_receive(j: int, d: int, ok: bool) -> None:
            """A replica chain of stage j delivered (or lost) data set d."""
            key = (j, d)
            outstanding[key] -= 1
            if ok and key not in forwarded:
                forwarded.add(key)
                t = engine.now
                if j + 1 < m:
                    stage_input(j + 1, d, t)
                else:
                    completion[d] = t
            elif outstanding[key] == 0 and key not in forwarded:
                stage_losses[j] += 1  # every replica chain failed

        def stage_input(j: int, d: int, t: float) -> None:
            """The router upstream of stage j forwards data set d at t."""
            in_size = mapping.interval_input(j)
            in_time = in_size / b if self.accounting == "physical" else 0.0
            out_size = outs[j]
            # Under analytical accounting the outgoing hop carries the
            # whole once-per-boundary communication time.
            out_time = out_size / b
            for u in mapping.replicas[j]:
                in_ok = faults.operation_succeeds(lam_link, in_size / b) if (
                    j > 0 and in_size > 0
                ) else True
                arrival = t + in_time

                def deliver(j=j, d=d, u=u, in_ok=in_ok, out_size=out_size, out_time=out_time):
                    start = max(engine.now, busy[(j, u)])
                    duration = works[j] / float(platform.speeds[u])
                    busy[(j, u)] = start + duration
                    comp_ok = faults.operation_succeeds(
                        float(platform.failure_rates[u]), duration
                    )
                    is_last = j == m - 1
                    send_time = out_time if (not is_last or out_size > 0) else 0.0
                    if out_size > 0:
                        out_ok = faults.operation_succeeds(lam_link, out_size / b)
                    else:
                        out_ok = True
                    ok = in_ok and comp_ok and out_ok
                    finish = start + duration + send_time
                    engine.schedule_at(
                        finish,
                        lambda j=j, d=d, ok=ok: router_receive(j, d, ok),
                        priority=1,
                        label=f"deliver I{j}/P{u} d{d}",
                    )

                engine.schedule_at(arrival, deliver, label=f"arrive I{j}/P{u} d{d}")

        for d in range(n_datasets):
            engine.schedule_at(
                entry[d],
                lambda j=0, d=d: stage_input(j, d, engine.now),
                label=f"inject d{d}",
            )
        engine.run()
        return SimulationRun(
            n_datasets=n_datasets,
            period=period,
            completion_times=completion,
            entry_times=entry,
            stage_losses=stage_losses,
            events_processed=engine.processed,
        )
