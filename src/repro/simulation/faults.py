"""Transient-fault injectors (the Shatz-Wang failure model, Section 2.4).

Failures are transient and "hot": a fault corrupts only the operation
executing on the faulty component when it strikes; subsequent
operations are unaffected.  Fault arrivals on each component follow a
Poisson process with constant rate ``lambda``, independent across
components.  Consequently an operation of duration ``d`` succeeds iff
no arrival lands in its window — probability ``exp(-lambda d)``.

Two injectors realize this:

* :class:`BernoulliFaults` draws the success Bernoulli directly
  (probability ``exp(-lambda d)``);
* :class:`PoissonFaults` samples the first arrival time
  ``T ~ Exp(lambda)`` and declares failure iff ``T < d`` — the process
  view.  ``P(T >= d) = exp(-lambda d)``: the two are distributionally
  identical per operation, which ``tests/test_simulation.py`` verifies.

:class:`NoFaults` short-circuits everything for timing-only runs.
"""

from __future__ import annotations

import math
from typing import Protocol

import numpy as np

from repro.util.rng import ensure_rng

__all__ = ["FaultInjector", "BernoulliFaults", "PoissonFaults", "NoFaults"]


class FaultInjector(Protocol):
    """Decides the fate of one operation on one component."""

    def operation_succeeds(self, rate: float, duration: float) -> bool:
        """Sample whether an operation of *duration* on a component of
        failure rate *rate* completes without a fault."""
        ...


class BernoulliFaults:
    """Per-operation Bernoulli sampling with probability ``exp(-rate*d)``."""

    def __init__(self, rng: "int | None | np.random.Generator" = None) -> None:
        self._rng = ensure_rng(rng)

    def operation_succeeds(self, rate: float, duration: float) -> bool:
        if rate < 0 or duration < 0:
            raise ValueError("rate and duration must be >= 0")
        if rate == 0.0 or duration == 0.0:
            return True
        return bool(self._rng.random() < math.exp(-rate * duration))


class PoissonFaults:
    """Explicit first-arrival sampling: fail iff ``Exp(rate) < duration``."""

    def __init__(self, rng: "int | None | np.random.Generator" = None) -> None:
        self._rng = ensure_rng(rng)

    def operation_succeeds(self, rate: float, duration: float) -> bool:
        if rate < 0 or duration < 0:
            raise ValueError("rate and duration must be >= 0")
        if rate == 0.0 or duration == 0.0:
            return True
        first_arrival = self._rng.exponential(1.0 / rate)
        return bool(first_arrival >= duration)


class NoFaults:
    """Every operation succeeds — for pure timing studies."""

    def operation_succeeds(self, rate: float, duration: float) -> bool:  # noqa: ARG002
        return True
