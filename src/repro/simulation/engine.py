"""The generic discrete-event loop.

Minimal by design: a clock, a queue, and a run loop.  Domain behaviour
lives in the models that schedule events (:mod:`repro.simulation.pipeline`).
"""

from __future__ import annotations

import math
from typing import Callable

from repro.simulation.events import Event, EventQueue

__all__ = ["Engine"]


class Engine:
    """Discrete-event engine with a monotonically advancing clock."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(
        self,
        delay: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> None:
        """Schedule *action* to run *delay* time units from now."""
        if delay < 0:
            raise ValueError(f"delay must be >= 0, got {delay!r}")
        self._queue.push(Event(self._now + delay, action, priority, label))

    def schedule_at(
        self,
        time: float,
        action: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> None:
        """Schedule *action* at absolute *time* (must not be in the past)."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        self._queue.push(Event(time, action, priority, label))

    def run(self, until: float = math.inf, max_events: int = 50_000_000) -> None:
        """Execute events in order until the queue drains or *until*.

        ``max_events`` guards against runaway self-scheduling models.
        """
        while self._queue and self._queue.next_time <= until:
            event = self._queue.pop()
            self._now = event.time
            event.action()
            self._processed += 1
            if self._processed >= max_events:
                raise RuntimeError(f"exceeded {max_events} events; runaway model?")
