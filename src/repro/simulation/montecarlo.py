"""Monte Carlo aggregation: simulated vs analytical objectives.

Per-data-set successes are i.i.d. under the hot transient-fault model
(every operation's fate is an independent draw), so a single long run
yields a binomial reliability estimate directly comparable to Eq. (9),
with a Wilson interval for the comparison.

Timing notes: the simulated mean latency estimates ``EL`` (Eq. (5)) up
to a deviation of the order of the communication failure probability —
Eq. (3) conditions the forwarded replica on *computation* successes
only, while the simulator also requires the replica's outgoing
communication to succeed.  At the paper's failure rates the deviation
is far below statistical noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.evaluation import MappingEvaluation, evaluate_mapping
from repro.core.mapping import Mapping
from repro.rbd.montecarlo import wilson_interval
from repro.simulation.faults import BernoulliFaults, FaultInjector
from repro.simulation.pipeline import Accounting, PipelineSimulator, SimulationRun

__all__ = ["SimulationSummary", "simulate_mapping", "validate_against_analytical"]


@dataclass(frozen=True)
class SimulationSummary:
    """Aggregated simulation statistics next to the analytical values."""

    run: SimulationRun
    analytical: MappingEvaluation

    @property
    def simulated_reliability(self) -> float:
        return self.run.success_rate

    @property
    def reliability_interval(self) -> tuple[float, float]:
        return wilson_interval(self.run.n_completed, self.run.n_datasets)

    @property
    def reliability_consistent(self) -> bool:
        """Does Eq. (9) fall inside the Wilson interval of the run?"""
        lo, hi = self.reliability_interval
        return lo <= self.analytical.reliability <= hi

    @property
    def mean_latency(self) -> float:
        lats = self.run.latencies
        return float(lats.mean()) if lats.size else float("nan")

    @property
    def max_latency(self) -> float:
        lats = self.run.latencies
        return float(lats.max()) if lats.size else float("nan")

    @property
    def observed_period(self) -> float:
        return self.run.observed_period


def simulate_mapping(
    mapping: Mapping,
    n_datasets: int = 1000,
    period: float | None = None,
    faults: FaultInjector | None = None,
    rng: "int | None | np.random.Generator" = None,
    accounting: Accounting = "analytical",
) -> SimulationSummary:
    """Run one pipelined simulation and pair it with the Section 4 values.

    Parameters
    ----------
    period:
        Injection period; defaults to the mapping's worst-case period
        (Eq. (8)) so the pipeline never congests.
    faults:
        Explicit injector; mutually exclusive with *rng* (which seeds a
        :class:`BernoulliFaults`).
    """
    if faults is not None and rng is not None:
        raise ValueError("pass either a fault injector or an rng seed, not both")
    analytical = evaluate_mapping(mapping)
    if period is None:
        period = analytical.worst_case_period
    injector = faults if faults is not None else BernoulliFaults(rng)
    sim = PipelineSimulator(mapping, faults=injector, accounting=accounting)
    run = sim.run(n_datasets=n_datasets, period=period)
    return SimulationSummary(run=run, analytical=analytical)


def validate_against_analytical(
    mapping: Mapping,
    n_datasets: int = 2000,
    rng: "int | None | np.random.Generator" = None,
    latency_tolerance: float = 0.05,
) -> dict:
    """End-to-end consistency report between simulation and Section 4.

    Returns a dict with the analytic values, the simulated estimates,
    and boolean verdicts:

    * ``reliability_ok`` — Eq. (9) within the Wilson interval;
    * ``latency_ok`` — mean simulated latency within
      ``latency_tolerance`` (relative) of ``EL``, and the maximum within
      ``WL`` plus tolerance (``WL`` is an almost-sure bound given
      success);
    * ``period_ok`` — observed steady-state period within tolerance of
      the injection period (the pipeline keeps up: Eq. (8) is a valid
      service bound).
    """
    summary = simulate_mapping(mapping, n_datasets=n_datasets, rng=rng)
    ana = summary.analytical
    rel_ok = summary.reliability_consistent
    lat = summary.mean_latency
    lat_ok = (
        math.isnan(lat)
        or (
            abs(lat - ana.expected_latency)
            <= latency_tolerance * max(ana.expected_latency, 1e-12)
            and summary.max_latency
            <= ana.worst_case_latency * (1 + latency_tolerance) + 1e-9
        )
    )
    obs_p = summary.observed_period
    per_ok = math.isnan(obs_p) or abs(obs_p - summary.run.period) <= (
        latency_tolerance * summary.run.period
    )
    return {
        "analytical_reliability": ana.reliability,
        "analytical_log_reliability": ana.log_reliability,
        "simulated_reliability": summary.simulated_reliability,
        "reliability_interval": summary.reliability_interval,
        "analytical_expected_latency": ana.expected_latency,
        "analytical_worst_case_latency": ana.worst_case_latency,
        "simulated_mean_latency": lat,
        "simulated_max_latency": summary.max_latency,
        "injection_period": summary.run.period,
        "observed_period": obs_p,
        "reliability_ok": rel_ok,
        "latency_ok": lat_ok,
        "period_ok": per_ok,
        "all_ok": rel_ok and lat_ok and per_ok,
    }
