"""TEL rules: kernels stay free of telemetry and I/O.

The batched kernels (:mod:`repro.algorithms.batch`) and the
log-reliability primitives (:mod:`repro.util.logrel`) are the two
innermost layers of every sweep: the kernels run once per
(method, ensemble) group but loop over all rows internally, and the
logrel functions are mapped over whole arrays element by element.
PR 7's telemetry overhead gate (<= 5% on a warm sweep) only holds
because neither layer emits spans or counters from inside its loops —
and the batch bit-identity contract only holds because neither
performs I/O.

``TEL001``
    An ``obs.span`` / ``obs.counter`` call inside a loop body of a
    kernel module.  Aggregate outside the loop and emit once — the
    harness already attributes per-unit costs.
``TEL002``
    File or console I/O in a kernel module (anywhere, not just in
    loops): kernels are pure array transforms.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, SourceFile, register_rules

__all__ = ["KERNEL_MODULES", "RULES", "check"]

RULES = {
    "TEL001": "telemetry call inside a kernel inner loop",
    "TEL002": "file or console I/O inside a kernel module",
}
register_rules(RULES)

#: The hot-path modules the telemetry/I-O discipline covers.
KERNEL_MODULES = (
    "repro.algorithms.batch",
    "repro.algorithms.batch_dp",
    "repro.algorithms.batch_search",
    "repro.util.logrel",
)

_IO_EXACT = {
    "open", "io.open", "os.open", "os.fdopen", "print", "input",
    "os.replace", "os.remove", "os.unlink", "os.mkdir", "os.makedirs",
    "json.dump",
}
_IO_PREFIXES = ("shutil.", "tempfile.")
_IO_ATTRS = {"write_text", "write_bytes", "read_text", "read_bytes"}


def check(files: "list[SourceFile]") -> Iterable[Finding]:
    for src in files:
        if src.module not in KERNEL_MODULES:
            continue
        for node in ast.walk(src.tree):
            if isinstance(node, (ast.For, ast.While)):
                yield from _telemetry_in_loop(src, node)
        for node in ast.walk(src.tree):
            if isinstance(node, ast.Call):
                message = _io_message(node, src)
                if message:
                    yield src.finding(node, "TEL002", message)


def _telemetry_in_loop(
    src: SourceFile, loop: "ast.For | ast.While"
) -> Iterable[Finding]:
    for body in (loop.body, loop.orelse):
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and _is_telemetry(node, src):
                    yield src.finding(
                        node, "TEL001",
                        "span/counter emitted inside a kernel loop; "
                        "aggregate and emit once outside the loop "
                        "(the <=5% telemetry overhead gate assumes this)",
                    )


def _is_telemetry(node: ast.Call, src: SourceFile) -> bool:
    callee = src.imports.resolve_call(node)
    if not callee:
        return False
    parts = callee.split(".")
    if parts[-1] not in ("span", "counter"):
        return False
    return callee.startswith("repro.obs") or "obs" in parts or "telemetry" in parts


def _io_message(node: ast.Call, src: SourceFile) -> "str | None":
    callee = src.imports.resolve_call(node)
    if callee and (
        callee in _IO_EXACT or callee.startswith(_IO_PREFIXES)
    ):
        return f"call to {callee}() performs I/O inside a kernel module"
    if isinstance(node.func, ast.Attribute) and node.func.attr in _IO_ATTRS:
        return (
            f".{node.func.attr}() performs file I/O inside a kernel module"
        )
    return None
