"""repro.analysis — AST-level invariant checkers for the repo's own
contracts (``repro lint``).

The reproduction's guarantees — bit-identical batched kernels,
content-hash cache keys that move when behavior moves, byte-identical
run-ledger artifacts — were until now enforced only dynamically, by
tests that must think to exercise the right path.  This package is the
static layer: a custom lint pass over the source tree whose rules
encode the repo's *own* invariants, run on every commit (the
``lint-invariants`` CI job) before any test does.

Checkers and their rules
------------------------
* :mod:`~repro.analysis.determinism` — ``DET001``-``DET004``: solver
  and kernel modules may not read clocks, unseeded randomness, or the
  environment, nor iterate bare sets;
* :mod:`~repro.analysis.cachekeys` — ``KEY001``-``KEY003``: every
  Problem field the solve path reads must be covered by a cache-key
  ingredient in ``ResultCache.unit_key_for`` (and the method
  fingerprint, batched kernel included, must stay an ingredient);
* :mod:`~repro.analysis.atomicwrite` — ``IO001``-``IO002``: artifact
  layers write only through the sanctioned atomic idioms — mkstemp +
  ``os.replace`` for files, ``BEGIN IMMEDIATE`` transactions for the
  SQLite cache backend;
* :mod:`~repro.analysis.registry` — ``REG001``-``REG003``:
  ``register_method`` call sites declare valid objectives, consistent
  seeding, and no silent name collisions;
* :mod:`~repro.analysis.telemetry` — ``TEL001``-``TEL002``: no
  telemetry in kernel inner loops, no I/O in kernels at all.

Waivers
-------
A finding is silenced inline with a justified waiver::

    t0 = time.perf_counter()  # repro-lint: disable=DET001 measures cost only

The justification is mandatory (``WAIVE001``) and the waiver must
suppress something (``WAIVE002``), so ``repro lint`` output plus the
waiver inventory is always a complete, honest record of where the
contracts bend.

Entry points: ``repro lint`` (CLI), :func:`run_lint` (library),
``tests/test_analysis.py`` (fixtures corpus under
``tests/lint_fixtures/``).
"""

from repro.analysis.core import (
    Finding,
    RULES,
    render_json,
    render_text,
    run_lint,
)

# Importing the checker modules registers their rules in the catalog.
from repro.analysis import (  # noqa: F401  (imported for registration)
    atomicwrite,
    cachekeys,
    determinism,
    registry,
    telemetry,
)

__all__ = [
    "Finding",
    "RULES",
    "render_json",
    "render_text",
    "run_lint",
]
