"""REG rules: ``register_method`` call sites must honor the registry
contract statically.

:func:`repro.experiments.methods.register_method` validates some of
its contract at import time, but several failure modes only surface
when the method is actually *run* — or never surface at all (a seeded
flag nobody passes a seed to, a silently re-registered name in code
that never executes in CI).  These rules move that validation to lint
time:

``REG001``
    Declared ``objectives`` must be a non-empty subset of
    :data:`repro.solve.OBJECTIVES` (the tuple is read from
    ``solve/problem.py`` in the linted file set, falling back to the
    published default).
``REG002``
    The ``seeded`` capability and the callable's signature must agree:
    ``seeded=True`` requires a ``seed`` parameter (the harness passes
    one), and a decorated callable with a ``seed`` parameter must
    declare ``seeded=True`` (otherwise the harness never seeds it and
    its default — usually ``None`` — silently yields fresh entropy
    per run).
``REG003``
    A method name registered twice without ``replace=True`` on the
    later site: at import time the second registration raises, but
    only on the import path that happens to load both modules.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, SourceFile, register_rules

__all__ = ["DEFAULT_OBJECTIVES", "RULES", "check"]

RULES = {
    "REG001": "register_method declares objectives outside repro.solve.OBJECTIVES",
    "REG002": "register_method seeded capability contradicts the callable's signature",
    "REG003": "duplicate method name registered without replace=True",
}
register_rules(RULES)

PROBLEM_MODULE = "repro.solve.problem"

#: Fallback when the linted file set does not include solve/problem.py.
DEFAULT_OBJECTIVES = ("reliability", "period", "latency", "energy")


def check(files: "list[SourceFile]") -> Iterable[Finding]:
    objectives = _extract_objectives(files)
    registrations: list[tuple[SourceFile, ast.Call, bool]] = []

    for src in files:
        decorator_ids: set[int] = set()
        for fn in ast.walk(src.tree):
            if isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for dec in fn.decorator_list:
                    if isinstance(dec, ast.Call) and _is_register(dec, src):
                        decorator_ids.add(id(dec))
                        registrations.append((src, dec, True))
                        yield from _check_seeded(src, dec, fn)
        for node in ast.walk(src.tree):
            if (
                isinstance(node, ast.Call)
                and id(node) not in decorator_ids
                and _is_register(node, src)
            ):
                registrations.append((src, node, False))

    for src, call, _ in registrations:
        yield from _check_objectives(src, call, objectives)

    yield from _check_duplicates(registrations)


def _is_register(node: ast.Call, src: SourceFile) -> bool:
    callee = src.imports.resolve_call(node)
    return bool(callee) and callee.split(".")[-1] == "register_method"


def _extract_objectives(files: "list[SourceFile]") -> tuple[str, ...]:
    for src in files:
        if src.module != PROBLEM_MODULE:
            continue
        for node in src.tree.body:
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and node.targets[0].id == "OBJECTIVES"
                and isinstance(node.value, (ast.Tuple, ast.List))
            ):
                values = [
                    e.value
                    for e in node.value.elts
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)
                ]
                if values:
                    return tuple(values)
    return DEFAULT_OBJECTIVES


def _kwarg(call: ast.Call, name: str) -> "ast.expr | None":
    for kw in call.keywords:
        if kw.arg == name:
            return kw.value
    return None


def _check_objectives(
    src: SourceFile, call: ast.Call, objectives: tuple[str, ...]
) -> Iterable[Finding]:
    value = _kwarg(call, "objectives")
    if value is None or not isinstance(value, (ast.Tuple, ast.List)):
        return  # default, or dynamically built — nothing to check statically
    declared = [
        e.value
        for e in value.elts
        if isinstance(e, ast.Constant) and isinstance(e.value, str)
    ]
    if not value.elts:
        yield src.finding(
            call, "REG001",
            "register_method declares an empty objectives tuple; a method "
            "must support at least one objective",
        )
        return
    unknown = [o for o in declared if o not in objectives]
    if unknown:
        yield src.finding(
            call, "REG001",
            f"register_method declares unknown objective(s) {unknown}; "
            f"repro.solve.OBJECTIVES = {list(objectives)}",
        )


def _check_seeded(
    src: SourceFile, call: ast.Call, fn: "ast.FunctionDef | ast.AsyncFunctionDef"
) -> Iterable[Finding]:
    value = _kwarg(call, "seeded")
    seeded = (
        value.value if isinstance(value, ast.Constant)
        and isinstance(value.value, bool) else None
    )
    if value is not None and seeded is None:
        return  # dynamic flag — nothing to check statically
    params = {
        a.arg for a in (*fn.args.posonlyargs, *fn.args.args, *fn.args.kwonlyargs)
    }
    has_seed = "seed" in params or fn.args.kwarg is not None
    if seeded and not has_seed:
        yield src.finding(
            call, "REG002",
            f"seeded=True but {fn.name}() takes no seed parameter; the "
            f"harness's per-unit seed would raise TypeError",
        )
    elif not seeded and "seed" in params:
        yield src.finding(
            call, "REG002",
            f"{fn.name}() takes a seed parameter but is not registered "
            f"seeded=True; the harness would never pass one and the "
            f"default would decide determinism silently",
        )


def _check_duplicates(
    registrations: "list[tuple[SourceFile, ast.Call, bool]]",
) -> Iterable[Finding]:
    seen: dict[str, tuple[str, int]] = {}
    ordered = sorted(
        registrations, key=lambda r: (r[0].display_path, r[1].lineno)
    )
    for src, call, _ in ordered:
        if not (call.args and isinstance(call.args[0], ast.Constant)):
            continue
        name = call.args[0].value
        if not isinstance(name, str):
            continue
        replace = _kwarg(call, "replace")
        replaces = isinstance(replace, ast.Constant) and replace.value is True
        if name in seen and not replaces:
            first_path, first_line = seen[name]
            yield src.finding(
                call, "REG003",
                f"method {name!r} already registered at "
                f"{first_path}:{first_line}; pass replace=True if the "
                f"override is intentional",
            )
        seen.setdefault(name, (src.display_path, call.lineno))
