"""Shared engine of the invariant checkers (:mod:`repro.analysis`).

The checkers in this package are *project linters*: AST passes that
encode repo-specific contracts (determinism of solver modules,
completeness of cache-key ingredients, atomic-write discipline, the
method-registry contract, telemetry discipline in kernels) that generic
tools like ruff cannot know about.  This module holds everything they
share:

* :class:`SourceFile` — a parsed file plus the *module identity* the
  scoping rules key on (``repro.algorithms.batch`` is a kernel module,
  ``repro.obs.ledger`` is an artifact module, ...).  Identity is
  normally derived from the package layout on disk; a fixture header
  comment (``# repro-lint-fixture: module=...``) overrides it so the
  test corpus under ``tests/lint_fixtures/`` can impersonate any
  module without living inside the package;
* :class:`ImportMap` — import-aware name resolution, so ``from time
  import perf_counter as pc; pc()`` is recognized as a clock read just
  like ``time.perf_counter()``;
* :class:`Finding` and the rule catalog (:data:`RULES`), text and JSON
  rendering (both deterministically sorted — two runs over the same
  tree produce byte-identical output);
* the waiver syntax: ``# repro-lint: disable=RULE[,RULE2] reason``.
  A waiver *requires* a justification (rule ``WAIVE001`` otherwise)
  and must actually suppress something (``WAIVE002`` otherwise), so
  the waiver inventory stays an honest record of known exceptions.

A waiver written on a code line covers findings reported on that line;
written on a line of its own it covers the next line (for calls too
long to share a line with a comment).
"""

from __future__ import annotations

import ast
import io
import json
import pathlib
import re
import tokenize
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

__all__ = [
    "Finding",
    "ImportMap",
    "RULES",
    "SourceFile",
    "dotted_name",
    "iter_python_files",
    "load_source_file",
    "render_json",
    "render_text",
    "run_lint",
]

#: Rule catalog: id -> one-line description.  Checker modules extend
#: this at import time via :func:`register_rules`; the engine's own
#: waiver rules live here.
RULES: dict[str, str] = {
    "WAIVE001": "malformed waiver: missing justification or unknown rule id",
    "WAIVE002": "unused waiver: the comment suppresses nothing on its target line",
}

_FIXTURE_RE = re.compile(r"^#\s*repro-lint-fixture:\s*module=([A-Za-z0-9_.]+)")
_WAIVER_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9,]+)\s*(.*)$")


def register_rules(rules: dict[str, str]) -> None:
    """Add a checker's rules to the catalog (duplicate ids rejected)."""
    for rule_id, description in rules.items():
        if rule_id in RULES:
            raise ValueError(f"duplicate lint rule id {rule_id!r}")
        RULES[rule_id] = description


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str


@dataclass(frozen=True)
class Waiver:
    """One parsed ``# repro-lint: disable=...`` comment."""

    line: int           # line the comment sits on
    target: int         # line whose findings it suppresses
    rules: tuple[str, ...]
    reason: str


class ImportMap:
    """Import-aware resolution of dotted names within one module.

    ``resolve("np.random.default_rng")`` returns
    ``"numpy.random.default_rng"`` given ``import numpy as np``;
    names with no import binding pass through unchanged (locals stay
    local, so ``rng.random()`` never matches the stdlib ``random``
    module).
    """

    def __init__(self, tree: ast.AST, module: str, is_package: bool = False) -> None:
        self.bindings: dict[str, str] = {}
        pkg_parts = module.split(".") if module else []
        if not is_package and pkg_parts:
            pkg_parts = pkg_parts[:-1]
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.bindings[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.bindings[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    # Relative import: anchor on the enclosing package.
                    keep = pkg_parts[: len(pkg_parts) - (node.level - 1)]
                    base = ".".join([*keep, base] if base else keep)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.bindings[local] = f"{base}.{alias.name}" if base else alias.name

    def resolve(self, dotted: "str | None") -> "str | None":
        if not dotted:
            return None
        head, _, rest = dotted.partition(".")
        full = self.bindings.get(head)
        if full is None:
            return dotted
        return f"{full}.{rest}" if rest else full

    def resolve_call(self, node: ast.Call) -> "str | None":
        """Resolved dotted name of a call's callee, or None (lambda,
        subscript, nested call, ...)."""
        return self.resolve(dotted_name(node.func))


def dotted_name(node: ast.AST) -> "str | None":
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@dataclass
class SourceFile:
    """One parsed source file plus its module identity and waivers."""

    path: pathlib.Path
    display_path: str
    module: str
    is_package: bool
    text: str
    tree: ast.Module
    imports: ImportMap = field(init=False)
    waivers: list[Waiver] = field(default_factory=list)
    waiver_findings: list[Finding] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.imports = ImportMap(self.tree, self.module, self.is_package)
        self._parse_waivers()

    def _parse_waivers(self) -> None:
        # Tokenize so only real comments count — the waiver syntax
        # quoted in a docstring or string literal is documentation.
        lines = self.text.splitlines()
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.text).readline))
        except (tokenize.TokenError, SyntaxError):  # pragma: no cover
            tokens = []
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _WAIVER_RE.search(tok.string)
            if match is None:
                continue
            lineno = tok.start[0]
            line = lines[lineno - 1] if lineno <= len(lines) else ""
            rules = tuple(r for r in match.group(1).split(",") if r)
            reason = match.group(2).strip()
            problems = []
            if not reason:
                problems.append("a waiver requires a justification after the rule id")
            unknown = [r for r in rules if r not in RULES or r.startswith("WAIVE")]
            if unknown:
                problems.append(f"unknown or unwaivable rule id(s): {', '.join(unknown)}")
            if problems:
                self.waiver_findings.append(
                    Finding(self.display_path, lineno, "WAIVE001", "; ".join(problems))
                )
                continue
            comment_only = line[: tok.start[1]].strip() == ""
            self.waivers.append(
                Waiver(
                    line=lineno,
                    target=lineno + 1 if comment_only else lineno,
                    rules=rules,
                    reason=reason,
                )
            )

    def finding(self, node: "ast.AST | int", rule: str, message: str) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 0)
        return Finding(self.display_path, line, rule, message)


def derive_module(path: pathlib.Path) -> tuple[str, bool]:
    """Infer a file's dotted module name from ``__init__.py`` nesting.

    Returns ``(module, is_package)``.  Files outside any package (e.g.
    fixtures, scripts) get their bare stem.
    """
    is_package = path.name == "__init__.py"
    parts = [] if is_package else [path.stem]
    parent = path.resolve().parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem, is_package


def load_source_file(
    path: "str | pathlib.Path", root: "pathlib.Path | None" = None
) -> SourceFile:
    """Parse one file into a :class:`SourceFile`.

    The display path is relative to *root* (or the working directory)
    when possible, so findings are stable across machines.  A fixture
    header in the first lines overrides the derived module identity.
    """
    path = pathlib.Path(path)
    text = path.read_text()
    tree = ast.parse(text, filename=str(path))
    module, is_package = derive_module(path)
    for line in text.splitlines()[:3]:
        match = _FIXTURE_RE.match(line)
        if match:
            module, is_package = match.group(1), False
            break
    base = root or pathlib.Path.cwd()
    try:
        display = path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        display = path.as_posix()
    return SourceFile(
        path=path,
        display_path=display,
        module=module,
        is_package=is_package,
        text=text,
        tree=tree,
    )


def iter_python_files(paths: Sequence["str | pathlib.Path"]) -> list[pathlib.Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: dict[pathlib.Path, None] = {}
    for entry in paths:
        entry = pathlib.Path(entry)
        if entry.is_dir():
            found = [
                p for p in entry.rglob("*.py") if "__pycache__" not in p.parts
            ]
        elif entry.is_file():
            found = [entry]
        else:
            raise FileNotFoundError(f"no such file or directory: {entry}")
        for p in sorted(found):
            seen.setdefault(p.resolve(), None)
    return list(seen)


# -- running ---------------------------------------------------------------


def checkers() -> "list[Callable[[list[SourceFile]], Iterable[Finding]]]":
    """The five invariant checkers, in catalog order.

    Imported lazily so the checker modules can call
    :func:`register_rules` against this module without a cycle.
    """
    from repro.analysis import atomicwrite, cachekeys, determinism, registry, telemetry

    return [
        determinism.check,
        cachekeys.check,
        atomicwrite.check,
        registry.check,
        telemetry.check,
    ]


def run_lint(
    paths: Sequence["str | pathlib.Path"],
    rules: "Sequence[str] | None" = None,
    root: "pathlib.Path | None" = None,
) -> list[Finding]:
    """Lint *paths* and return the surviving findings, sorted.

    Waivers are applied before the optional *rules* subset filter;
    the waiver-audit rules (``WAIVE001`` malformed, ``WAIVE002``
    unused) only fire on a full run — a subset run cannot tell a
    genuinely unused waiver from one whose rule was filtered out.
    """
    # Resolve the checkers first: importing them fills the rule catalog
    # the waiver parser validates ids against.
    checks = checkers()
    files = [load_source_file(p, root=root) for p in iter_python_files(paths)]
    raw: list[Finding] = []
    for check in checks:
        raw.extend(check(files))

    findings: list[Finding] = []
    used: set[tuple[str, int]] = set()  # (display_path, waiver line)
    waivers_by_file = {
        f.display_path: {
            (w.target, rule): w for w in f.waivers for rule in w.rules
        }
        for f in files
    }
    for finding in raw:
        waiver = waivers_by_file.get(finding.path, {}).get(
            (finding.line, finding.rule)
        )
        if waiver is not None:
            used.add((finding.path, waiver.line))
        else:
            findings.append(finding)

    full_run = rules is None
    if full_run:
        for f in files:
            findings.extend(f.waiver_findings)
            for waiver in f.waivers:
                if (f.display_path, waiver.line) not in used:
                    findings.append(
                        Finding(
                            f.display_path,
                            waiver.line,
                            "WAIVE002",
                            f"waiver for {','.join(waiver.rules)} suppresses "
                            f"nothing on line {waiver.target}",
                        )
                    )
    else:
        wanted = set(rules)
        unknown = wanted - set(RULES)
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {sorted(unknown)}; known: {sorted(RULES)}"
            )
        findings = [f for f in findings if f.rule in wanted]
    return sorted(findings)


# -- rendering -------------------------------------------------------------


def render_text(findings: Sequence[Finding]) -> str:
    """Human-readable report, one line per finding plus a summary."""
    lines = [
        f"{f.path}:{f.line}: {f.rule} {f.message}" for f in sorted(findings)
    ]
    if findings:
        by_rule: dict[str, int] = {}
        for f in findings:
            by_rule[f.rule] = by_rule.get(f.rule, 0) + 1
        summary = ", ".join(f"{rule} x{n}" for rule, n in sorted(by_rule.items()))
        lines.append(f"{len(findings)} finding(s): {summary}")
    else:
        lines.append("no findings")
    return "\n".join(lines) + "\n"


def render_json(findings: Sequence[Finding]) -> str:
    """Deterministic machine-readable report (sorted keys + findings).

    Byte-identical across reruns over the same tree — the CI artifact
    can be diffed between commits.
    """
    payload = {
        "schema": 1,
        "counts": _counts(findings),
        "findings": [
            {"path": f.path, "line": f.line, "rule": f.rule, "message": f.message}
            for f in sorted(findings)
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def _counts(findings: Sequence[Finding]) -> dict[str, int]:
    out: dict[str, int] = {}
    for f in findings:
        out[f.rule] = out.get(f.rule, 0) + 1
    return out
