"""DET rules: solver and kernel modules must be pure functions of
their inputs.

Every reproducibility guarantee downstream — bit-identical batched
kernels, content-hash cache keys, byte-identical run-ledger artifacts —
assumes the solve path computes the same answer for the same
:class:`~repro.solve.Problem` every time, on every machine.  These
rules ban the ambient-state reads that silently break that assumption
inside the solver scope (:data:`SCOPE`):

``DET001``
    Wall-clock reads (``time.*``, ``datetime.now`` and friends).
    Timing belongs in the harness/obs layer, which sits outside the
    cache-key boundary.
``DET002``
    Unseeded or global-state randomness: the stdlib ``random`` module
    (process-global generator), NumPy's legacy ``np.random.*``
    functions (global state), zero-argument ``default_rng()`` /
    ``SeedSequence()`` (OS entropy), ``os.urandom``, ``secrets``,
    ``uuid.uuid1/uuid4``.  All randomness must flow through an
    explicit, caller-seeded generator (:mod:`repro.util.rng`).
``DET003``
    Environment reads (``os.environ`` / ``os.getenv``): configuration
    belongs to the experiment layer, where it is recorded in run
    manifests — a solver whose answer depends on an env var poisons
    the cache, whose keys never see the variable.
``DET004``
    Iterating a bare ``set``/``frozenset`` literal, constructor call,
    or comprehension: set order is insertion/hash dependent, so any
    result influenced by the iteration order is not stable across
    processes.  Iterate ``sorted(...)`` instead.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, SourceFile, dotted_name, register_rules

__all__ = ["RULES", "SCOPE", "check"]

RULES = {
    "DET001": "wall-clock read in a solver/kernel module",
    "DET002": "unseeded or global-state randomness in a solver/kernel module",
    "DET003": "environment read in a solver/kernel module",
    "DET004": "iteration over an unordered set in a solver/kernel module",
}
register_rules(RULES)

#: Module prefixes the determinism contract covers: everything on the
#: solve path, i.e. everything a cache key vouches for.
SCOPE = (
    "repro.algorithms",
    "repro.solve",
    "repro.rbd",
    "repro.util",
    "repro.extensions",
    "repro.simulation",
)

_CLOCKS = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "time.strftime", "time.gmtime", "time.localtime",
    "time.ctime", "time.asctime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

_ENTROPY = {"os.urandom", "uuid.uuid1", "uuid.uuid4"}

#: numpy.random attributes that are seeded-by-construction classes or
#: submodules, not legacy global-state functions.
_NUMPY_RANDOM_OK = {
    "Generator", "BitGenerator", "PCG64", "PCG64DXSM", "MT19937",
    "Philox", "SFC64", "RandomState",
}


def in_scope(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".") for prefix in SCOPE
    )


def check(files: "list[SourceFile]") -> Iterable[Finding]:
    for src in files:
        if not in_scope(src.module):
            continue
        yield from _check_file(src)


def _check_file(src: SourceFile) -> Iterable[Finding]:
    for node in ast.walk(src.tree):
        if isinstance(node, ast.Call):
            name = src.imports.resolve_call(node)
            if name is None:
                continue
            if name in _CLOCKS:
                yield src.finding(
                    node, "DET001",
                    f"call to {name}() reads the wall clock; pass timestamps "
                    f"in from the harness/obs layer",
                )
            else:
                message = _entropy_message(name, node)
                if message:
                    yield src.finding(node, "DET002", message)
                elif name == "os.getenv":
                    yield src.finding(
                        node, "DET003",
                        "os.getenv() read; thread configuration through "
                        "explicit arguments so cache keys see it",
                    )
        elif isinstance(node, ast.Attribute):
            if src.imports.resolve(dotted_name(node)) == "os.environ":
                yield src.finding(
                    node, "DET003",
                    "os.environ read; thread configuration through explicit "
                    "arguments so cache keys see it",
                )
        elif isinstance(node, (ast.For, ast.comprehension)):
            target = node.iter
            if _is_bare_set(target, src):
                line = getattr(target, "lineno", getattr(node, "lineno", 0))
                yield src.finding(
                    line, "DET004",
                    "iterating an unordered set; wrap in sorted(...) so the "
                    "order cannot leak into results",
                )


def _entropy_message(name: str, node: ast.Call) -> "str | None":
    has_args = bool(node.args or node.keywords)
    if name in _ENTROPY or name.startswith("secrets."):
        return f"call to {name}() draws OS entropy"
    if name == "random" or name.startswith("random."):
        if name == "random.Random" and has_args:
            return None  # explicitly seeded instance
        return (
            f"call to {name}() uses the process-global stdlib generator; "
            f"use a seeded numpy Generator (repro.util.rng.ensure_rng)"
        )
    if name.startswith("numpy.random."):
        member = name.removeprefix("numpy.random.")
        if member in ("default_rng", "SeedSequence"):
            if not has_args:
                return f"{member}() without a seed draws OS entropy"
            return None
        if member not in _NUMPY_RANDOM_OK and "." not in member:
            return (
                f"call to {name}() mutates/reads numpy's global RNG state; "
                f"use a seeded Generator instead"
            )
    return None


def _is_bare_set(node: ast.AST, src: SourceFile) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return src.imports.resolve_call(node) in ("set", "frozenset")
    return False
