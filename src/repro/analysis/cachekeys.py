"""KEY rules: every Problem field a solver reads must be a cache-key
ingredient.

The result cache (:mod:`repro.experiments.cache`) promises that a key
moves whenever behavior moves.  That promise has two halves, and this
checker cross-references them statically:

* the **ingredient side** — the ``ingredients`` dict literal inside
  :meth:`ResultCache.unit_key_for`, plus the positional
  ``content_hash`` arguments (the instance digest covers
  chain/platform columns, the bound tokens cover the per-point
  bounds);
* the **consumption side** — every attribute read on a ``problem`` /
  ``prob`` parameter inside the solve-path modules (``algorithms/``,
  ``extensions/``, ``solve/``, the method registry).

``KEY001``
    A solve path reads a :class:`~repro.solve.Problem` field that no
    cache-key ingredient covers — two problems differing only in that
    field would collide on one cache entry.  Deleting an ingredient
    from ``unit_key_for`` (say the ``"objective"`` field) makes every
    read of the now-uncovered field light up.
``KEY002``
    A fingerprint ingredient went missing: ``unit_key_for`` /
    ``probe_key_for`` no longer hash the method ``fingerprint``, or
    :meth:`Method.fingerprint` no longer visits ``solve_batch`` (the
    batched kernel is part of the implementation a key vouches for —
    PR 6's contract).
``KEY003``
    The ingredient model could not be extracted (the ``ingredients``
    dict or ``unit_key_for`` vanished or changed shape) — the checker
    fails loudly rather than silently checking nothing.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, SourceFile, register_rules

__all__ = ["CACHE_MODULE", "FIELD_COVERAGE", "RULES", "SOLVE_SCOPE", "check"]

RULES = {
    "KEY001": "Problem field read on the solve path but absent from the cache key",
    "KEY002": "method-fingerprint ingredient missing from the cache-key model",
    "KEY003": "cache-key ingredient model not extractable from the cache module",
}
register_rules(RULES)

CACHE_MODULE = "repro.experiments.cache"
METHODS_MODULE = "repro.experiments.methods"

#: Module prefixes whose ``problem``-parameter attribute reads are
#: checked against the key ingredients.
SOLVE_SCOPE = (
    "repro.algorithms",
    "repro.extensions",
    "repro.solve",
    METHODS_MODULE,
)

#: Problem field -> the key ingredient that covers it.  ``digest:``
#: prefixed entries are covered by hashing the instance digest (the
#: chain/platform columns), ``bounds:`` by the per-point bound tokens;
#: bare names must appear as keys of the ``ingredients`` dict literal.
FIELD_COVERAGE = {
    "chain": "digest:base_digest",
    "platform": "digest:base_digest",
    "n_tasks": "digest:base_digest",
    "max_period": "bounds:bounds",
    "max_latency": "bounds:bounds",
    "objective": "objective",
    "min_reliability": "min_reliability",
    "min_log_reliability": "min_reliability",
}


def check(files: "list[SourceFile]") -> Iterable[Finding]:
    # The Method.fingerprint half of the contract needs no cache
    # module, so it is checked whenever the registry module is linted.
    yield from _check_method_fingerprint(files)

    cache_files = [f for f in files if f.module == CACHE_MODULE]
    if not cache_files:
        return  # nothing to cross-reference against in this file set
    cache = cache_files[0]
    model, model_findings = _extract_key_model(cache)
    yield from model_findings
    if model is None:
        return

    ingredients, hashed_names = model
    for src in files:
        if not _in_solve_scope(src.module):
            continue
        for node, attr in _problem_reads(src):
            coverage = FIELD_COVERAGE.get(attr)
            if coverage is None:
                continue  # method call or derived helper, not a key field
            kind, _, name = coverage.partition(":")
            covered = (
                name in hashed_names if kind in ("digest", "bounds")
                else coverage in ingredients
            )
            if not covered:
                yield src.finding(
                    node, "KEY001",
                    f"solve path reads Problem.{attr} but "
                    f"{CACHE_MODULE}.ResultCache.unit_key_for has no "
                    f"covering ingredient ({coverage!r}); two problems "
                    f"differing only in {attr} would share a cache entry",
                )

    yield from _check_fingerprint_ingredient(cache)


def _in_solve_scope(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in SOLVE_SCOPE
    )


# -- ingredient side -------------------------------------------------------


def _extract_key_model(
    cache: SourceFile,
) -> "tuple[tuple[set[str], set[str]] | None, list[Finding]]":
    """Pull (ingredient dict keys, names hashed positionally) out of
    ``ResultCache.unit_key_for``."""
    fn = _find_method(cache.tree, "ResultCache", "unit_key_for")
    if fn is None:
        return None, [
            cache.finding(
                1, "KEY003",
                "ResultCache.unit_key_for not found; the cache-key "
                "completeness check has nothing to verify against",
            )
        ]
    ingredients: "set[str] | None" = None
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "ingredients"
            and isinstance(node.value, ast.Dict)
        ):
            ingredients = {
                key.value
                for key in node.value.keys
                if isinstance(key, ast.Constant) and isinstance(key.value, str)
            }
    if ingredients is None:
        return None, [
            cache.finding(
                fn.lineno, "KEY003",
                "no `ingredients = {...}` dict literal in unit_key_for; "
                "cannot enumerate cache-key ingredients",
            )
        ]
    # Ingredients can also be added via subscript assignment
    # (`ingredients["scenario"] = ...`).
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Subscript)
            and isinstance(node.targets[0].value, ast.Name)
            and node.targets[0].value.id == "ingredients"
            and isinstance(node.targets[0].slice, ast.Constant)
        ):
            ingredients.add(node.targets[0].slice.value)

    hashed_names: set[str] = set()
    for node in ast.walk(fn):
        if isinstance(node, ast.Call):
            callee = cache.imports.resolve_call(node)
            if callee and callee.split(".")[-1] == "content_hash":
                for arg in node.args:
                    for sub in ast.walk(arg):
                        if isinstance(sub, ast.Name) and isinstance(
                            sub.ctx, ast.Load
                        ):
                            hashed_names.add(sub.id)
    if not hashed_names:
        return None, [
            cache.finding(
                fn.lineno, "KEY003",
                "unit_key_for never calls content_hash; cannot see what "
                "the key is derived from",
            )
        ]
    return (ingredients, hashed_names), []


def _find_method(
    tree: ast.Module, class_name: str, method: str
) -> "ast.FunctionDef | None":
    for node in tree.body:
        if isinstance(node, ast.ClassDef) and node.name == class_name:
            for item in node.body:
                if isinstance(item, ast.FunctionDef) and item.name == method:
                    return item
    return None


# -- consumption side ------------------------------------------------------


def _problem_reads(src: SourceFile) -> Iterable[tuple[ast.Attribute, str]]:
    """Attribute loads on parameters named ``problem``/``prob`` inside
    any function of *src*."""
    for fn in ast.walk(src.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        args = fn.args
        params = {
            a.arg
            for a in (
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *( [args.vararg] if args.vararg else [] ),
                *( [args.kwarg] if args.kwarg else [] ),
            )
        }
        names = params & {"problem", "prob"}
        if not names:
            continue
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in names
                and isinstance(node.ctx, ast.Load)
            ):
                yield node, node.attr


# -- fingerprint contract --------------------------------------------------


def _check_fingerprint_ingredient(cache: SourceFile) -> Iterable[Finding]:
    for key_fn in ("unit_key_for", "probe_key_for"):
        fn = _find_method(cache.tree, "ResultCache", key_fn)
        if fn is None:
            continue
        mentions = {
            key.value
            for node in ast.walk(fn)
            if isinstance(node, ast.Dict)
            for key in node.keys
            if isinstance(key, ast.Constant)
        }
        if "fingerprint" not in mentions:
            yield cache.finding(
                fn.lineno, "KEY002",
                f"{key_fn} does not include the method fingerprint "
                f"ingredient; edited solver code would replay stale entries",
            )


def _check_method_fingerprint(files: "list[SourceFile]") -> Iterable[Finding]:
    for src in files:
        if src.module != METHODS_MODULE:
            continue
        fingerprint = _find_method(src.tree, "Method", "fingerprint")
        if fingerprint is None:
            continue
        visits_batch = any(
            isinstance(node, ast.Attribute) and node.attr == "solve_batch"
            for node in ast.walk(fingerprint)
        )
        if not visits_batch:
            yield src.finding(
                fingerprint.lineno, "KEY002",
                "Method.fingerprint does not visit solve_batch; editing a "
                "batched kernel would leave cache keys unchanged",
            )
