"""IO rules: artifact layers never write files non-atomically.

The run ledger's contract (:mod:`repro.obs.ledger`) is that readers
observe either a complete artifact or none — interrupted writes leave
no half-runs.  The cache makes the same promise for entries shared by
concurrent sweeps.  That only holds if *every* write in the artifact
layers goes through a sanctioned atomic idiom.  Two are recognized:
the filesystem one (mkstemp + ``os.replace``) and, since the cache
grew a SQLite backend, the transactional one (``BEGIN IMMEDIATE`` +
commit) — a mutation inside an immediate transaction is the database
equivalent of a rename, so readers observe entries fully or not at
all.

``IO001``
    A raw file write (``open(..., "w")``, ``Path.write_text`` /
    ``write_bytes``, ``os.open``) inside the artifact scope
    (:data:`SCOPE`).  Route it through
    :func:`repro.obs.ledger.write_atomic` — or, if the function is
    itself an atomic-write helper, make that visible by calling
    ``tempfile.mkstemp`` and ``os.replace`` in its body (such
    functions are exempt).
``IO002``
    A SQL mutation (an ``execute()`` of a constant ``INSERT`` /
    ``REPLACE`` / ``UPDATE`` / ``DELETE`` statement) inside the
    artifact scope, outside a function that opens an explicit
    transaction (an ``execute("BEGIN IMMEDIATE")`` in its body).
    Autocommit writes give concurrent readers torn multi-statement
    updates and give an interrupted writer no rollback point — wrap
    the mutation in ``BEGIN IMMEDIATE`` ... ``COMMIT``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, SourceFile, register_rules

__all__ = ["RULES", "SCOPE", "check"]

RULES = {
    "IO001": "non-atomic file write in an artifact-producing module",
    "IO002": "SQL mutation outside an explicit transaction in an "
    "artifact-producing module",
}
register_rules(RULES)

#: Module prefixes holding artifact writers: the run ledger, the result
#: cache and the rest of the experiment layer, and the CLI (manifests).
SCOPE = ("repro.obs", "repro.experiments", "repro.cli")

_WRITE_ATTRS = {"write_text", "write_bytes"}


def in_scope(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".") for prefix in SCOPE
    )


def check(files: "list[SourceFile]") -> Iterable[Finding]:
    for src in files:
        if not in_scope(src.module):
            continue
        exempt = _atomic_helper_spans(src)
        transactional = _transactional_spans(src)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            if not any(start <= node.lineno <= end for start, end in exempt):
                message = _write_message(node, src)
                if message:
                    yield src.finding(node, "IO001", message)
            statement = _sql_mutation(node)
            if statement and not any(
                start <= node.lineno <= end for start, end in transactional
            ):
                yield src.finding(
                    node,
                    "IO002",
                    f"autocommit {statement} in an artifact module; wrap the "
                    f"mutation in an execute(\"BEGIN IMMEDIATE\") ... COMMIT "
                    f"transaction so readers never observe it torn",
                )


def _atomic_helper_spans(src: SourceFile) -> list[tuple[int, int]]:
    """Line spans of functions that *are* the atomic-write idiom
    (they call both tempfile.mkstemp and os.replace)."""
    spans = []
    for fn in ast.walk(src.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        callees = {
            src.imports.resolve_call(node)
            for node in ast.walk(fn)
            if isinstance(node, ast.Call)
        }
        if "tempfile.mkstemp" in callees and "os.replace" in callees:
            spans.append((fn.lineno, fn.end_lineno or fn.lineno))
    return spans


#: SQL verbs that mutate rows — what IO002 demands a transaction around.
_SQL_MUTATIONS = ("INSERT", "REPLACE", "UPDATE", "DELETE")


def _sql_statement(node: ast.Call) -> "str | None":
    """The constant SQL text of an ``execute``-family call, else None."""
    if not (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in ("execute", "executemany", "executescript")
    ):
        return None
    if not (node.args and isinstance(node.args[0], ast.Constant)):
        return None
    sql = node.args[0].value
    return sql if isinstance(sql, str) else None


def _sql_mutation(node: ast.Call) -> "str | None":
    """The leading SQL verb when *node* executes a constant mutation."""
    sql = _sql_statement(node)
    if sql is None:
        return None
    verb = sql.lstrip().split(" ", 1)[0].upper()
    return verb if verb in _SQL_MUTATIONS else None


def _transactional_spans(src: SourceFile) -> list[tuple[int, int]]:
    """Line spans of functions that *are* the transactional-write idiom
    (they open an explicit ``BEGIN`` transaction, e.g. BEGIN IMMEDIATE,
    so every mutation inside commits or rolls back atomically)."""
    spans = []
    for fn in ast.walk(src.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            sql = _sql_statement(node)
            if sql is not None and sql.lstrip().upper().startswith("BEGIN"):
                spans.append((fn.lineno, fn.end_lineno or fn.lineno))
                break
    return spans


def _write_message(node: ast.Call, src: SourceFile) -> "str | None":
    callee = src.imports.resolve_call(node)
    if callee in ("open", "io.open"):
        mode = None
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
            mode = node.args[1].value
        for kw in node.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                mode = kw.value.value
        if isinstance(mode, str) and any(c in mode for c in "wax+"):
            return (
                f"open(..., {mode!r}) writes in place; readers can observe "
                f"a partial file — use repro.obs.ledger.write_atomic"
            )
        return None
    if callee == "os.open":
        return (
            "os.open() in an artifact module; use the mkstemp + os.replace "
            "idiom (repro.obs.ledger.write_atomic)"
        )
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in _WRITE_ATTRS
    ):
        return (
            f".{node.func.attr}() writes in place; readers can observe a "
            f"partial file — use repro.obs.ledger.write_atomic"
        )
    return None
