"""IO rules: artifact layers never write files non-atomically.

The run ledger's contract (:mod:`repro.obs.ledger`) is that readers
observe either a complete artifact or none — interrupted writes leave
no half-runs.  The cache makes the same promise for entries shared by
concurrent sweeps.  That only holds if *every* write in the artifact
layers goes through the mkstemp + ``os.replace`` idiom.

``IO001``
    A raw file write (``open(..., "w")``, ``Path.write_text`` /
    ``write_bytes``, ``os.open``) inside the artifact scope
    (:data:`SCOPE`).  Route it through
    :func:`repro.obs.ledger.write_atomic` — or, if the function is
    itself an atomic-write helper, make that visible by calling
    ``tempfile.mkstemp`` and ``os.replace`` in its body (such
    functions are exempt).
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.core import Finding, SourceFile, register_rules

__all__ = ["RULES", "SCOPE", "check"]

RULES = {
    "IO001": "non-atomic file write in an artifact-producing module",
}
register_rules(RULES)

#: Module prefixes holding artifact writers: the run ledger, the result
#: cache and the rest of the experiment layer, and the CLI (manifests).
SCOPE = ("repro.obs", "repro.experiments", "repro.cli")

_WRITE_ATTRS = {"write_text", "write_bytes"}


def in_scope(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".") for prefix in SCOPE
    )


def check(files: "list[SourceFile]") -> Iterable[Finding]:
    for src in files:
        if not in_scope(src.module):
            continue
        exempt = _atomic_helper_spans(src)
        for node in ast.walk(src.tree):
            if not isinstance(node, ast.Call):
                continue
            if any(start <= node.lineno <= end for start, end in exempt):
                continue
            message = _write_message(node, src)
            if message:
                yield src.finding(node, "IO001", message)


def _atomic_helper_spans(src: SourceFile) -> list[tuple[int, int]]:
    """Line spans of functions that *are* the atomic-write idiom
    (they call both tempfile.mkstemp and os.replace)."""
    spans = []
    for fn in ast.walk(src.tree):
        if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        callees = {
            src.imports.resolve_call(node)
            for node in ast.walk(fn)
            if isinstance(node, ast.Call)
        }
        if "tempfile.mkstemp" in callees and "os.replace" in callees:
            spans.append((fn.lineno, fn.end_lineno or fn.lineno))
    return spans


def _write_message(node: ast.Call, src: SourceFile) -> "str | None":
    callee = src.imports.resolve_call(node)
    if callee in ("open", "io.open"):
        mode = None
        if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
            mode = node.args[1].value
        for kw in node.keywords:
            if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
                mode = kw.value.value
        if isinstance(mode, str) and any(c in mode for c in "wax+"):
            return (
                f"open(..., {mode!r}) writes in place; readers can observe "
                f"a partial file — use repro.obs.ledger.write_atomic"
            )
        return None
    if callee == "os.open":
        return (
            "os.open() in an artifact module; use the mkstemp + os.replace "
            "idiom (repro.obs.ledger.write_atomic)"
        )
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in _WRITE_ATTRS
    ):
        return (
            f".{node.func.attr}() writes in place; readers can observe a "
            f"partial file — use repro.obs.ledger.write_atomic"
        )
    return None
