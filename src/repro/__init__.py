"""repro — reproduction of *Reliability and Performance Optimization of
Pipelined Real-Time Systems* (Benoit, Dufossé, Girault, Robert;
ICPP 2010 / JPDC 2013).

A pipelined real-time system is a linear chain of tasks executed
repeatedly over a stream of data sets on a distributed platform whose
processors and links suffer transient failures.  The library implements
the paper's models, all of its algorithms (optimal dynamic programs,
the optimal greedy allocation, the integer linear program, and the
Heur-L / Heur-P heuristics), the substrates they rely on (reliability
block diagrams, a MILP solver layer, a discrete-event fault-injection
simulator), the NP-completeness reduction constructions, and the full
experimental harness regenerating Figures 6-15.

Quickstart
----------
>>> from repro import TaskChain, Platform, heuristic_best
>>> chain = TaskChain(work=[10, 20, 15], output=[2, 3, 0])
>>> plat = Platform.homogeneous_platform(
...     4, speed=1.0, failure_rate=1e-8, link_failure_rate=1e-5,
...     max_replication=2)
>>> result = heuristic_best(chain, plat, max_period=30.0, max_latency=60.0)
>>> result.feasible
True
"""

from repro.core import (
    Interval,
    Mapping,
    MappingEvaluation,
    Platform,
    TaskChain,
    evaluate_mapping,
    random_chain,
    random_platform,
)
from repro.algorithms import (
    algo_alloc,
    algo_alloc_het,
    brute_force_best,
    heur_l_intervals,
    heur_p_intervals,
    heuristic_best,
    optimize_reliability,
    optimize_reliability_period,
    optimize_period_reliability,
    pareto_dp_best,
    ilp_best,
)
# Problem is re-exported at top level; the solve() facade stays at
# repro.solve.solve so the name `repro.solve` keeps meaning the package
# (exporting the function here would shadow the submodule attribute).
from repro.solve import Problem

__version__ = "1.8.0"

__all__ = [
    "TaskChain",
    "Platform",
    "Interval",
    "Mapping",
    "MappingEvaluation",
    "evaluate_mapping",
    "random_chain",
    "random_platform",
    "optimize_reliability",
    "optimize_reliability_period",
    "optimize_period_reliability",
    "algo_alloc",
    "algo_alloc_het",
    "heur_l_intervals",
    "heur_p_intervals",
    "heuristic_best",
    "brute_force_best",
    "pareto_dp_best",
    "ilp_best",
    "Problem",
    "__version__",
]
