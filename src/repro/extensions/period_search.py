"""Heterogeneous period minimization by binary search over heuristic solves.

Section 5.2's converse algorithm (``dp-period``) minimizes the period
exactly — but only on homogeneous platforms, where the reliability DP
it probes with applies.  On heterogeneous platforms even *bounding*
the period is NP-complete (Section 6), so the facade used to refuse
``Problem(objective="period")`` outright there.  This module closes
that gap heuristically, following the same recipe as the energy
extension (:mod:`repro.extensions.energy`): reuse the Section 7
heuristics as feasibility probes and search the scalar criterion.

A candidate period ``P`` is *admissible* when the Heur-L probe —
:func:`repro.algorithms.heuristic_best` with ``which="heur-l"`` —
finds a mapping within ``(P, max_latency)`` whose reliability meets
the floor.  Admissibility is not guaranteed monotone in ``P`` (the
probe is a heuristic), so the search keeps the *best feasible witness
seen* rather than trusting the bracket: bisection tightens the upper
bracket to each witness's achieved worst-case period (often far below
the probed bound, which is what makes convergence fast) and the final
answer is the witness, never an unprobed bound.

The analytic floor ``max_i w_i / max_u s_u`` — some interval contains
the heaviest task, and no processor beats the fastest — seeds the
lower bracket, mirroring the bounds-grid derivation in
:mod:`repro.solve.grid`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms import heuristic_best
from repro.algorithms.result import SolveResult
from repro.core.chain import TaskChain
from repro.core.platform import Platform

__all__ = ["minimize_period_search"]

#: Stop bisecting when the bracket's relative width drops below this.
DEFAULT_REL_TOL = 1e-4

#: Hard probe budget — each probe is one Heur-L solve.
DEFAULT_MAX_PROBES = 48


def minimize_period_search(
    chain: TaskChain,
    platform: Platform,
    min_log_reliability: float = -math.inf,
    max_period: float = math.inf,
    max_latency: float = math.inf,
    rel_tol: float = DEFAULT_REL_TOL,
    max_probes: int = DEFAULT_MAX_PROBES,
) -> SolveResult:
    """Minimize the worst-case period on any platform (heuristic).

    Parameters
    ----------
    min_log_reliability:
        Reliability floor as a log-probability (``-inf`` = no floor) —
        a probe's mapping is admissible only at or above it.
    max_period:
        Cap on the answer; infeasible when no admissible mapping fits it.
    max_latency:
        Latency bound honored by every probe solve.
    rel_tol:
        Relative bracket width at which the bisection stops.
    max_probes:
        Probe budget (each probe is one Heur-L solve).  When the budget
        runs out before the bracket meets ``rel_tol``, the answer is
        still the best witness seen but ``details["converged"]`` is
        ``False``.

    Examples
    --------
    >>> chain = TaskChain([6.0, 6.0], [1.0, 0.0])
    >>> plat = Platform(speeds=[2.0, 1.0, 1.0], failure_rates=[1e-4] * 3,
    ...                 max_replication=2)
    >>> result = minimize_period_search(chain, plat)
    >>> result.feasible
    True
    """
    if min_log_reliability > 0.0 or math.isnan(min_log_reliability):
        raise ValueError("min_log_reliability must be a log-probability (<= 0)")
    if max_period <= 0 or max_latency <= 0:
        raise ValueError("bounds must be > 0")
    if not rel_tol > 0:
        raise ValueError(f"rel_tol must be > 0, got {rel_tol!r}")

    probes = 0

    def probe(period_bound: float) -> "tuple[bool, SolveResult]":
        nonlocal probes
        probes += 1
        res = heuristic_best(
            chain, platform,
            max_period=period_bound, max_latency=max_latency,
            which="heur-l", selection="feasible-best",
        )
        return res.feasible and res.log_reliability >= min_log_reliability, res

    # Loosest admissible bound first: if even max_period fails, the
    # heuristic sees no admissible mapping at all.
    ok, best = probe(max_period)
    if not ok:
        return SolveResult.infeasible(
            "het-period-search",
            probes=probes,
            min_log_reliability=min_log_reliability,
            max_period=max_period,
            max_latency=max_latency,
        )

    # No mapping beats the heaviest task on the fastest processor.
    lo = float(np.max(chain.work)) / float(np.max(platform.speeds))
    assert best.evaluation is not None
    hi = float(best.evaluation.worst_case_period)

    while probes < max_probes and hi - lo > rel_tol * max(hi, 1.0):
        mid = 0.5 * (lo + hi)
        ok, res = probe(mid)
        if ok:
            best = res
            assert res.evaluation is not None
            # The witness's achieved period can undershoot the probed
            # bound substantially — tighten to it, not to mid.
            hi = min(mid, float(res.evaluation.worst_case_period))
        else:
            lo = mid

    assert best.mapping is not None and best.evaluation is not None
    # The loop exits either because the bracket met rel_tol or because
    # the probe budget ran out first; callers reading only the witness
    # could not tell the two apart, so record which one happened.
    converged = hi - lo <= rel_tol * max(hi, 1.0)
    return SolveResult(
        feasible=True,
        mapping=best.mapping,
        evaluation=best.evaluation,
        method="het-period-search",
        details={
            "optimal_period": float(best.evaluation.worst_case_period),
            "probes": probes,
            "bracket": (lo, hi),
            "converged": converged,
        },
    )
