"""Energy as a fourth criterion — the Section 9 "power consumption"
future-work direction.

Model: the standard dynamic-power abstraction used throughout the DVFS
literature the paper cites ([31], [39]): running a processor at speed
``s`` dissipates power ``P_dyn = s^alpha`` (``alpha = 3`` by default),
so executing work ``W`` takes ``W / s`` time and costs
``W / s * s^alpha = W * s^(alpha-1)`` energy units.  Communications
cost ``o / b * P_link`` with a fixed per-link transfer power.

Replication multiplies energy: *every* replica executes *every* data
set (Section 2.5), so an interval replicated on processors ``P_I``
costs ``sum_{u in P_I} W * s_u^(alpha-1)`` per data set — the explicit
reliability/energy trade-off.

:func:`energy_aware_alloc_het` extends the Section 7.2 allocation with
an energy budget: replicas keep being added by best reliability ratio,
but only while the mapping's energy stays within the budget.

:func:`minimize_energy` turns the model into the facade's fourth
objective (``Problem(objective="energy")``): minimize energy subject to
the period/latency bounds and a reliability floor.  Candidates come
from the Section 7 heuristics (which maximize reliability within the
bounds), then a *replica-thinning* pass strips replicas greedily —
every replica strictly adds energy and removing one can only improve
the worst-case period/latency — while the floor still holds.
"""

from __future__ import annotations

import math
from typing import Callable, Sequence

import numpy as np

from repro.core.chain import TaskChain
from repro.core.evaluation import comm_log_reliability, evaluate_mapping
from repro.core.interval import Interval, validate_partition
from repro.core.mapping import Mapping
from repro.core.platform import Platform
from repro.util import logrel

__all__ = ["mapping_energy", "energy_aware_alloc_het", "minimize_energy"]


def mapping_energy(
    mapping: Mapping,
    alpha: float = 3.0,
    link_power: float = 1.0,
) -> float:
    """Energy per data set of a mapping (dynamic power model).

    ``sum_j sum_{u in P_j} W_j * s_u^(alpha-1)
    + sum_j o_{l_j} / b * link_power * (hops)``, with one hop per
    replica of the sending interval (each replica transmits its result
    to the routing operation).
    """
    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha!r}")
    platform = mapping.platform
    total = 0.0
    for j, (_iv, procs) in enumerate(mapping):
        work = mapping.interval_work(j)
        for u in procs:
            total += work * float(platform.speeds[u]) ** (alpha - 1.0)
        out = mapping.interval_output(j)
        if j < mapping.m - 1 and out > 0:
            total += out / platform.bandwidth * link_power * len(procs)
    return total


def energy_aware_alloc_het(
    chain: TaskChain,
    platform: Platform,
    partition: Sequence[Interval],
    max_period: float = math.inf,
    max_energy: float = math.inf,
    alpha: float = 3.0,
    link_power: float = 1.0,
    allowed: Callable[[int, int], bool] | None = None,
) -> Mapping | None:
    """Section 7.2 allocation with an additional energy budget.

    Phase 1 seeds every interval exactly as in
    :func:`repro.algorithms.allocation.algo_alloc_het` (the seeds are
    mandatory — without them there is no mapping at all); phase 2 adds
    replicas by best reliability-improvement ratio *per unit of added
    energy*, skipping any addition that would exceed *max_energy*.

    Returns ``None`` when no seeding exists or the seeds alone blow the
    budget.
    """
    partition = list(partition)
    validate_partition(chain.n, partition)
    m, p, K = len(partition), platform.p, platform.max_replication
    speeds, rates, b = platform.speeds, platform.failure_rates, platform.bandwidth
    if allowed is None:
        allowed = lambda _u, _j: True  # noqa: E731

    works = [chain.work_between(iv.start, iv.stop) for iv in partition]
    outs = [chain.output_of(iv.stop) for iv in partition]
    ell_comm = [
        comm_log_reliability(platform, chain.input_of(iv.start))
        + comm_log_reliability(platform, chain.output_of(iv.stop))
        for iv in partition
    ]

    def branch(u: int, j: int) -> float:
        return ell_comm[j] - float(rates[u]) * works[j] / float(speeds[u])

    def fits(u: int, j: int) -> bool:
        return works[j] / float(speeds[u]) <= max_period and allowed(u, j)

    def added_energy(u: int, j: int) -> float:
        energy = works[j] * float(speeds[u]) ** (alpha - 1.0)
        if j < m - 1 and outs[j] > 0:
            energy += outs[j] / b * link_power
        return energy

    order = sorted(range(p), key=lambda u: (float(rates[u]) / float(speeds[u]), u))
    replicas: list[list[int]] = [[] for _ in range(m)]
    stage_log_fail = [0.0] * m
    energy_used = 0.0
    empty = set(range(m))
    leftovers: list[int] = []

    it = iter(order)
    for u in it:
        if not empty:
            leftovers.append(u)
            break
        candidates = [j for j in empty if fits(u, j)]
        if not candidates:
            leftovers.append(u)
            continue
        j = max(candidates, key=lambda jj: (works[jj], -jj))
        replicas[j].append(u)
        stage_log_fail[j] += logrel.log_failure(branch(u, j))
        energy_used += added_energy(u, j)
        empty.discard(j)
    leftovers.extend(it)
    if empty or energy_used > max_energy:
        return None

    for u in leftovers:
        best_j, best_score = -1, 0.0
        for j in range(m):
            if len(replicas[j]) >= K or not fits(u, j):
                continue
            cost = added_energy(u, j)
            if energy_used + cost > max_energy:
                continue
            lf_new = stage_log_fail[j] + logrel.log_failure(branch(u, j))
            pair = logrel.log1mexp(np.array([stage_log_fail[j], lf_new]))
            gain = float(pair[1] - pair[0])
            score = gain / max(cost, 1e-300)
            if score > best_score:
                best_j, best_score = j, score
        if best_j >= 0:
            replicas[best_j].append(u)
            stage_log_fail[best_j] += logrel.log_failure(branch(u, best_j))
            energy_used += added_energy(u, best_j)

    return Mapping(
        chain, platform, [(iv, tuple(sorted(r))) for iv, r in zip(partition, replicas)]
    )


def _thin_replicas(
    mapping: Mapping,
    min_log_reliability: float,
    alpha: float,
    link_power: float,
) -> Mapping:
    """Greedily strip replicas while the reliability floor still holds.

    Every replica strictly adds energy (its compute term, plus a link
    term for non-final intervals), and removing one can only *improve*
    the worst-case period and latency (the slowest replica of an
    interval is removed or untouched) — so thinning moves monotonically
    toward lower energy through bound-preserving mappings.  Each round
    removes the replica with the largest energy saving among those
    whose removal keeps the floor; stops when none qualifies.
    """
    assignment = [(iv, list(procs)) for iv, procs in mapping]

    def build(drop: "tuple[int, int] | None" = None) -> Mapping:
        return Mapping(
            mapping.chain,
            mapping.platform,
            [
                (
                    iv,
                    tuple(
                        u
                        for ri, u in enumerate(r)
                        if drop is None or (jj, ri) != drop
                    ),
                )
                for jj, (iv, r) in enumerate(assignment)
            ],
        )

    while True:
        current_energy = mapping_energy(build(), alpha, link_power)
        best = None  # (saving, interval index, replica index)
        for j, (_iv, procs) in enumerate(assignment):
            if len(procs) <= 1:
                continue
            for ri in range(len(procs)):
                candidate = build(drop=(j, ri))
                if evaluate_mapping(candidate).log_reliability < min_log_reliability:
                    continue
                saving = current_energy - mapping_energy(candidate, alpha, link_power)
                if best is None or saving > best[0]:
                    best = (saving, j, ri)
        if best is None:
            break
        _saving, j, ri = best
        assignment[j][1].pop(ri)
    return build()


def minimize_energy(
    chain: TaskChain,
    platform: Platform,
    max_period: float = math.inf,
    max_latency: float = math.inf,
    min_log_reliability: float = -math.inf,
    alpha: float = 3.0,
    link_power: float = 1.0,
) -> "SolveResult":
    """Greedy energy minimization under bounds and a reliability floor.

    Candidate mappings come from the two Section 7 heuristics
    (``heur-l`` / ``heur-p`` with feasible-best selection); each
    candidate that meets the bounds and the floor is replica-thinned
    (:func:`_thin_replicas`) and the cheapest survivor wins, ties
    broken toward higher reliability.  A heuristic, like the Section 7
    algorithms it builds on: it may miss a feasible mapping on hard
    instances, but never returns one that violates a bound or the
    floor.  Works on any platform (homogeneous or not).

    Returns
    -------
    A :class:`~repro.algorithms.result.SolveResult` whose ``details``
    carry ``energy`` (the winning mapping's energy), ``alpha``, and
    ``link_power``.
    """
    from repro.algorithms.heuristics import heuristic_best
    from repro.algorithms.result import SolveResult

    if alpha < 1:
        raise ValueError(f"alpha must be >= 1, got {alpha!r}")
    if max_period <= 0 or max_latency <= 0:
        raise ValueError("bounds must be > 0")

    best: "tuple[float, float, Mapping] | None" = None  # (energy, -logrel, mapping)
    explored = 0
    for which in ("heur-l", "heur-p"):
        seed = heuristic_best(
            chain, platform,
            max_period=max_period, max_latency=max_latency,
            which=which, selection="feasible-best",
        )
        if not seed.feasible:
            continue
        assert seed.mapping is not None
        if seed.log_reliability < min_log_reliability:
            # The bounds-respecting reliability maximum misses the
            # floor; no thinning of this candidate can recover it.
            continue
        thinned = _thin_replicas(
            seed.mapping, min_log_reliability, alpha, link_power
        )
        explored += 1
        ev = evaluate_mapping(thinned)
        energy = mapping_energy(thinned, alpha, link_power)
        key = (energy, -ev.log_reliability)
        if best is None or key < (best[0], best[1]):
            best = (energy, -ev.log_reliability, thinned)

    if best is None:
        return SolveResult.infeasible(
            "energy-greedy",
            min_log_reliability=min_log_reliability,
            max_period=max_period,
            max_latency=max_latency,
        )
    energy, _neg, mapping = best
    return SolveResult(
        feasible=True,
        mapping=mapping,
        evaluation=evaluate_mapping(mapping),
        method="energy-greedy",
        details={
            "energy": energy,
            "alpha": alpha,
            "link_power": link_power,
            "candidates": explored,
        },
    )
