"""Removing the routing operations: exact and approximate reliability of
general (non serial-parallel) mappings — the Section 9 future-work
question, made concrete.

The paper inserts routing operations so that the RBD is serial-parallel
and Eq. (9) applies.  The price is a pessimistic reliability estimate:
funnelling every replica's output through a single router discards the
redundancy of the full replica-to-replica communication mesh of
Figure 4.  This module quantifies that price:

* exact evaluation of the no-routing RBD by pivotal factoring
  (exponential worst case, fine at paper scale);
* the minimal-cut-set serial approximation discussed in Section 4,
  which by FKG is a guaranteed *lower* bound — so it can certify a
  reliability constraint on the no-routing system at linear cost in the
  number of cuts;
* a comparison record for experiments (`benchmarks/bench_ablation_routing.py`).

Two orderings are guaranteed and asserted:

    routed (Eq. 9)            <=  exact (no routing)
    cut-set bound (no routing) <=  exact (no routing)   [FKG]

The first holds because every S->D path of the routed RBD maps to a
path of the unrouted one (the router is perfectly reliable, and routed
paths use the same interval/communication blocks), so the routed
system's success event embeds in the unrouted one's — routing can only
lose reliability.  Empirically the cut-set bound also dominates the
routed value (tests check this on the paper's parameter regime), making
it an attractive *certifying* replacement for routing: linear in the
number of cuts, never optimistic, tighter than Eq. (9).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.core.evaluation import mapping_log_reliability
from repro.core.mapping import Mapping
from repro.rbd.build import rbd_without_routing
from repro.rbd.evaluate import (
    cut_set_lower_bound,
    exact_log_reliability_factoring,
    minimal_cut_sets,
)
from repro.util import logrel

__all__ = ["RoutingComparison", "compare_routing"]


@dataclass(frozen=True)
class RoutingComparison:
    """Reliability of one mapping with and without routing operations.

    All reliabilities are log-domain.  ``*_seconds`` record evaluation
    cost — the trade the paper buys with routing: linear-time evaluation
    versus the exponential-in-general exact computation.
    """

    routed_log_reliability: float
    unrouted_exact_log_reliability: float
    unrouted_cutset_log_reliability: float
    n_minimal_cuts: int
    routed_seconds: float
    unrouted_exact_seconds: float
    unrouted_cutset_seconds: float

    @property
    def routing_penalty(self) -> float:
        """How much reliability routing gives up, as the ratio of
        failure probabilities ``f_routed / f_unrouted`` (>= 1)."""
        f_routed = logrel.failure(self.routed_log_reliability)
        f_unrouted = logrel.failure(self.unrouted_exact_log_reliability)
        if f_unrouted == 0.0:
            return float("inf") if f_routed > 0 else 1.0
        return f_routed / f_unrouted

    @property
    def cutset_gap(self) -> float:
        """Tightness of the cut-set bound: ``f_bound / f_exact`` (>= 1)."""
        f_bound = logrel.failure(self.unrouted_cutset_log_reliability)
        f_exact = logrel.failure(self.unrouted_exact_log_reliability)
        if f_exact == 0.0:
            return float("inf") if f_bound > 0 else 1.0
        return f_bound / f_exact


def compare_routing(mapping: Mapping) -> RoutingComparison:
    """Evaluate *mapping* with routing (Eq. (9)) and without (Figure 4).

    Raises
    ------
    ValueError
        If the no-routing RBD is too large for exact evaluation (the
        cut-set enumeration guard); paper-scale mappings are fine.
    """
    # The *_seconds fields measure evaluation cost — an explicit output
    # of this comparison (the trade routing buys), not an input to any
    # reliability value.  The clock reads below are therefore waived:
    # the deterministic outputs are unaffected by them.
    t0 = time.perf_counter()  # repro-lint: disable=DET001 measures evaluation cost only
    routed = mapping_log_reliability(mapping)
    t1 = time.perf_counter()  # repro-lint: disable=DET001 measures evaluation cost only

    rbd = rbd_without_routing(mapping)
    t2 = time.perf_counter()  # repro-lint: disable=DET001 measures evaluation cost only
    exact = exact_log_reliability_factoring(rbd)
    t3 = time.perf_counter()  # repro-lint: disable=DET001 measures evaluation cost only
    cuts = minimal_cut_sets(rbd)
    bound = cut_set_lower_bound(rbd)
    t4 = time.perf_counter()  # repro-lint: disable=DET001 measures evaluation cost only

    if not (routed <= exact + 1e-9 and bound <= exact + 1e-9):
        raise AssertionError(
            "reliability ordering violated: "
            f"routed={routed}, cutset={bound}, exact={exact}"
        )
    return RoutingComparison(
        routed_log_reliability=routed,
        unrouted_exact_log_reliability=exact,
        unrouted_cutset_log_reliability=bound,
        n_minimal_cuts=len(cuts),
        routed_seconds=t1 - t0,
        unrouted_exact_seconds=t3 - t2,
        unrouted_cutset_seconds=t4 - t3,
    )
