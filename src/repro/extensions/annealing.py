"""Simulated-annealing mapper — a Section 9 "future work" heuristic.

The paper closes asking for "the design of heuristics for even more
difficult problems".  This module contributes a local-search baseline
that works on *any* platform and optimizes reliability under period and
latency bounds directly, instead of through the two-step
division/allocation decomposition of Section 7.  It is deliberately
simple (Metropolis acceptance over a small neighbourhood) and serves
two purposes: a quality yardstick for Heur-L/Heur-P on heterogeneous
instances (`benchmarks/bench_extension_annealing.py`), and a
demonstration that the library's evaluation layer supports custom
search loops.

Search space: complete mappings (cut set + disjoint replica sets).
Neighbourhood moves:

* shift an interval boundary by one task;
* split an interval / merge two adjacent intervals;
* add an idle processor to an interval (respecting ``K``);
* remove a replica (if the interval keeps one);
* swap an enrolled processor with an idle one.

Objective: maximized score = ``-log10(failure probability)`` (a
well-scaled, monotone transform of reliability — raw log-reliability
differences can be ~1e-20, useless for Metropolis temperatures), with a
linear penalty per unit of relative bound violation, so the search can
traverse infeasible regions but is pulled back.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.algorithms.heuristics import heuristic_best
from repro.algorithms.result import SolveResult
from repro.core.chain import TaskChain
from repro.core.evaluation import MappingEvaluation, evaluate_mapping
from repro.core.interval import partition_from_cuts
from repro.core.mapping import Mapping
from repro.core.platform import Platform
from repro.util.rng import ensure_rng

__all__ = ["anneal_mapping", "AnnealingStats"]

#: Penalty weight per unit of *relative* bound violation.
PENALTY = 50.0


@dataclass(frozen=True)
class AnnealingStats:
    """Diagnostics of one annealing run."""

    iterations: int
    accepted: int
    improved: int
    initial_score: float
    final_score: float


def _score(ev: MappingEvaluation, max_period: float, max_latency: float) -> float:
    """Well-scaled objective: -log10(failure) minus violation penalties."""
    f = ev.failure_probability
    base = 320.0 if f <= 0.0 else -math.log10(max(f, 1e-320))
    penalty = 0.0
    if math.isfinite(max_period) and ev.worst_case_period > max_period:
        penalty += PENALTY * (ev.worst_case_period / max_period - 1.0) + PENALTY
    if math.isfinite(max_latency) and ev.worst_case_latency > max_latency:
        penalty += PENALTY * (ev.worst_case_latency / max_latency - 1.0) + PENALTY
    return base - penalty


def _feasible(ev: MappingEvaluation, max_period: float, max_latency: float) -> bool:
    return ev.meets(max_period=max_period, max_latency=max_latency)


class _State:
    """Mutable search state: cuts + per-interval replica lists."""

    def __init__(self, chain: TaskChain, platform: Platform, mapping: Mapping):
        self.chain = chain
        self.platform = platform
        self.cuts = [iv.stop for iv in mapping.intervals[:-1]]
        self.replicas = [list(r) for r in mapping.replicas]

    def to_mapping(self) -> Mapping:
        partition = partition_from_cuts(self.chain.n, self.cuts)
        return Mapping(
            self.chain,
            self.platform,
            [(iv, tuple(r)) for iv, r in zip(partition, self.replicas)],
        )

    def copy(self) -> "_State":
        clone = object.__new__(_State)
        clone.chain, clone.platform = self.chain, self.platform
        clone.cuts = list(self.cuts)
        clone.replicas = [list(r) for r in self.replicas]
        return clone

    def idle_processors(self) -> list[int]:
        used = {u for r in self.replicas for u in r}
        return [u for u in range(self.platform.p) if u not in used]

    # -- neighbourhood moves (each returns True if it changed the state) --

    def shift_cut(self, rng) -> bool:
        if not self.cuts:
            return False
        i = int(rng.integers(len(self.cuts)))
        delta = 1 if rng.random() < 0.5 else -1
        new = self.cuts[i] + delta
        lo = self.cuts[i - 1] + 1 if i > 0 else 1
        hi = self.cuts[i + 1] - 1 if i + 1 < len(self.cuts) else self.chain.n - 1
        if not lo <= new <= hi:
            return False
        self.cuts[i] = new
        return True

    def split_interval(self, rng) -> bool:
        idle = self.idle_processors()
        if not idle:
            return False
        partition = partition_from_cuts(self.chain.n, self.cuts)
        candidates = [j for j, iv in enumerate(partition) if len(iv) > 1]
        if not candidates:
            return False
        j = int(rng.choice(candidates))
        iv = partition[j]
        cut = int(rng.integers(iv.start + 1, iv.stop))
        self.cuts.insert(j, cut)
        self.cuts.sort()
        # New interval inherits one idle processor.
        self.replicas.insert(j + 1, [int(rng.choice(idle))])
        return True

    def merge_intervals(self, rng) -> bool:
        if not self.cuts:
            return False
        i = int(rng.integers(len(self.cuts)))
        del self.cuts[i]
        keep, drop = self.replicas[i], self.replicas[i + 1]
        # Keep the merged interval's replicas within K.
        merged = (keep + drop)[: self.platform.max_replication]
        self.replicas[i] = merged
        del self.replicas[i + 1]
        return True

    def add_replica(self, rng) -> bool:
        idle = self.idle_processors()
        candidates = [
            j
            for j, r in enumerate(self.replicas)
            if len(r) < self.platform.max_replication
        ]
        if not idle or not candidates:
            return False
        j = int(rng.choice(candidates))
        self.replicas[j].append(int(rng.choice(idle)))
        return True

    def drop_replica(self, rng) -> bool:
        candidates = [j for j, r in enumerate(self.replicas) if len(r) > 1]
        if not candidates:
            return False
        j = int(rng.choice(candidates))
        k = int(rng.integers(len(self.replicas[j])))
        del self.replicas[j][k]
        return True

    def swap_processor(self, rng) -> bool:
        idle = self.idle_processors()
        if not idle:
            return False
        j = int(rng.integers(len(self.replicas)))
        k = int(rng.integers(len(self.replicas[j])))
        self.replicas[j][k] = int(rng.choice(idle))
        return True


_MOVES = (
    _State.shift_cut,
    _State.split_interval,
    _State.merge_intervals,
    _State.add_replica,
    _State.drop_replica,
    _State.swap_processor,
)


def _initial_state(
    chain: TaskChain, platform: Platform, max_period: float, max_latency: float
) -> Mapping:
    heur = heuristic_best(
        chain, platform, max_period=max_period, max_latency=max_latency
    )
    if heur.feasible:
        assert heur.mapping is not None
        return heur.mapping
    # Fall back: whole chain on the fastest processor.
    fastest = int(np.argmax(platform.speeds))
    from repro.core.interval import Interval

    return Mapping(chain, platform, [(Interval(0, chain.n), (fastest,))])


def anneal_mapping(
    chain: TaskChain,
    platform: Platform,
    max_period: float = math.inf,
    max_latency: float = math.inf,
    iterations: int = 2000,
    initial_temperature: float = 2.0,
    cooling: float = 0.999,
    rng: "int | None | np.random.Generator" = None,
    initial: Mapping | None = None,
) -> SolveResult:
    """Search for a reliable mapping under bounds by simulated annealing.

    Parameters
    ----------
    iterations:
        Total Metropolis steps (each evaluates at most one neighbour).
    initial_temperature, cooling:
        Geometric schedule ``T_k = T_0 * cooling^k`` over a score that
        lives in "orders of magnitude of failure probability" units.
    initial:
        Optional warm start; defaults to the Section 7 heuristics'
        result (or the whole chain on the fastest processor when they
        fail).

    Returns
    -------
    SolveResult
        The best *feasible* mapping encountered, or infeasible if none
        was ever visited.  ``details["stats"]`` carries an
        :class:`AnnealingStats`.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    if not 0 < cooling <= 1:
        raise ValueError("cooling must be in (0, 1]")
    gen = ensure_rng(rng)
    start = initial if initial is not None else _initial_state(
        chain, platform, max_period, max_latency
    )
    state = _State(chain, platform, start)
    current_ev = evaluate_mapping(state.to_mapping())
    current_score = _score(current_ev, max_period, max_latency)
    initial_score = current_score

    best: tuple[float, Mapping, MappingEvaluation] | None = None
    if _feasible(current_ev, max_period, max_latency):
        m = state.to_mapping()
        best = (current_score, m, current_ev)

    T = initial_temperature
    accepted = improved = 0
    for _ in range(iterations):
        T *= cooling
        move = _MOVES[int(gen.integers(len(_MOVES)))]
        candidate = state.copy()
        if not move(candidate, gen):
            continue
        try:
            mapping = candidate.to_mapping()
        except ValueError:
            continue  # move produced an invalid mapping (e.g. K overflow)
        ev = evaluate_mapping(mapping)
        score = _score(ev, max_period, max_latency)
        delta = score - current_score
        if delta >= 0 or gen.random() < math.exp(delta / max(T, 1e-12)):
            state, current_ev, current_score = candidate, ev, score
            accepted += 1
            if _feasible(ev, max_period, max_latency) and (
                best is None or score > best[0]
            ):
                best = (score, mapping, ev)
                improved += 1

    stats = AnnealingStats(
        iterations=iterations,
        accepted=accepted,
        improved=improved,
        initial_score=initial_score,
        final_score=current_score,
    )
    if best is None:
        return SolveResult.infeasible("annealing", stats=stats)
    return SolveResult(
        feasible=True,
        mapping=best[1],
        evaluation=best[2],
        method="annealing",
        details={"stats": stats},
    )
