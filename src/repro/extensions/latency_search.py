"""Heterogeneous latency minimization by binary search over heuristic solves.

The converse-latency algorithm (``dp-latency``) is exact but
homogeneous-only — its Pareto DP relies on the partition-invariant
compute term of Eq. (5)/(7).  On heterogeneous platforms the
bi-criteria (reliability, latency) problem is NP-complete (Theorem 3),
so this module completes the ``(objective x platform-kind)`` coverage
matrix the same way :mod:`repro.extensions.period_search` does for the
period: reuse the Section 7 heuristics as feasibility probes and
bisect the scalar criterion.

A candidate latency ``L`` is *admissible* when the Heur-L probe —
:func:`repro.algorithms.heuristic_best` with ``which="heur-l"`` —
finds a mapping within ``(max_period, L)`` whose reliability meets the
floor.  As in the period search, admissibility is heuristic rather
than monotone, so the search keeps the best feasible witness seen:
bisection tightens the upper bracket to each witness's *achieved*
worst-case latency and the answer is always a probed witness.

The analytic floor ``sum_i w_i / max_u s_u`` seeds the lower bracket —
every task's work appears in some interval's compute term, and no
replica beats the fastest processor — mirroring the latency leg of the
bounds-grid derivation in :mod:`repro.solve.grid`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms import heuristic_best
from repro.algorithms.result import SolveResult
from repro.core.chain import TaskChain
from repro.core.platform import Platform
from repro.extensions.period_search import DEFAULT_MAX_PROBES, DEFAULT_REL_TOL

__all__ = ["minimize_latency_search"]


def minimize_latency_search(
    chain: TaskChain,
    platform: Platform,
    min_log_reliability: float = -math.inf,
    max_period: float = math.inf,
    max_latency: float = math.inf,
    rel_tol: float = DEFAULT_REL_TOL,
    max_probes: int = DEFAULT_MAX_PROBES,
) -> SolveResult:
    """Minimize the worst-case latency on any platform (heuristic).

    Parameters
    ----------
    min_log_reliability:
        Reliability floor as a log-probability (``-inf`` = no floor) —
        a probe's mapping is admissible only at or above it.
    max_period:
        Period bound honored by every probe solve.
    max_latency:
        Cap on the answer; infeasible when no admissible mapping fits it.
    rel_tol:
        Relative bracket width at which the bisection stops.
    max_probes:
        Probe budget (each probe is one Heur-L solve).  When the budget
        runs out before the bracket meets ``rel_tol``, the answer is
        still the best witness seen but ``details["converged"]`` is
        ``False``.

    Examples
    --------
    >>> chain = TaskChain([6.0, 6.0], [1.0, 0.0])
    >>> plat = Platform(speeds=[2.0, 1.0, 1.0], failure_rates=[1e-4] * 3,
    ...                 max_replication=2)
    >>> result = minimize_latency_search(chain, plat)
    >>> result.feasible
    True
    """
    if min_log_reliability > 0.0 or math.isnan(min_log_reliability):
        raise ValueError("min_log_reliability must be a log-probability (<= 0)")
    if max_period <= 0 or max_latency <= 0:
        raise ValueError("bounds must be > 0")
    if not rel_tol > 0:
        raise ValueError(f"rel_tol must be > 0, got {rel_tol!r}")

    probes = 0

    def probe(latency_bound: float) -> "tuple[bool, SolveResult]":
        nonlocal probes
        probes += 1
        res = heuristic_best(
            chain, platform,
            max_period=max_period, max_latency=latency_bound,
            which="heur-l", selection="feasible-best",
        )
        return res.feasible and res.log_reliability >= min_log_reliability, res

    # Loosest admissible bound first: if even max_latency fails, the
    # heuristic sees no admissible mapping at all.
    ok, best = probe(max_latency)
    if not ok:
        return SolveResult.infeasible(
            "het-latency-search",
            probes=probes,
            min_log_reliability=min_log_reliability,
            max_period=max_period,
            max_latency=max_latency,
        )

    # Every task computes somewhere, and no replica beats the fastest
    # processor — the latency's compute term is at least this.
    lo = float(np.sum(chain.work)) / float(np.max(platform.speeds))
    assert best.evaluation is not None
    hi = float(best.evaluation.worst_case_latency)

    while probes < max_probes and hi - lo > rel_tol * max(hi, 1.0):
        mid = 0.5 * (lo + hi)
        ok, res = probe(mid)
        if ok:
            best = res
            assert res.evaluation is not None
            # The witness's achieved latency can undershoot the probed
            # bound substantially — tighten to it, not to mid.
            hi = min(mid, float(res.evaluation.worst_case_latency))
        else:
            lo = mid

    assert best.mapping is not None and best.evaluation is not None
    converged = hi - lo <= rel_tol * max(hi, 1.0)
    return SolveResult(
        feasible=True,
        mapping=best.mapping,
        evaluation=best.evaluation,
        method="het-latency-search",
        details={
            "optimal_latency": float(best.evaluation.worst_case_latency),
            "probes": probes,
            "bracket": (lo, hi),
            "converged": converged,
        },
    )
