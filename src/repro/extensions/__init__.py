"""Implemented future-work directions from the paper's Section 9.

* :mod:`repro.extensions.norouting` — "an interesting future research
  direction would be to investigate whether it is feasible to remove
  this routing procedure, and accurately approximate the reliability of
  general systems (non serial-parallel)": exact factoring evaluation of
  the Figure 4 (no-routing) RBD, the FKG cut-set approximation, and a
  study comparing both against the routed Eq. (9) value.
* :mod:`repro.extensions.energy` — "heuristics for even more difficult
  problems that would mix performance-oriented criteria (period,
  latency) with several other objectives, such as reliability, resource
  costs, and power consumption": a standard dynamic-power energy metric
  and an energy-aware variant of the processor-allocation step.
* :mod:`repro.extensions.annealing` — "the design of heuristics for even
  more difficult problems": a simulated-annealing mapper searching the
  space of complete mappings directly, usable on any platform and as a
  quality yardstick for Heur-L/Heur-P.
* :mod:`repro.extensions.period_search` — period minimization on
  heterogeneous platforms (where the Section 5.2 converse does not
  apply) by binary search over Section 7 heuristic solves; registered
  as the ``het-period-search`` method.
* :mod:`repro.extensions.latency_search` — the latency twin
  (``het-latency-search``), completing ``method="auto"`` coverage over
  every (objective x platform-kind) cell.
"""

from repro.extensions.norouting import RoutingComparison, compare_routing
from repro.extensions.energy import (
    mapping_energy,
    energy_aware_alloc_het,
)
from repro.extensions.annealing import AnnealingStats, anneal_mapping
from repro.extensions.latency_search import minimize_latency_search
from repro.extensions.period_search import minimize_period_search

__all__ = [
    "RoutingComparison",
    "compare_routing",
    "mapping_energy",
    "energy_aware_alloc_het",
    "AnnealingStats",
    "anneal_mapping",
    "minimize_latency_search",
    "minimize_period_search",
]
