"""Exact and approximate RBD evaluation.

Exact methods (both compute the *failure* probability in the linear
domain — a sum/mixture of non-negative terms, hence no catastrophic
cancellation even at the paper's 1e-19 failure scales — and convert to
log-reliability at the boundary):

* :func:`exact_log_reliability_enumeration` — sum over all ``2^B`` block
  states; the oracle for everything else (capped block count).
* :func:`exact_log_reliability_factoring` — pivotal (Shannon)
  decomposition: condition on a block being up (contract) or down
  (delete), recurse; with path-existence short-circuits this handles the
  paper-scale no-routing diagrams comfortably.

Structure methods:

* :func:`minimal_path_sets` — inclusion-minimal block sets whose joint
  operation connects S to D;
* :func:`minimal_cut_sets` — inclusion-minimal block sets whose joint
  failure disconnects S from D (Section 4's cut sets, cf. [24]);
* :func:`cut_set_lower_bound` — the paper's approximation: all minimal
  cut sets composed in sequence.  By the FKG/Harris inequality the
  events "cut c contains a working block" are increasing in the block
  states, so their product *under*-estimates the joint probability:
  the approximation is a guaranteed lower bound on the reliability.
* :func:`path_set_upper_bound` — dual bound: minimal path sets composed
  in parallel over-estimate reliability (the events "path pi fully
  works" are increasing, so the probability that all fail is at least
  the product of the individual failure probabilities).
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable

import networkx as nx

from repro.rbd.diagram import DEST, SOURCE, RBD
from repro.util import logrel

__all__ = [
    "exact_log_reliability_enumeration",
    "exact_log_reliability_factoring",
    "minimal_path_sets",
    "minimal_cut_sets",
    "cut_set_lower_bound",
    "path_set_upper_bound",
]

#: State enumeration refuses diagrams with more blocks than this.
MAX_ENUMERATION_BLOCKS = 22


def exact_log_reliability_enumeration(rbd: RBD) -> float:
    """Exact log-reliability by summing over all block states.

    ``O(2^B)`` — the test oracle.  Failure probability is accumulated in
    the linear domain (sum of non-negative products) for stability.
    """
    nodes = list(rbd.blocks)
    B = len(nodes)
    if B > MAX_ENUMERATION_BLOCKS:
        raise ValueError(
            f"{B} blocks exceed the enumeration cap ({MAX_ENUMERATION_BLOCKS})"
        )
    rel = [rbd.block(n).reliability for n in nodes]
    fail = [rbd.block(n).failure for n in nodes]

    failure_prob = 0.0
    for bits in itertools.product((True, False), repeat=B):
        up = {n for n, b in zip(nodes, bits) if b}
        if rbd.operational(up):
            continue
        prob = 1.0
        for i, b in enumerate(bits):
            prob *= rel[i] if b else fail[i]
        failure_prob += prob
    return logrel.from_failure(min(failure_prob, 1.0))


def _contract(g: nx.DiGraph, node: Hashable) -> nx.DiGraph:
    """Remove *node*, connecting its predecessors to its successors."""
    h = g.copy()
    preds = list(h.predecessors(node))
    succs = list(h.successors(node))
    h.remove_node(node)
    h.add_edges_from((p, s) for p in preds for s in succs if p != s)
    return h


def exact_log_reliability_factoring(rbd: RBD) -> float:
    """Exact log-reliability by pivotal decomposition (factoring).

    ``F(G) = r_x F(G | x up) + f_x F(G | x down)`` with the pivot chosen
    on a shortest ``S -> D`` path; recursion bottoms out when no blocks
    remain between S and D (failure 0) or S cannot reach D (failure 1).
    Memoized on the surviving block set.
    """
    failures = {n: rbd.block(n).failure for n in rbd.blocks}
    rels = {n: rbd.block(n).reliability for n in rbd.blocks}
    memo: dict[frozenset, float] = {}

    def failure_of(g: nx.DiGraph) -> float:
        # Contract/delete operations commute, but different removal
        # partitions can leave the same block set with different wiring,
        # so the memo key must identify the full graph.
        key = frozenset(g.edges) | frozenset((n,) for n in g.nodes)
        if key in memo:
            return memo[key]
        if not nx.has_path(g, SOURCE, DEST):
            memo[key] = 1.0
            return 1.0
        # A working path with no blocks on it?
        path = nx.shortest_path(g, SOURCE, DEST)
        interior = [n for n in path if n not in (SOURCE, DEST)]
        if not interior:
            memo[key] = 0.0
            return 0.0
        pivot = interior[0]
        up = failure_of(_contract(g, pivot))
        g_down = g.copy()
        g_down.remove_node(pivot)
        down = failure_of(g_down)
        out = rels[pivot] * up + failures[pivot] * down
        memo[key] = out
        return out

    f = failure_of(rbd.graph)
    return logrel.from_failure(min(max(f, 0.0), 1.0))


def minimal_path_sets(rbd: RBD) -> list[frozenset]:
    """Inclusion-minimal block sets whose joint operation connects S to D."""
    sets = [frozenset(p) for p in rbd.simple_paths()]
    return _inclusion_minimal(sets)


def minimal_cut_sets(rbd: RBD, max_blocks: int = 48) -> list[frozenset]:
    """Inclusion-minimal block sets whose joint failure disconnects S from D.

    Computed as the minimal hitting sets ("transversals") of the minimal
    path sets, by iterated expansion — exact, and practical at the
    paper's diagram sizes (cf. Jensen & Bellmore [24]: the number of
    minimal cuts can be exponential, which is the paper's argument for
    routing operations).
    """
    if rbd.n_blocks > max_blocks:
        raise ValueError(f"{rbd.n_blocks} blocks exceed the cut-set cap ({max_blocks})")
    paths = minimal_path_sets(rbd)
    if not paths:
        return []
    # Iteratively build minimal transversals of the path hypergraph.
    transversals: list[frozenset] = [frozenset()]
    for path in paths:
        new: list[frozenset] = []
        for t in transversals:
            if t & path:
                new.append(t)
            else:
                for b in path:
                    new.append(t | {b})
        transversals = _inclusion_minimal(new)
    return sorted(transversals, key=lambda s: (len(s), sorted(map(str, s))))


def _inclusion_minimal(sets: Iterable[frozenset]) -> list[frozenset]:
    uniq = sorted(set(sets), key=len)
    out: list[frozenset] = []
    for s in uniq:
        if not any(kept < s or kept == s for kept in out):
            out.append(s)
    return out


def cut_set_lower_bound(rbd: RBD) -> float:
    """The paper's serial-composition-of-minimal-cuts approximation.

    Each minimal cut contributes a parallel block group; the groups are
    composed in series.  FKG gives ``result <= exact`` (log domain).
    """
    cuts = minimal_cut_sets(rbd)
    return logrel.serial(
        logrel.parallel([rbd.block(b).log_reliability for b in cut]) for cut in cuts
    )


def path_set_upper_bound(rbd: RBD) -> float:
    """Parallel composition of minimal path sets: an upper bound (FKG)."""
    paths = minimal_path_sets(rbd)
    return logrel.parallel(
        logrel.serial(rbd.block(b).log_reliability for b in path) for path in paths
    )
