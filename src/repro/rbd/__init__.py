"""Reliability Block Diagrams (Section 4).

An RBD is an acyclic oriented graph of *blocks* between a source ``S``
and a destination ``D``; the system it models is operational iff some
``S -> D`` path has all its blocks operational.  The paper evaluates
mapping reliability by building the mapping's RBD: serial-parallel when
routing operations are inserted (Figure 5; linear-time evaluation,
Eq. (9)) and of no particular form without them (Figure 4; evaluation is
exponential in general — Section 4 discusses minimal cut sets as an
approximation).

This subpackage provides the full machinery:

* :mod:`repro.rbd.diagram` — the RBD data structure;
* :mod:`repro.rbd.build` — mapping -> RBD in both forms;
* :mod:`repro.rbd.seriesparallel` — series-parallel reduction and the
  linear-time evaluation it enables;
* :mod:`repro.rbd.evaluate` — exact evaluation (state enumeration,
  pivotal factoring), minimal path/cut sets, and the FKG bounds that
  make the paper's cut-set approximation a guaranteed lower bound;
* :mod:`repro.rbd.montecarlo` — sampling-based estimation.
"""

from repro.rbd.diagram import Block, RBD
from repro.rbd.build import rbd_with_routing, rbd_without_routing
from repro.rbd.evaluate import (
    exact_log_reliability_enumeration,
    exact_log_reliability_factoring,
    minimal_path_sets,
    minimal_cut_sets,
    cut_set_lower_bound,
    path_set_upper_bound,
)
from repro.rbd.seriesparallel import series_parallel_log_reliability
from repro.rbd.montecarlo import estimate_log_reliability

__all__ = [
    "Block",
    "RBD",
    "rbd_with_routing",
    "rbd_without_routing",
    "exact_log_reliability_enumeration",
    "exact_log_reliability_factoring",
    "minimal_path_sets",
    "minimal_cut_sets",
    "cut_set_lower_bound",
    "path_set_upper_bound",
    "series_parallel_log_reliability",
    "estimate_log_reliability",
]
