"""Build the RBD of a multiprocessor interval mapping (Figures 4 and 5).

Two constructions:

* :func:`rbd_with_routing` — the paper's production form (Figure 5):
  a routing operation ``R_j`` is inserted between consecutive intervals,
  every replica of ``I_j`` sends to ``R_j`` and every replica of
  ``I_{j+1}`` receives from it.  The result is serial-parallel by
  construction, so its reliability is Eq. (9) and is computable in
  linear time.  Routing operations execute in zero time and their
  blocks have reliability 1 by default ([17]); the
  ``routing_log_reliability`` parameter lets experiments relax that.

* :func:`rbd_without_routing` — the general form (Figure 4): replicas
  of ``I_j`` send directly to every replica of ``I_{j+1}`` over
  dedicated links ``L_uv``, producing an RBD "with no particular form"
  whose exact evaluation is exponential in general.  This is the object
  of the paper's Section 9 future-work question, explored in
  :mod:`repro.extensions.norouting`.

Block naming follows the figures: ``I{j}/P{u}`` for interval replicas,
``o{j}/L{u},{v}`` for communications, ``R{j}`` for routers.
"""

from __future__ import annotations

from repro.core.evaluation import comm_log_reliability, interval_log_reliability
from repro.core.mapping import Mapping
from repro.rbd.diagram import DEST, SOURCE, RBD

__all__ = ["rbd_with_routing", "rbd_without_routing"]


def rbd_with_routing(mapping: Mapping, routing_log_reliability: float = 0.0) -> RBD:
    """Figure 5: the serial-parallel RBD with routing operations.

    Communications of size zero (the ``o_0``/``o_n`` conventions) get no
    block, exactly like Figure 5 connects ``S`` straight to the first
    interval's replicas.
    """
    chain, platform = mapping.chain, mapping.platform
    rbd = RBD()
    prev: list = [SOURCE]  # nodes feeding the next stage

    for j, (iv, procs) in enumerate(mapping):
        in_size = mapping.interval_input(j)
        out_size = mapping.interval_output(j)
        ell_in = comm_log_reliability(platform, in_size)
        ell_out = comm_log_reliability(platform, out_size)
        exits: list = []
        for u in procs:
            ell_iv = interval_log_reliability(chain, platform, iv.start, iv.stop, u)
            iv_node = rbd.add_block((j, "I", u), ell_iv, name=f"I{j}/P{u}")
            # Incoming communication from the upstream router (skipped
            # for the first interval / zero-size data).
            if j > 0 and in_size > 0:
                c_in = rbd.add_block(
                    (j, "in", u), ell_in, name=f"o{j - 1}/R{j - 1}->P{u}"
                )
                for src in prev:
                    rbd.add_edge(src, c_in)
                rbd.add_edge(c_in, iv_node)
            else:
                for src in prev:
                    rbd.add_edge(src, iv_node)
            # Outgoing communication towards the downstream router.
            if j < mapping.m - 1 and out_size > 0:
                c_out = rbd.add_block(
                    (j, "out", u), ell_out, name=f"o{j}/P{u}->R{j}"
                )
                rbd.add_edge(iv_node, c_out)
                exits.append(c_out)
            else:
                exits.append(iv_node)

        if j < mapping.m - 1:
            router = rbd.add_block((j, "R"), routing_log_reliability, name=f"R{j}")
            for node in exits:
                rbd.add_edge(node, router)
            prev = [router]
        else:
            for node in exits:
                rbd.add_edge(node, DEST)
    rbd.validate()
    return rbd


def rbd_without_routing(mapping: Mapping) -> RBD:
    """Figure 4: the general RBD without routing operations.

    Between consecutive intervals, each ordered replica pair ``(u, v)``
    communicates over its own link ``L_uv``, giving ``|P_j| * |P_{j+1}|``
    independent communication blocks per boundary (zero-size data gets a
    direct edge instead of a block).
    """
    chain, platform = mapping.chain, mapping.platform
    rbd = RBD()

    # Interval replica blocks first.
    for j, (iv, procs) in enumerate(mapping):
        for u in procs:
            ell_iv = interval_log_reliability(chain, platform, iv.start, iv.stop, u)
            rbd.add_block((j, "I", u), ell_iv, name=f"I{j}/P{u}")

    # Source into the first interval's replicas.
    for u in mapping.replicas[0]:
        rbd.add_edge(SOURCE, (0, "I", u))

    # Communications between consecutive stages.
    for j in range(mapping.m - 1):
        out_size = mapping.interval_output(j)
        ell_comm = comm_log_reliability(platform, out_size)
        for u in mapping.replicas[j]:
            for v in mapping.replicas[j + 1]:
                if out_size > 0:
                    c = rbd.add_block(
                        (j, "comm", u, v), ell_comm, name=f"o{j}/L{u},{v}"
                    )
                    rbd.add_edge((j, "I", u), c)
                    rbd.add_edge(c, (j + 1, "I", v))
                else:
                    rbd.add_edge((j, "I", u), (j + 1, "I", v))

    # Last interval's replicas into the destination.
    for u in mapping.replicas[-1]:
        rbd.add_edge((mapping.m - 1, "I", u), DEST)
    rbd.validate()
    return rbd
