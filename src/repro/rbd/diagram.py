"""The Reliability Block Diagram data structure.

Formally (Section 4): an RBD is an acyclic oriented graph ``(N, E)``
where each node is a *block* representing an element of the system and
each arc is a causality link; two special connection points are the
source ``S`` and the destination ``D``.  The RBD is operational iff
there exists at least one ``S -> D`` path whose blocks are all
operational; block operational probabilities are independent.

Blocks live on *nodes* (as in the paper's figures); ``S`` and ``D`` are
connection points, not blocks — they never fail.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

import networkx as nx

from repro.util import logrel

__all__ = ["SOURCE", "DEST", "Block", "RBD"]

#: Reserved node names for the two connection points.
SOURCE = "S"
DEST = "D"


@dataclass(frozen=True)
class Block:
    """One block of an RBD: a named element with a log-reliability."""

    name: str
    log_reliability: float

    def __post_init__(self) -> None:
        logrel.check_logrel(self.log_reliability)

    @property
    def reliability(self) -> float:
        return logrel.reliability(self.log_reliability)

    @property
    def failure(self) -> float:
        return logrel.failure(self.log_reliability)


class RBD:
    """A reliability block diagram.

    Examples
    --------
    >>> rbd = RBD()
    >>> a = rbd.add_block("A", -0.1)
    >>> b = rbd.add_block("B", -0.2)
    >>> rbd.add_edge(SOURCE, a); rbd.add_edge(a, DEST)
    >>> rbd.add_edge(SOURCE, b); rbd.add_edge(b, DEST)
    >>> rbd.n_blocks     # A and B in parallel
    2
    """

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._graph.add_node(SOURCE)
        self._graph.add_node(DEST)
        self._blocks: dict[Hashable, Block] = {}

    # -- construction -----------------------------------------------------------

    def add_block(
        self, node: Hashable, log_reliability: float, name: str | None = None
    ) -> Hashable:
        """Add a block node; returns its id for convenience."""
        if node in (SOURCE, DEST):
            raise ValueError(f"{node!r} is a reserved connection point")
        if node in self._blocks:
            raise ValueError(f"block {node!r} already exists")
        self._blocks[node] = Block(str(name if name is not None else node), log_reliability)
        self._graph.add_node(node)
        return node

    def add_edge(self, u: Hashable, v: Hashable) -> None:
        """Add a causality link; both endpoints must already exist."""
        for x in (u, v):
            if x not in self._graph:
                raise ValueError(f"unknown node {x!r}; add the block first")
        if u == v:
            raise ValueError("self-loops are not allowed")
        self._graph.add_edge(u, v)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(u, v)
            raise ValueError(f"edge {u!r} -> {v!r} would create a cycle")

    # -- accessors ----------------------------------------------------------------

    @property
    def graph(self) -> nx.DiGraph:
        """The underlying DAG (do not mutate)."""
        return self._graph

    @property
    def blocks(self) -> dict[Hashable, Block]:
        """Mapping node id -> Block (excludes S and D)."""
        return dict(self._blocks)

    @property
    def n_blocks(self) -> int:
        return len(self._blocks)

    def block(self, node: Hashable) -> Block:
        return self._blocks[node]

    def validate(self) -> None:
        """Check that the diagram is a meaningful two-terminal DAG.

        Raises
        ------
        ValueError
            If there is no ``S -> D`` path at all, or some block lies on
            no ``S -> D`` path (it would be dead weight and is almost
            always a construction bug).
        """
        g = self._graph
        if not nx.has_path(g, SOURCE, DEST):
            raise ValueError("no path from S to D: the system can never operate")
        reachable_from_s = nx.descendants(g, SOURCE) | {SOURCE}
        reaching_d = nx.ancestors(g, DEST) | {DEST}
        for node in self._blocks:
            if node not in reachable_from_s or node not in reaching_d:
                raise ValueError(f"block {node!r} lies on no S->D path")

    # -- path structure -------------------------------------------------------------

    def simple_paths(self) -> Iterable[list[Hashable]]:
        """All simple ``S -> D`` paths as block-id lists (S/D stripped)."""
        for path in nx.all_simple_paths(self._graph, SOURCE, DEST):
            yield [n for n in path if n not in (SOURCE, DEST)]

    def operational(self, up_blocks: set[Hashable]) -> bool:
        """Is the system operational when exactly *up_blocks* work?

        Used by state enumeration and Monte Carlo; runs a reachability
        query on the subgraph induced by working blocks plus S and D.
        """
        g = self._graph
        allowed = set(up_blocks) | {SOURCE, DEST}
        # BFS from S through allowed nodes only.
        stack, seen = [SOURCE], {SOURCE}
        while stack:
            u = stack.pop()
            if u == DEST:
                return True
            for v in g.successors(u):
                if v in allowed and v not in seen:
                    seen.add(v)
                    stack.append(v)
        return False

    def __repr__(self) -> str:
        return (
            f"RBD({self.n_blocks} blocks, {self._graph.number_of_edges()} edges)"
        )
