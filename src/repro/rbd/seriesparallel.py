"""Series-parallel recognition and linear-time evaluation.

The routed construction (Figure 5) yields serial-parallel RBDs; this
module evaluates any two-terminal series-parallel RBD in (near) linear
time by exhaustive reduction, and raises :class:`NotSeriesParallel` for
diagrams that are not SP — e.g. the Figure 4 no-routing form with 2x2
replicas, which is exactly why the paper inserts routing operations.

Method: the node-blocks are first expanded into an edge-weighted
multigraph (block ``b`` becomes edge ``b_in -> b_out`` carrying its
log-reliability; causality arcs become perfect edges), then the two
classic reductions are applied to a fixpoint:

* series: an interior vertex with in-degree 1 and out-degree 1 merges
  its edges (log-reliabilities add);
* parallel: multi-edges between the same vertices merge
  (``1 - prod(1 - r)``).

The diagram is SP iff the fixpoint is the single edge ``S -> D``.
"""

from __future__ import annotations

import networkx as nx

from repro.rbd.diagram import DEST, SOURCE, RBD
from repro.util import logrel

__all__ = ["NotSeriesParallel", "series_parallel_log_reliability"]


class NotSeriesParallel(ValueError):
    """Raised when an RBD does not reduce to a single S->D edge."""


def _to_edge_multigraph(rbd: RBD) -> nx.MultiDiGraph:
    g = nx.MultiDiGraph()
    for node, block in rbd.blocks.items():
        g.add_edge(("in", node), ("out", node), ell=block.log_reliability)
    for u, v in rbd.graph.edges():
        uu = SOURCE if u == SOURCE else ("out", u)
        vv = DEST if v == DEST else ("in", v)
        g.add_edge(uu, vv, ell=0.0)
    return g


def series_parallel_log_reliability(rbd: RBD) -> float:
    """Log-reliability of a series-parallel RBD (linear-time, Eq. (9) on
    routed mappings).

    Raises
    ------
    NotSeriesParallel
        If the reduction stalls before reaching a single ``S -> D`` edge.
    """
    g = _to_edge_multigraph(rbd)

    changed = True
    while changed:
        changed = False
        # Parallel reductions: collapse multi-edges.
        for u, v in list({(u, v) for u, v, _ in g.edges(keys=True)}):
            keys = list(g[u].get(v, {}))
            if len(keys) > 1:
                ells = [g[u][v][k]["ell"] for k in keys]
                g.remove_edges_from([(u, v, k) for k in keys])
                g.add_edge(u, v, ell=logrel.parallel(ells))
                changed = True
        # Series reductions: splice degree-(1,1) interior vertices.
        for node in list(g.nodes()):
            if node in (SOURCE, DEST) or node not in g:
                continue
            if g.in_degree(node) == 1 and g.out_degree(node) == 1:
                (u, _, k1), = g.in_edges(node, keys=True)
                (_, w, k2), = g.out_edges(node, keys=True)
                if u == node or w == node:
                    continue  # self-loop guard (cannot happen in a DAG)
                ell = g[u][node][k1]["ell"] + g[node][w][k2]["ell"]
                g.remove_node(node)
                if u == SOURCE and w == DEST and g.number_of_nodes() > 2:
                    # Keep reducing the rest before merging into S->D.
                    pass
                g.add_edge(u, w, ell=ell)
                changed = True

    if (
        g.number_of_nodes() == 2
        and g.number_of_edges() == 1
        and g.has_edge(SOURCE, DEST)
    ):
        (ell,) = (d["ell"] for _, _, d in g.edges(data=True))
        return float(ell)
    raise NotSeriesParallel(
        f"RBD is not series-parallel (stalled at {g.number_of_nodes()} nodes, "
        f"{g.number_of_edges()} edges); use exact factoring instead"
    )
