"""Monte Carlo estimation of RBD reliability.

Samples block states independently with their reliabilities and counts
operational outcomes.  Useful as an end-to-end sanity check on diagrams
too large for enumeration, and as the statistical baseline the
discrete-event simulator is compared against.

Estimates come with a Wilson score interval; at the paper's 1e-8
failure rates a direct MC cannot resolve anything (that is precisely
why the paper computes reliabilities analytically) — tests inflate the
rates instead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.rbd.diagram import RBD
from repro.util import logrel
from repro.util.rng import ensure_rng

__all__ = ["MonteCarloEstimate", "estimate_log_reliability", "wilson_interval"]


def wilson_interval(successes: int, trials: int, z: float = 1.96) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    The boundary cases pin their exact endpoint: all-successes returns
    an upper bound of exactly 1.0 (the float arithmetic otherwise lands
    at 1 - 1ulp, which would spuriously exclude a true proportion of
    1.0 — e.g. an analytical reliability within 1e-18 of certainty),
    and symmetrically all-failures returns a lower bound of exactly 0.
    """
    if trials <= 0:
        raise ValueError("trials must be > 0")
    phat = successes / trials
    denom = 1 + z * z / trials
    center = (phat + z * z / (2 * trials)) / denom
    half = z * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials)) / denom
    lo = 0.0 if successes == 0 else max(0.0, center - half)
    hi = 1.0 if successes == trials else min(1.0, center + half)
    return lo, hi


@dataclass(frozen=True)
class MonteCarloEstimate:
    """Result of a Monte Carlo reliability estimation."""

    trials: int
    successes: int
    z: float = 1.96

    @property
    def reliability(self) -> float:
        return self.successes / self.trials

    @property
    def log_reliability(self) -> float:
        if self.successes == 0:
            return -math.inf
        return math.log(self.successes / self.trials)

    @property
    def confidence_interval(self) -> tuple[float, float]:
        return wilson_interval(self.successes, self.trials, self.z)

    def consistent_with(self, log_reliability: float) -> bool:
        """Does *log_reliability* fall inside the confidence interval?"""
        lo, hi = self.confidence_interval
        r = logrel.reliability(log_reliability)
        return lo <= r <= hi


def estimate_log_reliability(
    rbd: RBD,
    trials: int = 10_000,
    rng: "int | None | np.random.Generator" = None,
) -> MonteCarloEstimate:
    """Estimate the RBD's reliability by sampling block states.

    The sampler evaluates operability through the minimal path sets
    (vectorized over trials); falls back to per-trial graph reachability
    when the path structure is too large.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    gen = ensure_rng(rng)
    nodes = list(rbd.blocks)
    if not nodes:
        # No blocks: operational iff an S->D edge exists.
        ok = rbd.operational(set())
        return MonteCarloEstimate(trials=trials, successes=trials if ok else 0)
    rel = np.array([rbd.block(n).reliability for n in nodes])
    up = gen.random((trials, len(nodes))) < rel  # (trials, B) block states

    paths = None
    try:
        from repro.rbd.evaluate import minimal_path_sets

        psets = minimal_path_sets(rbd)
        if 0 < len(psets) <= 512:
            index = {n: i for i, n in enumerate(nodes)}
            paths = [np.array([index[b] for b in ps], dtype=int) for ps in psets]
    except Exception:  # pragma: no cover - defensive; falls back below
        paths = None

    if paths is not None:
        operational = np.zeros(trials, dtype=bool)
        for cols in paths:
            operational |= up[:, cols].all(axis=1)
        successes = int(operational.sum())
    else:  # pragma: no cover - exercised only on huge diagrams
        successes = 0
        for t in range(trials):
            state = {n for n, u in zip(nodes, up[t]) if u}
            successes += rbd.operational(state)
    return MonteCarloEstimate(trials=trials, successes=successes)
