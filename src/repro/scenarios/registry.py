"""Scenario registry: named workloads with capability metadata.

Mirrors the method registry of :mod:`repro.experiments.methods`:
scenarios live in a process-wide registry so the harness, the CLI, the
cross-check, and the cache can all refer to a workload *by name* — and
so cache keys and worker processes deal in strings, not objects.

A :class:`Scenario` couples a :class:`~repro.scenarios.spec.ScenarioSpec`
with capability metadata:

* ``homogeneous`` — every generated platform is homogeneous, so the
  Section 5 exact methods (``Method.homogeneous_only``) apply to the
  whole ensemble.  Enforced against the spec at registration time: a
  scenario cannot *claim* homogeneity its distributions do not deliver,
  which is what keeps the harness's exact-method gating trustworthy.
* ``tags`` — free-form labels (``"section8"``, ``"scaling"``, ...) for
  discovery in ``repro scenario list``.

Extending the registry::

    from repro.scenarios import ScenarioSpec, register_scenario

    register_scenario(
        ScenarioSpec(name="my-workload", n_tasks=30, ...),
        homogeneous=True,
        tags=("custom",),
    )
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.scenarios.spec import ScenarioSpec, spec_is_homogeneous

__all__ = [
    "Scenario",
    "SCENARIOS",
    "UnknownScenarioError",
    "get_scenario",
    "register_scenario",
]


class UnknownScenarioError(KeyError, ValueError):
    """Raised when a scenario name is not in the registry.

    Like :class:`~repro.experiments.methods.UnknownMethodError`, it
    subclasses both :class:`KeyError` (the registry is a mapping) and
    :class:`ValueError` (argument validation), so callers catching
    either keep working.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class Scenario:
    """A registered workload: spec plus capability metadata."""

    spec: ScenarioSpec
    homogeneous: bool = False
    tags: tuple[str, ...] = ()

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def paired(self) -> bool:
        return self.spec.paired

    def generate(self, n_instances: "int | None" = None, seed: int = 0) -> list:
        """Generate and materialize the ensemble's instances.

        Convenience over :func:`repro.scenarios.generate_ensembles`;
        prefer :meth:`generate_ensembles` to keep the columnar form.
        """
        from repro.scenarios.generate import materialize_instances

        return materialize_instances(self.spec, n_instances=n_instances, seed=seed)

    def generate_ensembles(
        self, n_instances: "int | None" = None, seed: int = 0
    ) -> list:
        """Generate the columnar ensembles (one per concrete variant)."""
        from repro.scenarios.generate import generate_ensembles

        return generate_ensembles(self.spec, n_instances=n_instances, seed=seed)

    def describe(self) -> dict[str, Any]:
        """Flat summary record for CLI listings and manifests."""
        spec = self.spec
        return {
            "name": self.name,
            "description": spec.description,
            "n_instances": spec.n_instances,
            "n_tasks": spec.n_tasks,
            "p": spec.p,
            "K": spec.K,
            "rng_mode": spec.rng_mode,
            "homogeneous": self.homogeneous,
            "paired": self.paired,
            "variants": len(spec.variants()),
            "tags": list(self.tags),
        }


#: The process-wide registry (name -> Scenario).  Mutate only through
#: :func:`register_scenario`.
SCENARIOS: dict[str, Scenario] = {}


def register_scenario(
    spec: ScenarioSpec,
    *,
    homogeneous: bool = False,
    tags: "tuple[str, ...] | list[str]" = (),
    replace: bool = False,
) -> Scenario:
    """Register *spec* under its name; returns the :class:`Scenario`.

    Duplicate names are rejected (``ValueError``) unless
    ``replace=True``, exactly like :func:`repro.experiments.methods.
    register_method`.  A ``homogeneous=True`` claim is checked against
    the spec (constant speeds and failure rates, unpaired) so exact
    ``homogeneous_only`` methods can trust the flag.
    """
    if not isinstance(spec, ScenarioSpec):
        raise TypeError(f"register_scenario needs a ScenarioSpec, got {type(spec).__name__}")
    if spec.name in SCENARIOS and not replace:
        raise ValueError(
            f"scenario {spec.name!r} is already registered (pass replace=True to override)"
        )
    if homogeneous and not spec_is_homogeneous(spec):
        raise ValueError(
            f"scenario {spec.name!r} claims homogeneous=True but its spec draws "
            f"heterogeneous platforms (speed={spec.speed.kind!r}, "
            f"proc_failure={spec.proc_failure.kind!r}, paired={spec.paired}); "
            f"exact-method gating would run Section 5 algorithms out of scope"
        )
    scenario = Scenario(spec=spec, homogeneous=homogeneous, tags=tuple(tags))
    SCENARIOS[spec.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look up a registered scenario by name.

    Raises
    ------
    UnknownScenarioError
        With the sorted list of known names.
    """
    try:
        return SCENARIOS[name]
    except KeyError:
        raise UnknownScenarioError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
