"""Ensemble generation from scenario specs.

Two RNG modes, one contract each:

``per-instance`` (default)
    ``spawn`` one child stream per instance off the master seed and
    draw each instance's fields from its own stream in the legacy
    order: work, then output, then speeds, then failure rates —
    constant distributions consume nothing.  This reproduces
    :func:`repro.experiments.instances.homogeneous_suite` /
    :func:`~repro.experiments.instances.heterogeneous_suite` **bit for
    bit** for the ``section8-*`` specs (checked by
    ``tests/test_scenarios.py``), and extending ``n_instances`` never
    changes earlier instances.

``batched``
    ``spawn`` one stream per *field* (work, output, speed, rate — in
    that fixed order) and draw whole ``(n_instances, n_tasks)`` /
    ``(n_instances, p)`` matrices in single numpy calls, then assemble
    objects in one cheap pass.  Several times faster for
    thousand-instance ensembles (``benchmarks/
    bench_scenario_generation.py`` measures the gap); the per-instance
    prefix property does not hold.

Sweep-axis specs expand into their concrete variants first
(:meth:`~repro.scenarios.spec.ScenarioSpec.variants`); each variant
gets an independent seed derived via :func:`repro.util.rng.stable_seed`
(a spec with no axes passes the caller's seed straight through, which
is what keeps the Section 8 re-expressions seed-compatible).
"""

from __future__ import annotations

import numpy as np

from repro.core.chain import TaskChain
from repro.core.platform import Platform
from repro.scenarios.distributions import Constant
from repro.scenarios.registry import Scenario, get_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.util.rng import ensure_rng, spawn, stable_seed

__all__ = ["generate_instances", "resolve_scenario"]


def resolve_scenario(
    scenario: "str | ScenarioSpec | Scenario",
) -> "tuple[ScenarioSpec, Scenario | None]":
    """Normalize a scenario argument to ``(spec, registry entry or None)``.

    Accepts a registry name, a bare :class:`ScenarioSpec` (e.g. loaded
    from a file), or a :class:`Scenario`.  Unknown names raise
    :class:`~repro.scenarios.registry.UnknownScenarioError`.
    """
    if isinstance(scenario, str):
        entry = get_scenario(scenario)
        return entry.spec, entry
    if isinstance(scenario, Scenario):
        return scenario.spec, scenario
    if isinstance(scenario, ScenarioSpec):
        return scenario, None
    raise TypeError(
        f"scenario must be a registry name, ScenarioSpec, or Scenario, "
        f"got {type(scenario).__name__}"
    )


def generate_instances(
    scenario: "str | ScenarioSpec | Scenario",
    n_instances: "int | None" = None,
    seed: int = 0,
) -> list:
    """Generate the ensemble described by *scenario*.

    Returns ``(chain, platform)`` tuples for plain specs, or
    :class:`~repro.experiments.instances.HetInstancePair` records for
    paired specs (``hom_counterpart_speed`` set) — the shapes the sweep
    harness and the het experiments already consume.  Sweep-axis specs
    return the concatenation of all variants, ``n_instances`` each, in
    variant order.
    """
    spec, _ = resolve_scenario(scenario)
    if n_instances is not None:
        spec = spec.with_(n_instances=n_instances)
    variants = spec.variants()
    if len(variants) == 1:
        return _generate_concrete(variants[0], seed)
    out: list = []
    for vi, sub in enumerate(variants):
        out.extend(_generate_concrete(sub, stable_seed("scenario-variant", seed, vi)))
    return out


def _hom_counterpart(spec: ScenarioSpec) -> "Platform | None":
    if not spec.paired:
        return None
    return Platform.homogeneous_platform(
        spec.p,
        speed=float(spec.hom_counterpart_speed),
        failure_rate=_constant_rate(spec),
        bandwidth=spec.bandwidth,
        link_failure_rate=spec.link_failure_rate,
        max_replication=spec.K,
    )


def _constant_rate(spec: ScenarioSpec) -> float:
    """The counterpart platform's failure rate.

    Section 8.2 keeps ``lambda_u`` constant; any other regime (even a
    deterministic one like hot-spare) has no single rate the
    homogeneous counterpart could honestly carry, so paired specs
    require a :class:`~repro.scenarios.distributions.Constant`.
    """
    if not isinstance(spec.proc_failure, Constant):
        raise ValueError(
            f"paired scenario {spec.name!r} needs a constant proc_failure "
            f"regime for the homogeneous counterpart, got "
            f"{spec.proc_failure.kind!r}"
        )
    return float(spec.proc_failure.value)


def _shared_platform(spec: ScenarioSpec) -> "Platform | None":
    """One Platform for the whole ensemble when nothing platform-side is
    stochastic (matches the legacy suites, which build it once)."""
    if spec.speed.stochastic or spec.proc_failure.stochastic:
        return None
    speeds = spec.speed.draw(np.random.default_rng(0), spec.p)
    rates = spec.proc_failure.draw(np.random.default_rng(0), spec.p)
    return Platform(
        speeds=speeds,
        failure_rates=rates,
        bandwidth=spec.bandwidth,
        link_failure_rate=spec.link_failure_rate,
        max_replication=spec.K,
    )


def _pair_type():
    # Lazy: repro.experiments imports the harness (which imports
    # repro.io, which lazily imports this package) — a module-level
    # import here would close an import cycle during package init.
    from repro.experiments.instances import HetInstancePair

    return HetInstancePair


def _generate_concrete(spec: ScenarioSpec, seed: int) -> list:
    """Generate one concrete (scalar-axis) variant's ensemble."""
    if spec.rng_mode == "per-instance":
        return _generate_per_instance(spec, seed)
    return _generate_batched(spec, seed)


def _generate_per_instance(spec: ScenarioSpec, seed: int) -> list:
    master = ensure_rng(seed)
    streams = spawn(master, spec.n_instances)
    n, p = spec.n_tasks, spec.p
    shared = _shared_platform(spec)
    hom = _hom_counterpart(spec)
    pair_cls = _pair_type() if spec.paired else None

    out: list = []
    for rng in streams:
        # Legacy draw order: work, output (chain), then platform fields.
        work = spec.work.draw(rng, n)
        if hasattr(spec.output, "draw_given"):
            output = spec.output.draw_given(rng, work)
        else:
            output = spec.output.draw(rng, n)
        output[-1] = 0.0
        chain = TaskChain(work=work, output=output)
        if shared is not None:
            platform = shared
        else:
            speeds = spec.speed.draw(rng, p)
            rates = spec.proc_failure.draw(rng, p)
            platform = Platform(
                speeds=speeds,
                failure_rates=rates,
                bandwidth=spec.bandwidth,
                link_failure_rate=spec.link_failure_rate,
                max_replication=spec.K,
            )
        if pair_cls is not None:
            out.append(pair_cls(chain, platform, hom))
        else:
            out.append((chain, platform))
    return out


def _generate_batched(spec: ScenarioSpec, seed: int) -> list:
    master = ensure_rng(seed)
    # One stream per field, spawned in fixed order — n_instances does
    # not influence the spawn, only how much each stream is consumed.
    work_rng, out_rng, speed_rng, rate_rng = spawn(master, 4)
    m, n, p = spec.n_instances, spec.n_tasks, spec.p

    work = spec.work.draw(work_rng, (m, n))
    if hasattr(spec.output, "draw_given"):
        output = spec.output.draw_given(out_rng, work)
    else:
        output = spec.output.draw(out_rng, (m, n))
    output[:, -1] = 0.0

    shared = _shared_platform(spec)
    if shared is None:
        speeds = spec.speed.draw(speed_rng, (m, p))
        rates = spec.proc_failure.draw(rate_rng, (m, p))
        platforms = [
            Platform(
                speeds=s,
                failure_rates=r,
                bandwidth=spec.bandwidth,
                link_failure_rate=spec.link_failure_rate,
                max_replication=spec.K,
            )
            for s, r in zip(speeds, rates)
        ]
    else:
        platforms = [shared] * m

    chains = [TaskChain(work=w, output=o) for w, o in zip(work, output)]
    if spec.paired:
        hom = _hom_counterpart(spec)
        pair_cls = _pair_type()
        return [pair_cls(c, plat, hom) for c, plat in zip(chains, platforms)]
    return list(zip(chains, platforms))
