"""Ensemble generation from scenario specs — columnar, two RNG modes.

Generation now produces :class:`repro.core.ensemble.Ensemble` objects
(struct-of-arrays, one row per instance) instead of per-instance
``TaskChain``/``Platform`` objects; rows materialize lazily through
:class:`~repro.core.ensemble.InstanceView`, so a sweep served from a
warm cache never constructs a model object at all.  The two RNG modes
keep their contracts exactly — only the storage changed:

``per-instance`` (default)
    ``spawn`` one child stream per instance off the master seed and
    draw each instance's fields from its own stream in the legacy
    order: work, then output, then speeds, then failure rates —
    constant distributions consume nothing.  The materialized rows
    reproduce :func:`repro.experiments.instances.homogeneous_suite` /
    :func:`~repro.experiments.instances.heterogeneous_suite` **bit for
    bit** for the ``section8-*`` specs (checked by
    ``tests/test_scenarios.py`` and ``tests/test_ensemble.py``), and
    extending ``n_instances`` never changes earlier instances.

``batched``
    ``spawn`` one stream per *field* (work, output, speed, rate — in
    that fixed order) and draw whole ``(n_instances, n_tasks)`` /
    ``(n_instances, p)`` matrices in single numpy calls.  The matrices
    *are* the ensemble storage — no per-instance assembly pass at all,
    which is where the order-of-magnitude generation speedup of
    ``benchmarks/bench_scenario_generation.py`` comes from; the
    per-instance prefix property does not hold.

Sweep-axis specs expand into their concrete variants first
(:meth:`~repro.scenarios.spec.ScenarioSpec.variants`); each variant
gets an independent seed derived via :func:`repro.util.rng.stable_seed`
(a spec with no axes passes the caller's seed straight through, which
is what keeps the Section 8 re-expressions seed-compatible) and
becomes one :class:`Ensemble` — variants differ in dimensions, so they
cannot share one rectangular array block.

The pre-columnar per-instance list API (``generate_instances``) has
been removed after its one-release deprecation window; call
:func:`generate_ensemble` / :func:`generate_ensembles` and keep the
columnar form, or :func:`materialize_instances` where per-instance
objects are genuinely needed.
"""

from __future__ import annotations

import numpy as np

from repro.core.ensemble import Ensemble
from repro.scenarios.distributions import Constant
from repro.scenarios.registry import Scenario, get_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.util.rng import ensure_rng, spawn, stable_seed

__all__ = [
    "generate_ensemble",
    "generate_ensembles",
    "resolve_scenario",
]


def resolve_scenario(
    scenario: "str | ScenarioSpec | Scenario",
) -> "tuple[ScenarioSpec, Scenario | None]":
    """Normalize a scenario argument to ``(spec, registry entry or None)``.

    Accepts a registry name, a bare :class:`ScenarioSpec` (e.g. loaded
    from a file), or a :class:`Scenario`.  Unknown names raise
    :class:`~repro.scenarios.registry.UnknownScenarioError`.
    """
    if isinstance(scenario, str):
        entry = get_scenario(scenario)
        return entry.spec, entry
    if isinstance(scenario, Scenario):
        return scenario.spec, scenario
    if isinstance(scenario, ScenarioSpec):
        return scenario, None
    raise TypeError(
        f"scenario must be a registry name, ScenarioSpec, or Scenario, "
        f"got {type(scenario).__name__}"
    )


def generate_ensembles(
    scenario: "str | ScenarioSpec | Scenario",
    n_instances: "int | None" = None,
    seed: int = 0,
) -> "list[Ensemble]":
    """Generate the columnar ensembles described by *scenario*.

    Returns one :class:`~repro.core.ensemble.Ensemble` per concrete
    variant, in variant order (plain specs yield a single-element
    list).  Paired specs produce paired ensembles: views expose the
    heterogeneous side, ``ensemble.hom_platform`` /
    ``ensemble.hom_counterpart()`` the Section 8.2 counterpart.
    """
    spec, _ = resolve_scenario(scenario)
    if n_instances is not None:
        spec = spec.with_(n_instances=n_instances)
    variants = spec.variants()
    if len(variants) == 1:
        return [_generate_concrete(variants[0], seed)]
    return [
        _generate_concrete(sub, stable_seed("scenario-variant", seed, vi))
        for vi, sub in enumerate(variants)
    ]


def generate_ensemble(
    scenario: "str | ScenarioSpec | Scenario",
    n_instances: "int | None" = None,
    seed: int = 0,
) -> Ensemble:
    """Generate a single-variant scenario's :class:`Ensemble`.

    Sweep-axis specs describe several differently-shaped ensembles and
    raise — iterate :func:`generate_ensembles` for those.
    """
    ensembles = generate_ensembles(scenario, n_instances=n_instances, seed=seed)
    if len(ensembles) != 1:
        raise ValueError(
            f"scenario expands to {len(ensembles)} variants; "
            f"use generate_ensembles() for sweep-axis specs"
        )
    return ensembles[0]


def materialize_instances(
    scenario: "str | ScenarioSpec | Scenario",
    n_instances: "int | None" = None,
    seed: int = 0,
) -> list:
    """Generate and materialize every instance.

    Materializes every row: ``(chain, platform)`` tuples for plain
    specs, :class:`~repro.experiments.instances.HetInstancePair`
    records for paired specs, variants concatenated in order — exactly
    the shapes the pre-columnar generator produced, bit for bit.  For
    code that genuinely wants objects (tiny ensembles, tests); sweeps
    should keep the columnar :class:`Ensemble`.
    """
    out: list = []
    for ensemble in generate_ensembles(scenario, n_instances=n_instances, seed=seed):
        out.extend(ensemble.materialize())
    return out


def _constant_rate(spec: ScenarioSpec) -> float:
    """The counterpart platform's failure rate.

    Section 8.2 keeps ``lambda_u`` constant; any other regime (even a
    deterministic one like hot-spare) has no single rate the
    homogeneous counterpart could honestly carry, so paired specs
    require a :class:`~repro.scenarios.distributions.Constant`.
    """
    if not isinstance(spec.proc_failure, Constant):
        raise ValueError(
            f"paired scenario {spec.name!r} needs a constant proc_failure "
            f"regime for the homogeneous counterpart, got "
            f"{spec.proc_failure.kind!r}"
        )
    return float(spec.proc_failure.value)


def _shared_platform_rows(spec: ScenarioSpec) -> "tuple[np.ndarray, np.ndarray] | None":
    """One ``(1, p)`` speed/rate row pair when nothing platform-side is
    stochastic (matches the legacy suites, which built one Platform)."""
    if spec.speed.stochastic or spec.proc_failure.stochastic:
        return None
    speeds = np.asarray(spec.speed.draw(np.random.default_rng(0), spec.p), dtype=float)
    rates = np.asarray(spec.proc_failure.draw(np.random.default_rng(0), spec.p), dtype=float)
    return speeds.reshape(1, -1), rates.reshape(1, -1)


def _generate_concrete(spec: ScenarioSpec, seed: int) -> Ensemble:
    """Generate one concrete (scalar-axis) variant's ensemble."""
    if spec.paired:
        _constant_rate(spec)  # paired specs need a single honest rate
    if spec.rng_mode == "per-instance":
        return _generate_per_instance(spec, seed)
    return _generate_batched(spec, seed)


def _generate_per_instance(spec: ScenarioSpec, seed: int) -> Ensemble:
    master = ensure_rng(seed)
    streams = spawn(master, spec.n_instances)
    m, n, p = spec.n_instances, spec.n_tasks, spec.p

    work = np.empty((m, n), dtype=float)
    output = np.empty((m, n), dtype=float)
    shared = _shared_platform_rows(spec)
    if shared is None:
        speeds = np.empty((m, p), dtype=float)
        rates = np.empty((m, p), dtype=float)
    else:
        speeds, rates = shared

    for i, rng in enumerate(streams):
        # Legacy draw order: work, output (chain), then platform fields.
        work[i] = spec.work.draw(rng, n)
        if hasattr(spec.output, "draw_given"):
            output[i] = spec.output.draw_given(rng, work[i])
        else:
            output[i] = spec.output.draw(rng, n)
        if shared is None:
            speeds[i] = spec.speed.draw(rng, p)
            rates[i] = spec.proc_failure.draw(rng, p)
    output[:, -1] = 0.0

    return Ensemble(
        work=work,
        output=output,
        speeds=speeds,
        failure_rates=rates,
        bandwidth=spec.bandwidth,
        link_failure_rate=spec.link_failure_rate,
        max_replication=spec.K,
        hom_counterpart_speed=spec.hom_counterpart_speed,
    )


def _generate_batched(spec: ScenarioSpec, seed: int) -> Ensemble:
    master = ensure_rng(seed)
    # One stream per field, spawned in fixed order — n_instances does
    # not influence the spawn, only how much each stream is consumed.
    work_rng, out_rng, speed_rng, rate_rng = spawn(master, 4)
    m, n, p = spec.n_instances, spec.n_tasks, spec.p

    work = np.asarray(spec.work.draw(work_rng, (m, n)), dtype=float)
    if hasattr(spec.output, "draw_given"):
        output = np.asarray(spec.output.draw_given(out_rng, work), dtype=float)
    else:
        output = np.asarray(spec.output.draw(out_rng, (m, n)), dtype=float)
    output[:, -1] = 0.0

    shared = _shared_platform_rows(spec)
    if shared is None:
        speeds = np.asarray(spec.speed.draw(speed_rng, (m, p)), dtype=float)
        rates = np.asarray(spec.proc_failure.draw(rate_rng, (m, p)), dtype=float)
    else:
        speeds, rates = shared

    return Ensemble(
        work=work,
        output=output,
        speeds=speeds,
        failure_rates=rates,
        bandwidth=spec.bandwidth,
        link_failure_rate=spec.link_failure_rate,
        max_replication=spec.K,
        hom_counterpart_speed=spec.hom_counterpart_speed,
    )
