"""Built-in scenarios: the paper's two suites plus five new families.

``section8-hom`` / ``section8-het`` re-express the hard-coded Section 8
suites of :mod:`repro.experiments.instances` as declarative specs; the
per-instance RNG mode makes their ensembles bit-identical to
``homogeneous_suite()`` / ``heterogeneous_suite()`` under the same seed
(a regression test pins this).  The remaining families push the
workload axes the paper never varied:

================== ================================================ ====
name               what it stresses                                 hom?
================== ================================================ ====
section8-hom       the paper's Section 8.1 suite                    yes
section8-het       the paper's Section 8.2 paired suite             no
scaling-stress     chain-size x processor-count sweep, heavy-tailed yes
                   lognormal work, batched generation
long-chain         120-task chains, bimodal work (many small tasks, yes
                   a few huge ones)
high-heterogeneity lognormal speeds spanning two decades plus       no
                   per-processor loguniform failure rates
unreliable-links   links 100x less reliable than Section 8, halved  yes
                   bandwidth, output sizes correlated with work
hot-spare          mostly-fragile processors with a low-lambda      no
                   spare subset (heterogeneous failure rates only)
================== ================================================ ====

All of them are available by name everywhere a scenario is accepted:
``run_sweep("long-chain", ...)``, ``run_crosscheck(scenario=...)``,
``python -m repro scenario run <name>``.
"""

from __future__ import annotations

from repro.scenarios.distributions import (
    Bimodal,
    Constant,
    Correlated,
    HotSpare,
    LogNormal,
    LogUniform,
    Uniform,
)
from repro.scenarios.registry import register_scenario
from repro.scenarios.spec import ScenarioSpec

__all__ = [
    "SECTION8_HOM",
    "SECTION8_HET",
    "SCALING_STRESS",
    "LONG_CHAIN",
    "HIGH_HETEROGENEITY",
    "UNRELIABLE_LINKS",
    "HOT_SPARE",
]

#: Section 8.1 (Figures 6-11): 100 x 15 tasks on 10 unit-speed
#: processors, integer costs, lambda_p = 1e-8, lambda_l = 1e-5, K = 3.
SECTION8_HOM = ScenarioSpec(
    name="section8-hom",
    description="the paper's Section 8.1 homogeneous suite (Figs. 6-11)",
    n_instances=100,
    n_tasks=15,
    p=10,
    K=3,
    bandwidth=1.0,
    work=Uniform(1.0, 100.0, integral=True),
    output=Uniform(1.0, 10.0, integral=True),
    speed=Constant(1.0),
    proc_failure=Constant(1e-8),
    link_failure_rate=1e-5,
)

#: Section 8.2 (Figures 12-15): same chains, speeds ~ U[1, 100],
#: constant lambda_u, plus the speed-5 homogeneous counterpart.
SECTION8_HET = SECTION8_HOM.with_(
    name="section8-het",
    description="the paper's Section 8.2 heterogeneous paired suite (Figs. 12-15)",
    speed=Uniform(1.0, 100.0, integral=True),
    hom_counterpart_speed=5.0,
)

#: Chain-size x platform-size scaling sweep with heavy-tailed work.
SCALING_STRESS = ScenarioSpec(
    name="scaling-stress",
    description="chain-size x processor-count scaling sweep, lognormal work",
    n_instances=25,
    n_tasks=(20, 40, 80),
    p=(16, 32),
    K=3,
    work=LogNormal(mean=3.2, sigma=0.9, low=1.0, high=500.0),
    output=Uniform(1.0, 10.0),
    speed=Constant(1.0),
    proc_failure=Constant(1e-8),
    link_failure_rate=1e-5,
    rng_mode="batched",
)

#: Very long chains with bimodal work: mostly small tasks, ~15% huge.
LONG_CHAIN = ScenarioSpec(
    name="long-chain",
    description="120-task chains, bimodal work (many small tasks, a few huge)",
    n_instances=50,
    n_tasks=120,
    p=10,
    K=3,
    work=Bimodal(1.0, 20.0, 80.0, 100.0, weight=0.15, integral=True),
    output=Uniform(1.0, 10.0, integral=True),
    speed=Constant(1.0),
    proc_failure=Constant(1e-8),
    link_failure_rate=1e-5,
    rng_mode="batched",
)

#: Speeds spanning two decades and per-processor failure rates.
HIGH_HETEROGENEITY = ScenarioSpec(
    name="high-heterogeneity",
    description="lognormal speeds (two decades) + loguniform per-processor lambda",
    n_instances=50,
    n_tasks=15,
    p=10,
    K=3,
    work=Uniform(1.0, 100.0, integral=True),
    output=Uniform(1.0, 10.0, integral=True),
    speed=LogNormal(mean=2.3, sigma=1.0, low=1.0, high=300.0),
    proc_failure=LogUniform(1e-9, 1e-6),
    link_failure_rate=1e-5,
    rng_mode="batched",
)

#: Links are the weak point: lambda_l 100x Section 8, half bandwidth,
#: and data volume correlated with task weight.
UNRELIABLE_LINKS = ScenarioSpec(
    name="unreliable-links",
    description="lambda_l = 1e-3, halved bandwidth, output correlated with work",
    n_instances=50,
    n_tasks=15,
    p=10,
    K=3,
    bandwidth=0.5,
    work=Uniform(1.0, 100.0, integral=True),
    output=Correlated(1.0, 10.0, rho=0.8),
    speed=Constant(1.0),
    proc_failure=Constant(1e-8),
    link_failure_rate=1e-3,
)

#: Fragile fleet with a small low-lambda "hot spare" subset.
HOT_SPARE = ScenarioSpec(
    name="hot-spare",
    description="fragile processors (lambda 1e-5) with 3 hot spares at 1e-9",
    n_instances=50,
    n_tasks=15,
    p=10,
    K=3,
    work=Uniform(1.0, 100.0, integral=True),
    output=Uniform(1.0, 10.0, integral=True),
    speed=Constant(1.0),
    proc_failure=HotSpare(base=1e-5, spare=1e-9, n_spares=3),
    link_failure_rate=1e-5,
)


register_scenario(SECTION8_HOM, homogeneous=True, tags=("section8", "paper"))
register_scenario(SECTION8_HET, tags=("section8", "paper", "paired"))
register_scenario(SCALING_STRESS, homogeneous=True, tags=("scaling",))
register_scenario(LONG_CHAIN, homogeneous=True, tags=("scaling", "long-chain"))
register_scenario(HIGH_HETEROGENEITY, tags=("heterogeneity",))
register_scenario(UNRELIABLE_LINKS, homogeneous=True, tags=("links", "correlated"))
register_scenario(HOT_SPARE, tags=("reliability", "heterogeneity"))
