"""Declarative scenario/workload subsystem.

The paper evaluates exactly two workloads (Section 8.1 homogeneous,
Section 8.2 heterogeneous-with-counterpart).  This package turns
workloads into *data*: a validated, serializable
:class:`~repro.scenarios.spec.ScenarioSpec` describes an instance
ensemble — dimensions, sweep axes, and one draw distribution per field
— and a registry of named scenarios mirrors the method registry, so
the sweep harness, the cross-check, the cache, and the CLI can all
address workloads by name.

Layers
------
* :mod:`repro.scenarios.distributions` — draw recipes (uniform,
  loguniform, lognormal, bimodal, work-correlated, hot-spare);
* :mod:`repro.scenarios.spec` — the :class:`ScenarioSpec` dataclass,
  dict/JSON/TOML codec, and content hashing;
* :mod:`repro.scenarios.registry` — ``register_scenario`` /
  ``get_scenario`` with capability metadata (``homogeneous`` gates the
  Section 5 exact methods);
* :mod:`repro.scenarios.builtin` — the Section 8 suites re-expressed as
  specs plus five new workload families;
* :mod:`repro.scenarios.generate` — per-instance (legacy-bit-identical)
  and batched (vectorized) generation, both producing columnar
  :class:`repro.core.ensemble.Ensemble` objects whose rows materialize
  lazily (``materialize_instances`` serves code that genuinely wants
  per-instance objects).

Quickstart
----------
>>> from repro.scenarios import generate_ensemble, get_scenario
>>> ensemble = generate_ensemble("section8-hom", n_instances=1)
>>> chain, platform = ensemble[0]
>>> chain.n, platform.p
(15, 10)
>>> get_scenario("section8-hom").homogeneous
True
"""

from repro.scenarios.distributions import (
    Bimodal,
    Constant,
    Correlated,
    Distribution,
    HotSpare,
    LogNormal,
    LogUniform,
    Uniform,
    distribution_from_value,
)
from repro.scenarios.spec import (
    ScenarioSpec,
    load_spec,
    scenario_hash,
    spec_from_dict,
    spec_is_homogeneous,
)
from repro.scenarios.registry import (
    SCENARIOS,
    Scenario,
    UnknownScenarioError,
    get_scenario,
    register_scenario,
)
from repro.scenarios.generate import (
    generate_ensemble,
    generate_ensembles,
    materialize_instances,
    resolve_scenario,
)
from repro.scenarios import builtin as _builtin  # noqa: F401  (registers built-ins)

__all__ = [
    "Distribution",
    "Constant",
    "Uniform",
    "LogUniform",
    "LogNormal",
    "Bimodal",
    "Correlated",
    "HotSpare",
    "distribution_from_value",
    "ScenarioSpec",
    "load_spec",
    "scenario_hash",
    "spec_from_dict",
    "spec_is_homogeneous",
    "SCENARIOS",
    "Scenario",
    "UnknownScenarioError",
    "get_scenario",
    "register_scenario",
    "generate_ensemble",
    "generate_ensembles",
    "materialize_instances",
    "resolve_scenario",
]
