"""Declarative draw distributions for scenario specs.

A :class:`Distribution` describes *how* one field of an instance
ensemble is drawn (task work, output sizes, processor speeds, failure
rates) without saying anything about when or with which stream — that
is the generator's job (:mod:`repro.scenarios.generate`).  Every
distribution draws through ``draw(rng, size)`` where ``size`` may be an
``int`` (one instance's vector, the per-instance RNG mode) or a shape
tuple (a whole ensemble matrix, the batched mode); the same object
therefore serves both generation modes.

Kinds
-----
``constant``
    Every value equals ``value``.  **Consumes no random draws**, which
    is what keeps constant-speed scenario generation bit-identical to
    the legacy suites (they never drew speeds either).
``uniform``
    Inclusive ``U[low, high]``; ``integral=True`` draws integers (the
    paper's Section 8 reading) via the shared
    :func:`repro.core.generate.draw_uniform` primitive.
``loguniform``
    ``10 ** U[log10(low), log10(high)]`` — the natural spread for
    failure rates ("per-processor heterogeneous" regimes).
``lognormal``
    ``exp(N(mean, sigma))`` with optional ``[low, high]`` clipping —
    heavy-tailed work/speed ensembles.
``bimodal``
    Mixture of two uniform modes: with probability ``weight`` draw from
    ``U[low2, high2]``, else from ``U[low1, high1]`` — "many small
    tasks, a few huge ones".
``correlated``
    Values in ``[low, high]`` rank-correlated with a *reference* field
    (work ↔ output coupling): per instance, the reference vector is
    min-max normalized to ``q`` in [0, 1] and blended with an
    independent ``U[0, 1]`` draw as ``|rho|*q + (1-|rho|)*u`` (``q``
    flipped for negative ``rho``).  ``rho = ±1`` is a monotone function
    of the reference; ``rho = 0`` is plain uniform.
``hot-spare``
    Failure-rate regime: the last ``n_spares`` processors are "hot
    spares" with rate ``spare`` (typically orders of magnitude below
    ``base``); the rest run at ``base``.  Deterministic — no draws.

Serialization: :func:`distribution_to_dict` /
:func:`distribution_from_value` define the dict/JSON/TOML schema used
by :class:`~repro.scenarios.spec.ScenarioSpec`.  A bare number is
shorthand for ``constant``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Any, ClassVar

import numpy as np

from repro.core.generate import draw_uniform

__all__ = [
    "Distribution",
    "Constant",
    "Uniform",
    "LogUniform",
    "LogNormal",
    "Bimodal",
    "Correlated",
    "HotSpare",
    "DIST_KINDS",
    "distribution_from_value",
    "distribution_to_dict",
]

Size = "int | tuple[int, ...]"


def _check_range(low: float, high: float, kind: str) -> None:
    if not (math.isfinite(low) and math.isfinite(high)) or not low <= high:
        raise ValueError(f"{kind} distribution needs finite low <= high, got [{low!r}, {high!r}]")


@dataclass(frozen=True)
class Distribution:
    """Base class: a named, serializable draw recipe."""

    kind: ClassVar[str] = ""

    def draw(self, rng: np.random.Generator, size: Size) -> np.ndarray:
        raise NotImplementedError

    @property
    def stochastic(self) -> bool:
        """False when :meth:`draw` never consumes the stream."""
        return True

    def to_dict(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"kind": self.kind}
        for f in fields(self):
            payload[f.name] = getattr(self, f.name)
        return payload


@dataclass(frozen=True)
class Constant(Distribution):
    kind: ClassVar[str] = "constant"
    value: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.value):
            raise ValueError(f"constant distribution needs a finite value, got {self.value!r}")

    def draw(self, rng: np.random.Generator, size: Size) -> np.ndarray:
        return np.full(size, float(self.value))

    @property
    def stochastic(self) -> bool:
        return False


@dataclass(frozen=True)
class Uniform(Distribution):
    kind: ClassVar[str] = "uniform"
    low: float
    high: float
    integral: bool = False

    def __post_init__(self) -> None:
        _check_range(self.low, self.high, self.kind)

    def draw(self, rng: np.random.Generator, size: Size) -> np.ndarray:
        return draw_uniform(rng, self.low, self.high, size, self.integral)


@dataclass(frozen=True)
class LogUniform(Distribution):
    kind: ClassVar[str] = "loguniform"
    low: float
    high: float

    def __post_init__(self) -> None:
        _check_range(self.low, self.high, self.kind)
        if self.low <= 0:
            raise ValueError(f"loguniform needs low > 0, got {self.low!r}")

    def draw(self, rng: np.random.Generator, size: Size) -> np.ndarray:
        return 10.0 ** rng.uniform(math.log10(self.low), math.log10(self.high), size=size)


@dataclass(frozen=True)
class LogNormal(Distribution):
    kind: ClassVar[str] = "lognormal"
    mean: float
    sigma: float
    low: "float | None" = None
    high: "float | None" = None

    def __post_init__(self) -> None:
        if not math.isfinite(self.mean) or not self.sigma >= 0:
            raise ValueError(
                f"lognormal needs finite mean and sigma >= 0, "
                f"got mean={self.mean!r}, sigma={self.sigma!r}"
            )
        if self.low is not None and self.high is not None and not self.low <= self.high:
            raise ValueError(f"lognormal clip needs low <= high, got [{self.low!r}, {self.high!r}]")

    def draw(self, rng: np.random.Generator, size: Size) -> np.ndarray:
        values = rng.lognormal(self.mean, self.sigma, size=size)
        if self.low is not None or self.high is not None:
            values = np.clip(values, self.low, self.high)
        return values


@dataclass(frozen=True)
class Bimodal(Distribution):
    kind: ClassVar[str] = "bimodal"
    low1: float
    high1: float
    low2: float
    high2: float
    weight: float = 0.5
    integral: bool = False

    def __post_init__(self) -> None:
        _check_range(self.low1, self.high1, self.kind)
        _check_range(self.low2, self.high2, self.kind)
        if not 0.0 <= self.weight <= 1.0:
            raise ValueError(f"bimodal weight must be in [0, 1], got {self.weight!r}")

    def draw(self, rng: np.random.Generator, size: Size) -> np.ndarray:
        # Fixed consumption order (pick, mode 1, mode 2) so a given
        # stream state always yields the same ensemble.
        pick = rng.random(size) < self.weight
        first = draw_uniform(rng, self.low1, self.high1, size, self.integral)
        second = draw_uniform(rng, self.low2, self.high2, size, self.integral)
        return np.where(pick, second, first)


@dataclass(frozen=True)
class Correlated(Distribution):
    kind: ClassVar[str] = "correlated"
    low: float
    high: float
    rho: float = 0.8

    def __post_init__(self) -> None:
        _check_range(self.low, self.high, self.kind)
        if not -1.0 <= self.rho <= 1.0:
            raise ValueError(f"correlated rho must be in [-1, 1], got {self.rho!r}")

    def draw(self, rng: np.random.Generator, size: Size) -> np.ndarray:
        raise ValueError(
            "a 'correlated' distribution needs a reference field; it is only "
            "valid for the scenario 'output' slot (correlated with work) and "
            "is drawn via draw_given()"
        )

    def draw_given(self, rng: np.random.Generator, reference: np.ndarray) -> np.ndarray:
        """Draw values rank-blended with *reference* (rows = instances)."""
        u = rng.uniform(size=reference.shape)
        lo = reference.min(axis=-1, keepdims=True)
        hi = reference.max(axis=-1, keepdims=True)
        span = np.where(hi > lo, hi - lo, 1.0)
        q = (reference - lo) / span
        if self.rho < 0:
            q = 1.0 - q
        t = abs(self.rho) * q + (1.0 - abs(self.rho)) * u
        return self.low + (self.high - self.low) * t


@dataclass(frozen=True)
class HotSpare(Distribution):
    kind: ClassVar[str] = "hot-spare"
    base: float
    spare: float
    n_spares: int = 1

    def __post_init__(self) -> None:
        if self.base < 0 or self.spare < 0:
            raise ValueError("hot-spare rates must be >= 0")
        if self.n_spares < 1:
            raise ValueError(f"hot-spare needs n_spares >= 1, got {self.n_spares!r}")

    def draw(self, rng: np.random.Generator, size: Size) -> np.ndarray:
        values = np.full(size, float(self.base))
        p = values.shape[-1]
        if self.n_spares > p:
            raise ValueError(
                f"hot-spare n_spares={self.n_spares} exceeds the platform's "
                f"{p} processors"
            )
        values[..., p - self.n_spares :] = float(self.spare)
        return values

    @property
    def stochastic(self) -> bool:
        return False


DIST_KINDS: dict[str, type[Distribution]] = {
    cls.kind: cls
    for cls in (Constant, Uniform, LogUniform, LogNormal, Bimodal, Correlated, HotSpare)
}


def distribution_from_value(value: Any, field: str = "distribution") -> Distribution:
    """Build a :class:`Distribution` from its dict/number encoding.

    A bare number is shorthand for ``{"kind": "constant", "value": x}``;
    an existing :class:`Distribution` passes through.
    """
    if isinstance(value, Distribution):
        return value
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return Constant(float(value))
    if not isinstance(value, dict):
        raise ValueError(
            f"{field} must be a number or a dict with a 'kind', got {value!r}"
        )
    payload = dict(value)
    kind = payload.pop("kind", None)
    if kind not in DIST_KINDS:
        raise ValueError(
            f"{field} has unknown distribution kind {kind!r}; "
            f"available: {sorted(DIST_KINDS)}"
        )
    cls = DIST_KINDS[kind]
    allowed = {f.name for f in fields(cls)}
    unknown = set(payload) - allowed
    if unknown:
        raise ValueError(
            f"{field} ({kind}) got unknown parameters {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )
    try:
        return cls(**payload)
    except TypeError as exc:  # missing required parameter
        raise ValueError(f"{field} ({kind}): {exc}") from None


def distribution_to_dict(dist: Distribution) -> dict[str, Any]:
    """Inverse of :func:`distribution_from_value` (always the dict form)."""
    if not isinstance(dist, Distribution):
        raise TypeError(f"expected a Distribution, got {type(dist).__name__}")
    return dist.to_dict()
