"""The declarative scenario specification and its dict/JSON/TOML codec.

A :class:`ScenarioSpec` fully describes an instance *ensemble*: how many
instances, the chain and platform dimensions, and one
:class:`~repro.scenarios.distributions.Distribution` per stochastic
field (work, output sizes, processor speeds, processor failure rates).
Specs are frozen, validated on construction, hashable by content
(:func:`scenario_hash`), and round-trip losslessly through
``repro.io``'s tagged-JSON format as well as plain TOML files — the
same spec can live in the registry, in a file next to an experiment,
or inline in a test.

Sweep axes
----------
``n_tasks``, ``p``, and ``bandwidth`` accept a tuple of values instead
of a scalar; the spec then describes the **cross product** of concrete
sub-ensembles (:meth:`ScenarioSpec.variants`), each with
``n_instances`` instances — chain-size and processor-count sweeps as
data, not loops.

Paired scenarios
----------------
``hom_counterpart_speed`` switches the spec into Section 8.2 "paired"
form: every instance carries its heterogeneous platform *and* a
homogeneous counterpart of the given speed sharing bandwidth, failure
rates, and K — the shape consumed by the het experiments.

RNG modes
---------
``rng_mode="per-instance"`` (default) gives every instance its own
child stream via :func:`repro.util.rng.spawn` with the legacy draw
order — this is what makes ``section8-hom``/``section8-het`` ensembles
bit-identical to :func:`repro.experiments.instances.homogeneous_suite`
and :func:`~repro.experiments.instances.heterogeneous_suite`, and it
keeps the suite-prefix property (extending ``n_instances`` never
changes earlier instances).  ``rng_mode="batched"`` derives one stream
per *field* and draws whole ``(n_instances, n_tasks)`` matrices in
single numpy calls — several times faster for large ensembles (see
``benchmarks/bench_scenario_generation.py``) at the cost of the prefix
property.
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any

from repro.scenarios.distributions import (
    Constant,
    Correlated,
    Distribution,
    Uniform,
    distribution_from_value,
    distribution_to_dict,
)

__all__ = [
    "ScenarioSpec",
    "scenario_hash",
    "spec_from_dict",
    "spec_from_payload",
    "spec_is_homogeneous",
    "load_spec",
]

RNG_MODES = ("per-instance", "batched")

#: Fields that accept either a scalar or a tuple of sweep values.
_AXIS_FIELDS = ("n_tasks", "p", "bandwidth")

#: Distribution-valued fields, in the order the generator consumes them.
_DIST_FIELDS = ("work", "output", "speed", "proc_failure")


def _as_axis(value: Any, name: str, *, integral: bool, minimum: float) -> Any:
    """Validate a scalar-or-tuple sweepable field, normalizing to tuple."""

    def one(v: Any) -> Any:
        if isinstance(v, bool) or not isinstance(v, (int, float)):
            raise ValueError(f"{name} must be numeric, got {v!r}")
        if integral and int(v) != v:
            raise ValueError(f"{name} must be an integer, got {v!r}")
        v = int(v) if integral else float(v)
        if not v >= minimum:
            raise ValueError(f"{name} must be >= {minimum}, got {v!r}")
        return v

    if isinstance(value, (list, tuple)):
        if not value:
            raise ValueError(f"{name} sweep axis must not be empty")
        return tuple(one(v) for v in value)
    return one(value)


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative instance-ensemble description.

    Attributes
    ----------
    name:
        Identifier (registry key for built-ins; free-form for files).
    description:
        Human-readable summary (cosmetic — not part of the content
        hash).
    n_instances:
        Instances per concrete variant.
    n_tasks, p, bandwidth:
        Chain length, processor count, link bandwidth — scalar or a
        tuple of sweep values (see :meth:`variants`).
    K:
        Replication bound (bounded multi-port constant).
    work, output, speed, proc_failure:
        Field distributions.  ``output`` may be
        :class:`~repro.scenarios.distributions.Correlated` (with work);
        the others may not.
    link_failure_rate:
        Common link failure rate ``lambda_link``.
    hom_counterpart_speed:
        When set, the ensemble is *paired* (Section 8.2 shape): each
        instance also gets a homogeneous counterpart platform of this
        speed.
    rng_mode:
        ``"per-instance"`` (legacy-compatible) or ``"batched"``
        (vectorized) — see the module docstring.
    """

    name: str
    description: str = ""
    n_instances: int = 100
    n_tasks: "int | tuple[int, ...]" = 15
    p: "int | tuple[int, ...]" = 10
    K: int = 3
    bandwidth: "float | tuple[float, ...]" = 1.0
    work: Distribution = field(default_factory=lambda: Uniform(1.0, 100.0, integral=True))
    output: Distribution = field(default_factory=lambda: Uniform(1.0, 10.0, integral=True))
    speed: Distribution = field(default_factory=lambda: Constant(1.0))
    proc_failure: Distribution = field(default_factory=lambda: Constant(1e-8))
    link_failure_rate: float = 1e-5
    hom_counterpart_speed: "float | None" = None
    rng_mode: str = "per-instance"

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ValueError(f"scenario name must be a non-empty string, got {self.name!r}")
        if not isinstance(self.n_instances, int) or self.n_instances < 1:
            raise ValueError(f"n_instances must be an integer >= 1, got {self.n_instances!r}")
        object.__setattr__(self, "n_tasks", _as_axis(self.n_tasks, "n_tasks", integral=True, minimum=1))
        object.__setattr__(self, "p", _as_axis(self.p, "p", integral=True, minimum=1))
        object.__setattr__(
            self, "bandwidth", _as_axis(self.bandwidth, "bandwidth", integral=False, minimum=0.0)
        )
        if isinstance(self.bandwidth, float) and self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth!r}")
        if isinstance(self.bandwidth, tuple) and any(b <= 0 for b in self.bandwidth):
            raise ValueError(f"bandwidth values must be > 0, got {self.bandwidth!r}")
        if not isinstance(self.K, int) or self.K < 1:
            raise ValueError(f"K must be an integer >= 1, got {self.K!r}")
        for name in _DIST_FIELDS:
            value = getattr(self, name)
            if not isinstance(value, Distribution):
                raise ValueError(
                    f"{name} must be a Distribution (or its dict form via "
                    f"spec_from_dict), got {type(value).__name__}"
                )
            if name != "output" and isinstance(value, Correlated):
                raise ValueError(
                    f"'correlated' is only valid for the output field "
                    f"(correlated with work), not {name!r}"
                )
        if not (
            isinstance(self.link_failure_rate, (int, float))
            and math.isfinite(self.link_failure_rate)
            and self.link_failure_rate >= 0
        ):
            raise ValueError(
                f"link_failure_rate must be a finite number >= 0, got {self.link_failure_rate!r}"
            )
        if self.hom_counterpart_speed is not None and not self.hom_counterpart_speed > 0:
            raise ValueError(
                f"hom_counterpart_speed must be > 0 (or None), got {self.hom_counterpart_speed!r}"
            )
        if self.rng_mode not in RNG_MODES:
            raise ValueError(f"rng_mode must be one of {RNG_MODES}, got {self.rng_mode!r}")

    # -- structure -------------------------------------------------------

    @property
    def paired(self) -> bool:
        """True for Section 8.2-shaped ensembles (het + hom counterpart)."""
        return self.hom_counterpart_speed is not None

    @property
    def axes(self) -> dict[str, tuple]:
        """The tuple-valued sweep axes, by field name."""
        return {
            name: getattr(self, name)
            for name in _AXIS_FIELDS
            if isinstance(getattr(self, name), tuple)
        }

    def variants(self) -> "list[ScenarioSpec]":
        """Expand sweep axes into concrete (scalar-axis) sub-specs.

        The cross product is enumerated in fixed field order (n_tasks,
        then p, then bandwidth), each variant named
        ``base[n_tasks=..,p=..]``.  A spec with no axes returns
        ``[self]`` unchanged — so single-ensemble scenarios keep their
        exact name and seed behaviour.
        """
        axes = self.axes
        if not axes:
            return [self]
        variants = [self]
        for name, values in axes.items():
            variants = [
                v.with_(
                    name=f"{v.name}[{name}={value}]" if len(values) > 1 else v.name,
                    **{name: value},
                )
                for v in variants
                for value in values
            ]
        return variants

    def with_(self, **changes: Any) -> "ScenarioSpec":
        """A copy with the given fields replaced (re-validated)."""
        return dataclasses.replace(self, **changes)

    # -- codec -----------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Encode as the tagged payload consumed by ``repro.io``."""
        payload: dict[str, Any] = {"type": "ScenarioSpec"}
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if f.name in _DIST_FIELDS:
                value = distribution_to_dict(value)
            elif isinstance(value, tuple):
                value = list(value)
            payload[f.name] = value
        return payload


def spec_from_dict(payload: dict[str, Any]) -> ScenarioSpec:
    """Build a validated :class:`ScenarioSpec` from its dict encoding.

    Unknown keys are rejected (typos in hand-written spec files should
    fail loudly, not silently generate a different workload).
    Distribution fields accept the shorthand forms of
    :func:`~repro.scenarios.distributions.distribution_from_value`.
    """
    if not isinstance(payload, dict):
        raise ValueError(f"scenario spec must be a dict, got {type(payload).__name__}")
    data = {k: v for k, v in payload.items() if k not in ("type", "repro_format")}
    known = {f.name for f in dataclasses.fields(ScenarioSpec)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(
            f"scenario spec has unknown fields {sorted(unknown)}; known: {sorted(known)}"
        )
    for name in _DIST_FIELDS:
        if name in data:
            data[name] = distribution_from_value(data[name], field=name)
    try:
        return ScenarioSpec(**data)
    except TypeError as exc:  # e.g. missing 'name'
        raise ValueError(f"invalid scenario spec: {exc}") from None


#: Alias used by ``repro.io.from_dict`` dispatch.
spec_from_payload = spec_from_dict


def load_spec(path: "str | os.PathLike[str]") -> ScenarioSpec:
    """Load a scenario spec from a ``.json`` or ``.toml`` file."""
    path = pathlib.Path(path)
    text = path.read_text()
    if path.suffix.lower() == ".toml":
        try:
            import tomllib
        except ImportError:  # Python < 3.11
            raise ValueError(
                f"cannot load {path}: TOML specs need Python >= 3.11 (tomllib); "
                f"use the JSON form instead"
            ) from None
        payload = tomllib.loads(text)
    else:
        payload = json.loads(text)
    return spec_from_dict(payload)


def scenario_hash(spec: ScenarioSpec) -> str:
    """Content hash of the spec's *generative* fields.

    ``name``, ``description``, and ``n_instances`` are excluded: the
    first two are cosmetic, and excluding the instance count means a
    sweep over an extended ensemble (per-instance mode is
    prefix-stable) still hits the per-unit result cache for the
    instances it shares with earlier runs.
    """
    from repro.io import content_hash  # lazy: io lazily imports this module

    payload = spec.to_dict()
    for key in ("name", "description", "n_instances"):
        payload.pop(key, None)
    return content_hash(payload)


def spec_is_homogeneous(spec: ScenarioSpec) -> bool:
    """True when every generated platform is homogeneous.

    Constant speeds and constant processor failure rates on an unpaired
    spec — the condition under which Section 5 exact methods
    (``homogeneous_only`` capability) apply to the whole ensemble.
    """
    return (
        isinstance(spec.speed, Constant)
        and isinstance(spec.proc_failure, Constant)
        and not spec.paired
    )
