"""Algorithm 2 — reliability optimization under a period bound, and its
converse (Section 5.2).

Theorem 2: on fully homogeneous platforms, the dynamic program computes
in ``O(n^2 p^2)`` the most reliable mapping whose period does not exceed
a bound ``P`` (on such platforms expected and worst-case period
coincide).

The converse problem — minimize the period subject to a reliability
bound — "is polynomial too: we can simply perform a binary search on the
period and repeatedly execute Algorithm 2" (end of Section 5.2).  The
period of any mapping takes one of ``O(n^2)`` values (an interval
computation time ``W(i,j)/s`` or a communication time ``o_i/b``), so the
binary search runs over that finite candidate set and terminates with
the exact optimum.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms._hom_dp import hom_reliability_dp, require_homogeneous
from repro.algorithms.result import SolveResult
from repro.core.chain import TaskChain
from repro.core.evaluation import evaluate_mapping
from repro.core.platform import Platform

__all__ = [
    "optimize_reliability_period",
    "optimize_period_reliability",
    "minimize_period",
]


def optimize_reliability_period(
    chain: TaskChain, platform: Platform, max_period: float
) -> SolveResult:
    """Most reliable mapping with period ``<= max_period`` (Algorithm 2).

    Returns an infeasible :class:`SolveResult` when no interval division
    satisfies the bound (e.g. a single task's execution or communication
    time already exceeds it).

    Examples
    --------
    >>> from repro.core import TaskChain, Platform
    >>> chain = TaskChain([6.0, 6.0], [1.0, 0.0])
    >>> plat = Platform.homogeneous_platform(4, failure_rate=1e-4,
    ...                                      max_replication=2)
    >>> optimize_reliability_period(chain, plat, max_period=8.0).mapping.m
    2
    >>> optimize_reliability_period(chain, plat, max_period=5.0).feasible
    False
    """
    if max_period <= 0:
        raise ValueError(f"max_period must be > 0, got {max_period!r}")
    dp = hom_reliability_dp(chain, platform, max_period=max_period)
    if dp.mapping is None:
        return SolveResult.infeasible("algorithm-2", max_period=max_period)
    return SolveResult(
        feasible=True,
        mapping=dp.mapping,
        evaluation=evaluate_mapping(dp.mapping),
        method="algorithm-2",
        details={"dp_log_reliability": dp.log_reliability, "max_period": max_period},
    )


def candidate_periods(chain: TaskChain, platform: Platform) -> np.ndarray:
    """All values the period of a mapping can take, sorted increasing.

    The period (Eq. (6)/(8), homogeneous) is a maximum of interval
    computation times ``W(i,j)/s`` and communication times ``o_i/b``, so
    it always equals one of these ``O(n^2)`` numbers.
    """
    n = chain.n
    s = float(platform.speeds[0])
    b = platform.bandwidth
    prefix = np.concatenate(([0.0], np.cumsum(chain.work)))
    values = {
        float(prefix[i] - prefix[j]) / s for j in range(n) for i in range(j + 1, n + 1)
    }
    values.update(float(o) / b for o in chain.output)
    # A period of 0 is meaningless (every interval computes for > 0 time);
    # drop non-positive candidates such as the o_n = 0 convention's 0.
    return np.array(sorted(v for v in values if v > 0.0))


def optimize_period_reliability(
    chain: TaskChain,
    platform: Platform,
    min_log_reliability: float,
) -> SolveResult:
    """Minimize the period subject to a reliability bound (Section 5.2).

    Binary search over :func:`candidate_periods`, re-running Algorithm 2
    at each probe; the smallest candidate whose optimal reliability meets
    ``min_log_reliability`` is the exact optimum.

    Parameters
    ----------
    min_log_reliability:
        Lower bound on ``log r`` (use
        :func:`repro.util.logrel.from_reliability` to convert a plain
        reliability).
    """
    require_homogeneous(platform, "period minimization under a reliability bound")
    if min_log_reliability > 0.0 or math.isnan(min_log_reliability):
        raise ValueError("min_log_reliability must be a log-probability (<= 0)")
    candidates = candidate_periods(chain, platform)

    # Feasibility check at the loosest bound (equivalent to Algorithm 1).
    best_unbounded = hom_reliability_dp(chain, platform)
    if best_unbounded.log_reliability < min_log_reliability:
        return SolveResult.infeasible(
            "period-binary-search",
            min_log_reliability=min_log_reliability,
            best_achievable=best_unbounded.log_reliability,
        )

    lo, hi = 0, len(candidates) - 1  # invariant: candidates[hi] feasible
    probes = 0
    while lo < hi:
        mid = (lo + hi) // 2
        probes += 1
        dp = hom_reliability_dp(chain, platform, max_period=float(candidates[mid]))
        if dp.log_reliability >= min_log_reliability:
            hi = mid
        else:
            lo = mid + 1
    best_period = float(candidates[hi])
    dp = hom_reliability_dp(chain, platform, max_period=best_period)
    assert dp.mapping is not None
    return SolveResult(
        feasible=True,
        mapping=dp.mapping,
        evaluation=evaluate_mapping(dp.mapping),
        method="period-binary-search",
        details={
            "optimal_period": best_period,
            "probes": probes,
            "candidates": len(candidates),
        },
    )


def minimize_period(
    chain: TaskChain,
    platform: Platform,
    min_log_reliability: float = -math.inf,
    max_period: float = math.inf,
    max_latency: float = math.inf,
) -> SolveResult:
    """Minimize the period under a reliability floor *and* a latency bound.

    The tri-criteria generalization of
    :func:`optimize_period_reliability` (which it reduces to when
    ``max_latency`` is infinite): binary search over
    :func:`candidate_periods`, probing each candidate with the most
    reliable mapping that satisfies both the candidate period and the
    latency bound.  The probe is Algorithm 2
    (:func:`~repro.algorithms._hom_dp.hom_reliability_dp`) when the
    latency is unbounded and the exact Pareto DP
    (:func:`~repro.algorithms.pareto_dp.pareto_dp_best`) otherwise —
    both exact, so the binary search terminates with the exact optimum.

    Parameters
    ----------
    min_log_reliability:
        Reliability floor as a log-probability (``-inf`` = no floor:
        minimize the period over all feasible mappings).
    max_period:
        Optional cap on the answer; the result is infeasible when even
        the optimal period exceeds it.
    max_latency:
        Latency bound honored by every probe solve.

    Examples
    --------
    >>> from repro.core import TaskChain, Platform
    >>> chain = TaskChain([6.0, 6.0], [1.0, 0.0])
    >>> plat = Platform.homogeneous_platform(4, failure_rate=1e-4,
    ...                                      max_replication=2)
    >>> minimize_period(chain, plat).details["optimal_period"]
    6.0
    """
    require_homogeneous(platform, "period minimization")
    if min_log_reliability > 0.0 or math.isnan(min_log_reliability):
        raise ValueError("min_log_reliability must be a log-probability (<= 0)")
    if max_period <= 0 or max_latency <= 0:
        raise ValueError("bounds must be > 0")

    def probe(period_bound: float):
        """Best (feasible?, log-reliability, mapping) under the bounds."""
        if math.isinf(max_latency):
            dp = hom_reliability_dp(chain, platform, max_period=period_bound)
            return dp.mapping is not None, dp.log_reliability, dp.mapping
        from repro.algorithms.pareto_dp import pareto_dp_best

        res = pareto_dp_best(
            chain, platform, max_period=period_bound, max_latency=max_latency
        )
        return res.feasible, res.log_reliability, res.mapping

    def meets(period_bound: float) -> "tuple[bool, object]":
        feasible, ell, mapping = probe(period_bound)
        return feasible and ell >= min_log_reliability, mapping

    candidates = candidate_periods(chain, platform)
    candidates = candidates[candidates <= max_period]
    if len(candidates) == 0:
        return SolveResult.infeasible(
            "dp-period", reason="no candidate period within max_period"
        )

    # Feasibility check at the loosest admissible bound.  The witness
    # mapping of the last successful probe is kept throughout: at loop
    # exit it belongs to candidates[hi], so no final re-solve is needed.
    ok, witness = meets(float(candidates[-1]))
    if not ok:
        return SolveResult.infeasible(
            "dp-period",
            min_log_reliability=min_log_reliability,
            max_period=max_period,
            max_latency=max_latency,
        )

    lo, hi = 0, len(candidates) - 1  # invariant: candidates[hi] admissible
    probes = 1
    while lo < hi:
        mid = (lo + hi) // 2
        probes += 1
        ok, mapping = meets(float(candidates[mid]))
        if ok:
            hi = mid
            witness = mapping
        else:
            lo = mid + 1
    best_period = float(candidates[hi])
    mapping = witness
    assert mapping is not None
    return SolveResult(
        feasible=True,
        mapping=mapping,
        evaluation=evaluate_mapping(mapping),
        method="dp-period",
        details={
            "optimal_period": best_period,
            "probes": probes,
            "candidates": len(candidates),
        },
    )
