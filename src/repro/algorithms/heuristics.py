"""The Heur-L and Heur-P heuristics (Section 7).

Each heuristic has two steps: (1) divide the chain into intervals, and
(2) allocate processors to those intervals.  For a given problem
instance, each heuristic computes one division per possible number of
intervals ``i = 1 .. min(n, p)``, allocates processors to each, and the
caller (here :func:`heuristic_best`) selects — among the candidates
meeting the period and latency bounds — the one with the best
reliability (Section 7, first paragraph).

* **Heur-L** (Algorithm 3) targets the latency: for ``i`` intervals it
  cuts the chain at the ``i - 1`` *smallest* output-communication costs,
  minimizing the total communication term of the latency (on a
  homogeneous platform the computation term is partition-invariant).

* **Heur-P** (Algorithm 4) targets the period: a dynamic program
  computes, for each ``i``, the division of the chain into ``i``
  intervals minimizing ``max(max_j W_j / s, max_j o_{l_j} / b)`` — the
  optimal ``i``-interval period on a homogeneous reference platform.

Allocation uses Algo-Alloc on homogeneous platforms (optimal,
Theorem 4) and the Section 7.2 variant with the period bound on
heterogeneous ones.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Literal, Sequence

import numpy as np

from repro.algorithms.allocation import algo_alloc, algo_alloc_het
from repro.algorithms.result import SolveResult
from repro.core.chain import TaskChain
from repro.core.evaluation import MappingEvaluation, evaluate_mapping
from repro.core.interval import Interval, partition_from_cuts
from repro.core.mapping import Mapping
from repro.core.platform import Platform

__all__ = [
    "heur_l_intervals",
    "heur_p_intervals",
    "heuristic_candidates",
    "heuristic_best",
    "HeuristicCandidate",
]

HeuristicName = Literal["heur-l", "heur-p"]


def heur_l_intervals(chain: TaskChain, m: int) -> list[Interval]:
    """Algorithm 3: division into *m* intervals with minimal latency.

    Selects the ``m - 1`` smallest output-communication costs among
    tasks ``tau_1 .. tau_{n-1}`` as cut points (ties broken by chain
    position, matching the stable sort of Algorithm 3 line 1).

    Examples
    --------
    >>> chain = TaskChain([1, 1, 1, 1], [5.0, 1.0, 2.0, 0.0])
    >>> [iv.stop for iv in heur_l_intervals(chain, 3)]
    [2, 3, 4]
    """
    n = chain.n
    if not 1 <= m <= n:
        raise ValueError(f"number of intervals must be in [1, {n}], got {m!r}")
    if m == 1:
        return [Interval(0, n)]
    # Output costs of tasks tau_1 .. tau_{n-1} are output[0 .. n-2].
    order = np.argsort(chain.output[: n - 1], kind="stable")
    cuts = sorted(int(t) + 1 for t in order[: m - 1])
    return partition_from_cuts(n, cuts)


def heur_p_intervals(
    chain: TaskChain,
    m: int,
    reference_speed: float = 1.0,
    bandwidth: float = 1.0,
) -> list[Interval]:
    """Algorithm 4: division into *m* intervals with minimal period.

    Dynamic program over ``F(j, k)`` = the optimal period achievable by
    grouping the first ``j`` tasks into ``k`` intervals, where the
    period of an interval ending at ``j`` is
    ``max(W / reference_speed, o_j / bandwidth)``:

        ``F(j, 1) = max(sum_{l <= j} w_l, o_j)``
        ``F(j, k) = min_{j' < j} max(F(j', k-1), sum_{j' < l <= j} w_l, o_j)``

    The reference speed and bandwidth default to 1, matching the
    homogeneous experiments (the division step of Heur-P is always
    computed "in the homogeneous case", Section 7.1).

    Examples
    --------
    >>> chain = TaskChain([4, 4, 4, 4], [1.0, 1.0, 1.0, 0.0])
    >>> [iv.stop for iv in heur_p_intervals(chain, 2)]
    [2, 4]
    """
    n = chain.n
    if not 1 <= m <= n:
        raise ValueError(f"number of intervals must be in [1, {n}], got {m!r}")
    if reference_speed <= 0 or bandwidth <= 0:
        raise ValueError("reference_speed and bandwidth must be > 0")
    prefix = np.concatenate(([0.0], np.cumsum(chain.work))) / reference_speed
    out_time = chain.output / bandwidth  # o_j / b for j = task index

    INF = math.inf
    # F[k][j]: optimal period for first j tasks in k intervals (1-based j).
    F = np.full((m + 1, n + 1), INF)
    arg = np.full((m + 1, n + 1), -1, dtype=np.int64)
    for j in range(1, n + 1):
        F[1, j] = max(prefix[j], out_time[j - 1])
        arg[1, j] = 0
    for k in range(2, m + 1):
        for j in range(k, n + 1):
            o_j = out_time[j - 1]
            best, best_jp = INF, -1
            # j' ranges over valid previous boundaries.
            for jp in range(k - 1, j):
                cand = max(F[k - 1, jp], prefix[j] - prefix[jp], o_j)
                if cand < best:
                    best, best_jp = cand, jp
            F[k, j] = best
            arg[k, j] = best_jp

    # Reconstruct boundaries right-to-left.
    cuts: list[int] = []
    j, k = n, m
    while k > 1:
        jp = int(arg[k, j])
        if jp <= 0 and k > 1 and jp < 0:
            raise AssertionError("broken parent chain in Heur-P DP")
        cuts.append(jp)
        j, k = jp, k - 1
    cuts.reverse()
    return partition_from_cuts(n, cuts)


@dataclass(frozen=True)
class HeuristicCandidate:
    """One candidate schedule produced by a heuristic.

    A candidate exists for each attempted number of intervals; it may
    fail at the allocation step (``mapping is None``) or at the bound
    check (``feasible=False`` with a mapping attached for diagnostics).
    """

    m: int
    partition: tuple[Interval, ...]
    mapping: Mapping | None
    evaluation: MappingEvaluation | None
    feasible: bool


def heuristic_candidates(
    chain: TaskChain,
    platform: Platform,
    which: HeuristicName,
    max_period: float = math.inf,
    max_latency: float = math.inf,
    worst_case: bool = True,
    allowed: Callable[[int, int], bool] | None = None,
    allocation: Literal["auto", "het"] = "auto",
) -> list[HeuristicCandidate]:
    """Run one heuristic's two steps for every interval count.

    Returns one :class:`HeuristicCandidate` per ``m = 1 .. min(n, p)``
    (the divisions both heuristics produce, Section 7.1 last paragraph).

    The allocation step is Algo-Alloc on homogeneous platforms (with the
    resulting mapping then checked against both bounds) and the
    Section 7.2 period-bounded variant on heterogeneous platforms;
    ``allocation="het"`` forces the Section 7.2 variant even on
    homogeneous platforms (the Section 8.2 experiments run the same
    allocation code on the homogeneous counterpart platform, where the
    period filter prunes divisions Algo-Alloc would happily allocate).
    ``worst_case`` selects which latency/period the bounds are compared
    against (they coincide on homogeneous platforms); the heterogeneous
    experiments of Section 8.2 use worst-case values, consistent with
    the allocation's per-replica ``W_j / s_u <= P`` filter.
    """
    if which not in ("heur-l", "heur-p"):
        raise ValueError(f"unknown heuristic {which!r}")
    if allocation not in ("auto", "het"):
        raise ValueError(f"unknown allocation mode {allocation!r}")
    divide = (
        heur_l_intervals
        if which == "heur-l"
        else lambda c, m: heur_p_intervals(c, m, bandwidth=platform.bandwidth)
    )
    out: list[HeuristicCandidate] = []
    hom = platform.homogeneous and allocation == "auto"
    for m in range(1, min(chain.n, platform.p) + 1):
        partition = divide(chain, m)
        if hom and allowed is None:
            mapping: Mapping | None = algo_alloc(chain, platform, partition)
        else:
            mapping = algo_alloc_het(
                chain, platform, partition, max_period=max_period, allowed=allowed
            )
        if mapping is None:
            out.append(HeuristicCandidate(m, tuple(partition), None, None, False))
            continue
        ev = evaluate_mapping(mapping)
        ok = ev.meets(
            max_period=max_period, max_latency=max_latency, worst_case=worst_case
        )
        out.append(HeuristicCandidate(m, tuple(partition), mapping, ev, ok))
    return out


def heuristic_best(
    chain: TaskChain,
    platform: Platform,
    max_period: float = math.inf,
    max_latency: float = math.inf,
    which: "HeuristicName | Literal['both']" = "both",
    worst_case: bool = True,
    allowed: Callable[[int, int], bool] | None = None,
    selection: Literal["feasible-best", "best-then-check"] = "feasible-best",
    allocation: Literal["auto", "het"] = "auto",
    min_log_reliability: float = -math.inf,
) -> SolveResult:
    """Best heuristic schedule meeting the period and latency bounds.

    Runs Heur-L, Heur-P, or both (default), and selects among the
    computed candidates per Section 7's opening paragraph.  Two readings
    of that selection exist, and they differ only on heterogeneous
    platforms (on homogeneous ones the allocation step cannot change
    period or latency):

    * ``"feasible-best"`` (default): among the candidates meeting both
      bounds, return the most reliable — never misses a feasible
      candidate.
    ``min_log_reliability`` adds the converse objectives' reliability
    floor as a feasibility constraint: the selected candidate must also
    attain the floor, and a run whose best candidate falls below it is
    infeasible.  Because ``"feasible-best"`` maximizes log-reliability,
    filtering after selection is equivalent to filtering candidates
    before it — the same schedule wins either way.

    * ``"best-then-check"``: pick the most reliable allocated candidate
      first, then check the bounds.  This reproduces the behaviour the
      paper reports for its heterogeneous experiments — "the number of
      results is no longer an increasing curve ... the algorithm
      [allocating] tasks to processors considers only the period bound,
      thereby making the sum of interval costs too long for the latency
      in some cases (while this bound was respected for lower period
      bounds)" (Section 8.2): larger period bounds admit slower extra
      replicas, the reliability-maximal schedule absorbs them, and its
      worst-case latency overshoots even though a feasible candidate
      existed.

    Examples
    --------
    >>> from repro.core import TaskChain, Platform
    >>> chain = TaskChain([10.0, 20.0, 15.0], [2.0, 3.0, 0.0])
    >>> plat = Platform.homogeneous_platform(
    ...     4, failure_rate=1e-8, link_failure_rate=1e-5, max_replication=2)
    >>> heuristic_best(chain, plat, max_period=30.0, max_latency=60.0).feasible
    True
    """
    if selection not in ("feasible-best", "best-then-check"):
        raise ValueError(f"unknown selection rule {selection!r}")
    names: Sequence[HeuristicName]
    if which == "both":
        names = ("heur-p", "heur-l")
    else:
        names = (which,)
    best: tuple[float, Mapping, MappingEvaluation, str, bool] | None = None
    tried = 0
    for name in names:
        for cand in heuristic_candidates(
            chain,
            platform,
            name,
            max_period=max_period,
            max_latency=max_latency,
            worst_case=worst_case,
            allowed=allowed,
            allocation=allocation,
        ):
            tried += 1
            if cand.mapping is None:
                continue
            if selection == "feasible-best" and not cand.feasible:
                continue
            assert cand.evaluation is not None
            key = cand.evaluation.log_reliability
            if best is None or key > best[0]:
                best = (key, cand.mapping, cand.evaluation, name, cand.feasible)
    if best is None or not best[4] or best[0] < min_log_reliability:
        return SolveResult.infeasible(
            f"heuristic:{which}", candidates_tried=tried, selection=selection
        )
    return SolveResult(
        feasible=True,
        mapping=best[1],
        evaluation=best[2],
        method=f"heuristic:{best[3]}",
        details={"candidates_tried": tried, "selection": selection},
    )
