"""The uniform result record returned by every solver and heuristic."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.evaluation import MappingEvaluation
from repro.core.mapping import Mapping

__all__ = ["SolveResult"]


@dataclass(frozen=True)
class SolveResult:
    """Outcome of a mapping search.

    Attributes
    ----------
    feasible:
        Whether a mapping satisfying all requested bounds was found.
        ``False`` either because none exists (exact methods) or because
        the method failed to find one (heuristics).
    mapping:
        The best mapping found, or ``None`` when infeasible.
    evaluation:
        The Section 4 objectives of :attr:`mapping`, or ``None``.
    method:
        Human-readable name of the producing algorithm.
    details:
        Method-specific diagnostics (e.g. number of candidate divisions
        tried, ILP node counts).  Never required for correctness.
    """

    feasible: bool
    mapping: Mapping | None = None
    evaluation: MappingEvaluation | None = None
    method: str = ""
    details: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.feasible and (self.mapping is None or self.evaluation is None):
            raise ValueError("a feasible result must carry a mapping and evaluation")
        if not self.feasible and self.mapping is not None:
            raise ValueError("an infeasible result must not carry a mapping")

    @property
    def log_reliability(self) -> float:
        """Log-reliability of the best mapping (``-inf`` when infeasible)."""
        if self.evaluation is None:
            return float("-inf")
        return self.evaluation.log_reliability

    @property
    def failure_probability(self) -> float:
        """Failure probability of the best mapping (1.0 when infeasible)."""
        if self.evaluation is None:
            return 1.0
        return self.evaluation.failure_probability

    def objective_value(self, objective: str = "reliability") -> float:
        """The solved mapping's value under one of the facade objectives.

        ``"reliability"`` returns the plain reliability (0.0 when
        infeasible); the minimized criteria return the achieved
        worst-case period / worst-case latency / energy (``inf`` when
        infeasible).  Energy reads ``details["energy"]`` when the
        producing method recorded it (same power-model parameters as
        the solve) and falls back to
        :func:`repro.extensions.energy.mapping_energy` defaults.
        """
        if objective == "reliability":
            if self.evaluation is None:
                return 0.0
            return self.evaluation.reliability
        if not self.feasible or self.evaluation is None:
            return float("inf")
        if objective == "period":
            return self.evaluation.worst_case_period
        if objective == "latency":
            return self.evaluation.worst_case_latency
        if objective == "energy":
            if "energy" in self.details:
                return float(self.details["energy"])
            from repro.extensions.energy import mapping_energy

            assert self.mapping is not None
            return mapping_energy(self.mapping)
        raise ValueError(f"unknown objective {objective!r}")

    @staticmethod
    def infeasible(method: str, **details: Any) -> "SolveResult":
        """Shorthand for a no-solution outcome."""
        return SolveResult(feasible=False, method=method, details=dict(details))
