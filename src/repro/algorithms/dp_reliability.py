"""Algorithm 1 — optimal reliability on homogeneous platforms (Section 5.1).

Theorem 1: the dynamic program computes, in time ``O(n^2 p^2)``, the
mapping maximizing the reliability of a chain of ``n`` tasks on ``p``
fully homogeneous processors with at most ``K`` replicas per interval.
"""

from __future__ import annotations

from repro.algorithms._hom_dp import hom_reliability_dp
from repro.algorithms.result import SolveResult
from repro.core.chain import TaskChain
from repro.core.evaluation import evaluate_mapping
from repro.core.platform import Platform

__all__ = ["optimize_reliability"]


def optimize_reliability(chain: TaskChain, platform: Platform) -> SolveResult:
    """Maximize mapping reliability on a homogeneous platform (Algorithm 1).

    Always feasible: mapping the whole chain as one interval on a single
    processor is a valid baseline, and replication only improves on it.

    Parameters
    ----------
    chain:
        The application chain.
    platform:
        A fully homogeneous platform (raises :class:`ValueError`
        otherwise — Theorem 5 shows the heterogeneous problem is
        NP-complete, so no polynomial algorithm is offered there).

    Returns
    -------
    SolveResult
        With the optimal mapping and its full evaluation.

    Examples
    --------
    >>> from repro.core import TaskChain, Platform
    >>> chain = TaskChain([5.0, 5.0], [1.0, 0.0])
    >>> plat = Platform.homogeneous_platform(4, failure_rate=1e-4,
    ...                                      max_replication=2)
    >>> res = optimize_reliability(chain, plat)
    >>> res.feasible
    True
    >>> res.mapping.processors_used
    4
    """
    dp = hom_reliability_dp(chain, platform)
    if dp.mapping is None:  # pragma: no cover - cannot happen without a bound
        return SolveResult.infeasible("algorithm-1")
    return SolveResult(
        feasible=True,
        mapping=dp.mapping,
        evaluation=evaluate_mapping(dp.mapping),
        method="algorithm-1",
        details={"dp_log_reliability": dp.log_reliability},
    )
