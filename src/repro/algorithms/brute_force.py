"""Exhaustive mapping enumeration — the oracle for tiny instances.

These enumerators exist to *validate* every other algorithm in the
library (the optimal DPs, Algo-Alloc's Theorem-4 optimality, the exact
Pareto DP, the ILP, and the heuristics' feasibility) on instances small
enough to enumerate.  They are deliberately simple and unoptimized; a
guard refuses instances whose search space would be unreasonably large.
"""

from __future__ import annotations

import math
from typing import Iterator, Sequence

from repro.algorithms.result import SolveResult
from repro.core.chain import TaskChain
from repro.core.evaluation import evaluate_mapping
from repro.core.interval import Interval, partitions_with_m_intervals
from repro.core.mapping import Mapping
from repro.core.platform import Platform

__all__ = [
    "enumerate_mappings_hom",
    "enumerate_mappings_het",
    "brute_force_best",
]

#: Refuse search spaces larger than this many candidate mappings.
DEFAULT_BUDGET = 2_000_000


def _replica_count_vectors(m: int, p: int, K: int) -> Iterator[tuple[int, ...]]:
    """All ``(q_1 .. q_m)`` with ``1 <= q_j <= K`` and ``sum q_j <= p``."""

    def rec(j: int, left: int) -> Iterator[tuple[int, ...]]:
        if j == m:
            yield ()
            return
        # Must leave at least m - j - 1 processors for later intervals.
        for q in range(1, min(K, left - (m - j - 1)) + 1):
            for tail in rec(j + 1, left - q):
                yield (q, *tail)

    if p >= m:
        yield from rec(0, p)


def enumerate_mappings_hom(
    chain: TaskChain, platform: Platform
) -> Iterator[Mapping]:
    """Every interval mapping of a *homogeneous* instance, up to the
    (irrelevant) identity of the processors within each replica set.

    Replica sets are assigned consecutive processor ids; on a
    homogeneous platform every actual mapping is equivalent to exactly
    one of these.
    """
    if not platform.homogeneous:
        raise ValueError("enumerate_mappings_hom requires a homogeneous platform")
    p, K = platform.p, platform.max_replication
    for partition in partitions_with_m_intervals(chain.n, max_m=p):
        m = len(partition)
        for qs in _replica_count_vectors(m, p, K):
            nxt = 0
            assignment = []
            for iv, q in zip(partition, qs):
                assignment.append((iv, tuple(range(nxt, nxt + q))))
                nxt += q
            yield Mapping(chain, platform, assignment)


def _subsets(pool: Sequence[int], max_size: int) -> Iterator[tuple[int, ...]]:
    """Non-empty subsets of *pool* with at most *max_size* elements."""
    pool = list(pool)

    def rec(idx: int, chosen: list[int]) -> Iterator[tuple[int, ...]]:
        if chosen and len(chosen) <= max_size:
            yield tuple(chosen)
        if idx == len(pool) or len(chosen) == max_size:
            return
        for i in range(idx, len(pool)):
            chosen.append(pool[i])
            yield from rec(i + 1, chosen)
            chosen.pop()

    yield from rec(0, [])


def enumerate_mappings_het(
    chain: TaskChain, platform: Platform
) -> Iterator[Mapping]:
    """Every interval mapping of a (possibly heterogeneous) instance.

    Enumerates, for each chain partition, every assignment of pairwise
    disjoint non-empty processor subsets of size at most ``K`` to the
    intervals.  Exponential in every direction — tiny instances only.
    """
    p, K = platform.p, platform.max_replication
    all_procs = list(range(p))

    def assign(
        partition: list[Interval], j: int, free: list[int], acc: list[tuple[Interval, tuple[int, ...]]]
    ) -> Iterator[Mapping]:
        if j == len(partition):
            yield Mapping(chain, platform, list(acc))
            return
        if len(free) < len(partition) - j:
            return
        for procs in _subsets(free, K):
            acc.append((partition[j], procs))
            rest = [u for u in free if u not in procs]
            yield from assign(partition, j + 1, rest, acc)
            acc.pop()

    for partition in partitions_with_m_intervals(chain.n, max_m=p):
        yield from assign(list(partition), 0, all_procs, [])


def _search_space_hom(n: int, p: int, K: int) -> float:
    """Loose upper bound on the homogeneous search-space size."""
    return (2 ** (n - 1)) * (K ** min(n, p))


def _search_space_het(n: int, p: int, K: int) -> float:
    """Loose upper bound on the heterogeneous search-space size."""
    return (2 ** (n - 1)) * float(p + 1) ** min(n, p, K * p)


def brute_force_best(
    chain: TaskChain,
    platform: Platform,
    max_period: float = math.inf,
    max_latency: float = math.inf,
    worst_case: bool = True,
    budget: int = DEFAULT_BUDGET,
    objective: str = "reliability",
    min_log_reliability: float = -math.inf,
) -> SolveResult:
    """Exhaustively find the best mapping within the bounds.

    ``objective="reliability"`` (the default) maximizes reliability.
    The converse objectives minimize their criterion over the mappings
    that satisfy the bounds *and* the ``min_log_reliability`` floor:
    ``"period"`` / ``"latency"`` minimize the worst-case (or expected,
    per *worst_case*) bound values, ``"energy"`` minimizes
    :func:`repro.extensions.energy.mapping_energy` at its default
    power-model parameters.  Ties break toward higher reliability, so
    the oracle is deterministic for the cross-check.

    Parameters
    ----------
    worst_case:
        Compare worst-case (default) or expected period/latency against
        the bounds; irrelevant on homogeneous platforms.
    budget:
        Guard on the estimated search-space size; :class:`ValueError`
        when exceeded (use the polynomial algorithms instead).
    objective:
        One of :data:`repro.solve.OBJECTIVES`.
    min_log_reliability:
        Reliability floor as a log-probability (``-inf`` = no floor);
        only meaningful for the converse objectives.
    """
    if objective == "energy":
        from repro.extensions.energy import mapping_energy
    elif objective not in ("reliability", "period", "latency"):
        raise ValueError(f"unknown objective {objective!r}")
    n, p, K = chain.n, platform.p, platform.max_replication
    hom = platform.homogeneous
    estimate = _search_space_hom(n, p, K) if hom else _search_space_het(n, p, K)
    if estimate > budget:
        raise ValueError(
            f"search space ~{estimate:.2e} exceeds budget {budget}; "
            "brute force is for tiny instances only"
        )
    enum = enumerate_mappings_hom if hom else enumerate_mappings_het
    best = None
    explored = 0
    for mapping in enum(chain, platform):
        explored += 1
        ev = evaluate_mapping(mapping)
        if not ev.meets(
            max_period=max_period,
            max_latency=max_latency,
            min_log_reliability=min_log_reliability,
            worst_case=worst_case,
        ):
            continue
        if objective == "reliability":
            score = -ev.log_reliability
        elif objective == "period":
            score = ev.worst_case_period if worst_case else ev.expected_period
        elif objective == "latency":
            score = ev.worst_case_latency if worst_case else ev.expected_latency
        else:
            score = mapping_energy(mapping)
        # Minimize the score; ties go to the more reliable mapping.
        key = (score, -ev.log_reliability)
        if best is None or key < best[0]:
            best = (key, mapping, ev, score)
    if best is None:
        return SolveResult.infeasible(
            "brute-force", explored=explored, objective=objective
        )
    details = {"explored": explored, "objective": objective}
    if objective == "energy":
        details["energy"] = best[3]
    return SolveResult(
        feasible=True,
        mapping=best[1],
        evaluation=best[2],
        method="brute-force",
        details=details,
    )
