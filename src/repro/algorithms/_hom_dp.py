"""Shared dynamic-programming core for Algorithms 1 and 2 (homogeneous).

Algorithm 1 (Section 5.1) is, in the paper's own words, "a simplified
version of Algorithm 2" — the period bound is simply absent.  Both public
entry points therefore delegate to :func:`hom_reliability_dp`, which runs
the recurrence

    ``F(i, k) = max over j < i, 1 <= q <= min(K, k) of
      F(j, k - q) * (1 - (1 - rcomm_j * prod_{j < l <= i} r_l * rcomm_i)^q)``

in the log domain, with an optional per-interval period-feasibility
filter ``max(o_j / b, W(j+1..i) / s, o_i / b) <= P`` (Algorithm 2
line 13).  States are (number of tasks mapped, processors used); parent
pointers reconstruct the optimal mapping.

Note the index correction relative to the preprint's Algorithm 1 line 10
(``rcomm,j-1`` / ``prod_{j<=l<=i}``): the interval appended after a prefix
of ``j`` mapped tasks is ``tau_{j+1}..tau_i``, i.e. the consistent form
printed in Algorithm 2 (see DESIGN.md, "known typos" #1-#2).

The DP is vectorized over the processor-count axis per the HPC guides:
the inner maximization is a shifted NumPy slice update rather than a
Python loop over ``k``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.chain import TaskChain
from repro.core.evaluation import comm_log_reliability
from repro.core.interval import Interval
from repro.core.mapping import Mapping
from repro.core.platform import Platform
from repro.util import logrel

__all__ = ["hom_reliability_dp", "require_homogeneous", "HomDPResult"]


class HomDPResult:
    """Raw outcome of the homogeneous reliability DP.

    Attributes
    ----------
    log_reliability:
        Best achievable log-reliability (``-inf`` if no feasible mapping,
        which can only happen under a period bound).
    mapping:
        The optimal mapping with replicas assigned to processors
        ``0, 1, 2, ...`` (processor identity is irrelevant on a
        homogeneous platform), or ``None``.
    table:
        The full ``F`` table (``(n+1) x (p+1)``), exposed for tests.
    """

    __slots__ = ("log_reliability", "mapping", "table")

    def __init__(self, log_reliability: float, mapping: Mapping | None, table: np.ndarray):
        self.log_reliability = log_reliability
        self.mapping = mapping
        self.table = table


def require_homogeneous(platform: Platform, algorithm: str) -> None:
    """Raise if *platform* is heterogeneous.

    The Section 5 algorithms are only optimal (Theorems 1 and 2) on fully
    homogeneous platforms; running them elsewhere would silently produce
    wrong answers, so we refuse (Section 6 proves the heterogeneous
    problem NP-complete).
    """
    if not platform.homogeneous:
        raise ValueError(
            f"{algorithm} requires a fully homogeneous platform "
            "(same speed and failure rate on every processor); "
            "use the heuristics of repro.algorithms.heuristics instead"
        )


def hom_reliability_dp(
    chain: TaskChain,
    platform: Platform,
    max_period: float = math.inf,
) -> HomDPResult:
    """Run the Algorithm 1/2 recurrence and reconstruct the best mapping.

    Parameters
    ----------
    chain, platform:
        The instance; *platform* must be homogeneous.
    max_period:
        The period bound ``P`` of Algorithm 2; ``inf`` recovers
        Algorithm 1 exactly.

    Complexity: ``O(n^2 * p * K)`` time, ``O(n * p)`` space (plus the
    ``O(n^2)`` branch table), matching Theorems 1 and 2 (``K <= p``).
    """
    require_homogeneous(platform, "the homogeneous reliability DP")
    n, p = chain.n, platform.p
    kmax = min(platform.max_replication, p)
    s = float(platform.speeds[0])
    lam = float(platform.failure_rates[0])
    b = platform.bandwidth

    # Branch log-reliability of every candidate interval [j, i):
    #   ell_b[j, i] = log(rcomm_j) - lam * W(j, i) / s + log(rcomm_i)
    prefix = np.concatenate(([0.0], np.cumsum(chain.work)))
    ell_comm = np.array(
        [comm_log_reliability(platform, chain.input_of(j)) for j in range(n)]
        + [comm_log_reliability(platform, chain.output_of(n))]
    )
    # ell_comm[j] = log rcomm of the data crossing the boundary before
    # task j (and ell_comm[n] the boundary after the last task).

    # Period feasibility of interval [j, i) (Algorithm 2 line 13):
    #   max(o_in/b, W/s, o_out/b) <= P.
    comm_in_time = np.array([chain.input_of(j) / b for j in range(n)])
    comm_out_time = np.array([chain.output_of(i) / b for i in range(1, n + 1)])

    NEG = -math.inf
    F = np.full((n + 1, p + 1), NEG)
    F[0, 0] = 0.0
    parent_j = np.full((n + 1, p + 1), -1, dtype=np.int64)
    parent_q = np.full((n + 1, p + 1), -1, dtype=np.int64)

    qs = np.arange(1, kmax + 1)
    for i in range(1, n + 1):
        out_ok = comm_out_time[i - 1] <= max_period
        if not out_ok:
            # Any interval ending at i violates the period bound through
            # its outgoing communication; no transition can land on i.
            continue
        for j in range(0, i):
            work = float(prefix[i] - prefix[j])
            if work / s > max_period or comm_in_time[j] > max_period:
                continue
            ell_branch = ell_comm[j] - lam * work / s + ell_comm[i]
            stage = logrel.parallel_k_many(ell_branch, qs)  # shape (kmax,)
            row_j = F[j]
            row_i = F[i]
            for q in range(1, kmax + 1):
                cand = row_j[: p + 1 - q] + stage[q - 1]
                dest = row_i[q:]
                better = cand > dest
                if np.any(better):
                    dest[better] = cand[better]
                    idx = np.nonzero(better)[0] + q
                    parent_j[i, idx] = j
                    parent_q[i, idx] = q

    best_k = int(np.argmax(F[n, 1:])) + 1 if n >= 1 else 0
    best = float(F[n, best_k]) if n >= 1 else 0.0
    if not np.isfinite(best):
        return HomDPResult(NEG, None, F)

    # Reconstruct intervals (right to left), then assign processor ids
    # 0, 1, 2, ... — identity is irrelevant on a homogeneous platform.
    pieces: list[tuple[int, int, int]] = []  # (start, stop, q)
    i, k = n, best_k
    while i > 0:
        j, q = int(parent_j[i, k]), int(parent_q[i, k])
        if j < 0:
            raise AssertionError("broken parent chain in homogeneous DP")
        pieces.append((j, i, q))
        i, k = j, k - q
    pieces.reverse()
    assignment = []
    next_proc = 0
    for start, stop, q in pieces:
        procs = tuple(range(next_proc, next_proc + q))
        next_proc += q
        assignment.append((Interval(start, stop), procs))
    mapping = Mapping(chain, platform, assignment)
    return HomDPResult(best, mapping, F)
