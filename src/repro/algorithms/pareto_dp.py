"""Exact tri-criteria solver for homogeneous platforms (our addition).

The paper solves the homogeneous tri-criteria problem (maximize
reliability under period *and* latency bounds) with an integer linear
program (Section 5.4) because the bi-criteria (reliability, latency)
problem is NP-complete (Theorem 3).  This module provides an exact
*combinatorial* alternative used to cross-validate the ILP: a dynamic
program over states ``(tasks mapped, processors used)`` whose value is
the Pareto frontier of ``(communication latency so far, log-reliability)``
pairs.

Why this is exact.  On a homogeneous platform the latency of a mapping
is ``W_total / s + sum_j o_{l_j} / b`` (Eq. (5)/(7): the computation term
is partition-invariant), so among prefixes using the same number of
processors, a partial mapping can only be beaten by one with both a
smaller accumulated communication term and a better reliability — the
Pareto frontier keeps every potentially-optimal prefix.  Worst-case
complexity is exponential (consistent with Theorem 3: the frontier can
grow with the number of distinct communication subsets), but frontier
sizes stay tiny on practical instances, which makes this an effective
exact method at the paper's experimental scale (n = 15).

The same frontier answers the *converse* latency question
(:func:`minimize_latency`, the Section 5.3 scope of the tri-criteria
facade): the minimum-latency mapping whose reliability meets a floor is
attained at a final Pareto point — any dominated mapping is beaten on
both coordinates by a frontier one — so minimizing over the frontier's
points with value above the floor is exact, at the cost of one DP run.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algorithms._hom_dp import require_homogeneous
from repro.algorithms.result import SolveResult
from repro.core.chain import TaskChain
from repro.core.evaluation import comm_log_reliability, evaluate_mapping
from repro.core.interval import Interval
from repro.core.mapping import Mapping
from repro.core.platform import Platform
from repro.util import logrel
from repro.util.pareto import ParetoFrontier

__all__ = ["pareto_dp_best", "minimize_latency"]


class _DPRun:
    """One Pareto-DP table plus the per-instance constants the
    reconstruction walk needs (shared by both public entry points)."""

    __slots__ = ("front", "prefix", "ell_comm", "s", "lam", "total_compute")

    def __init__(self, front, prefix, ell_comm, s, lam, total_compute):
        self.front = front
        self.prefix = prefix
        self.ell_comm = ell_comm
        self.s = s
        self.lam = lam
        self.total_compute = total_compute


def _run_dp(
    chain: TaskChain,
    platform: Platform,
    max_period: float,
    comm_budget: float,
) -> _DPRun:
    """Fill the frontier table ``front[i][k]`` for prefixes of *i* tasks
    on exactly *k* processors (see the module docstring)."""
    n, p = chain.n, platform.p
    kmax = min(platform.max_replication, p)
    s = float(platform.speeds[0])
    lam = float(platform.failure_rates[0])
    b = platform.bandwidth

    prefix = np.concatenate(([0.0], np.cumsum(chain.work)))
    total_compute = float(prefix[-1]) / s

    ell_comm = [comm_log_reliability(platform, chain.input_of(j)) for j in range(n)]
    ell_comm.append(comm_log_reliability(platform, chain.output_of(n)))
    comm_time = [chain.input_of(j) / b for j in range(n)]
    comm_time.append(chain.output_of(n) / b)

    # front[i][k]: Pareto frontier over (comm latency incl. the outgoing
    # communication of the interval ending at i, log-reliability) for
    # prefixes of i tasks on exactly k processors.  Payload = parent
    # (j, k_prev, q, parent_cost) for reconstruction.
    front: list[list[ParetoFrontier | None]] = [
        [None] * (p + 1) for _ in range(n + 1)
    ]
    start = ParetoFrontier()
    start.insert(0.0, 0.0, None)
    front[0][0] = start

    for i in range(1, n + 1):
        out_time = comm_time[i]
        if out_time > max_period:
            continue  # no interval may end at i
        for j in range(0, i):
            work = float(prefix[i] - prefix[j])
            if work / s > max_period or comm_time[j] > max_period:
                continue
            ell_branch = ell_comm[j] - lam * work / s + ell_comm[i]
            stage = logrel.parallel_k_many(ell_branch, np.arange(1, kmax + 1))
            for k_prev in range(0, p):
                src = front[j][k_prev]
                if src is None:
                    continue
                for q in range(1, min(kmax, p - k_prev) + 1):
                    dst_k = k_prev + q
                    for cost, value, _payload in list(src):
                        new_cost = cost + out_time
                        if new_cost > comm_budget:
                            continue
                        dst = front[i][dst_k]
                        if dst is None:
                            dst = ParetoFrontier()
                            front[i][dst_k] = dst
                        dst.insert(
                            new_cost,
                            value + float(stage[q - 1]),
                            (j, k_prev, q, cost),
                        )

    return _DPRun(front, prefix, ell_comm, s, lam, total_compute)


def _reconstruct(
    chain: TaskChain,
    platform: Platform,
    run: _DPRun,
    value: float,
    k: int,
    cost: float,
) -> Mapping:
    """Walk the frontier payloads backwards from a final state."""
    front = run.front
    pieces: list[tuple[int, int, int]] = []
    i = chain.n
    while i > 0:
        fr = front[i][k]
        assert fr is not None
        payload = None
        for c, v, pl in fr:
            if c == cost and v == value:
                payload = pl
                break
        assert payload is not None, "frontier point vanished during reconstruction"
        j, k_prev, q, parent_cost = payload
        pieces.append((j, i, q))
        # Recompute the parent's value to continue the walk.
        work = float(run.prefix[i] - run.prefix[j])
        ell_branch = run.ell_comm[j] - run.lam * work / run.s + run.ell_comm[i]
        value = value - logrel.parallel_k(ell_branch, q)
        # Guard against float drift: snap to the closest parent point.
        parent_fr = front[j][k_prev]
        assert parent_fr is not None
        snapped = min(
            (pt for pt in parent_fr if pt[0] == parent_cost),
            key=lambda pt: abs(pt[1] - value),
            default=None,
        )
        assert snapped is not None
        value = snapped[1]
        cost = parent_cost
        i, k = j, k_prev
    pieces.reverse()

    assignment = []
    nxt = 0
    for a, z, q in pieces:
        assignment.append((Interval(a, z), tuple(range(nxt, nxt + q))))
        nxt += q
    return Mapping(chain, platform, assignment)


def pareto_dp_best(
    chain: TaskChain,
    platform: Platform,
    max_period: float = math.inf,
    max_latency: float = math.inf,
) -> SolveResult:
    """Most reliable homogeneous mapping under period and latency bounds.

    Exact.  With ``max_latency = inf`` this reduces to Algorithm 2, and
    with both bounds infinite to Algorithm 1 (both reductions are tested).

    Examples
    --------
    >>> from repro.core import TaskChain, Platform
    >>> chain = TaskChain([6.0, 6.0], [4.0, 0.0])
    >>> plat = Platform.homogeneous_platform(4, failure_rate=1e-6,
    ...                                      max_replication=2)
    >>> res = pareto_dp_best(chain, plat, max_period=7.0, max_latency=17.0)
    >>> res.mapping.m     # split needed for P, allowed by L
    2
    """
    require_homogeneous(platform, "the exact Pareto DP")
    if max_period <= 0 or max_latency <= 0:
        raise ValueError("bounds must be > 0")
    n, p = chain.n, platform.p

    prefix = np.concatenate(([0.0], np.cumsum(chain.work)))
    total_compute = float(prefix[-1]) / float(platform.speeds[0])
    comm_budget = max_latency - total_compute
    if comm_budget < 0:
        # Even a zero-communication partition exceeds the latency bound.
        return SolveResult.infeasible(
            "pareto-dp", reason="latency below compute lower bound"
        )

    run = _run_dp(chain, platform, max_period, comm_budget)
    front = run.front

    # Pick the best final state within the communication budget.
    best: tuple[float, int, float] | None = None  # (logrel, k, cost)
    for k in range(1, p + 1):
        fr = front[n][k]
        if fr is None:
            continue
        hit = fr.best_value_within(comm_budget)
        if hit is None:
            continue
        value, _ = hit
        if best is None or value > best[0]:
            # Locate the exact point for reconstruction below.
            for cost, val, _pl in fr:
                if val == value:
                    best = (value, k, cost)
                    break
    if best is None:
        return SolveResult.infeasible("pareto-dp")

    value, k, cost = best
    mapping = _reconstruct(chain, platform, run, value, k, cost)
    return SolveResult(
        feasible=True,
        mapping=mapping,
        evaluation=evaluate_mapping(mapping),
        method="pareto-dp",
        details={"frontier_final_size": sum(len(f) for f in front[n] if f)},
    )


def minimize_latency(
    chain: TaskChain,
    platform: Platform,
    min_log_reliability: float = -math.inf,
    max_period: float = math.inf,
    max_latency: float = math.inf,
) -> SolveResult:
    """Minimize the latency under a reliability floor and a period bound.

    Exact on homogeneous platforms.  The latency of a mapping is
    ``W_total / s`` plus its accumulated communication term, and the
    minimum-latency mapping meeting the floor is attained at a final
    Pareto point of the same DP :func:`pareto_dp_best` runs (any
    non-frontier mapping is dominated on both coordinates).  One DP run
    with the latency budget as the pruning bound, then a scan of the
    final frontiers for the cheapest point whose value meets the floor.

    Parameters
    ----------
    min_log_reliability:
        Reliability floor as a log-probability (``-inf`` = no floor:
        minimize latency over all mappings within the period bound).
    max_period:
        Period bound honored by every candidate interval.
    max_latency:
        Optional cap on the answer; the result is infeasible when even
        the optimal latency exceeds it.

    Examples
    --------
    >>> from repro.core import TaskChain, Platform
    >>> chain = TaskChain([6.0, 6.0], [4.0, 0.0])
    >>> plat = Platform.homogeneous_platform(4, failure_rate=1e-6,
    ...                                      max_replication=2)
    >>> minimize_latency(chain, plat).details["optimal_latency"]  # 1 interval
    12.0
    >>> minimize_latency(chain, plat, max_period=7.0).details["optimal_latency"]
    16.0
    """
    require_homogeneous(platform, "latency minimization")
    if min_log_reliability > 0.0 or math.isnan(min_log_reliability):
        raise ValueError("min_log_reliability must be a log-probability (<= 0)")
    if max_period <= 0 or max_latency <= 0:
        raise ValueError("bounds must be > 0")
    n, p = chain.n, platform.p

    prefix = np.concatenate(([0.0], np.cumsum(chain.work)))
    total_compute = float(prefix[-1]) / float(platform.speeds[0])
    comm_budget = max_latency - total_compute
    if comm_budget < 0:
        return SolveResult.infeasible(
            "dp-latency", reason="latency cap below compute lower bound"
        )

    run = _run_dp(chain, platform, max_period, comm_budget)
    front = run.front

    # Cheapest final point meeting the floor; ties broken by value, so
    # equal-latency mappings resolve to the most reliable one.
    best: tuple[float, float, int] | None = None  # (cost, -logrel, k)
    for k in range(1, p + 1):
        fr = front[n][k]
        if fr is None:
            continue
        for cost, value, _payload in fr:
            if value < min_log_reliability:
                continue
            key = (cost, -value, k)
            if best is None or key < best:
                best = key
    if best is None:
        return SolveResult.infeasible(
            "dp-latency",
            min_log_reliability=min_log_reliability,
            max_period=max_period,
            max_latency=max_latency,
        )

    cost, neg_value, k = best
    mapping = _reconstruct(chain, platform, run, -neg_value, k, cost)
    return SolveResult(
        feasible=True,
        mapping=mapping,
        evaluation=evaluate_mapping(mapping),
        method="dp-latency",
        details={
            "optimal_latency": total_compute + cost,
            "frontier_final_size": sum(len(f) for f in front[n] if f),
        },
    )
