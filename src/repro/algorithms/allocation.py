"""Processor allocation for a fixed interval partition (Sections 5.5, 7.2).

Once the chain has been divided into intervals, it remains to decide
which processors replicate which interval.

* On a **homogeneous** platform the partition already fixes the period
  and latency, so allocation only impacts reliability.  The greedy
  **Algo-Alloc** (Section 5.5) assigns one processor per interval, then
  repeatedly gives the next processor to the interval whose reliability
  improves by the largest *ratio*; Theorem 4 proves this optimal (the
  improvement ratio ``R_{k,j}`` decreases with ``k`` by convexity, so the
  greedy exchange argument goes through).

* On a **heterogeneous** platform (Section 7.2), processors are first
  sorted by ``lambda_u / s_u`` (most reliable first — the quantity that
  makes an interval on ``P_u`` fail is ``lambda_u W / s_u``); each
  processor in turn seeds the longest still-empty interval it can host
  within the period bound ``P`` (``W_j / s_u <= P``), and remaining
  processors go to the interval with the best reliability-improvement
  ratio among those they can host.  Allocation constraints ("this task
  needs a hardware driver only present on those processors") are
  supported through the *allowed* predicate, as discussed at the end of
  Section 7.2.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Sequence

import numpy as np

from repro.algorithms._hom_dp import require_homogeneous
from repro.core.chain import TaskChain
from repro.core.evaluation import comm_log_reliability, interval_log_reliability
from repro.core.interval import Interval, validate_partition
from repro.core.mapping import Mapping
from repro.core.platform import Platform
from repro.util import logrel

__all__ = ["algo_alloc", "algo_alloc_het"]


def _branch_logrel(
    chain: TaskChain, platform: Platform, iv: Interval, proc: int
) -> float:
    """Log-reliability of one replica branch of the Fig. 5 RBD:
    incoming comm x interval execution x outgoing comm."""
    return (
        comm_log_reliability(platform, chain.input_of(iv.start))
        + interval_log_reliability(chain, platform, iv.start, iv.stop, proc)
        + comm_log_reliability(platform, chain.output_of(iv.stop))
    )


def algo_alloc(
    chain: TaskChain,
    platform: Platform,
    partition: Sequence[Interval],
) -> Mapping:
    """Optimal processor allocation on a homogeneous platform (Algo-Alloc).

    Implements Section 5.5 exactly:

    1. allocate one processor to each interval;
    2. while an unallocated processor remains and some interval has
       fewer than ``K`` replicas, give a processor to the interval with
       the maximum ratio (reliability with one more replica) /
       (current reliability).

    Theorem 4 guarantees the result maximizes Eq. (9) over all
    allocations for this partition.  Processor identities are
    interchangeable on a homogeneous platform; replicas are assigned
    ids ``0, 1, 2, ...`` in interval order.

    Raises
    ------
    ValueError
        If the platform is heterogeneous or has fewer processors than
        intervals.
    """
    require_homogeneous(platform, "Algo-Alloc")
    partition = list(partition)
    validate_partition(chain.n, partition)
    m, p, K = len(partition), platform.p, platform.max_replication
    if p < m:
        raise ValueError(f"{m} intervals need at least {m} processors, platform has {p}")

    counts = [1] * m
    remaining = p - m

    # Greedy by ratio R_{k+1,j} = (1 - a_j^{k+1}) / (1 - a_j^k): in the
    # log domain the score is ell(k+1) - ell(k) where
    # ell(k) = log(1 - a_j^k) and a_j is the branch failure probability.
    log_fail = [
        logrel.log_failure(_branch_logrel(chain, platform, iv, 0)) for iv in partition
    ]  # log a_j; proc index irrelevant (homogeneous)

    def score(j: int, k: int) -> float:
        """log R_{k+1,j} — improvement from replica k to k+1 (>= 0)."""
        lo = logrel.log1mexp(np.array([k * log_fail[j], (k + 1) * log_fail[j]]))
        return float(lo[1] - lo[0])

    heap: list[tuple[float, int]] = []
    for j in range(m):
        if counts[j] < K:
            heapq.heappush(heap, (-score(j, counts[j]), j))
    while remaining > 0 and heap:
        _, j = heapq.heappop(heap)
        counts[j] += 1
        remaining -= 1
        if counts[j] < K:
            heapq.heappush(heap, (-score(j, counts[j]), j))

    assignment = []
    nxt = 0
    for iv, q in zip(partition, counts):
        assignment.append((iv, tuple(range(nxt, nxt + q))))
        nxt += q
    return Mapping(chain, platform, assignment)


def algo_alloc_het(
    chain: TaskChain,
    platform: Platform,
    partition: Sequence[Interval],
    max_period: float = math.inf,
    allowed: Callable[[int, int], bool] | None = None,
) -> Mapping | None:
    """Heterogeneous allocation with a period bound (Section 7.2).

    Parameters
    ----------
    chain, platform, partition:
        The instance and the fixed interval division.
    max_period:
        Bound ``P``: a processor ``P_u`` may replicate interval ``I_j``
        only if ``W_j / s_u <= P`` (its worst-case contribution to the
        period).  Communication times are *not* checked here — the
        paper's allocation "considers only the period bound" on
        computations; callers filter complete mappings afterwards.
    allowed:
        Optional predicate ``allowed(proc, interval_index)`` encoding
        hardware-driver constraints; checked before any allocation.

    Returns
    -------
    Mapping or None
        ``None`` when some interval cannot receive any processor (the
        division is infeasible under these constraints).
    """
    partition = list(partition)
    validate_partition(chain.n, partition)
    m, p, K = len(partition), platform.p, platform.max_replication
    speeds, rates, b = platform.speeds, platform.failure_rates, platform.bandwidth
    if allowed is None:
        allowed = lambda _u, _j: True  # noqa: E731 - trivial default

    works = [chain.work_between(iv.start, iv.stop) for iv in partition]
    ell_comm = [
        comm_log_reliability(platform, chain.input_of(iv.start))
        + comm_log_reliability(platform, chain.output_of(iv.stop))
        for iv in partition
    ]

    def branch(u: int, j: int) -> float:
        return ell_comm[j] - float(rates[u]) * works[j] / float(speeds[u])

    def fits(u: int, j: int) -> bool:
        return works[j] / float(speeds[u]) <= max_period and allowed(u, j)

    # Most reliable processors first: increasing lambda_u / s_u, ties by
    # index for determinism.
    order = sorted(range(p), key=lambda u: (float(rates[u]) / float(speeds[u]), u))

    replicas: list[list[int]] = [[] for _ in range(m)]
    # log of the stage *failure* probability: sum over current replicas
    # of log(1 - r_branch); starts empty (failure probability 1).
    stage_log_fail = [0.0] * m
    empty = set(range(m))
    leftovers: list[int] = []

    # Phase 1 — seed every interval, longest hostable interval first.
    it = iter(order)
    for u in it:
        if not empty:
            leftovers.append(u)
            break
        candidates = [j for j in empty if fits(u, j)]
        if not candidates:
            leftovers.append(u)
            continue
        j = max(candidates, key=lambda jj: (works[jj], -jj))
        replicas[j].append(u)
        stage_log_fail[j] += logrel.log_failure(branch(u, j))
        empty.discard(j)
    leftovers.extend(it)
    if empty:
        return None

    # Phase 2 — remaining processors by best reliability-improvement ratio.
    for u in leftovers:
        best_j, best_gain = -1, 0.0
        for j in range(m):
            if len(replicas[j]) >= K or not fits(u, j):
                continue
            lf_new = stage_log_fail[j] + logrel.log_failure(branch(u, j))
            pair = logrel.log1mexp(np.array([stage_log_fail[j], lf_new]))
            gain = float(pair[1] - pair[0])
            if gain > best_gain:
                best_j, best_gain = j, gain
        if best_j >= 0:
            replicas[best_j].append(u)
            stage_log_fail[best_j] += logrel.log_failure(branch(u, best_j))

    assignment = [(iv, tuple(sorted(r))) for iv, r in zip(partition, replicas)]
    return Mapping(chain, platform, assignment)
