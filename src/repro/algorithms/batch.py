"""Batched solving kernels over :class:`~repro.core.ensemble.Ensemble` columns.

PR 5 made instance *storage* columnar; this module makes the *solving*
columnar too.  One kernel call evaluates a Section 7 heuristic across
every row of an ensemble — shared interval enumeration, batched
log-reliability arithmetic, vectorized feasibility masks — instead of
one object-level :func:`~repro.algorithms.heuristic_best` solve per
instance.

Bit-identity contract
---------------------
The kernels reproduce the per-instance path **bit for bit** — same
``solved`` flags, same failure probabilities, same objective values —
so cached sweep entries written by either path are interchangeable.
That contract dictates the implementation style:

* NumPy's SIMD transcendentals (``np.log`` & co.) agree with
  themselves across array shapes and strides but differ from
  ``math.log`` by an occasional ulp.  Every step the scalar path
  computes through ``math.*`` (``logrel.log_failure``, the
  ``logrel.parallel`` tail, ``-expm1`` / ``exp`` conversions) is
  therefore mapped element-wise over the *very same* scalar functions
  (:func:`numpy.frompyfunc`), while steps the scalar path already runs
  through NumPy (``logrel.log1mexp`` on allocation-score pairs, prefix
  sums, stable argsorts) stay vectorized.
* Sequential accumulations (``sum()`` starting at ``0``) are
  replicated as sequential masked adds — ``k`` rounded additions are
  not ``k * x``.
* Tie-breaks (the allocation heap's smallest-index pop, the DP's
  strict ``<``, the selection's strict ``>``) map onto
  first-occurrence ``argmax`` / ``argmin``.

Scope
-----
The heuristic kernels cover homogeneous *and* heterogeneous rows of
the paper's ``"reliability"`` objective, with or without a reliability
floor, for unseeded methods:

* **Homogeneous rows** — divisions and Algo-Alloc are both
  bounds-independent, so one candidate table serves every sweep point
  (:class:`_HomTable`).
* **Heterogeneous rows** — divisions are still chain-only, but the
  Section 7.2 allocation filters on the period bound, so every probe
  re-runs a lockstep Algo-Alloc across all rows at once
  (:class:`_HetTable` / :func:`_algo_alloc_het_lockstep`).
* **Floors** — feasible-best maximizes log-reliability, so masking
  sub-floor candidates before the argmax is exactly the scalar
  select-then-check.

Other objectives raise :class:`BatchUnsupported` (with a
machine-readable ``reason``), and callers — the harness, the worker
shards — fall back to the per-row path.  Fallback is a contract, not
an error.  The converse-objective kernels live in
:mod:`repro.algorithms.batch_dp` (dp-period / dp-latency) and
:mod:`repro.algorithms.batch_search` (the bisection searches, built on
this module's probe tables).

Entry points
------------
:func:`batch_heuristic_best` is the kernel;
:func:`heuristic_solve_batch` packages it as the ``solve_batch``
capability the method registry attaches to ``heur-l`` / ``heur-p`` /
``heuristic`` (see :mod:`repro.experiments.methods`);
:func:`heuristic_probe_tables` exposes the per-platform-kind probe
tables the search kernels bisect over.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.util import logrel

__all__ = [
    "BatchUnsupported",
    "batch_heuristic_best",
    "floor_log_reliability",
    "heuristic_probe_tables",
    "heuristic_solve_batch",
]


class BatchUnsupported(Exception):
    """The batched kernel does not cover this ensemble/problem shape.

    Raised *before* any work happens; the caller runs the per-row path
    instead.  ``reason`` is a short machine-readable class
    (``"objective"``, ``"floor"``, ``"heterogeneous"``,
    ``"latency-bound"``, ...) that the harness counts per fallback
    (``sweep.units.fallback``) so shrinking kernel coverage is
    observable rather than silent; the message stays the human story.
    """

    def __init__(self, message: str, *, reason: str = "unsupported") -> None:
        super().__init__(message)
        self.reason = reason


# Element-wise maps over the exact scalar functions the per-instance
# path calls — the ulp-level contract (see the module docstring).
_log_failure_map = np.frompyfunc(logrel.log_failure, 1, 1)
_failure_map = np.frompyfunc(logrel.failure, 1, 1)
_reliability_map = np.frompyfunc(logrel.reliability, 1, 1)


def _parallel_tail(log_prod_f: float) -> float:
    """The tail of :func:`logrel.parallel` after the failure-log sum.

    Replicates its branch structure exactly: a ``-inf`` product means
    some branch is perfect (stage reliability 1), a ``0.0`` product
    means every branch certainly fails, and otherwise the two-branch
    log1mexp evaluates ``log(1 - prod f)``.
    """
    if log_prod_f == -math.inf:
        return logrel.PERFECT
    if log_prod_f == 0.0:
        return -math.inf
    if log_prod_f > -math.log(2.0):
        return math.log(-math.expm1(log_prod_f))
    return math.log1p(-math.exp(log_prod_f))


_parallel_tail_map = np.frompyfunc(_parallel_tail, 1, 1)


def _pyfloat(mapped: np.ndarray) -> np.ndarray:
    """Cast a ``frompyfunc`` object-array result back to float64."""
    return mapped.astype(float)


def _check_supported(ensemble, which: str, objective: str) -> None:
    if which not in ("heur-l", "heur-p", "both"):
        raise ValueError(f"unknown heuristic {which!r}")
    if objective != "reliability":
        raise BatchUnsupported(
            f"batched heuristics cover objective 'reliability' only, "
            f"got {objective!r}",
            reason="objective",
        )


def floor_log_reliability(min_reliability: float) -> float:
    """The reliability floor as a log-probability (``-inf`` = none).

    The kernel-side twin of :attr:`repro.solve.Problem.min_log_reliability`
    — same special case, same conversion — so a floor travels through
    the batched path as exactly the number the scalar solvers receive.
    """
    v = float(min_reliability)
    if v == 0.0:
        return -math.inf
    return logrel.from_reliability(v)


def _heur_l_boundaries(output: np.ndarray, m: int) -> np.ndarray:
    """Algorithm 3 boundaries for every row: ``(r, m + 1)`` ints.

    Cuts at the ``m - 1`` smallest output costs among tasks
    ``tau_1 .. tau_{n-1}`` — the stable argsort matches the scalar
    path's tie-break by chain position.
    """
    r, n = output.shape
    bnd = np.empty((r, m + 1), dtype=np.int64)
    bnd[:, 0] = 0
    bnd[:, m] = n
    if m > 1:
        order = np.argsort(output[:, : n - 1], axis=1, kind="stable")
        bnd[:, 1:m] = np.sort(order[:, : m - 1], axis=1) + 1
    return bnd


def _heur_p_tables(
    work: np.ndarray, output: np.ndarray, bandwidth: float, M: int
) -> np.ndarray:
    """Algorithm 4's DP parent table for every row, shared across ``m``.

    ``F(j, k)`` — the optimal ``k``-interval period over the first
    ``j`` tasks — does not depend on the target interval count, so one
    table to ``k = M`` serves the reconstruction for every candidate
    ``m <= M``.  Returns ``arg`` of shape ``(M + 1, r, n + 1)``; entry
    ``arg[k, :, j]`` is the optimal previous boundary ``j'`` (the
    scalar DP's first strict minimizer).
    """
    r, n = work.shape
    prefix = np.concatenate(
        [np.zeros((r, 1)), np.cumsum(work, axis=1)], axis=1
    )
    out_time = output / bandwidth
    ridx = np.arange(r)

    INF = math.inf
    F_prev = np.full((r, n + 1), INF)
    F_prev[:, 1:] = np.maximum(prefix[:, 1:], out_time)
    arg = np.zeros((M + 1, r, n + 1), dtype=np.int64)
    for k in range(2, M + 1):
        F_k = np.full((r, n + 1), INF)
        for j in range(k, n + 1):
            # j' ranges over k-1 .. j-1; three-way max as in the scalar DP.
            cand = np.maximum(
                np.maximum(
                    F_prev[:, k - 1 : j],
                    prefix[:, j : j + 1] - prefix[:, k - 1 : j],
                ),
                out_time[:, j - 1 : j],
            )
            idx = np.argmin(cand, axis=1)  # first minimum = strict '<'
            F_k[:, j] = cand[ridx, idx]
            arg[k, :, j] = idx + (k - 1)
        F_prev = F_k
    return arg


def _heur_p_boundaries(arg: np.ndarray, n: int, m: int) -> np.ndarray:
    """Reconstruct the ``m``-interval boundaries from the DP table."""
    r = arg.shape[1]
    ridx = np.arange(r)
    bnd = np.empty((r, m + 1), dtype=np.int64)
    bnd[:, 0] = 0
    bnd[:, m] = n
    j = np.full(r, n, dtype=np.int64)
    for k in range(m, 1, -1):
        j = arg[k, ridx, j]
        bnd[:, k - 1] = j
    return bnd


def _algo_alloc_counts(lf: np.ndarray, p: int, K: int) -> np.ndarray:
    """Algo-Alloc's replica counts for every row at once.

    *lf* is the ``(r, m)`` per-interval branch log-failure matrix.
    Replicates the Section 5.5 greedy exactly: each step gives one
    processor to the interval with the maximal improvement score,
    ties to the smallest interval index (the heap's tuple order); the
    step count ``min(p - m, m * (K - 1))`` is uniform across rows
    because every step allocates exactly one replica per row.
    """
    r, m = lf.shape
    ridx = np.arange(r)
    counts = np.ones((r, m), dtype=np.int64)
    steps = min(p - m, m * (K - 1))
    for _ in range(steps):
        # score(j, k) = log1mexp((k+1) lf) - log1mexp(k lf), as the
        # scalar path computes it (NumPy log1mexp on both members).
        lo_cur = logrel.log1mexp(counts * lf)
        lo_nxt = logrel.log1mexp((counts + 1) * lf)
        score = lo_nxt - lo_cur
        score = np.where(counts < K, score, -math.inf)
        j = np.argmax(score, axis=1)  # first maximum = smallest index
        counts[ridx, j] += 1
    return counts


def _stage_log_fail(lf: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """``sum()`` of ``counts`` copies of each branch log-failure.

    Sequential masked adds starting from ``+0.0`` — exactly the Python
    ``sum()`` inside :func:`logrel.parallel` (``k`` rounded additions,
    and ``0 + (-0.0)`` is ``+0.0``), which ``counts * lf`` is not.
    """
    slf = np.zeros_like(lf) + lf
    for t in range(1, int(counts.max())):
        slf = np.where(counts > t, slf + lf, slf)
    return slf


def _candidate_metrics(
    bnd: np.ndarray,
    prefix: np.ndarray,
    output: np.ndarray,
    speeds: np.ndarray,
    rates: np.ndarray,
    bandwidth: float,
    link_rate: float,
    p: int,
    K: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Evaluate one candidate division for every row.

    Returns ``(log_reliability, worst_period, worst_latency)`` vectors
    of shape ``(r,)`` — the three numbers ``heuristic_best`` reads off
    a candidate's :class:`~repro.core.evaluation.MappingEvaluation`.
    """
    r = bnd.shape[0]
    ridx = np.arange(r)[:, None]

    starts, stops = bnd[:, :-1], bnd[:, 1:]
    W = prefix[ridx, stops] - prefix[ridx, starts]          # (r, m)
    out_sizes = output[ridx, stops - 1]                     # o_{l_j}
    in_sizes = np.where(starts == 0, 0.0, output[ridx, np.maximum(starts - 1, 0)])

    # One replica branch of the Fig. 5 RBD, composed exactly as
    # _branch_logrel does: (comm_in + interval) + comm_out.
    ell_in = -link_rate * (in_sizes / bandwidth)
    ell_out = -link_rate * (out_sizes / bandwidth)
    ell_int = -rates[:, None] * (W / speeds[:, None])
    branch = (ell_in + ell_int) + ell_out

    lf = _pyfloat(_log_failure_map(branch))                 # log a_j
    counts = _algo_alloc_counts(lf, p, K)
    stage_lpf = _stage_log_fail(lf, counts)
    stage_ell = _pyfloat(_parallel_tail_map(stage_lpf))

    # Serial composition and the latency sum are sequential in the
    # scalar path; replicate the addition order.
    log_rel = np.zeros(r)
    wc = W / speeds[:, None]
    comm = out_sizes / bandwidth
    wl = np.zeros(r)
    m = bnd.shape[1] - 1
    for j in range(m):
        log_rel = log_rel + stage_ell[:, j]
        wl = wl + (wc[:, j] + comm[:, j])
    wp = np.maximum(comm.max(axis=1), wc.max(axis=1))
    return log_rel, wp, wl


class _HomTable:
    """Bounds-independent candidate metrics for homogeneous rows.

    On homogeneous platforms divisions *and* allocations are
    bounds-independent, so the whole candidate table — one
    ``(log_reliability, WP, WL)`` triple per (heuristic, interval
    count) per row — is computed once; probing any ``(P, L)`` point is
    a mask + argmax.  Stacking order is the scalar loop order:
    name-major, interval count ascending.
    """

    __slots__ = ("ell", "wp", "wl")

    def __init__(self, ensemble, rows: np.ndarray, names) -> None:
        r = len(rows)
        n, p, K = ensemble.n_tasks, ensemble.p, ensemble.max_replication
        b, link = ensemble.bandwidth, ensemble.link_failure_rate
        work = np.ascontiguousarray(ensemble.work[rows])
        output = np.ascontiguousarray(ensemble.output[rows])
        # Homogeneous rows: column 0 is every processor (the broadcast
        # property serves shared-platform ensembles transparently).
        speeds = np.ascontiguousarray(ensemble.speeds[rows, 0], dtype=float)
        rates = np.ascontiguousarray(ensemble.failure_rates[rows, 0], dtype=float)
        prefix = np.concatenate([np.zeros((r, 1)), np.cumsum(work, axis=1)], axis=1)

        M = min(n, p)
        arg = _heur_p_tables(work, output, b, M) if "heur-p" in names else None
        cand_ell, cand_wp, cand_wl = [], [], []
        for name in names:
            for m in range(1, M + 1):
                if name == "heur-l":
                    bnd = _heur_l_boundaries(output, m)
                else:
                    bnd = _heur_p_boundaries(arg, n, m)
                ell, wp, wl = _candidate_metrics(
                    bnd, prefix, output, speeds, rates, b, link, p, K
                )
                cand_ell.append(ell)
                cand_wp.append(wp)
                cand_wl.append(wl)
        self.ell = np.stack(cand_ell)                       # (C, r)
        self.wp = np.stack(cand_wp)
        self.wl = np.stack(cand_wl)

    def probe(
        self, P: np.ndarray, L: np.ndarray, floor: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Feasible-best selection at per-row bounds.

        *P*, *L* are ``(r,)`` vectors (a scalar sweep point broadcasts;
        the search kernels pass per-lane bisection midpoints).  Returns
        ``(feasible, ell, wp, wl)`` of the selected candidate per row
        — garbage where infeasible, masked by the caller.
        """
        mask = (self.wp <= P) & (self.wl <= L)
        if floor > -math.inf:
            # Feasible-best maximizes log-reliability, so masking the
            # floor before the argmax selects exactly the candidate the
            # scalar path selects and then checks against the floor.
            mask &= self.ell >= floor
        feasible = mask.any(axis=0)
        key = np.where(mask, self.ell, -math.inf)
        best = key.max(axis=0)
        # First feasible candidate attaining the maximum — the scalar
        # selection's strict-improvement tie-break.
        chosen = np.argmax(mask & (key == best), axis=0)
        ridx = np.arange(self.ell.shape[1])
        return (
            feasible,
            self.ell[chosen, ridx],
            self.wp[chosen, ridx],
            self.wl[chosen, ridx],
        )


def _algo_alloc_het_lockstep(
    W: np.ndarray,
    tcomp: np.ndarray,
    lf_alloc: np.ndarray,
    order: np.ndarray,
    speeds: np.ndarray,
    K: int,
    P: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Section 7.2 allocation for every row at once, one candidate.

    Runs :func:`~repro.algorithms.allocation.algo_alloc_het` in
    lockstep over the processor-reliability ranks: at rank ``t`` every
    row considers *its* ``t``-th most reliable processor.  A row whose
    intervals are all seeded (or whose processor hosts nothing) marks
    the rank as a leftover — exactly the scalar ``break`` /
    ``continue`` bookkeeping, which is rank-order-preserving.

    Parameters are per-candidate tables: *W* ``(r, m)`` interval works,
    *tcomp* ``(r, p, m)`` compute times ``W_j / s_u``, *lf_alloc* the
    branch log-failures under the allocation's operand order, *order*
    the per-row reliability ranking, *P* the ``(r,)`` period bounds.

    Returns ``(assign, min_speed, valid)``: per-processor interval
    assignment (``-1`` = unused), per-interval slowest enrolled speed,
    and the rows whose every interval got seeded (the scalar path
    returns ``None`` — no mapping — for the others).
    """
    r, p, m = tcomp.shape
    ridx = np.arange(r)
    fits = tcomp <= P[:, None, None]
    empty = np.ones((r, m), dtype=bool)
    counts = np.zeros((r, m), dtype=np.int64)
    slf = np.zeros((r, m))
    assign = np.full((r, p), -1, dtype=np.int64)
    min_speed = np.full((r, m), math.inf)
    leftover = np.zeros((r, p), dtype=bool)

    # Phase 1 — seed every interval, longest hostable interval first
    # (ties to the smaller interval index: first-occurrence argmax).
    for t in range(p):
        u = order[:, t]
        cand = empty & fits[ridx, u, :]
        seed = cand.any(axis=1)
        leftover[:, t] = ~seed
        if not seed.any():
            continue
        j = np.argmax(np.where(cand, W, -math.inf), axis=1)
        rs = np.flatnonzero(seed)
        js, us = j[rs], u[rs]
        empty[rs, js] = False
        counts[rs, js] = 1
        slf[rs, js] = slf[rs, js] + lf_alloc[rs, us, js]
        assign[rs, us] = js
        min_speed[rs, js] = speeds[rs, us]
    valid = ~empty.any(axis=1)

    # Phase 2 — leftovers (in rank order) go to the interval with the
    # best reliability-improvement ratio among those they can host.
    for t in range(p):
        rows = np.flatnonzero(leftover[:, t] & valid)
        if rows.size == 0:
            continue
        u = order[rows, t]
        lf_u = lf_alloc[rows, u]                            # (k, m)
        ok = (counts[rows] < K) & fits[rows, u]
        slf_rows = slf[rows]
        # score = log1mexp(slf + lf_u) - log1mexp(slf), both members
        # through the same NumPy log1mexp the scalar path pairs up.
        lo_cur = logrel.log1mexp(slf_rows)
        lo_new = logrel.log1mexp(slf_rows + lf_u)
        gain = np.where(ok, lo_new - lo_cur, -math.inf)
        # The scalar strict '>' skips NaN scores (a certainly-failing
        # stage compares -inf - -inf); argmax would propagate them.
        gain = np.where(np.isnan(gain), -math.inf, gain)
        j = np.argmax(gain, axis=1)
        kidx = np.arange(rows.size)
        acc = gain[kidx, j] > 0.0
        ra, ja, ua = rows[acc], j[acc], u[acc]
        slf[ra, ja] = slf[ra, ja] + lf_alloc[ra, ua, ja]
        counts[ra, ja] += 1
        assign[ra, ua] = ja
        min_speed[ra, ja] = np.minimum(min_speed[ra, ja], speeds[ra, ua])
    return assign, min_speed, valid


class _HetTable:
    """Per-candidate tables for heterogeneous rows (divisions only).

    Divisions are chain-only and shared across sweep points; the
    Section 7.2 allocation is *bounds-dependent*, so
    :meth:`probe` re-allocates per ``(P, L)`` — the per-point
    allocation batching of the het cell.
    """

    __slots__ = (
        "order", "speeds", "rates", "K", "p", "candidates",
    )

    def __init__(self, ensemble, rows: np.ndarray, names) -> None:
        r = len(rows)
        n, p, K = ensemble.n_tasks, ensemble.p, ensemble.max_replication
        b, link = ensemble.bandwidth, ensemble.link_failure_rate
        work = np.ascontiguousarray(ensemble.work[rows])
        output = np.ascontiguousarray(ensemble.output[rows])
        speeds = np.ascontiguousarray(ensemble.speeds[rows], dtype=float)
        rates = np.ascontiguousarray(ensemble.failure_rates[rows], dtype=float)
        prefix = np.concatenate([np.zeros((r, 1)), np.cumsum(work, axis=1)], axis=1)

        self.speeds, self.rates, self.K, self.p = speeds, rates, K, p
        # Most reliable processors first — increasing lambda_u / s_u,
        # ties by index (stable argsort = the scalar sort key tuple).
        self.order = np.argsort(rates / speeds, axis=1, kind="stable")

        M = min(n, p)
        arg = _heur_p_tables(work, output, b, M) if "heur-p" in names else None
        ridx = np.arange(r)[:, None]
        self.candidates = []
        for name in names:
            for m in range(1, M + 1):
                if name == "heur-l":
                    bnd = _heur_l_boundaries(output, m)
                else:
                    bnd = _heur_p_boundaries(arg, n, m)
                starts, stops = bnd[:, :-1], bnd[:, 1:]
                W = prefix[ridx, stops] - prefix[ridx, starts]
                out_sizes = output[ridx, stops - 1]
                in_sizes = np.where(
                    starts == 0, 0.0, output[ridx, np.maximum(starts - 1, 0)]
                )
                ell_in = -link * (in_sizes / b)
                ell_out = -link * (out_sizes / b)
                # The allocation composes its branch differently from
                # the evaluation: one comm add, then
                # ell_comm - (lam * W) / s.  Both compositions are kept
                # — same operand order, same rounding — because the
                # greedy's decisions and the final metrics must each be
                # bit-identical to their scalar twins.
                ell_comm = ell_in + ell_out
                tcomp = W[:, None, :] / speeds[:, :, None]          # (r, p, m)
                branch_alloc = ell_comm[:, None, :] - (
                    rates[:, :, None] * W[:, None, :]
                ) / speeds[:, :, None]
                lf_alloc = _pyfloat(_log_failure_map(branch_alloc))
                self.candidates.append(
                    (W, out_sizes / b, ell_in, ell_out, tcomp, lf_alloc)
                )

    def _evaluate(self, cand, assign, min_speed):
        """``evaluate_mapping`` for one allocated candidate, every row.

        Branch log-reliabilities recompose in the evaluation's operand
        order — ``(ell_in + interval) + ell_out`` with the interval
        term ``-lam * (W / s)`` — and accumulate per stage in ascending
        processor order (the mapping stores replicas sorted).
        """
        W, comm, ell_in, ell_out, tcomp, _ = cand
        r, m = W.shape
        slf = np.zeros((r, m))
        for u in range(self.p):
            rows = np.flatnonzero(assign[:, u] >= 0)
            if rows.size == 0:
                continue
            j = assign[rows, u]
            branch = (
                ell_in[rows, j] + (-self.rates[rows, u] * tcomp[rows, u, j])
            ) + ell_out[rows, j]
            slf[rows, j] = slf[rows, j] + _pyfloat(_log_failure_map(branch))
        stage_ell = _pyfloat(_parallel_tail_map(slf))
        wc = W / min_speed
        log_rel = np.zeros(r)
        wl = np.zeros(r)
        for j in range(m):
            log_rel = log_rel + stage_ell[:, j]
            wl = wl + (wc[:, j] + comm[:, j])
        wp = np.maximum(comm.max(axis=1), wc.max(axis=1))
        return log_rel, wp, wl

    def probe(
        self, P: np.ndarray, L: np.ndarray, floor: float
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Allocate + evaluate + select at per-row bounds.

        Same contract as :meth:`_HomTable.probe`; every candidate's
        allocation is re-run because Algo-Alloc's period filter
        ``W_j / s_u <= P`` depends on the bound.
        """
        cand_valid, cand_ell, cand_wp, cand_wl = [], [], [], []
        for cand in self.candidates:
            W, _, _, _, tcomp, lf_alloc = cand
            assign, min_speed, valid = _algo_alloc_het_lockstep(
                W, tcomp, lf_alloc, self.order, self.speeds, self.K, P
            )
            ell, wp, wl = self._evaluate(cand, assign, min_speed)
            cand_valid.append(valid)
            cand_ell.append(ell)
            cand_wp.append(wp)
            cand_wl.append(wl)
        valid = np.stack(cand_valid)                        # (C, r)
        ell = np.stack(cand_ell)
        wp = np.stack(cand_wp)
        wl = np.stack(cand_wl)
        mask = valid & (wp <= P) & (wl <= L)
        if floor > -math.inf:
            mask &= ell >= floor
        feasible = mask.any(axis=0)
        key = np.where(mask, ell, -math.inf)
        best = key.max(axis=0)
        chosen = np.argmax(mask & (key == best), axis=0)
        ridx = np.arange(ell.shape[1])
        return (
            feasible,
            ell[chosen, ridx],
            wp[chosen, ridx],
            wl[chosen, ridx],
        )


def heuristic_probe_tables(ensemble, rows: np.ndarray, which: str):
    """Split *rows* by platform kind and build each side's probe table.

    Returns ``[(subset_positions, table), ...]`` where positions index
    into *rows*; the shared machinery behind
    :func:`batch_heuristic_best` and the bisection-search kernels
    (:mod:`repro.algorithms.batch_search`).
    """
    names = ("heur-p", "heur-l") if which == "both" else (which,)
    hom = ensemble.homogeneous_rows()[rows]
    parts = []
    for idx, table_cls in (
        (np.flatnonzero(hom), _HomTable),
        (np.flatnonzero(~hom), _HetTable),
    ):
        if idx.size:
            parts.append((idx, table_cls(ensemble, rows[idx], names)))
    return parts


def batch_heuristic_best(
    ensemble,
    bounds: Sequence[tuple[float, float]],
    *,
    rows: "Sequence[int] | None" = None,
    which: str = "both",
    objective: str = "reliability",
    min_reliability: float = 0.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run a Section 7 heuristic on every ensemble row at every bound.

    The batched twin of solving ``heuristic_best(chain, platform,
    max_period=P, max_latency=L, which=which,
    min_log_reliability=floor)`` per row per sweep point —
    bit-identical to that loop, one kernel call instead.

    Parameters
    ----------
    ensemble:
        Any :class:`~repro.core.ensemble.Ensemble`: homogeneous rows
        take the bounds-independent candidate table, heterogeneous
        rows the per-point allocation path (mixed ensembles split).
    bounds:
        ``(max_period, max_latency)`` per sweep point.
    rows:
        Row indices to solve (default: all rows, in order).
    which:
        ``"heur-l"``, ``"heur-p"``, or ``"both"`` (candidate order
        matches :func:`~repro.algorithms.heuristic_best`).
    objective:
        Must be ``"reliability"`` — anything else raises
        :class:`BatchUnsupported`.
    min_reliability:
        Reliability floor in ``[0, 1)``; candidates below it are
        masked before selection (``0.0`` = no floor).

    Returns
    -------
    (solved, failure, objective_values):
        Arrays of shape ``(len(rows), len(bounds))``: feasibility
        flags, failure probabilities (1.0 where unsolved), and
        achieved reliabilities (0.0 where unsolved).
    """
    _check_supported(ensemble, which, objective)
    if rows is None:
        rows = range(ensemble.n_instances)
    rows = np.asarray(list(rows), dtype=np.int64)
    n_pts = len(bounds)
    r = len(rows)
    solved = np.zeros((r, n_pts), dtype=bool)
    failure = np.ones((r, n_pts), dtype=float)
    values = np.zeros((r, n_pts), dtype=float)
    if r == 0:
        return solved, failure, values

    floor = floor_log_reliability(min_reliability)
    for idx, table in heuristic_probe_tables(ensemble, rows, which):
        k = idx.size
        for pt, (P, L) in enumerate(bounds):
            P_vec = np.full(k, float(P))
            L_vec = np.full(k, float(L))
            feasible, ell, _, _ = table.probe(P_vec, L_vec, floor)
            solved[idx, pt] = feasible
            failure[idx, pt] = np.where(
                feasible, _pyfloat(_failure_map(ell)), 1.0
            )
            values[idx, pt] = np.where(
                feasible, _pyfloat(_reliability_map(ell)), 0.0
            )
    return solved, failure, values


def heuristic_solve_batch(which: str):
    """Package :func:`batch_heuristic_best` as a ``solve_batch`` entry.

    The returned callable has the registry's batched-solve signature —
    ``(ensemble, bounds, *, rows, objective, min_reliability)`` — and
    is what :func:`repro.experiments.methods.register_method` attaches
    to the built-in heuristics.
    """
    if which not in ("heur-l", "heur-p", "both"):
        raise ValueError(f"unknown heuristic {which!r}")

    def solve_batch(
        ensemble,
        bounds,
        *,
        rows=None,
        objective="reliability",
        min_reliability=0.0,
    ):
        return batch_heuristic_best(
            ensemble,
            bounds,
            rows=rows,
            which=which,
            objective=objective,
            min_reliability=min_reliability,
        )

    return solve_batch
