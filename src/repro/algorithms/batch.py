"""Batched solving kernels over :class:`~repro.core.ensemble.Ensemble` columns.

PR 5 made instance *storage* columnar; this module makes the *solving*
columnar too.  One kernel call evaluates a Section 7 heuristic across
every row of an ensemble — shared interval enumeration, batched
log-reliability arithmetic, vectorized feasibility masks — instead of
one object-level :func:`~repro.algorithms.heuristic_best` solve per
instance.

Bit-identity contract
---------------------
The kernels reproduce the per-instance path **bit for bit** — same
``solved`` flags, same failure probabilities, same objective values —
so cached sweep entries written by either path are interchangeable.
That contract dictates the implementation style:

* NumPy's SIMD transcendentals (``np.log`` & co.) agree with
  themselves across array shapes and strides but differ from
  ``math.log`` by an occasional ulp.  Every step the scalar path
  computes through ``math.*`` (``logrel.log_failure``, the
  ``logrel.parallel`` tail, ``-expm1`` / ``exp`` conversions) is
  therefore mapped element-wise over the *very same* scalar functions
  (:func:`numpy.frompyfunc`), while steps the scalar path already runs
  through NumPy (``logrel.log1mexp`` on allocation-score pairs, prefix
  sums, stable argsorts) stay vectorized.
* Sequential accumulations (``sum()`` starting at ``0``) are
  replicated as sequential masked adds — ``k`` rounded additions are
  not ``k * x``.
* Tie-breaks (the allocation heap's smallest-index pop, the DP's
  strict ``<``, the selection's strict ``>``) map onto
  first-occurrence ``argmax`` / ``argmin``.

Scope
-----
The kernels cover the cases where candidate divisions and allocations
are bounds-independent: homogeneous platforms (Algo-Alloc takes no
bounds there), the paper's ``"reliability"`` objective, no reliability
floor, and unseeded methods.  Anything else raises
:class:`BatchUnsupported`, and callers — the harness, the worker
shards — fall back to the per-row path.  Fallback is a contract, not
an error: a heterogeneous ensemble simply takes the object-level
route it always took.

Entry points
------------
:func:`batch_heuristic_best` is the kernel;
:func:`heuristic_solve_batch` packages it as the ``solve_batch``
capability the method registry attaches to ``heur-l`` / ``heur-p`` /
``heuristic`` (see :mod:`repro.experiments.methods`).
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.util import logrel

__all__ = [
    "BatchUnsupported",
    "batch_heuristic_best",
    "heuristic_solve_batch",
]


class BatchUnsupported(Exception):
    """The batched kernel does not cover this ensemble/problem shape.

    Raised *before* any work happens; the caller runs the per-row path
    instead.  Carrying the reason keeps harness logs explainable.
    """


# Element-wise maps over the exact scalar functions the per-instance
# path calls — the ulp-level contract (see the module docstring).
_log_failure_map = np.frompyfunc(logrel.log_failure, 1, 1)
_failure_map = np.frompyfunc(logrel.failure, 1, 1)
_reliability_map = np.frompyfunc(logrel.reliability, 1, 1)


def _parallel_tail(log_prod_f: float) -> float:
    """The tail of :func:`logrel.parallel` after the failure-log sum.

    Replicates its branch structure exactly: a ``-inf`` product means
    some branch is perfect (stage reliability 1), a ``0.0`` product
    means every branch certainly fails, and otherwise the two-branch
    log1mexp evaluates ``log(1 - prod f)``.
    """
    if log_prod_f == -math.inf:
        return logrel.PERFECT
    if log_prod_f == 0.0:
        return -math.inf
    if log_prod_f > -math.log(2.0):
        return math.log(-math.expm1(log_prod_f))
    return math.log1p(-math.exp(log_prod_f))


_parallel_tail_map = np.frompyfunc(_parallel_tail, 1, 1)


def _pyfloat(mapped: np.ndarray) -> np.ndarray:
    """Cast a ``frompyfunc`` object-array result back to float64."""
    return mapped.astype(float)


def _check_supported(
    ensemble, which: str, objective: str, min_reliability: float
) -> None:
    if which not in ("heur-l", "heur-p", "both"):
        raise ValueError(f"unknown heuristic {which!r}")
    if objective != "reliability":
        raise BatchUnsupported(
            f"batched heuristics cover objective 'reliability' only, "
            f"got {objective!r}"
        )
    if float(min_reliability) != 0.0:
        raise BatchUnsupported(
            "batched heuristics do not apply a reliability floor "
            f"(got min_reliability={min_reliability!r})"
        )
    if not ensemble.all_homogeneous:
        raise BatchUnsupported(
            "batched heuristics require homogeneous platform rows "
            "(heterogeneous allocation is bounds-dependent)"
        )


def _heur_l_boundaries(output: np.ndarray, m: int) -> np.ndarray:
    """Algorithm 3 boundaries for every row: ``(r, m + 1)`` ints.

    Cuts at the ``m - 1`` smallest output costs among tasks
    ``tau_1 .. tau_{n-1}`` — the stable argsort matches the scalar
    path's tie-break by chain position.
    """
    r, n = output.shape
    bnd = np.empty((r, m + 1), dtype=np.int64)
    bnd[:, 0] = 0
    bnd[:, m] = n
    if m > 1:
        order = np.argsort(output[:, : n - 1], axis=1, kind="stable")
        bnd[:, 1:m] = np.sort(order[:, : m - 1], axis=1) + 1
    return bnd


def _heur_p_tables(
    work: np.ndarray, output: np.ndarray, bandwidth: float, M: int
) -> np.ndarray:
    """Algorithm 4's DP parent table for every row, shared across ``m``.

    ``F(j, k)`` — the optimal ``k``-interval period over the first
    ``j`` tasks — does not depend on the target interval count, so one
    table to ``k = M`` serves the reconstruction for every candidate
    ``m <= M``.  Returns ``arg`` of shape ``(M + 1, r, n + 1)``; entry
    ``arg[k, :, j]`` is the optimal previous boundary ``j'`` (the
    scalar DP's first strict minimizer).
    """
    r, n = work.shape
    prefix = np.concatenate(
        [np.zeros((r, 1)), np.cumsum(work, axis=1)], axis=1
    )
    out_time = output / bandwidth
    ridx = np.arange(r)

    INF = math.inf
    F_prev = np.full((r, n + 1), INF)
    F_prev[:, 1:] = np.maximum(prefix[:, 1:], out_time)
    arg = np.zeros((M + 1, r, n + 1), dtype=np.int64)
    for k in range(2, M + 1):
        F_k = np.full((r, n + 1), INF)
        for j in range(k, n + 1):
            # j' ranges over k-1 .. j-1; three-way max as in the scalar DP.
            cand = np.maximum(
                np.maximum(
                    F_prev[:, k - 1 : j],
                    prefix[:, j : j + 1] - prefix[:, k - 1 : j],
                ),
                out_time[:, j - 1 : j],
            )
            idx = np.argmin(cand, axis=1)  # first minimum = strict '<'
            F_k[:, j] = cand[ridx, idx]
            arg[k, :, j] = idx + (k - 1)
        F_prev = F_k
    return arg


def _heur_p_boundaries(arg: np.ndarray, n: int, m: int) -> np.ndarray:
    """Reconstruct the ``m``-interval boundaries from the DP table."""
    r = arg.shape[1]
    ridx = np.arange(r)
    bnd = np.empty((r, m + 1), dtype=np.int64)
    bnd[:, 0] = 0
    bnd[:, m] = n
    j = np.full(r, n, dtype=np.int64)
    for k in range(m, 1, -1):
        j = arg[k, ridx, j]
        bnd[:, k - 1] = j
    return bnd


def _algo_alloc_counts(lf: np.ndarray, p: int, K: int) -> np.ndarray:
    """Algo-Alloc's replica counts for every row at once.

    *lf* is the ``(r, m)`` per-interval branch log-failure matrix.
    Replicates the Section 5.5 greedy exactly: each step gives one
    processor to the interval with the maximal improvement score,
    ties to the smallest interval index (the heap's tuple order); the
    step count ``min(p - m, m * (K - 1))`` is uniform across rows
    because every step allocates exactly one replica per row.
    """
    r, m = lf.shape
    ridx = np.arange(r)
    counts = np.ones((r, m), dtype=np.int64)
    steps = min(p - m, m * (K - 1))
    for _ in range(steps):
        # score(j, k) = log1mexp((k+1) lf) - log1mexp(k lf), as the
        # scalar path computes it (NumPy log1mexp on both members).
        lo_cur = logrel.log1mexp(counts * lf)
        lo_nxt = logrel.log1mexp((counts + 1) * lf)
        score = lo_nxt - lo_cur
        score = np.where(counts < K, score, -math.inf)
        j = np.argmax(score, axis=1)  # first maximum = smallest index
        counts[ridx, j] += 1
    return counts


def _stage_log_fail(lf: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """``sum()`` of ``counts`` copies of each branch log-failure.

    Sequential masked adds starting from ``+0.0`` — exactly the Python
    ``sum()`` inside :func:`logrel.parallel` (``k`` rounded additions,
    and ``0 + (-0.0)`` is ``+0.0``), which ``counts * lf`` is not.
    """
    slf = np.zeros_like(lf) + lf
    for t in range(1, int(counts.max())):
        slf = np.where(counts > t, slf + lf, slf)
    return slf


def _candidate_metrics(
    bnd: np.ndarray,
    prefix: np.ndarray,
    output: np.ndarray,
    speeds: np.ndarray,
    rates: np.ndarray,
    bandwidth: float,
    link_rate: float,
    p: int,
    K: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Evaluate one candidate division for every row.

    Returns ``(log_reliability, worst_period, worst_latency)`` vectors
    of shape ``(r,)`` — the three numbers ``heuristic_best`` reads off
    a candidate's :class:`~repro.core.evaluation.MappingEvaluation`.
    """
    r = bnd.shape[0]
    ridx = np.arange(r)[:, None]

    starts, stops = bnd[:, :-1], bnd[:, 1:]
    W = prefix[ridx, stops] - prefix[ridx, starts]          # (r, m)
    out_sizes = output[ridx, stops - 1]                     # o_{l_j}
    in_sizes = np.where(starts == 0, 0.0, output[ridx, np.maximum(starts - 1, 0)])

    # One replica branch of the Fig. 5 RBD, composed exactly as
    # _branch_logrel does: (comm_in + interval) + comm_out.
    ell_in = -link_rate * (in_sizes / bandwidth)
    ell_out = -link_rate * (out_sizes / bandwidth)
    ell_int = -rates[:, None] * (W / speeds[:, None])
    branch = (ell_in + ell_int) + ell_out

    lf = _pyfloat(_log_failure_map(branch))                 # log a_j
    counts = _algo_alloc_counts(lf, p, K)
    stage_lpf = _stage_log_fail(lf, counts)
    stage_ell = _pyfloat(_parallel_tail_map(stage_lpf))

    # Serial composition and the latency sum are sequential in the
    # scalar path; replicate the addition order.
    log_rel = np.zeros(r)
    wc = W / speeds[:, None]
    comm = out_sizes / bandwidth
    wl = np.zeros(r)
    m = bnd.shape[1] - 1
    for j in range(m):
        log_rel = log_rel + stage_ell[:, j]
        wl = wl + (wc[:, j] + comm[:, j])
    wp = np.maximum(comm.max(axis=1), wc.max(axis=1))
    return log_rel, wp, wl


def batch_heuristic_best(
    ensemble,
    bounds: Sequence[tuple[float, float]],
    *,
    rows: "Sequence[int] | None" = None,
    which: str = "both",
    objective: str = "reliability",
    min_reliability: float = 0.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Run a Section 7 heuristic on every ensemble row at every bound.

    The batched twin of solving ``heuristic_best(chain, platform,
    max_period=P, max_latency=L, which=which)`` per row per sweep
    point — bit-identical to that loop, one kernel call instead.

    Parameters
    ----------
    ensemble:
        A homogeneous-rows :class:`~repro.core.ensemble.Ensemble`
        (rows may carry *different* homogeneous platforms).
    bounds:
        ``(max_period, max_latency)`` per sweep point.
    rows:
        Row indices to solve (default: all rows, in order).
    which:
        ``"heur-l"``, ``"heur-p"``, or ``"both"`` (candidate order
        matches :func:`~repro.algorithms.heuristic_best`).
    objective, min_reliability:
        Must be ``"reliability"`` / ``0.0`` — anything else raises
        :class:`BatchUnsupported`.

    Returns
    -------
    (solved, failure, objective_values):
        Arrays of shape ``(len(rows), len(bounds))``: feasibility
        flags, failure probabilities (1.0 where unsolved), and
        achieved reliabilities (0.0 where unsolved).
    """
    _check_supported(ensemble, which, objective, min_reliability)
    if rows is None:
        rows = range(ensemble.n_instances)
    rows = np.asarray(list(rows), dtype=np.int64)
    n_pts = len(bounds)
    r = len(rows)
    if r == 0:
        empty = np.zeros((0, n_pts))
        return empty.astype(bool), np.ones((0, n_pts)), np.zeros((0, n_pts))

    n, p, K = ensemble.n_tasks, ensemble.p, ensemble.max_replication
    b, link = ensemble.bandwidth, ensemble.link_failure_rate
    work = np.ascontiguousarray(ensemble.work[rows])
    output = np.ascontiguousarray(ensemble.output[rows])
    # Homogeneous rows: column 0 is every processor (the broadcast
    # property serves shared-platform ensembles transparently).
    speeds = np.ascontiguousarray(ensemble.speeds[rows, 0], dtype=float)
    rates = np.ascontiguousarray(ensemble.failure_rates[rows, 0], dtype=float)

    prefix = np.concatenate([np.zeros((r, 1)), np.cumsum(work, axis=1)], axis=1)

    M = min(n, p)
    names = ("heur-p", "heur-l") if which == "both" else (which,)
    arg = _heur_p_tables(work, output, b, M) if "heur-p" in names else None

    # Candidates are bounds-independent on homogeneous platforms:
    # enumerate once, then mask per sweep point.  Stacking order is the
    # scalar loop order — name-major, interval count ascending.
    cand_ell, cand_wp, cand_wl = [], [], []
    for name in names:
        for m in range(1, M + 1):
            if name == "heur-l":
                bnd = _heur_l_boundaries(output, m)
            else:
                bnd = _heur_p_boundaries(arg, n, m)
            ell, wp, wl = _candidate_metrics(
                bnd, prefix, output, speeds, rates, b, link, p, K
            )
            cand_ell.append(ell)
            cand_wp.append(wp)
            cand_wl.append(wl)
    cand_ell = np.stack(cand_ell)                           # (C, r)
    cand_wp = np.stack(cand_wp)
    cand_wl = np.stack(cand_wl)

    solved = np.zeros((r, n_pts), dtype=bool)
    failure = np.ones((r, n_pts), dtype=float)
    values = np.zeros((r, n_pts), dtype=float)
    ridx = np.arange(r)
    for pt, (P, L) in enumerate(bounds):
        mask = (cand_wp <= float(P)) & (cand_wl <= float(L))
        feasible = mask.any(axis=0)
        key = np.where(mask, cand_ell, -math.inf)
        best = key.max(axis=0)
        # First feasible candidate attaining the maximum — the scalar
        # selection's strict-improvement tie-break.
        chosen = np.argmax(mask & (key == best), axis=0)
        ell_best = cand_ell[chosen, ridx]
        solved[:, pt] = feasible
        failure[:, pt] = np.where(
            feasible, _pyfloat(_failure_map(ell_best)), 1.0
        )
        values[:, pt] = np.where(
            feasible, _pyfloat(_reliability_map(ell_best)), 0.0
        )
    return solved, failure, values


def heuristic_solve_batch(which: str):
    """Package :func:`batch_heuristic_best` as a ``solve_batch`` entry.

    The returned callable has the registry's batched-solve signature —
    ``(ensemble, bounds, *, rows, objective, min_reliability)`` — and
    is what :func:`repro.experiments.methods.register_method` attaches
    to the built-in heuristics.
    """
    if which not in ("heur-l", "heur-p", "both"):
        raise ValueError(f"unknown heuristic {which!r}")

    def solve_batch(
        ensemble,
        bounds,
        *,
        rows=None,
        objective="reliability",
        min_reliability=0.0,
    ):
        return batch_heuristic_best(
            ensemble,
            bounds,
            rows=rows,
            which=which,
            objective=objective,
            min_reliability=min_reliability,
        )

    return solve_batch
