"""Batched bisection-search kernels: het-period-search / het-latency-search.

The extension searches (:mod:`repro.extensions.period_search`,
:mod:`repro.extensions.latency_search`) bisect a scalar criterion with
one Heur-L solve per probe.  Their batched twins run every probe round
as a single vectorized Heur-L call over *all* not-yet-converged lanes
— one lane per (row, sweep point), each with its own bracket — on the
probe tables :func:`~repro.algorithms.batch.heuristic_probe_tables`
exposes (homogeneous rows reuse the bounds-independent candidate
table; heterogeneous rows re-run the lockstep Section 7.2 allocation
per round).  Because a lane's ``(lo, hi)`` trajectory depends only on
its own probe outcomes, lockstep rounds replicate each scalar search's
probe sequence — and its probe *count* and ``converged`` flag —
exactly; the bit-identity contract of :mod:`repro.algorithms.batch`
carries over unchanged.

The kernels return the 4-tuple ``solve_batch`` form: the fourth
element is the per-row info (``probes`` summed over the row's sweep
points — infeasible points count their single refused probe, as the
scalar details do — and ``converged`` ANDed over feasible points),
matching what the harness accumulates from per-row details.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.algorithms.batch import (
    BatchUnsupported,
    _failure_map,
    _pyfloat,
    floor_log_reliability,
    heuristic_probe_tables,
)

__all__ = ["batch_bisection_search", "search_solve_batch"]


def batch_bisection_search(
    ensemble,
    bounds: Sequence[tuple[float, float]],
    *,
    rows: "Sequence[int] | None" = None,
    criterion: str = "period",
    min_reliability: float = 0.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, list]:
    """Run a bisection search on every ensemble row at every bound.

    The batched twin of calling ``minimize_period_search`` /
    ``minimize_latency_search`` per row per sweep point — bit-identical
    to that loop, one lockstep kernel instead.  ``criterion`` selects
    which coordinate is bisected; the other coordinate stays at the
    sweep point's bound, exactly as the scalar probe passes it.
    """
    # The tolerances live next to the scalar search; imported at call
    # time so this module stays importable from repro.algorithms
    # without an algorithms <-> extensions import cycle.
    from repro.extensions.period_search import DEFAULT_MAX_PROBES, DEFAULT_REL_TOL

    if criterion not in ("period", "latency"):
        raise ValueError(f"unknown search criterion {criterion!r}")
    if rows is None:
        rows = range(ensemble.n_instances)
    rows = np.asarray(list(rows), dtype=np.int64)
    n_pts = len(bounds)
    r = len(rows)
    solved = np.zeros((r, n_pts), dtype=bool)
    failure = np.ones((r, n_pts), dtype=float)
    values = np.full((r, n_pts), math.inf, dtype=float)
    infos: list = [None] * r
    if r == 0 or n_pts == 0:
        return solved, failure, values, infos
    for P, L in bounds:
        if float(P) <= 0 or float(L) <= 0:
            raise ValueError("bounds must be > 0")

    floor = floor_log_reliability(min_reliability)
    work = np.asarray(ensemble.work[rows], dtype=float)
    speeds = np.asarray(ensemble.speeds[rows], dtype=float)
    # The scalar lower brackets, per row: max_i w_i / max_u s_u for the
    # period, sum_i w_i / max_u s_u for the latency (per-row Python
    # reductions — the scalar path's float(np.sum(...)) is sequential
    # over one row, not an axis reduction).
    if criterion == "period":
        lo_row = np.array(
            [float(np.max(work[k])) / float(np.max(speeds[k])) for k in range(r)]
        )
    else:
        lo_row = np.array(
            [float(np.sum(work[k])) / float(np.max(speeds[k])) for k in range(r)]
        )

    # Lane layout: lane = ri * n_pts + pt.
    P_lane = np.tile(np.array([float(P) for P, _ in bounds]), r)
    L_lane = np.tile(np.array([float(L) for _, L in bounds]), r)
    lo_lane = np.repeat(lo_row, n_pts)
    probes_lane = np.zeros(r * n_pts, dtype=np.int64)
    ok_lane = np.zeros(r * n_pts, dtype=bool)
    conv_lane = np.zeros(r * n_pts, dtype=bool)
    ell_lane = np.full(r * n_pts, -math.inf)
    val_lane = np.full(r * n_pts, math.inf)

    for idx, table in heuristic_probe_tables(ensemble, np.repeat(rows, n_pts), "heur-l"):
        P_p, L_p = P_lane[idx], L_lane[idx]
        probes = np.ones(idx.size, dtype=np.int64)
        # Loosest probe first, at the sweep point's own bounds.  The
        # scalar probe runs without the floor and checks it after —
        # same thing as masking here, since the probe maximizes ell.
        feas, ell, wp, wl = table.probe(P_p, L_p, -math.inf)
        wit = wp if criterion == "period" else wl
        ok = feas & (ell >= floor)
        b_ell = np.where(ok, ell, -math.inf)
        b_wit = np.where(ok, wit, math.inf)
        lo = lo_lane[idx].copy()
        hi = np.where(ok, wit, 0.0)

        active = ok & (probes < DEFAULT_MAX_PROBES) & (
            hi - lo > DEFAULT_REL_TOL * np.maximum(hi, 1.0)
        )
        while active.any():
            mid = 0.5 * (lo + hi)
            probes = np.where(active, probes + 1, probes)
            if criterion == "period":
                feas_m, ell_m, wp_m, wl_m = table.probe(
                    np.where(active, mid, P_p), L_p, -math.inf
                )
                wit_m = wp_m
            else:
                feas_m, ell_m, wp_m, wl_m = table.probe(
                    P_p, np.where(active, mid, L_p), -math.inf
                )
                wit_m = wl_m
            ok_m = feas_m & (ell_m >= floor)
            acc = active & ok_m
            b_ell = np.where(acc, ell_m, b_ell)
            b_wit = np.where(acc, wit_m, b_wit)
            hi = np.where(acc, np.minimum(mid, wit_m), hi)
            lo = np.where(active & ~ok_m, mid, lo)
            active = ok & (probes < DEFAULT_MAX_PROBES) & (
                hi - lo > DEFAULT_REL_TOL * np.maximum(hi, 1.0)
            )

        conv = (hi - lo) <= DEFAULT_REL_TOL * np.maximum(hi, 1.0)
        probes_lane[idx] = probes
        ok_lane[idx] = ok
        conv_lane[idx] = conv
        ell_lane[idx] = b_ell
        val_lane[idx] = b_wit

    solved = ok_lane.reshape(r, n_pts)
    # The probe table's ell replicates evaluate_mapping's
    # log-reliability bit for bit, so failure = -expm1(ell) matches the
    # scalar result's failure_probability.
    failure = np.where(ok_lane, _pyfloat(_failure_map(ell_lane)), 1.0).reshape(
        r, n_pts
    )
    values = np.where(ok_lane, val_lane, math.inf).reshape(r, n_pts)
    probes2 = probes_lane.reshape(r, n_pts)
    conv2 = conv_lane.reshape(r, n_pts)
    for ri in range(r):
        info = {"probes": int(probes2[ri].sum())}
        if solved[ri].any():
            info["converged"] = bool(conv2[ri][solved[ri]].all())
        infos[ri] = info
    return solved, failure, values, infos


def search_solve_batch(criterion: str):
    """Package :func:`batch_bisection_search` as a ``solve_batch`` entry
    for ``het-period-search`` (``criterion="period"``) or
    ``het-latency-search`` (``criterion="latency"``)."""
    if criterion not in ("period", "latency"):
        raise ValueError(f"unknown search criterion {criterion!r}")

    def solve_batch(
        ensemble,
        bounds,
        *,
        rows=None,
        objective=None,
        min_reliability=0.0,
    ):
        if objective is not None and objective != criterion:
            raise BatchUnsupported(
                f"the batched {criterion}-search kernel covers objective "
                f"{criterion!r} only, got {objective!r}",
                reason="objective",
            )
        return batch_bisection_search(
            ensemble,
            bounds,
            rows=rows,
            criterion=criterion,
            min_reliability=min_reliability,
        )

    return solve_batch
