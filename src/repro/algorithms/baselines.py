"""Baseline mappings the paper argues against (Section 1).

"Interval mappings are more general than one-to-one mappings, which
establish a unique correspondence between tasks and processors; they
allow communication overheads to be reduced, not to mention the many
situations where there are more tasks than processors, and where
interval mappings are mandatory."

This module implements those baselines so the claim is measurable:

* :func:`one_to_one_best` — every task is its own interval (the
  finest partition); replicas are then allocated optimally
  (Algo-Alloc on homogeneous platforms, the Section 7.2 variant
  otherwise).  Requires ``n <= p``.
* :func:`single_interval_best` — the coarsest partition: the whole
  chain as one interval (no pipelining at all, minimal communication).

`benchmarks/bench_baseline_mappings.py` quantifies when interval
mappings beat both extremes.
"""

from __future__ import annotations

import math

from repro.algorithms.allocation import algo_alloc, algo_alloc_het
from repro.algorithms.result import SolveResult
from repro.core.chain import TaskChain
from repro.core.evaluation import evaluate_mapping
from repro.core.interval import Interval, partition_from_cuts
from repro.core.mapping import Mapping
from repro.core.platform import Platform

__all__ = ["one_to_one_best", "single_interval_best"]


def _allocate(
    chain: TaskChain,
    platform: Platform,
    partition,
    max_period: float,
) -> Mapping | None:
    if platform.homogeneous:
        try:
            return algo_alloc(chain, platform, partition)
        except ValueError:
            return None
    return algo_alloc_het(chain, platform, partition, max_period=max_period)


def one_to_one_best(
    chain: TaskChain,
    platform: Platform,
    max_period: float = math.inf,
    max_latency: float = math.inf,
    worst_case: bool = True,
) -> SolveResult:
    """Best *one-to-one* mapping: one task per interval, replicated.

    Infeasible whenever ``n > p`` — the situation the paper calls out
    as making interval mappings mandatory.
    """
    if chain.n > platform.p:
        return SolveResult.infeasible(
            "one-to-one", reason=f"{chain.n} tasks > {platform.p} processors"
        )
    partition = partition_from_cuts(chain.n, range(1, chain.n))
    mapping = _allocate(chain, platform, partition, max_period)
    if mapping is None:
        return SolveResult.infeasible("one-to-one")
    ev = evaluate_mapping(mapping)
    if not ev.meets(max_period=max_period, max_latency=max_latency, worst_case=worst_case):
        return SolveResult.infeasible("one-to-one", bound_violated=True)
    return SolveResult(feasible=True, mapping=mapping, evaluation=ev, method="one-to-one")


def single_interval_best(
    chain: TaskChain,
    platform: Platform,
    max_period: float = math.inf,
    max_latency: float = math.inf,
    worst_case: bool = True,
) -> SolveResult:
    """Best *monolithic* mapping: the whole chain as one interval."""
    partition = [Interval(0, chain.n)]
    mapping = _allocate(chain, platform, partition, max_period)
    if mapping is None:
        return SolveResult.infeasible("single-interval")
    ev = evaluate_mapping(mapping)
    if not ev.meets(max_period=max_period, max_latency=max_latency, worst_case=worst_case):
        return SolveResult.infeasible("single-interval", bound_violated=True)
    return SolveResult(
        feasible=True, mapping=mapping, evaluation=ev, method="single-interval"
    )
