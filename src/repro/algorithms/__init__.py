"""All mapping algorithms from the paper.

* Section 5.1, Algorithm 1 — :func:`optimize_reliability` (homogeneous,
  optimal, polynomial).
* Section 5.2, Algorithm 2 — :func:`optimize_reliability_period`
  (homogeneous, optimal under a period bound) and the converse
  :func:`optimize_period_reliability` (binary search).
* Section 5.4 — :func:`ilp_best` (exact integer program, homogeneous).
* Section 5.5, Algo-Alloc — :func:`algo_alloc` (optimal greedy
  allocation, Theorem 4) and its Section 7.2 heterogeneous variant
  :func:`algo_alloc_het`.
* Section 7.1 — :func:`heur_l_intervals` (Algorithm 3),
  :func:`heur_p_intervals` (Algorithm 4), and the complete two-step
  heuristic :func:`heuristic_best`.
* Exact references — :func:`pareto_dp_best` (tri-criteria exact DP, ours)
  and :func:`brute_force_best` (exhaustive oracle for tiny instances,
  objective-aware).
* Converse objectives (the tri-criteria facade) —
  :func:`minimize_period` (binary search honoring a latency bound) and
  :func:`minimize_latency` (Pareto-frontier scan under a reliability
  floor).
* Batched kernels (:mod:`repro.algorithms.batch`,
  :mod:`repro.algorithms.batch_dp`, :mod:`repro.algorithms.batch_search`)
  — :func:`batch_heuristic_best` evaluates a Section 7 heuristic over
  every row of a columnar ensemble in one call;
  :func:`batch_minimize_period` / :func:`batch_minimize_latency` do
  the same for the converse objectives on homogeneous rows, and
  :func:`batch_bisection_search` for the heterogeneous searches.  All
  are bit-identical to the per-instance loop;
  :func:`heuristic_solve_batch` / :func:`search_solve_batch` package
  them as the registry's ``solve_batch`` capability, and
  :class:`BatchUnsupported` is the fallback signal (with a
  machine-readable ``reason``) for shapes the kernels do not cover.
"""

from repro.algorithms.result import SolveResult
from repro.algorithms.dp_reliability import optimize_reliability
from repro.algorithms.dp_period import (
    optimize_reliability_period,
    optimize_period_reliability,
    minimize_period,
)
from repro.algorithms.allocation import algo_alloc, algo_alloc_het
from repro.algorithms.batch import (
    BatchUnsupported,
    batch_heuristic_best,
    heuristic_solve_batch,
)
from repro.algorithms.batch_dp import batch_minimize_latency, batch_minimize_period
from repro.algorithms.batch_search import batch_bisection_search, search_solve_batch
from repro.algorithms.heuristics import (
    heur_l_intervals,
    heur_p_intervals,
    heuristic_best,
    heuristic_candidates,
)
from repro.algorithms.pareto_dp import minimize_latency, pareto_dp_best
from repro.algorithms.brute_force import (
    brute_force_best,
    enumerate_mappings_hom,
    enumerate_mappings_het,
)
from repro.algorithms.ilp_mapping import ilp_best, build_mapping_ilp
from repro.algorithms.baselines import one_to_one_best, single_interval_best

__all__ = [
    "one_to_one_best",
    "single_interval_best",
    "SolveResult",
    "optimize_reliability",
    "optimize_reliability_period",
    "optimize_period_reliability",
    "minimize_period",
    "minimize_latency",
    "algo_alloc",
    "algo_alloc_het",
    "BatchUnsupported",
    "batch_heuristic_best",
    "batch_minimize_latency",
    "batch_minimize_period",
    "batch_bisection_search",
    "heuristic_solve_batch",
    "search_solve_batch",
    "heur_l_intervals",
    "heur_p_intervals",
    "heuristic_best",
    "heuristic_candidates",
    "pareto_dp_best",
    "brute_force_best",
    "enumerate_mappings_hom",
    "enumerate_mappings_het",
    "ilp_best",
    "build_mapping_ilp",
]
