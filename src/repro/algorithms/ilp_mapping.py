"""The paper's integer linear program (Section 5.4).

Given ``n`` tasks on ``p`` homogeneous processors with bounds ``P`` on
period and ``L`` on latency, compute the most reliable schedule meeting
both bounds.  Variables: ``a_{i,j,k} = 1`` iff the interval
``tau_i .. tau_j`` is allocated onto ``k`` processors (``k <= min(p, K)``).

Constraints (quoting Section 5.4, 0-based indices in code):

* every task belongs to exactly one chosen interval;
* at most ``p`` processors are used (``sum k * a <= p``);
* the latency bound holds;
* the period bound holds — enforced here by *pruning*: any ``a_{i,j,k}``
  whose interval violates ``max(o_{i-1}/b, W(i,j)/s, o_j/b) <= P`` is
  simply not created (equivalent to the paper's forcing constraints and
  much smaller).

The objective maximizes ``log r = sum log(1 - (1 - r_branch)^k) * a``,
which is linear in ``a``.  Two points of fidelity worth noting (see
DESIGN.md "known typos"):

* the printed latency constraint sums only computation terms; Eq. (5)/(7)
  also charge one ``o_{l_j}/b`` per interval.  ``latency_terms`` selects
  ``"full"`` (default, consistent with the rest of the library and the
  exact Pareto DP) or ``"paper"`` (as printed);
* the printed objective omits the communication reliabilities; we use
  the full Eq. (9) branch reliability (incoming comm x interval x
  outgoing comm), again matching every other method.
"""

from __future__ import annotations

import math
from typing import Literal

import numpy as np

from repro.algorithms._hom_dp import require_homogeneous
from repro.algorithms.result import SolveResult
from repro.core.chain import TaskChain
from repro.core.evaluation import comm_log_reliability, evaluate_mapping
from repro.core.interval import Interval
from repro.core.mapping import Mapping
from repro.core.platform import Platform
from repro.ilp import Model, solve_with_branch_bound, solve_with_scipy
from repro.util import logrel

__all__ = ["build_mapping_ilp", "ilp_best"]

LatencyTerms = Literal["full", "paper"]
Backend = Literal["scipy", "branch-bound"]


def build_mapping_ilp(
    chain: TaskChain,
    platform: Platform,
    max_period: float = math.inf,
    max_latency: float = math.inf,
    latency_terms: LatencyTerms = "full",
) -> tuple[Model, dict[tuple[int, int, int], "object"]]:
    """Build the Section 5.4 integer program.

    Returns the model and the variable dictionary keyed by
    ``(start, stop, k)`` with Python half-open task indices.
    """
    require_homogeneous(platform, "the Section 5.4 ILP")
    if max_period <= 0 or max_latency <= 0:
        raise ValueError("bounds must be > 0")
    if latency_terms not in ("full", "paper"):
        raise ValueError(f"latency_terms must be 'full' or 'paper', got {latency_terms!r}")
    n, p = chain.n, platform.p
    kmax = min(platform.max_replication, p)
    s = float(platform.speeds[0])
    lam = float(platform.failure_rates[0])
    b = platform.bandwidth

    prefix = np.concatenate(([0.0], np.cumsum(chain.work)))
    model = Model("benoit-ilp", sense="max")
    variables: dict[tuple[int, int, int], object] = {}
    coeffs: dict[tuple[int, int, int], float] = {}
    latency_expr = None
    procs_expr = None
    cover_exprs: list = [None] * n

    for start in range(n):
        ell_in = comm_log_reliability(platform, chain.input_of(start))
        t_in = chain.input_of(start) / b
        for stop in range(start + 1, n + 1):
            work = float(prefix[stop] - prefix[start])
            t_out = chain.output_of(stop) / b
            # Period pruning (the paper's period constraints force these
            # variables to zero; we omit them instead).
            if work / s > max_period or t_out > max_period or t_in > max_period:
                continue
            ell_out = comm_log_reliability(platform, chain.output_of(stop))
            ell_branch = ell_in - lam * work / s + ell_out
            lat_coeff = work / s + (t_out if latency_terms == "full" else 0.0)
            for k in range(1, kmax + 1):
                coeffs[(start, stop, k)] = logrel.parallel_k(ell_branch, k)
                var = model.add_var(f"a[{start},{stop},{k}]", lb=0, ub=1, integer=True)
                variables[(start, stop, k)] = var
                latency_expr = (
                    lat_coeff * var
                    if latency_expr is None
                    else latency_expr + lat_coeff * var
                )
                procs_expr = k * var if procs_expr is None else procs_expr + k * var
                for t in range(start, stop):
                    cover_exprs[t] = (
                        var.expr() if cover_exprs[t] is None else cover_exprs[t] + var
                    )

    # Log-reliability coefficients are tiny (|coeff| down to 1e-19 with the
    # paper's failure rates), far below MILP solver tolerances; maximizing
    # is invariant under positive scaling, so normalize the largest
    # magnitude to ~1e4 and record the scale for reporting.
    objective = None
    max_abs = max((abs(c) for c in coeffs.values()), default=0.0)
    scale = 1.0 if max_abs == 0.0 else 1e4 / max_abs
    model.objective_scale = scale  # type: ignore[attr-defined]
    for key, coeff in coeffs.items():
        term = (coeff * scale) * variables[key]
        objective = term if objective is None else objective + term

    if objective is None:
        # Every candidate interval violates the period bound: infeasible
        # by construction; encode with an unsatisfiable empty cover.
        model.objective_scale = 1.0  # type: ignore[attr-defined]
        model.set_objective(0.0)
        x = model.add_var("infeasible", lb=1, ub=1)
        model.add_constraint(x.expr() <= 0, name="no-interval-fits")
        return model, variables

    model.set_objective(objective)
    for t in range(n):
        if cover_exprs[t] is None:
            # Task t fits in no interval: infeasible.
            x = model.add_var(f"uncoverable[{t}]", lb=1, ub=1)
            model.add_constraint(x.expr() <= 0, name=f"task-{t}-uncoverable")
            return model, variables
        model.add_constraint(cover_exprs[t] == 1, name=f"cover[{t}]")
    model.add_constraint(procs_expr <= p, name="processors")
    if math.isfinite(max_latency):
        model.add_constraint(latency_expr <= max_latency, name="latency")
    return model, variables


def ilp_best(
    chain: TaskChain,
    platform: Platform,
    max_period: float = math.inf,
    max_latency: float = math.inf,
    latency_terms: LatencyTerms = "full",
    backend: Backend = "scipy",
) -> SolveResult:
    """Solve the Section 5.4 program and decode the optimal mapping.

    Parameters
    ----------
    backend:
        ``"scipy"`` (HiGHS branch-and-cut, default) or ``"branch-bound"``
        (the pure-Python cross-check solver).

    Examples
    --------
    >>> from repro.core import TaskChain, Platform
    >>> chain = TaskChain([6.0, 6.0], [4.0, 0.0])
    >>> plat = Platform.homogeneous_platform(4, failure_rate=1e-6,
    ...                                      max_replication=2)
    >>> ilp_best(chain, plat, max_period=7.0, max_latency=17.0).mapping.m
    2
    """
    model, variables = build_mapping_ilp(
        chain, platform, max_period, max_latency, latency_terms
    )
    if backend == "scipy":
        sol = solve_with_scipy(model)
    elif backend == "branch-bound":
        sol = solve_with_branch_bound(model)
    else:
        raise ValueError(f"unknown backend {backend!r}")
    if not sol.optimal:
        return SolveResult.infeasible(
            f"ilp:{backend}", status=sol.status, variables=len(variables)
        )

    chosen = sorted(
        (key for key, var in variables.items() if sol[var] > 0.5),
        key=lambda key: key[0],
    )
    assignment = []
    nxt = 0
    for start, stop, k in chosen:
        assignment.append((Interval(start, stop), tuple(range(nxt, nxt + k))))
        nxt += k
    mapping = Mapping(chain, platform, assignment)
    scale = getattr(model, "objective_scale", 1.0)
    return SolveResult(
        feasible=True,
        mapping=mapping,
        evaluation=evaluate_mapping(mapping),
        method=f"ilp:{backend}",
        details={
            "objective": sol.objective / scale,
            "variables": len(variables),
            "nodes": sol.nodes,
        },
    )
