"""Batched converse-objective kernels: dp-period and dp-latency.

The tentpole cells beyond the heuristics: one kernel call runs
:func:`~repro.algorithms.minimize_period` /
:func:`~repro.algorithms.minimize_latency` over every row of a
homogeneous ensemble group at every sweep point, bit-identical to the
per-row loop (same bit-identity contract as
:mod:`repro.algorithms.batch` — see that module's docstring for the
rules the style below follows).

* **dp-period** (:func:`batch_minimize_period`) — the scalar path
  binary-searches the ``O(n^2)`` candidate periods, probing each with
  the Algorithm 2 DP.  The kernel keeps one *lane* per (row, sweep
  point), enumerates candidates per row, and runs every probe round as
  a single lane-vectorized DP (:class:`_LaneDP`) over the not-yet
  converged lanes with per-lane period bounds — the bisection happens
  in lockstep, so a group costs ``O(log n_candidates)`` DP rounds
  instead of ``rows x points`` full binary searches.  Each lane's
  ``(lo, hi)`` trajectory and probe count replicate the scalar
  bisection exactly.  The scalar path's witness is the mapping probed
  at the final ``candidates[hi]``; the DP is deterministic, so one
  parent-tracked DP round at that bound reconstructs the identical
  witness, which is then scored by the real
  :func:`~repro.core.evaluation.evaluate_mapping`.

* **dp-latency** (:func:`batch_minimize_latency`) — the scalar path
  runs one Pareto DP per (row, point) with the *latency budget* as a
  pruning bound.  Inserting points beyond a lane's budget never evicts
  or dominates a within-budget frontier point (cost is the first
  frontier coordinate), so the sub-frontier within a smaller budget of
  a larger-budget run equals the smaller run's frontier.  The kernel
  therefore runs one DP per (row, distinct period bound) with the
  group's *largest* budget and answers every latency point from the
  shared frontier, restricting the final scan to points with
  ``cost <= budget_pt`` — the usual latency sweep (one period bound,
  many latency points) costs one DP per row.

Both kernels return the 4-tuple ``solve_batch`` form — the fourth
element carries the per-row ``info`` dict (``probes`` counts and, for
the searches, ``converged``) that the per-row path would have
accumulated, so harness events and cache record bytes stay identical.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.algorithms.batch import BatchUnsupported, floor_log_reliability
from repro.algorithms.pareto_dp import _reconstruct, _run_dp
from repro.core.evaluation import evaluate_mapping
from repro.core.interval import Interval
from repro.core.mapping import Mapping
from repro.util import logrel

__all__ = ["batch_minimize_period", "batch_minimize_latency"]


def _resolve_rows(ensemble, rows) -> np.ndarray:
    if rows is None:
        rows = range(ensemble.n_instances)
    return np.asarray(list(rows), dtype=np.int64)


def _require_homogeneous_rows(ensemble, rows: np.ndarray, kernel: str) -> None:
    if not ensemble.homogeneous_rows()[rows].all():
        raise BatchUnsupported(
            f"the batched {kernel} kernel requires fully homogeneous rows "
            "(the Section 5 DPs are only optimal there; Section 6 proves "
            "the heterogeneous problem NP-complete)",
            reason="heterogeneous",
        )


class _LaneDP:
    """Lane-vectorized Algorithm 1/2 core over homogeneous rows.

    Precomputes, per row, everything the scalar
    :func:`~repro.algorithms._hom_dp.hom_reliability_dp` derives before
    its ``F`` recurrence — the branch log-reliability/stage tables are
    bound-independent, so they are shared by every probe round.  A
    *lane* is one (row, period bound) pair; :meth:`run` executes the
    recurrence for many lanes at once, each against its own bound.
    """

    __slots__ = (
        "n", "p", "kmax", "s", "b", "prefix", "in_time", "out_time",
        "wtime", "stage",
    )

    def __init__(self, ensemble, rows: np.ndarray) -> None:
        r = len(rows)
        n, p = ensemble.n_tasks, ensemble.p
        kmax = min(ensemble.max_replication, p)
        b, link = ensemble.bandwidth, ensemble.link_failure_rate
        work = np.ascontiguousarray(ensemble.work[rows])
        output = np.ascontiguousarray(ensemble.output[rows])
        # Homogeneous rows: column 0 is every processor.
        s = np.ascontiguousarray(ensemble.speeds[rows, 0], dtype=float)
        lam = np.ascontiguousarray(ensemble.failure_rates[rows, 0], dtype=float)

        prefix = np.concatenate([np.zeros((r, 1)), np.cumsum(work, axis=1)], axis=1)
        # ell_comm[:, j] = log rcomm of the boundary before task j
        # (input_of(0) = 0, input_of(j) = output[j-1], output_of(n) =
        # output[n-1] — so the boundary sizes are [0, output...]).
        ell_comm = -link * (np.concatenate([np.zeros((r, 1)), output], axis=1) / b)
        self.in_time = np.concatenate([np.zeros((r, 1)), output[:, : n - 1]], axis=1) / b
        self.out_time = output / b

        qs = np.arange(1, kmax + 1)
        # Per candidate interval [j, i): compute time and replica-count
        # stage table for every row (the scalar loop's ell_branch /
        # parallel_k_many, broadcast across rows — elementwise ops and
        # the masked log1mexp agree across shapes).
        self.wtime = {}
        self.stage = {}
        for i in range(1, n + 1):
            for j in range(i):
                work_ij = prefix[:, i] - prefix[:, j]
                self.wtime[(j, i)] = work_ij / s
                branch = (ell_comm[:, j] - lam * work_ij / s) + ell_comm[:, i]
                self.stage[(j, i)] = logrel.parallel_k_many(branch[:, None], qs)

        self.n, self.p, self.kmax = n, p, kmax
        self.s, self.b, self.prefix = s, b, prefix

    def run(self, lanes: np.ndarray, P: np.ndarray, track: bool):
        """One DP round: ``lanes`` index this table's rows, ``P`` is the
        per-lane period bound.  Returns ``(F, best, parent_j, parent_q)``
        (parents ``None`` unless *track*)."""
        n, p, kmax = self.n, self.p, self.kmax
        L = lanes.size
        NEG = -math.inf
        F = np.full((n + 1, L, p + 1), NEG)
        F[0, :, 0] = 0.0
        pj = pq = None
        if track:
            pj = np.full((n + 1, L, p + 1), -1, dtype=np.int64)
            pq = np.full((n + 1, L, p + 1), -1, dtype=np.int64)
        out_t = self.out_time[lanes]
        in_t = self.in_time[lanes]
        for i in range(1, n + 1):
            ok_i = out_t[:, i - 1] <= P
            if not ok_i.any():
                continue
            row_i = F[i]
            for j in range(i):
                ok = ok_i & (self.wtime[(j, i)][lanes] <= P) & (in_t[:, j] <= P)
                if not ok.any():
                    continue
                # Lanes whose interval [j, i) violates their bound take a
                # -inf stage — the masked twin of the scalar `continue`.
                stg = np.where(ok[:, None], self.stage[(j, i)][lanes], NEG)
                row_j = F[j]
                for q in range(1, kmax + 1):
                    cand = row_j[:, : p + 1 - q] + stg[:, q - 1 : q]
                    dest = row_i[:, q:]
                    better = cand > dest
                    if better.any():
                        dest[better] = cand[better]
                        if track:
                            li, ki = np.nonzero(better)
                            pj[i, li, ki + q] = j
                            pq[i, li, ki + q] = q
        best = F[n, :, 1:].max(axis=1)
        return F, best, pj, pq

    def reconstruct(self, F, pj, pq, lane: int, ensemble, row: int) -> Mapping:
        """The scalar parent walk for one lane (processors 0, 1, 2...)."""
        n = self.n
        best_k = int(np.argmax(F[n, lane, 1:])) + 1
        pieces: list[tuple[int, int, int]] = []
        i, k = n, best_k
        while i > 0:
            j, q = int(pj[i, lane, k]), int(pq[i, lane, k])
            if j < 0:
                raise AssertionError("broken parent chain in lane DP")
            pieces.append((j, i, q))
            i, k = j, k - q
        pieces.reverse()
        assignment = []
        next_proc = 0
        for start, stop, q in pieces:
            procs = tuple(range(next_proc, next_proc + q))
            next_proc += q
            assignment.append((Interval(start, stop), procs))
        return Mapping(ensemble.chain(row), ensemble.platform(row), assignment)


def batch_minimize_period(
    ensemble,
    bounds: Sequence[tuple[float, float]],
    *,
    rows: "Sequence[int] | None" = None,
    objective: str = "period",
    min_reliability: float = 0.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, list]:
    """Batched ``minimize_period`` over homogeneous ensemble rows.

    The kernel twin of calling ``minimize_period(chain, platform,
    min_log_reliability=floor, max_period=P, max_latency=L)`` per row
    per sweep point.  Covers the cell the Algorithm 2 probe covers:
    every point's latency bound must be infinite (a finite latency
    switches the scalar probe to the per-row Pareto DP, which is not
    batched — those points fall back).

    Returns ``(solved, failure, objective_values, infos)`` where
    ``infos[row]`` is ``{"probes": total}`` over the row's feasible
    points (``None`` when every point is infeasible — the scalar
    infeasible result records no probe count).
    """
    if objective != "period":
        raise BatchUnsupported(
            f"the batched dp-period kernel covers objective 'period' only, "
            f"got {objective!r}",
            reason="objective",
        )
    rows = _resolve_rows(ensemble, rows)
    n_pts = len(bounds)
    r = len(rows)
    solved = np.zeros((r, n_pts), dtype=bool)
    failure = np.ones((r, n_pts), dtype=float)
    values = np.full((r, n_pts), math.inf, dtype=float)
    infos: list = [None] * r
    if r == 0:
        return solved, failure, values, infos
    _require_homogeneous_rows(ensemble, rows, "dp-period")
    if any(not math.isinf(float(L)) for _, L in bounds):
        raise BatchUnsupported(
            "the batched dp-period kernel probes with the Algorithm 2 DP, "
            "which requires an unbounded latency; points with a finite "
            "max_latency take the per-row Pareto-DP probe instead",
            reason="latency-bound",
        )
    for P, L in bounds:
        if float(P) <= 0 or float(L) <= 0:
            raise ValueError("bounds must be > 0")

    floor = floor_log_reliability(min_reliability)
    dp = _LaneDP(ensemble, rows)
    n = dp.n

    # Per-row sorted candidate periods — the scalar set comprehension
    # (all W(j, i)/s interval times plus the o/b communication times,
    # positives only, deduped) as one unique() per row.
    jj, ii = np.triu_indices(n + 1, k=1)
    cands: list[np.ndarray] = []
    for ri in range(r):
        vals = np.concatenate(
            [(dp.prefix[ri, ii] - dp.prefix[ri, jj]) / dp.s[ri], dp.out_time[ri]]
        )
        cands.append(np.unique(vals[vals > 0.0]))

    # Lane layout: lane = ri * n_pts + pt.
    P_pts = np.array([float(P) for P, _ in bounds])
    counts = np.stack(
        [np.searchsorted(cands[ri], P_pts, side="right") for ri in range(r)]
    )
    probes = np.zeros((r, n_pts), dtype=np.int64)
    lane_row = np.repeat(np.arange(r), n_pts)

    # Initial probe at each lane's loosest admissible candidate; lanes
    # with no candidate within max_period are infeasible with no probe.
    alive = np.flatnonzero(counts.ravel() > 0)
    if alive.size == 0:
        return solved, failure, values, infos
    hi = counts.ravel()[alive].astype(np.int64) - 1
    lr = lane_row[alive]
    Pa = np.array([float(cands[lr[a]][h]) for a, h in enumerate(hi)])
    _, best, _, _ = dp.run(lr, Pa, track=False)
    ok = np.isfinite(best) & (best >= floor)
    probes.ravel()[alive] = 1
    # Scalar infeasible results carry no "probes" key; drop their count.
    probes.ravel()[alive[~ok]] = 0

    ids = alive[ok]  # admissible lanes: candidates[hi] meets the floor
    if ids.size:
        lr = lane_row[ids]
        hi = hi[ok]
        lo = np.zeros(ids.size, dtype=np.int64)
        while True:
            act = np.flatnonzero(lo < hi)
            if act.size == 0:
                break
            mid = (lo[act] + hi[act]) // 2
            probes.ravel()[ids[act]] += 1
            Pm = np.array([float(cands[lr[a]][m]) for a, m in zip(act, mid)])
            _, bm, _, _ = dp.run(lr[act], Pm, track=False)
            okm = np.isfinite(bm) & (bm >= floor)
            hi[act[okm]] = mid[okm]
            lo[act[~okm]] = mid[~okm] + 1
        # One parent-tracked round at candidates[hi] reproduces the
        # scalar witness (the DP is deterministic and the scalar keeps
        # the mapping probed at its final hi).
        Pf = np.array([float(cands[lr[a]][h]) for a, h in enumerate(hi)])
        F, _, pj, pq = dp.run(lr, Pf, track=True)
        for a, lane_id in enumerate(ids):
            ri, pt = int(lane_id) // n_pts, int(lane_id) % n_pts
            mapping = dp.reconstruct(F, pj, pq, a, ensemble, int(rows[ri]))
            ev = evaluate_mapping(mapping)
            solved[ri, pt] = True
            failure[ri, pt] = ev.failure_probability
            values[ri, pt] = ev.worst_case_period

    for ri in range(r):
        total = int(probes[ri].sum())
        infos[ri] = {"probes": total} if total > 0 else None
    return solved, failure, values, infos


def batch_minimize_latency(
    ensemble,
    bounds: Sequence[tuple[float, float]],
    *,
    rows: "Sequence[int] | None" = None,
    objective: str = "latency",
    min_reliability: float = 0.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Batched ``minimize_latency`` over homogeneous ensemble rows.

    One Pareto-DP run per (row, distinct period bound) with the group's
    largest latency budget serves every sweep point (see the module
    docstring for why the shared frontier restricted to a point's
    budget equals that point's own run).  The scalar path records no
    per-unit info for dp-latency, so this kernel returns the 3-tuple
    form.
    """
    if objective != "latency":
        raise BatchUnsupported(
            f"the batched dp-latency kernel covers objective 'latency' only, "
            f"got {objective!r}",
            reason="objective",
        )
    rows = _resolve_rows(ensemble, rows)
    n_pts = len(bounds)
    r = len(rows)
    solved = np.zeros((r, n_pts), dtype=bool)
    failure = np.ones((r, n_pts), dtype=float)
    values = np.full((r, n_pts), math.inf, dtype=float)
    if r == 0:
        return solved, failure, values
    _require_homogeneous_rows(ensemble, rows, "dp-latency")
    for P, L in bounds:
        if float(P) <= 0 or float(L) <= 0:
            raise ValueError("bounds must be > 0")

    floor = floor_log_reliability(min_reliability)
    for ri in range(r):
        row = int(rows[ri])
        chain = ensemble.chain(row)
        platform = ensemble.platform(row)
        prefix = np.concatenate(([0.0], np.cumsum(chain.work)))
        total_compute = float(prefix[-1]) / float(platform.speeds[0])
        p = platform.p

        # Points whose latency cap cannot even cover the compute lower
        # bound are infeasible before any DP runs (scalar early return).
        budgets = np.array([float(L) - total_compute for _, L in bounds])
        live = budgets >= 0

        # One shared DP per distinct period bound, run with the loosest
        # live budget so every point's frontier is a sub-frontier.
        by_period: dict[float, list[int]] = {}
        for pt in np.flatnonzero(live):
            by_period.setdefault(float(bounds[pt][0]), []).append(int(pt))
        for period_bound, pts in by_period.items():
            run = _run_dp(
                chain, platform, period_bound, float(np.max(budgets[pts]))
            )
            front = run.front
            for pt in pts:
                budget = budgets[pt]
                best: "tuple[float, float, int] | None" = None
                for k in range(1, p + 1):
                    fr = front[chain.n][k]
                    if fr is None:
                        continue
                    for cost, value, _payload in fr:
                        if cost > budget or value < floor:
                            continue
                        key = (cost, -value, k)
                        if best is None or key < best:
                            best = key
                if best is None:
                    continue
                cost, neg_value, k = best
                mapping = _reconstruct(chain, platform, run, -neg_value, k, cost)
                ev = evaluate_mapping(mapping)
                solved[ri, pt] = True
                failure[ri, pt] = ev.failure_probability
                values[ri, pt] = ev.worst_case_latency
    return solved, failure, values
