"""Run-addressed artifact ledger: every run leaves a diffable record.

Every ``repro scenario run`` / ``repro experiment`` / cross-check
invocation writes one run directory::

    <runs_dir>/<run_id>/
        manifest.json     # the run's self-describing record
        per_unit.jsonl    # one JSON line per work unit (attribution)
        report.md         # deterministic human-readable summary

following the manifest-first, per-unit-jsonl discipline of evaluation
harnesses built around reproducible runs: the manifest makes a run
*re-runnable* (scenario spec hash, seed, methods, grid), the per-unit
lines make it *attributable* (which units were batch-served, which
fell back per row, which came from cache, what each cost), and the
report makes it *explainable* without opening JSON.

Determinism contract
--------------------
* ``run_id`` is derived by :func:`run_id_for` from a content hash of
  the run's identity payload plus a **caller-supplied** timestamp —
  same identity and timestamp in, same run_id out (nothing here reads
  the clock);
* :func:`write_run` serializes with stable key ordering and trailing
  newlines, so identical inputs produce **byte-identical** artifacts;
* every file is written atomically (temp file + ``os.replace``) and
  ``manifest.json`` is written *last*, so a run directory that has a
  manifest is complete — interrupted writes leave no half-runs that
  :func:`list_runs` would surface.

Environment
-----------
``REPRO_RUNS_DIR``
    Default ledger directory when callers pass ``None`` (falls back to
    ``./runs``).
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import tempfile
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

from repro.io import content_hash

__all__ = [
    "DEFAULT_RUNS_DIR",
    "RunRecord",
    "diff_runs",
    "find_run",
    "list_runs",
    "load_run",
    "render_diff",
    "render_report",
    "resolve_runs_dir",
    "run_id_for",
    "write_atomic",
    "write_run",
]

#: Fallback ledger directory (relative to the working directory).
DEFAULT_RUNS_DIR = "runs"

#: Hex digits of the identity hash kept in the run_id.
_ID_HASH_LEN = 12

#: run_id shape: sanitized timestamp + "-" + identity-hash prefix.
_RUN_ID_RE = re.compile(r"^[A-Za-z0-9T:.Z_-]+-[0-9a-f]{%d}$" % _ID_HASH_LEN)


def resolve_runs_dir(
    runs_dir: "str | os.PathLike[str] | None" = None,
) -> pathlib.Path:
    """Normalize a ledger directory argument.

    ``None`` falls back to ``$REPRO_RUNS_DIR``, then to
    :data:`DEFAULT_RUNS_DIR`.  The directory is *not* created here —
    only :func:`write_run` writes.
    """
    if runs_dir is None:
        runs_dir = os.environ.get("REPRO_RUNS_DIR") or DEFAULT_RUNS_DIR
    return pathlib.Path(runs_dir)


def run_id_for(identity: Any, timestamp: str) -> str:
    """Derive a run's ledger address.

    Parameters
    ----------
    identity:
        JSON-able payload of the run's identifying (non-volatile)
        fields — command, scenario spec hash, seed, methods, grid,
        objective.  Hashed via :func:`repro.io.content_hash`, so equal
        content gives equal ids across processes and machines.
    timestamp:
        Caller-supplied wall-clock tag (e.g. ``20260808T093000Z``).
        Part of the id *and* of the hash, so two runs of the same
        workload at different times get distinct, chronologically
        sorting directories — while tests that pin the timestamp get
        fully deterministic ids.
    """
    if not timestamp:
        raise ValueError("timestamp must be a non-empty string")
    # Keep ids filesystem- and shell-safe whatever the caller formats.
    tag = re.sub(r"[^A-Za-z0-9T:.Z_-]", "-", str(timestamp))
    return f"{tag}-{content_hash(identity, tag)[:_ID_HASH_LEN]}"


def write_atomic(path: pathlib.Path, text: str) -> None:
    """Write *text* via a sibling temp file + ``os.replace``.

    Readers never observe a partial file: either the old content (or
    absence) or the complete new content.  This is the one sanctioned
    file-write primitive of the artifact layers — the ``IO001`` lint
    rule (:mod:`repro.analysis.atomicwrite`) flags raw writes there.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def _manifest_bytes(manifest: dict) -> str:
    return json.dumps(manifest, indent=2, sort_keys=True) + "\n"


def _per_unit_bytes(per_unit: "Sequence[dict]") -> str:
    return "".join(json.dumps(row, sort_keys=True) + "\n" for row in per_unit)


def write_run(
    runs_dir: "str | os.PathLike[str] | None",
    run_id: str,
    manifest: dict,
    per_unit: "Sequence[dict]" = (),
    report: "str | None" = None,
) -> pathlib.Path:
    """Write one complete run directory; return its path.

    The manifest gains a ``run_id`` field (callers need not thread it
    through themselves).  Serialization is deterministic — sorted
    keys, one JSON object per ``per_unit.jsonl`` line, trailing
    newlines — so identical inputs yield byte-identical artifacts.
    ``manifest.json`` lands last: its presence marks the run complete.
    """
    root = resolve_runs_dir(runs_dir) / run_id
    manifest = {**manifest, "run_id": run_id}
    if report is None:
        report = render_report(manifest, per_unit)
    write_atomic(root / "per_unit.jsonl", _per_unit_bytes(per_unit))
    write_atomic(root / "report.md", report)
    write_atomic(root / "manifest.json", _manifest_bytes(manifest))
    return root


@dataclass(frozen=True)
class RunRecord:
    """One loaded ledger run."""

    run_id: str
    path: pathlib.Path
    manifest: dict
    units: "tuple[dict, ...]"
    report: str

    def unit_sources(self) -> dict[str, int]:
        """Histogram of per-unit ``source`` attribution (batch/cache/...)."""
        out: dict[str, int] = {}
        for row in self.units:
            source = str(row.get("source", "?"))
            out[source] = out.get(source, 0) + 1
        return out


def list_runs(
    runs_dir: "str | os.PathLike[str] | None" = None,
) -> "list[dict]":
    """Summaries of every complete run under the ledger, oldest first.

    A directory without a readable ``manifest.json`` is an interrupted
    (or foreign) write and is skipped.  Each summary carries the
    fields the ``repro runs list`` table prints; the full record comes
    from :func:`load_run`.
    """
    root = resolve_runs_dir(runs_dir)
    if not root.is_dir():
        return []
    summaries = []
    for entry in sorted(root.iterdir()):
        manifest_path = entry / "manifest.json"
        if not entry.is_dir() or not manifest_path.is_file():
            continue
        try:
            manifest = json.loads(manifest_path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        seconds = manifest.get("seconds")
        if isinstance(seconds, dict):
            seconds = seconds.get("total")
        cache = manifest.get("cache") or {}
        summaries.append(
            {
                "run_id": manifest.get("run_id", entry.name),
                "command": manifest.get("command"),
                "scenario": (manifest.get("scenario") or {}).get("name")
                if isinstance(manifest.get("scenario"), dict)
                else manifest.get("scenario"),
                "objective": manifest.get("objective"),
                "methods": sorted(manifest.get("series") or {}),
                "n_instances": manifest.get("n_instances"),
                "seconds": seconds,
                "cache_hits": cache.get("hits"),
                "cache_misses": cache.get("misses"),
                "batch_units": manifest.get("batch_units"),
            }
        )
    return summaries


def find_run(
    token: str, runs_dir: "str | os.PathLike[str] | None" = None
) -> str:
    """Resolve a run_id or unique run_id prefix to a full run_id."""
    root = resolve_runs_dir(runs_dir)
    if (root / token / "manifest.json").is_file():
        return token
    matches = [
        entry.name
        for entry in (sorted(root.iterdir()) if root.is_dir() else [])
        if entry.name.startswith(token) and (entry / "manifest.json").is_file()
    ]
    if not matches:
        raise FileNotFoundError(
            f"no run {token!r} under {root} (see 'repro runs list')"
        )
    if len(matches) > 1:
        raise ValueError(
            f"run prefix {token!r} is ambiguous under {root}: {matches}"
        )
    return matches[0]


def load_run(
    token: str, runs_dir: "str | os.PathLike[str] | None" = None
) -> RunRecord:
    """Load one run (by id or unique prefix) from the ledger."""
    root = resolve_runs_dir(runs_dir)
    run_id = find_run(token, root)
    path = root / run_id
    manifest = json.loads((path / "manifest.json").read_text())
    units: list[dict] = []
    jsonl = path / "per_unit.jsonl"
    if jsonl.is_file():
        for line in jsonl.read_text().splitlines():
            if line.strip():
                units.append(json.loads(line))
    report_path = path / "report.md"
    report = report_path.read_text() if report_path.is_file() else ""
    return RunRecord(
        run_id=run_id, path=path, manifest=manifest,
        units=tuple(units), report=report,
    )


# -- diffing --------------------------------------------------------------


def _series_last(series: dict, key: str) -> "dict[str, float | None]":
    """Final-sweep-point value of one per-method series list."""
    out: dict[str, "float | None"] = {}
    for method, record in (series or {}).items():
        values = record.get(key)
        out[method] = values[-1] if values else None
    return out


def _delta(a: "float | None", b: "float | None") -> "float | None":
    if a is None or b is None:
        return None
    return b - a


def diff_runs(a: RunRecord, b: RunRecord) -> dict:
    """Structured deltas between two ledger runs (``b`` minus ``a``).

    Sections — each present only when both runs carry the data:

    * ``series`` — per-method solved-count and achieved-objective
      (p50, final sweep point) deltas, plus methods present in only
      one run;
    * ``seconds`` — phase-timing deltas for every phase both runs
      timed;
    * ``cache`` — hit/miss/put/corrupt (and hit_rate) deltas;
    * ``batch`` — batch-served unit count delta plus the per-unit
      ``source`` attribution histograms and their delta — how serving
      moved between kernels, cache, parent, and workers.
    """
    out: dict[str, Any] = {
        "a": a.run_id,
        "b": b.run_id,
        "command": {"a": a.manifest.get("command"), "b": b.manifest.get("command")},
    }

    series_a = a.manifest.get("series") or {}
    series_b = b.manifest.get("series") or {}
    if series_a or series_b:
        shared = sorted(set(series_a) & set(series_b))
        methods: dict[str, Any] = {}
        for name in shared:
            counts_a = _series_last(series_a, "counts").get(name)
            counts_b = _series_last(series_b, "counts").get(name)
            p50_a = ((series_a[name].get("objective_quantiles") or {}).get("p50") or [None])[-1]
            p50_b = ((series_b[name].get("objective_quantiles") or {}).get("p50") or [None])[-1]
            fail_a = _series_last(series_a, "avg_failure").get(name)
            fail_b = _series_last(series_b, "avg_failure").get(name)
            methods[name] = {
                "count": {"a": counts_a, "b": counts_b,
                          "delta": _delta(counts_a, counts_b)},
                "objective_p50": {"a": p50_a, "b": p50_b,
                                  "delta": _delta(p50_a, p50_b)},
                "avg_failure": {"a": fail_a, "b": fail_b,
                                "delta": _delta(fail_a, fail_b)},
            }
        out["series"] = {
            "methods": methods,
            "only_a": sorted(set(series_a) - set(series_b)),
            "only_b": sorted(set(series_b) - set(series_a)),
        }

    seconds_a = a.manifest.get("seconds")
    seconds_b = b.manifest.get("seconds")
    if isinstance(seconds_a, dict) and isinstance(seconds_b, dict):
        out["seconds"] = {
            phase: {
                "a": seconds_a[phase],
                "b": seconds_b[phase],
                "delta": _delta(seconds_a[phase], seconds_b[phase]),
            }
            for phase in sorted(set(seconds_a) & set(seconds_b))
            if isinstance(seconds_a[phase], (int, float))
            and isinstance(seconds_b[phase], (int, float))
        }

    cache_a = a.manifest.get("cache")
    cache_b = b.manifest.get("cache")
    if isinstance(cache_a, dict) and isinstance(cache_b, dict):
        out["cache"] = {
            key: {"a": cache_a.get(key), "b": cache_b.get(key),
                  "delta": _delta(cache_a.get(key), cache_b.get(key))}
            for key in sorted(set(cache_a) | set(cache_b))
        }

    sources_a = a.unit_sources()
    sources_b = b.unit_sources()
    batch: dict[str, Any] = {}
    if a.manifest.get("batch_units") is not None or b.manifest.get("batch_units") is not None:
        batch["batch_units"] = {
            "a": a.manifest.get("batch_units"),
            "b": b.manifest.get("batch_units"),
            "delta": _delta(a.manifest.get("batch_units"),
                            b.manifest.get("batch_units")),
        }
    if sources_a or sources_b:
        batch["sources"] = {
            source: {"a": sources_a.get(source, 0), "b": sources_b.get(source, 0),
                     "delta": sources_b.get(source, 0) - sources_a.get(source, 0)}
            for source in sorted(set(sources_a) | set(sources_b))
        }
    if batch:
        out["batch"] = batch
    return out


def _fmt(value: "float | int | None", digits: int = 4, sign: bool = False) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return f"{value:+d}" if sign else str(value)
    return f"{value:{'+' if sign else ''}.{digits}g}"


def render_diff(diff: dict) -> str:
    """Human-readable rendering of a :func:`diff_runs` record."""
    lines = [f"diff {diff['a']} -> {diff['b']}"]
    series = diff.get("series")
    if series:
        lines.append("objective (final sweep point, b - a):")
        for name, record in sorted(series["methods"].items()):
            count = record["count"]
            p50 = record["objective_p50"]
            lines.append(
                f"  {name:18s} count {count['a']} -> {count['b']} "
                f"({_fmt(count['delta'], sign=True)})  "
                f"p50 {_fmt(p50['a'])} -> {_fmt(p50['b'])} ({_fmt(p50['delta'], sign=True)})"
            )
        for side, only in (("a", series["only_a"]), ("b", series["only_b"])):
            if only:
                lines.append(f"  only in {side}: {', '.join(only)}")
    seconds = diff.get("seconds")
    if seconds:
        lines.append("timings (seconds, b - a):")
        for phase, record in seconds.items():
            lines.append(
                f"  {phase:18s} {record['a']:.3f} -> {record['b']:.3f} "
                f"({_fmt(record['delta'], 3, sign=True)})"
            )
    cache = diff.get("cache")
    if cache:
        lines.append("cache (b - a):")
        for key, record in cache.items():
            lines.append(
                f"  {key:18s} {_fmt(record['a'])} -> {_fmt(record['b'])} "
                f"({_fmt(record['delta'], sign=True)})"
            )
    batch = diff.get("batch")
    if batch:
        lines.append("batch attribution (b - a):")
        if "batch_units" in batch:
            record = batch["batch_units"]
            lines.append(
                f"  {'batch_units':18s} {_fmt(record['a'])} -> "
                f"{_fmt(record['b'])} ({_fmt(record['delta'], sign=True)})"
            )
        for source, record in (batch.get("sources") or {}).items():
            lines.append(
                f"  {'units[' + source + ']':18s} {record['a']} -> "
                f"{record['b']} ({_fmt(record['delta'], sign=True)})"
            )
    return "\n".join(lines)


# -- report rendering -----------------------------------------------------


def render_report(manifest: dict, per_unit: "Iterable[dict]" = ()) -> str:
    """Deterministic ``report.md`` text for a run manifest.

    Pure function of its inputs (no clocks, no environment), so the
    byte-identity contract of :func:`write_run` extends to the report.
    """
    lines = [f"# repro run `{manifest.get('run_id', '?')}`", ""]
    lines.append(f"- command: `{manifest.get('command', '?')}`")
    scenario = manifest.get("scenario")
    if isinstance(scenario, dict) and scenario.get("name"):
        lines.append(
            f"- scenario: `{scenario['name']}` "
            f"(spec `{(scenario.get('spec_hash') or '?')[:12]}`)"
        )
    for field in ("objective", "seed", "n_instances", "batch_units"):
        if manifest.get(field) is not None:
            lines.append(f"- {field}: {manifest[field]}")
    seconds = manifest.get("seconds")
    if isinstance(seconds, dict):
        phases = ", ".join(
            f"{phase} {value:.3f}s"
            for phase, value in sorted(seconds.items())
            if isinstance(value, (int, float))
        )
        lines.append(f"- seconds: {phases}")
    cache = manifest.get("cache")
    if isinstance(cache, dict):
        rate = cache.get("hit_rate")
        rate_text = f", hit_rate {rate:.3f}" if isinstance(rate, float) else ""
        lines.append(
            f"- cache: {cache.get('hits', 0)} hits, {cache.get('misses', 0)} "
            f"misses, {cache.get('puts', 0)} puts, "
            f"{cache.get('corrupt', 0)} corrupt{rate_text}"
        )

    series = manifest.get("series")
    if isinstance(series, dict) and series:
        lines += ["", "## Methods (final sweep point)", ""]
        lines.append("| method | solved | avg failure | objective p50 |")
        lines.append("|---|---|---|---|")
        for name in sorted(series):
            record = series[name]
            counts = record.get("counts") or [None]
            failures = record.get("avg_failure") or [None]
            p50 = (record.get("objective_quantiles") or {}).get("p50") or [None]

            def cell(value: "float | int | None") -> str:
                if value is None:
                    return "-"
                return f"{value:.4g}" if isinstance(value, float) else str(value)

            lines.append(
                f"| {name} | {cell(counts[-1])} | {cell(failures[-1])} "
                f"| {cell(p50[-1])} |"
            )

    sources: dict[str, int] = {}
    converged: dict[str, int] = {"converged": 0, "not_converged": 0}
    coverage: dict[str, dict] = {}
    for row in per_unit:
        source = str(row.get("source", "?"))
        sources[source] = sources.get(source, 0) + 1
        if row.get("converged") is True:
            converged["converged"] += 1
        elif row.get("converged") is False:
            converged["not_converged"] += 1
        record = coverage.setdefault(
            str(row.get("method", "?")),
            {"batch": 0, "per_row": 0, "cache": 0, "fallback": {}},
        )
        bucket = source if source in ("batch", "cache") else "per_row"
        record[bucket] += 1
        reason = row.get("batch_fallback")
        if reason:
            # Ledgers written before reasons existed carry a bare True.
            label = reason if isinstance(reason, str) else "unsupported"
            record["fallback"][label] = record["fallback"].get(label, 0) + 1
    if sources:
        lines += ["", "## Unit attribution", ""]
        for source in sorted(sources):
            lines.append(f"- {source}: {sources[source]} units")
        if converged["converged"] or converged["not_converged"]:
            lines.append(
                f"- search convergence: {converged['converged']} converged, "
                f"{converged['not_converged']} budget-exhausted"
            )
        lines += ["", "## Batch coverage", ""]
        lines.append("| method | batch | fallback | per-row | cache |")
        lines.append("|---|---|---|---|---|")
        for method in sorted(coverage):
            record = coverage[method]
            fallback = ", ".join(
                f"{label}: {count}"
                for label, count in sorted(record["fallback"].items())
            ) or "-"
            lines.append(
                f"| {method} | {record['batch']} | {fallback} "
                f"| {record['per_row']} | {record['cache']} |"
            )

    telemetry = manifest.get("telemetry")
    if isinstance(telemetry, dict) and telemetry.get("spans"):
        lines += ["", "## Spans", ""]
        lines.append("| span | count | seconds |")
        lines.append("|---|---|---|")
        for key in sorted(telemetry["spans"]):
            agg = telemetry["spans"][key]
            lines.append(
                f"| {key} | {agg.get('count', 0)} | {agg.get('seconds', 0.0):.4f} |"
            )
    return "\n".join(lines) + "\n"
