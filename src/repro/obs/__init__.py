"""Observability for the experiment stack: telemetry + run ledger.

Two halves, both deterministic and dependency-free:

* :mod:`repro.obs.telemetry` — an aggregating span/counter API
  (:func:`span`, :func:`counter`, :func:`collect`) that the sweep
  harness, result cache, bounds-grid derivation, and planner are
  instrumented with.  Near-zero cost when no collector is installed;
  worker processes return snapshots the parent merges, so parallel
  runs aggregate exactly like serial ones.
* :mod:`repro.obs.ledger` — the run-addressed artifact ledger: every
  ``repro scenario run`` / ``repro experiment`` / cross-check writes
  ``runs/<run_id>/{manifest.json, per_unit.jsonl, report.md}`` via a
  deterministic, atomic writer, and ``repro runs list/show/diff``
  inspects and compares the results.
"""

from repro.obs.ledger import (
    DEFAULT_RUNS_DIR,
    RunRecord,
    diff_runs,
    find_run,
    list_runs,
    load_run,
    render_diff,
    render_report,
    resolve_runs_dir,
    run_id_for,
    write_atomic,
    write_run,
)
from repro.obs.telemetry import Telemetry, active, collect, counter, span

__all__ = [
    "DEFAULT_RUNS_DIR",
    "RunRecord",
    "Telemetry",
    "active",
    "collect",
    "counter",
    "diff_runs",
    "find_run",
    "list_runs",
    "load_run",
    "render_diff",
    "render_report",
    "resolve_runs_dir",
    "run_id_for",
    "span",
    "write_atomic",
    "write_run",
]
