"""Lightweight span/counter telemetry for the experiment stack.

A run's story — where wall-clock went, which work units were served by
the batched kernels versus falling back per row, what the result cache
did, which plan steps were skipped — used to evaporate the moment the
process exited.  This module is the collection half of the fix (the
run-addressed artifact ledger in :mod:`repro.obs.ledger` is the
storage half): instrumented code calls :func:`span` and
:func:`counter`, and whoever owns the run (the CLI commands, a bench,
a test) wraps the work in :func:`collect` and reads the aggregated
:class:`Telemetry` afterwards.

Design constraints, in order:

* **near-zero cost when disabled** — no collector installed means
  :func:`span` returns a shared no-op context manager and
  :func:`counter` is a single global read and an early return.  The
  hot paths (a warm 1000-unit sweep) run with telemetry off by
  default; ``bench_ensemble_sweep`` gates the enabled/disabled ratio;
* **aggregated, not evented** — spans and counters accumulate into
  flat ``name -> {count, seconds}`` / ``name -> value`` dicts keyed by
  ``name`` or ``name[label]``, so collection cost does not grow with
  run length and snapshots are trivially JSON-able.  Per-unit detail
  belongs in :attr:`repro.experiments.harness.SweepResult.unit_events`
  (structured data, always collected), not here;
* **process-safe** — worker shards
  (:func:`repro.experiments.harness._solve_shard_payload`) collect
  into their own :class:`Telemetry` and return its :meth:`snapshot`
  with the shard results; the parent :meth:`merge`\\ s it into the
  active collector.  Snapshots are plain dicts of floats, so they
  pickle across any process-start method.

Example
-------
>>> from repro.obs import collect, span, counter
>>> with collect() as tele:
...     with span("demo.phase"):
...         counter("demo.widgets", 3)
>>> tele.counters["demo.widgets"]
3
>>> tele.spans["demo.phase"]["count"]
1
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Iterator

__all__ = [
    "Telemetry",
    "active",
    "collect",
    "counter",
    "span",
]


class _NullSpan:
    """Shared no-op context manager returned when collection is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()

#: The installed collector (one per process; workers install their own).
_ACTIVE: "Telemetry | None" = None


class _Span:
    """One running span: records its duration into the collector on exit."""

    __slots__ = ("_telemetry", "_key", "_t0")

    def __init__(self, telemetry: "Telemetry", key: str) -> None:
        self._telemetry = telemetry
        self._key = key

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> bool:
        elapsed = time.perf_counter() - self._t0
        spans = self._telemetry.spans
        agg = spans.get(self._key)
        if agg is None:
            spans[self._key] = {"count": 1, "seconds": elapsed}
        else:
            agg["count"] += 1
            agg["seconds"] += elapsed
        return False


def _key(name: str, label: "str | None") -> str:
    return name if label is None else f"{name}[{label}]"


class Telemetry:
    """An aggregating collector of spans and counters.

    Attributes
    ----------
    spans:
        ``key -> {"count": n, "seconds": total}`` — how often each
        instrumented region ran and its cumulative wall-clock.  Keys
        are span names, optionally suffixed ``[label]`` for per-method
        (or per-reason) breakdowns.
    counters:
        ``key -> value`` — monotonic tallies (cache hits per method,
        batch-served units, planner skips, ...), same key convention.
    """

    def __init__(self) -> None:
        self.spans: dict[str, dict[str, float]] = {}
        self.counters: dict[str, "int | float"] = {}

    # -- recording -------------------------------------------------------

    def span(self, name: str, label: "str | None" = None) -> _Span:
        """A context manager timing one region into :attr:`spans`."""
        return _Span(self, _key(name, label))

    def counter(self, name: str, value: "int | float" = 1,
                label: "str | None" = None) -> None:
        """Add *value* to a counter (creating it at 0)."""
        key = _key(name, label)
        self.counters[key] = self.counters.get(key, 0) + value

    # -- aggregation across processes ------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-able (and picklable) copy of the aggregates."""
        return {
            "spans": {k: dict(v) for k, v in self.spans.items()},
            "counters": dict(self.counters),
        }

    def merge(self, snapshot: "dict[str, Any] | None") -> None:
        """Fold another collector's :meth:`snapshot` into this one.

        The parent process calls this with each worker shard's
        snapshot, so a parallel sweep aggregates exactly like a serial
        one (plus the workers' own span timings).  ``None`` (a worker
        that collected nothing) is a no-op.
        """
        if not snapshot:
            return
        for key, agg in snapshot.get("spans", {}).items():
            mine = self.spans.get(key)
            if mine is None:
                self.spans[key] = {
                    "count": agg.get("count", 0),
                    "seconds": agg.get("seconds", 0.0),
                }
            else:
                mine["count"] += agg.get("count", 0)
                mine["seconds"] += agg.get("seconds", 0.0)
        for key, value in snapshot.get("counters", {}).items():
            self.counters[key] = self.counters.get(key, 0) + value


def active() -> "Telemetry | None":
    """The installed collector, or None when collection is off."""
    return _ACTIVE


def span(name: str, label: "str | None" = None):
    """Time a region into the active collector (no-op when none).

    Usage: ``with obs.span("sweep.batch", label=method.name): ...``.
    The disabled path allocates nothing and returns a shared no-op
    context manager.
    """
    telemetry = _ACTIVE
    if telemetry is None:
        return _NULL_SPAN
    return telemetry.span(name, label)


def counter(name: str, value: "int | float" = 1,
            label: "str | None" = None) -> None:
    """Bump a counter on the active collector (no-op when none)."""
    telemetry = _ACTIVE
    if telemetry is not None:
        telemetry.counter(name, value, label)


@contextmanager
def collect(telemetry: "Telemetry | None" = None) -> Iterator[Telemetry]:
    """Install a collector for the duration of the ``with`` block.

    Yields the collector (a fresh :class:`Telemetry` unless one is
    passed in), restoring the previous one — usually ``None`` — on
    exit, so collections nest and never leak into later code.
    """
    global _ACTIVE
    if telemetry is None:
        telemetry = Telemetry()
    previous = _ACTIVE
    _ACTIVE = telemetry
    try:
        yield telemetry
    finally:
        _ACTIVE = previous
