"""JSON (de)serialization for chains, platforms, mappings, and specs.

Instances and solutions need to travel — between experiment stages,
into EXPERIMENTS.md bookkeeping, across tools.  This module defines a
stable, versioned JSON round-trip for every user-facing model object,
including :class:`~repro.scenarios.spec.ScenarioSpec` (so workload
definitions ship as files through the same codec as the instances they
generate), :class:`~repro.core.ensemble.Ensemble` (whole columnar
instance ensembles as one payload), and :class:`~repro.solve.Problem`
(so bounded solver instances ship to worker processes and derive
stable cache keys; infinite bounds are encoded as the string
``"inf"``).

Format: each object carries a ``"type"`` tag and a flat payload; a
top-level ``"repro_format"`` version guards future migrations.

Examples
--------
>>> from repro import TaskChain
>>> from repro.io import dumps, loads
>>> chain = TaskChain([1.0, 2.0], [1.0, 0.0])
>>> loads(dumps(chain)) == chain
True
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.core.chain import TaskChain
from repro.core.ensemble import Ensemble
from repro.core.interval import Interval
from repro.core.mapping import Mapping
from repro.core.platform import Platform

__all__ = [
    "FORMAT_VERSION",
    "to_dict",
    "from_dict",
    "dumps",
    "loads",
    "canonical_json",
    "content_hash",
]

FORMAT_VERSION = 1


def to_dict(obj: "TaskChain | Platform | Mapping | Any") -> dict[str, Any]:
    """Encode a model object into a JSON-ready dict."""
    if isinstance(obj, TaskChain):
        payload: dict[str, Any] = {
            "type": "TaskChain",
            "work": obj.work.tolist(),
            "output": obj.output.tolist(),
        }
    elif isinstance(obj, Platform):
        payload = {
            "type": "Platform",
            "speeds": obj.speeds.tolist(),
            "failure_rates": obj.failure_rates.tolist(),
            "bandwidth": obj.bandwidth,
            "link_failure_rate": obj.link_failure_rate,
            "max_replication": obj.max_replication,
        }
    elif isinstance(obj, Ensemble):
        payload = obj.to_dict()
    elif isinstance(obj, Mapping):
        payload = {
            "type": "Mapping",
            "chain": to_dict(obj.chain),
            "platform": to_dict(obj.platform),
            "intervals": [[iv.start, iv.stop] for iv in obj.intervals],
            "replicas": [list(r) for r in obj.replicas],
        }
    else:
        # Deferred imports: repro.scenarios and repro.solve are higher
        # layers (their codecs call back into this module).
        from repro.scenarios.spec import ScenarioSpec
        from repro.solve.problem import Problem

        if isinstance(obj, (ScenarioSpec, Problem)):
            payload = obj.to_dict()
        else:
            raise TypeError(f"cannot serialize {type(obj).__name__}")
    payload["repro_format"] = FORMAT_VERSION
    return payload


def from_dict(payload: dict[str, Any]) -> "TaskChain | Platform | Mapping | Any":
    """Decode an object produced by :func:`to_dict`."""
    if not isinstance(payload, dict) or "type" not in payload:
        raise ValueError("payload is not a repro object (missing 'type')")
    version = payload.get("repro_format", FORMAT_VERSION)
    if version > FORMAT_VERSION:
        raise ValueError(
            f"payload format {version} is newer than supported ({FORMAT_VERSION})"
        )
    kind = payload["type"]
    if kind == "TaskChain":
        return TaskChain(work=payload["work"], output=payload["output"])
    if kind == "Platform":
        return Platform(
            speeds=payload["speeds"],
            failure_rates=payload["failure_rates"],
            bandwidth=payload["bandwidth"],
            link_failure_rate=payload["link_failure_rate"],
            max_replication=payload["max_replication"],
        )
    if kind == "Mapping":
        chain = from_dict(payload["chain"])
        platform = from_dict(payload["platform"])
        assert isinstance(chain, TaskChain) and isinstance(platform, Platform)
        assignment = [
            (Interval(int(a), int(b)), tuple(procs))
            for (a, b), procs in zip(payload["intervals"], payload["replicas"])
        ]
        return Mapping(chain, platform, assignment)
    if kind == "Ensemble":
        return Ensemble(
            work=payload["work"],
            output=payload["output"],
            speeds=payload["speeds"],
            failure_rates=payload["failure_rates"],
            bandwidth=payload["bandwidth"],
            link_failure_rate=payload["link_failure_rate"],
            max_replication=payload["max_replication"],
            hom_counterpart_speed=payload.get("hom_counterpart_speed"),
        )
    if kind == "ScenarioSpec":
        from repro.scenarios.spec import spec_from_payload

        return spec_from_payload(payload)
    if kind == "Problem":
        from repro.solve.problem import Problem

        chain = from_dict(payload["chain"])
        platform = from_dict(payload["platform"])
        assert isinstance(chain, TaskChain) and isinstance(platform, Platform)
        return Problem(
            chain=chain,
            platform=platform,
            max_period=float(payload["max_period"]),
            max_latency=float(payload["max_latency"]),
            objective=payload.get("objective", "reliability"),
            # Pre-1.2 payloads carry no floor (and could not express one).
            min_reliability=float(payload.get("min_reliability", 0.0)),
        )
    raise ValueError(f"unknown object type {kind!r}")


def canonical_json(payload: Any) -> str:
    """Render *payload* as canonical JSON: sorted keys, no whitespace.

    Python's ``repr``-based float serialization is shortest-round-trip,
    so two equal floats always render identically — the rendering is a
    stable identity for a JSON-able value across processes and machines.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"), allow_nan=False)


def content_hash(*payloads: Any) -> str:
    """SHA-256 hex digest of one or more JSON-able payloads.

    Model objects (:class:`TaskChain`, :class:`Platform`,
    :class:`Mapping`) are accepted directly and encoded via
    :func:`to_dict` first.  The experiment result cache keys entries
    with this: equal content gives equal keys across process restarts
    (unlike ``hash``, which is salted per process).
    """
    digest = hashlib.sha256()
    for payload in payloads:
        if isinstance(payload, (TaskChain, Platform, Mapping)) or (
            not isinstance(payload, dict) and callable(getattr(payload, "to_dict", None))
        ):
            payload = to_dict(payload)
        digest.update(canonical_json(payload).encode())
        digest.update(b"\x1f")
    return digest.hexdigest()


def dumps(obj: "TaskChain | Platform | Mapping | Any", **json_kwargs: Any) -> str:
    """Serialize to a JSON string."""
    return json.dumps(to_dict(obj), **json_kwargs)


def loads(text: str) -> "TaskChain | Platform | Mapping | Any":
    """Deserialize from a JSON string."""
    return from_dict(json.loads(text))
