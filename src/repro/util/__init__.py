"""Shared utilities: log-domain reliability arithmetic, Pareto frontiers, RNG.

These modules are substrate-level helpers used by every other subpackage.
They deliberately contain no scheduling logic.
"""

from repro.util import logrel, pareto, rng, validation

__all__ = ["logrel", "pareto", "rng", "validation"]
