"""Small argument-validation helpers shared across the library.

Centralizing these keeps error messages uniform and the model classes
lean.  All helpers raise :class:`ValueError` (or :class:`TypeError` for
clearly wrong types) with messages naming the offending parameter.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "as_float_array",
    "check_positive",
    "check_nonnegative",
    "check_index",
    "check_probability",
]


def as_float_array(values: Sequence[float] | np.ndarray, name: str) -> np.ndarray:
    """Convert to a 1-D, C-contiguous float64 array; reject empties/NaNs."""
    arr = np.ascontiguousarray(values, dtype=float)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must not be empty")
    if np.any(~np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    return arr


def check_positive(value: float, name: str) -> float:
    """Require ``value > 0``."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_nonnegative(value: float, name: str) -> float:
    """Require ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_index(value: int, size: int, name: str) -> int:
    """Require ``0 <= value < size`` and an integral type."""
    if not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if not 0 <= value < size:
        raise ValueError(f"{name} must be in [0, {size}), got {value!r}")
    return int(value)


def check_probability(value: float, name: str) -> float:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value
