"""Seeded random-number plumbing.

All randomness in the library flows through :class:`numpy.random.Generator`
objects so that every experiment, test, and benchmark is reproducible from
a single integer seed.  This module centralizes the (tiny amount of) policy:
how user-facing ``seed`` arguments are turned into generators and how
independent child streams are derived.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ensure_rng", "spawn"]

RngLike = "int | None | np.random.Generator | np.random.SeedSequence"


def ensure_rng(seed: "int | None | np.random.Generator | np.random.SeedSequence" = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh OS entropy), an integer seed, a
    ``SeedSequence``, or an existing ``Generator`` (returned unchanged, so
    callers can thread one stream through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive *n* statistically independent child generators from *rng*.

    Used by the experiment harness to give each instance its own stream,
    so adding sweep points never perturbs other instances' draws.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n!r} generators")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
