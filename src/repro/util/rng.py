"""Seeded random-number plumbing.

All randomness in the library flows through :class:`numpy.random.Generator`
objects so that every experiment, test, and benchmark is reproducible from
a single integer seed.  This module centralizes the (tiny amount of) policy:
how user-facing ``seed`` arguments are turned into generators and how
independent child streams are derived.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["ensure_rng", "spawn", "spawn_seeds", "stable_seed"]

RngLike = "int | None | np.random.Generator | np.random.SeedSequence"


def ensure_rng(seed: "int | None | np.random.Generator | np.random.SeedSequence" = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh OS entropy), an integer seed, a
    ``SeedSequence``, or an existing ``Generator`` (returned unchanged, so
    callers can thread one stream through a pipeline).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_seeds(rng: np.random.Generator, n: int) -> list[int]:
    """Draw *n* integer seeds for independent child streams from *rng*.

    Exposed separately from :func:`spawn` so parallel runners (e.g. the
    cross-check's process fan-out) can ship plain integers to worker
    processes and rebuild *exactly* the generators the serial path would
    have used — bit-identical results either way.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n!r} generators")
    return [int(s) for s in rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)]


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive *n* statistically independent child generators from *rng*.

    Used by the experiment harness to give each instance its own stream,
    so adding sweep points never perturbs other instances' draws.
    """
    return [np.random.default_rng(s) for s in spawn_seeds(rng, n)]


def stable_seed(*parts: object) -> int:
    """Derive a deterministic 63-bit seed from a tuple of labels.

    Unlike Python's ``hash`` (salted per process) this is stable across
    process restarts and machines: parts are rendered with ``repr`` and
    digested with SHA-256.  The experiment harness uses it to give every
    ``(method, instance, bounds)`` work unit its own seed, so stochastic
    methods produce identical draws whether a unit runs serially, in a
    worker process, or in a re-run resumed from the cache.
    """
    digest = hashlib.sha256("\x1f".join(repr(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "big") >> 1
