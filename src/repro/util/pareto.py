"""Pareto-frontier maintenance for the exact tri-criteria dynamic program.

The exact homogeneous solver (:mod:`repro.algorithms.pareto_dp`) keeps, for
every DP state, the set of non-dominated ``(cost, value)`` pairs where
*cost* (accumulated communication latency) is minimized and *value*
(log-reliability) is maximized.  This module provides a small, well-tested
frontier container for that purpose.

A pair ``a`` dominates ``b`` iff ``a.cost <= b.cost`` and
``a.value >= b.value`` with at least one strict inequality.  The frontier
stores mutually non-dominated points sorted by increasing cost (hence
strictly increasing value).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterator, Sequence

__all__ = ["ParetoFrontier", "dominates"]


def dominates(cost_a: float, value_a: float, cost_b: float, value_b: float) -> bool:
    """Return True iff point A dominates point B (min cost, max value)."""
    return (
        cost_a <= cost_b
        and value_a >= value_b
        and (cost_a < cost_b or value_a > value_b)
    )


class ParetoFrontier:
    """Set of non-dominated ``(cost, value, payload)`` points.

    Minimizes *cost*, maximizes *value*.  Points are kept sorted by
    increasing cost; by the non-domination invariant, values are then
    strictly increasing too.

    The optional *payload* carries reconstruction data (e.g. DP parent
    pointers) and plays no role in dominance.

    Examples
    --------
    >>> f = ParetoFrontier()
    >>> f.insert(2.0, -0.5)
    True
    >>> f.insert(1.0, -1.0)   # cheaper but worse: kept
    True
    >>> f.insert(3.0, -0.9)   # dominated by (2.0, -0.5): rejected
    False
    >>> sorted((c, v) for c, v, _ in f)
    [(1.0, -1.0), (2.0, -0.5)]
    """

    __slots__ = ("_costs", "_values", "_payloads")

    def __init__(self) -> None:
        self._costs: list[float] = []
        self._values: list[float] = []
        self._payloads: list[Any] = []

    def __len__(self) -> int:
        return len(self._costs)

    def __iter__(self) -> Iterator[tuple[float, float, Any]]:
        return iter(zip(self._costs, self._values, self._payloads))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pts = ", ".join(f"({c:g}, {v:g})" for c, v in zip(self._costs, self._values))
        return f"ParetoFrontier([{pts}])"

    @property
    def costs(self) -> Sequence[float]:
        """Costs of frontier points, increasing."""
        return tuple(self._costs)

    @property
    def values(self) -> Sequence[float]:
        """Values of frontier points, increasing (mirrors :attr:`costs`)."""
        return tuple(self._values)

    def insert(self, cost: float, value: float, payload: Any = None) -> bool:
        """Insert a point; return True iff it was non-dominated (kept).

        Any existing points dominated by the new point are removed.
        Ties: a point equal in both coordinates to an existing point is
        considered dominated (the incumbent wins), keeping frontiers small.
        """
        costs, values = self._costs, self._values
        i = bisect_left(costs, cost)
        # Any point with cost <= cost and value >= value dominates us.
        # Since values increase with cost, it suffices to check the last
        # point with cost <= our cost... but equal costs need care.
        j = bisect_right(costs, cost)
        if j > 0 and values[j - 1] >= value:
            # The best point at cost <= ours already achieves >= our value.
            return False
        # Remove points we dominate: cost >= ours and value <= ours.
        # Those are a contiguous run starting at i (first index with
        # cost >= ours) while their value <= ours.
        k = i
        while k < len(costs) and values[k] <= value:
            k += 1
        del costs[i:k], values[i:k], self._payloads[i:k]
        costs.insert(i, cost)
        values.insert(i, value)
        self._payloads.insert(i, payload)
        return True

    def best_value_within(self, max_cost: float) -> tuple[float, Any] | None:
        """Best (max) value among points with ``cost <= max_cost``.

        Returns ``(value, payload)`` or ``None`` if no point qualifies.
        """
        j = bisect_right(self._costs, max_cost)
        if j == 0:
            return None
        return self._values[j - 1], self._payloads[j - 1]

    def prune_cost_above(self, max_cost: float) -> None:
        """Drop all points with ``cost > max_cost`` (bound propagation)."""
        j = bisect_right(self._costs, max_cost)
        del self._costs[j:], self._values[j:], self._payloads[j:]
