"""Log-domain reliability arithmetic.

The paper's experiments plot *failure probabilities* down to ``1e-12``
(Figures 7, 9, 11, 13, 15).  A reliability of ``1 - 1e-12`` is within a few
ulp of ``1.0`` in IEEE-754 double precision, so composing reliabilities
directly as probabilities destroys all signal.  Every reliability in this
library is therefore carried as a *log-reliability*

    ``ell = log(r) <= 0``      (``r = exp(ell)`` in ``(0, 1]``),

and failure probabilities are recovered as ``f = 1 - r = -expm1(ell)``,
which is exact to machine precision even for ``f ~ 1e-300``.

Conventions
-----------
* A log-reliability of ``0.0`` means "perfectly reliable" (``r = 1``).
* ``-inf`` means "certainly failed" (``r = 0``).
* NaNs are rejected; positive values are rejected (reliability cannot
  exceed 1).

The three composition rules used throughout the paper are:

serial composition (Eq. (2))
    All blocks must work: ``r = prod r_i`` hence ``ell = sum ell_i``.

parallel composition of distinct replicas (inner product of Eq. (9))
    At least one block must work: ``r = 1 - prod (1 - r_i)``.

parallel composition of ``k`` identical replicas (Alg. 1 line 10)
    ``r = 1 - (1 - r0)**k``.

All functions accept floats or NumPy arrays and broadcast element-wise
where that makes sense; the ``*_many`` variants are the vectorized forms
used in the dynamic-programming inner loops.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

__all__ = [
    "PERFECT",
    "check_logrel",
    "from_rate",
    "reliability",
    "failure",
    "log_failure",
    "from_reliability",
    "from_failure",
    "serial",
    "parallel",
    "parallel_k",
    "parallel_k_many",
    "serial_many",
    "log1mexp",
]

#: Log-reliability of a perfectly reliable block (r = 1).
PERFECT: float = 0.0


def check_logrel(ell: float) -> float:
    """Validate that *ell* is a legal log-reliability and return it.

    Parameters
    ----------
    ell:
        Candidate log-reliability.  Must satisfy ``ell <= 0`` (``-inf``
        allowed) and must not be NaN.

    Raises
    ------
    ValueError
        If *ell* is NaN or strictly positive.
    """
    if math.isnan(ell):
        raise ValueError("log-reliability must not be NaN")
    if ell > 0.0:
        raise ValueError(f"log-reliability must be <= 0, got {ell!r}")
    return ell


def from_rate(rate: float, duration: float) -> float:
    """Log-reliability of one operation under the Shatz–Wang model (Eq. (1)).

    An operation of duration ``d`` on a component with constant failure
    rate ``lambda`` succeeds with probability ``exp(-lambda * d)``, hence
    its log-reliability is simply ``-lambda * d``.

    Parameters
    ----------
    rate:
        Failure rate per time unit (``lambda >= 0``).
    duration:
        Duration of the operation in time units (``d >= 0``).
    """
    if rate < 0.0:
        raise ValueError(f"failure rate must be >= 0, got {rate!r}")
    if duration < 0.0:
        raise ValueError(f"duration must be >= 0, got {duration!r}")
    return -rate * duration


def reliability(ell: float) -> float:
    """Reliability ``r = exp(ell)`` (loses precision for ``r`` near 1)."""
    return math.exp(ell)


def failure(ell: float) -> float:
    """Failure probability ``f = 1 - exp(ell)`` computed as ``-expm1(ell)``.

    Exact to machine precision even when ``f`` is tiny, which is the
    regime of every experiment in the paper (``lambda ~ 1e-8``).
    """
    return -math.expm1(ell)


def log_failure(ell: float) -> float:
    """``log(1 - exp(ell))``, i.e. the log of the failure probability.

    Uses the standard two-branch ``log1mexp`` trick (Mächler 2012) to stay
    accurate over the whole range of *ell*.
    """
    if ell == 0.0:
        return -math.inf
    if ell > -math.log(2.0):
        # 1 - exp(ell) is small: go through expm1.
        return math.log(-math.expm1(ell))
    # 1 - exp(ell) is close to 1: go through log1p.
    return math.log1p(-math.exp(ell))


def from_reliability(r: float) -> float:
    """Log-reliability of a plain probability *r* in ``[0, 1]``.

    Only use this at API boundaries (user-supplied reliabilities); prefer
    :func:`from_rate` or :func:`from_failure` internally.
    """
    if not 0.0 <= r <= 1.0:
        raise ValueError(f"reliability must be in [0, 1], got {r!r}")
    if r == 0.0:
        return -math.inf
    return math.log(r)


def from_failure(f: float) -> float:
    """Log-reliability from a failure probability *f* in ``[0, 1]``.

    Computed as ``log1p(-f)`` which preserves tiny failure probabilities.
    """
    if not 0.0 <= f <= 1.0:
        raise ValueError(f"failure probability must be in [0, 1], got {f!r}")
    if f == 1.0:
        return -math.inf
    return math.log1p(-f)


def serial(ells: Iterable[float]) -> float:
    """Serial composition: every block must work (Eq. (2)).

    ``log prod r_i = sum ell_i``.  An empty series is perfectly reliable.
    """
    total = 0.0
    for ell in ells:
        total += check_logrel(ell)
    return total


def parallel(ells: Iterable[float]) -> float:
    """Parallel composition of distinct blocks: at least one must work.

    This is the inner factor of Eq. (9):
    ``r = 1 - prod_u (1 - r_u)``, computed in the log domain as
    ``log1p(-prod_u(-expm1(ell_u)))``.

    The failure product is accumulated in the *log* domain when any factor
    underflows, so stages with many very reliable replicas keep full
    precision.

    An empty parallel composition has no working path, so it returns
    ``-inf`` (reliability 0).
    """
    ells = [check_logrel(e) for e in ells]
    if not ells:
        return -math.inf
    # log failure probability of each branch:
    log_fs = [log_failure(e) for e in ells]
    log_prod_f = sum(log_fs)
    if log_prod_f == -math.inf:
        return PERFECT
    if log_prod_f == 0.0:
        return -math.inf  # every branch certainly fails
    # ell = log(1 - prod f) = log1p(-exp(log_prod_f))
    if log_prod_f > -math.log(2.0):
        return math.log(-math.expm1(log_prod_f))
    return math.log1p(-math.exp(log_prod_f))


def parallel_k(ell: float, k: int) -> float:
    """Parallel composition of ``k`` identical replicas.

    ``r = 1 - (1 - r0)**k`` — the replication factor of Alg. 1 line 10 /
    Alg. 2 line 13, where every replica of an interval has the same
    log-reliability on a homogeneous platform.

    Parameters
    ----------
    ell:
        Log-reliability of a single replica.
    k:
        Number of replicas (``k >= 1``).
    """
    check_logrel(ell)
    if k < 1:
        raise ValueError(f"replica count must be >= 1, got {k!r}")
    if k == 1:
        return ell
    lf = log_failure(ell)  # log(1 - r0)
    log_prod_f = k * lf
    if log_prod_f == -math.inf:
        return PERFECT
    if log_prod_f == 0.0:
        return -math.inf  # every replica certainly fails
    if log_prod_f > -math.log(2.0):
        return math.log(-math.expm1(log_prod_f))
    return math.log1p(-math.exp(log_prod_f))


# ---------------------------------------------------------------------------
# Vectorized variants (NumPy), used in DP inner loops.
# ---------------------------------------------------------------------------


def log1mexp(x: np.ndarray) -> np.ndarray:
    """Vectorized ``log(1 - exp(x))`` for ``x <= 0`` (Mächler's log1mexp)."""
    x = np.asarray(x, dtype=float)
    out = np.empty_like(x)
    small = x > -math.log(2.0)  # 1 - exp(x) small -> use expm1
    with np.errstate(divide="ignore", invalid="ignore"):
        out[small] = np.log(-np.expm1(x[small]))
        out[~small] = np.log1p(-np.exp(x[~small]))
    return out


def parallel_k_many(ell: np.ndarray | float, k: np.ndarray | int) -> np.ndarray:
    """Vectorized :func:`parallel_k` with broadcasting.

    ``ell`` and ``k`` broadcast against each other; entries of ``k`` must
    be ``>= 1`` and entries of ``ell`` must be ``<= 0``.
    """
    ell = np.asarray(ell, dtype=float)
    k = np.asarray(k)
    if np.any(ell > 0.0) or np.any(np.isnan(ell)):
        raise ValueError("log-reliabilities must be <= 0 and not NaN")
    if np.any(k < 1):
        raise ValueError("replica counts must be >= 1")
    lf = log1mexp(ell)  # log failure of one replica
    log_prod_f = np.asarray(k * lf, dtype=float)
    out = log1mexp(log_prod_f)
    # k * (-inf) = nan when k could be 0-d int; but k >= 1 so -inf stays.
    # A perfectly reliable replica (ell = 0) gives lf = -inf -> out = 0.
    out = np.where(np.isneginf(log_prod_f), 0.0, out)
    # A certainly-failed replica (ell = -inf) gives lf = 0 -> out = -inf.
    out = np.where(log_prod_f == 0.0, -np.inf, out)
    return out


def serial_many(ells: np.ndarray, axis: int | None = None) -> np.ndarray:
    """Vectorized serial composition: sum along *axis*."""
    ells = np.asarray(ells, dtype=float)
    if np.any(ells > 0.0) or np.any(np.isnan(ells)):
        raise ValueError("log-reliabilities must be <= 0 and not NaN")
    return np.sum(ells, axis=axis)
