"""Pure-Python branch-and-bound MILP solver on LP relaxations.

A self-contained exact solver used to cross-validate the HiGHS backend
(two independent engines agreeing is strong evidence the model — not
just the solver call — is right).  Best-first search on the LP bound,
branching on the most fractional integer variable; LP relaxations are
solved with ``scipy.optimize.linprog`` (HiGHS simplex/IPM, used here as
an *LP* solver only).

Not built for speed: fine for hundreds of binaries (the paper's program
at n = 15 has 360), not for thousands.
"""

from __future__ import annotations

import heapq
import itertools
import math

import numpy as np
from scipy import optimize

from repro.ilp.model import Model, Solution

__all__ = ["solve_with_branch_bound"]

#: Integrality tolerance: LP values this close to an integer count as integral.
INT_TOL = 1e-7


def _solve_lp(arr, lb: np.ndarray, ub: np.ndarray):
    """LP relaxation with variable bounds *lb*/*ub*; returns (status, x, fun)."""
    res = optimize.linprog(
        c=arr["c"],
        A_ub=arr["A_ub"] if arr["A_ub"].shape[0] else None,
        b_ub=arr["b_ub"] if arr["A_ub"].shape[0] else None,
        A_eq=arr["A_eq"] if arr["A_eq"].shape[0] else None,
        b_eq=arr["b_eq"] if arr["A_eq"].shape[0] else None,
        bounds=np.column_stack((lb, ub)),
        method="highs",
    )
    if res.status == 2:
        return "infeasible", None, math.inf
    if res.status == 3:
        return "unbounded", None, -math.inf
    if not res.success:
        return "unknown", None, math.inf
    return "optimal", np.asarray(res.x, dtype=float), float(res.fun)


def solve_with_branch_bound(
    model: Model, max_nodes: int = 200_000
) -> Solution:
    """Solve *model* exactly by best-first branch and bound.

    Parameters
    ----------
    max_nodes:
        Safety cap on explored nodes; :class:`RuntimeError` when hit
        (the search is exact up to that point, so hitting the cap means
        the instance is too big for this backend).
    """
    arr = model.to_arrays()
    nvar = arr["c"].size
    int_idx = np.nonzero(arr["integrality"] == 1)[0]

    root_status, root_x, root_fun = _solve_lp(arr, arr["lb"], arr["ub"])
    if root_status == "infeasible":
        return Solution("infeasible", float("nan"), np.full(nvar, np.nan))
    if root_status == "unbounded":
        return Solution("unbounded", float("nan"), np.full(nvar, np.nan))

    counter = itertools.count()  # tie-break: FIFO among equal bounds
    heap: list[tuple[float, int, np.ndarray, np.ndarray]] = [
        (root_fun, next(counter), arr["lb"].copy(), arr["ub"].copy())
    ]
    best_x: np.ndarray | None = None
    best_fun = math.inf
    nodes = 0

    while heap:
        bound, _, lb, ub = heapq.heappop(heap)
        if bound >= best_fun - 1e-12:
            continue  # pruned by incumbent
        nodes += 1
        if nodes > max_nodes:
            raise RuntimeError(
                f"branch-and-bound exceeded {max_nodes} nodes; "
                "use solve_with_scipy for this instance"
            )
        status, x, fun = _solve_lp(arr, lb, ub)
        if status != "optimal" or fun >= best_fun - 1e-12:
            continue
        frac = np.abs(x[int_idx] - np.round(x[int_idx]))
        worst = int(np.argmax(frac)) if int_idx.size else 0
        if int_idx.size == 0 or frac[worst] <= INT_TOL:
            # Integral solution: new incumbent.
            xi = x.copy()
            xi[int_idx] = np.round(xi[int_idx])
            best_x, best_fun = xi, fun
            continue
        var = int(int_idx[worst])
        floor_v = math.floor(x[var])
        # Down branch: x_var <= floor.
        lb_d, ub_d = lb.copy(), ub.copy()
        ub_d[var] = floor_v
        if lb_d[var] <= ub_d[var]:
            heapq.heappush(heap, (fun, next(counter), lb_d, ub_d))
        # Up branch: x_var >= floor + 1.
        lb_u, ub_u = lb.copy(), ub.copy()
        lb_u[var] = floor_v + 1
        if lb_u[var] <= ub_u[var]:
            heapq.heappush(heap, (fun, next(counter), lb_u, ub_u))

    if best_x is None:
        return Solution("infeasible", float("nan"), np.full(nvar, np.nan))
    objective = model.finish_objective(best_fun) + float(arr["obj_offset"])
    return Solution("optimal", objective, best_x, nodes=nodes)
