"""Tiny MILP modeling front-end.

Supports exactly what the paper's integer program needs: bounded
continuous/integer/binary variables, linear constraints
(``<=``, ``>=``, ``==``), and a single linear objective.  Models are
solver-agnostic; backends consume the standard-form arrays produced by
:meth:`Model.to_arrays`.

Example
-------
>>> m = Model("knapsack", sense="max")
>>> x = [m.add_var(f"x{i}", integer=True, lb=0, ub=1) for i in range(3)]
>>> _ = m.add_constraint(2 * x[0] + 3 * x[1] + 4 * x[2] <= 5, name="cap")
>>> m.set_objective(3 * x[0] + 4 * x[1] + 5 * x[2])
>>> from repro.ilp import solve_with_scipy
>>> sol = solve_with_scipy(m)
>>> round(sol.objective)
7
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping as TMapping

import numpy as np

__all__ = ["Variable", "LinExpr", "Constraint", "Model", "Solution"]


class LinExpr:
    """A linear expression ``sum coeff_i * var_i + constant``.

    Built by operator overloading on :class:`Variable`; immutable-ish
    (operators return new expressions).
    """

    __slots__ = ("coeffs", "constant")

    def __init__(self, coeffs: TMapping[int, float] | None = None, constant: float = 0.0):
        self.coeffs: dict[int, float] = dict(coeffs or {})
        self.constant = float(constant)

    # -- construction helpers ------------------------------------------------

    @staticmethod
    def _coerce(other: "LinExpr | Variable | float | int") -> "LinExpr":
        if isinstance(other, LinExpr):
            return other
        if isinstance(other, Variable):
            return LinExpr({other.index: 1.0})
        if isinstance(other, (int, float)):
            return LinExpr(constant=float(other))
        raise TypeError(f"cannot use {type(other).__name__} in a linear expression")

    def copy(self) -> "LinExpr":
        return LinExpr(self.coeffs, self.constant)

    # -- arithmetic -----------------------------------------------------------

    def __add__(self, other: "LinExpr | Variable | float | int") -> "LinExpr":
        rhs = self._coerce(other)
        out = self.copy()
        for idx, c in rhs.coeffs.items():
            out.coeffs[idx] = out.coeffs.get(idx, 0.0) + c
        out.constant += rhs.constant
        return out

    __radd__ = __add__

    def __sub__(self, other: "LinExpr | Variable | float | int") -> "LinExpr":
        return self + (self._coerce(other) * -1.0)

    def __rsub__(self, other: "LinExpr | Variable | float | int") -> "LinExpr":
        return self._coerce(other) + (self * -1.0)

    def __mul__(self, scalar: float | int) -> "LinExpr":
        if not isinstance(scalar, (int, float)):
            raise TypeError("linear expressions only scale by numbers")
        return LinExpr(
            {i: c * float(scalar) for i, c in self.coeffs.items()},
            self.constant * float(scalar),
        )

    __rmul__ = __mul__

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    # -- comparisons build constraints ----------------------------------------

    def __le__(self, other: "LinExpr | Variable | float | int") -> "Constraint":
        return Constraint(self - self._coerce(other), "<=")

    def __ge__(self, other: "LinExpr | Variable | float | int") -> "Constraint":
        return Constraint(self - self._coerce(other), ">=")

    def __eq__(self, other: object) -> "Constraint":  # type: ignore[override]
        if isinstance(other, (LinExpr, Variable, int, float)):
            return Constraint(self - self._coerce(other), "==")
        return NotImplemented

    __hash__ = None  # type: ignore[assignment] - expressions are not hashable

    def value(self, x: np.ndarray) -> float:
        """Evaluate at a point *x* (indexed by variable index)."""
        return self.constant + sum(c * x[i] for i, c in self.coeffs.items())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        terms = " + ".join(f"{c:g}*v{i}" for i, c in sorted(self.coeffs.items()))
        return f"LinExpr({terms} + {self.constant:g})"


@dataclass(frozen=True)
class Variable:
    """Handle to a model variable (index into the model's column space)."""

    model: "Model" = field(repr=False, compare=False)
    index: int
    name: str
    lb: float
    ub: float
    integer: bool

    def expr(self) -> LinExpr:
        return LinExpr({self.index: 1.0})

    def __add__(self, other):
        return self.expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self.expr() - other

    def __rsub__(self, other):
        return LinExpr._coerce(other) - self.expr()

    def __mul__(self, scalar):
        return self.expr() * scalar

    __rmul__ = __mul__

    def __neg__(self):
        return -self.expr()

    def __le__(self, other):
        return self.expr() <= other

    def __ge__(self, other):
        return self.expr() >= other

    def __eq__(self, other: object):  # type: ignore[override]
        if isinstance(other, (LinExpr, Variable, int, float)):
            return self.expr() == other
        return NotImplemented

    __hash__ = object.__hash__


@dataclass
class Constraint:
    """``expr (<=|>=|==) 0`` in canonical form (rhs folded into the expr)."""

    expr: LinExpr
    sense: str  # "<=", ">=", "=="
    name: str = ""

    def __post_init__(self) -> None:
        if self.sense not in ("<=", ">=", "=="):
            raise ValueError(f"unknown constraint sense {self.sense!r}")


@dataclass(frozen=True)
class Solution:
    """Result of a MILP solve.

    ``status`` is one of ``"optimal"``, ``"infeasible"``, ``"unbounded"``.
    ``values`` is indexed by variable index; ``objective`` is in the
    model's own sense (maximization objectives are reported as maxima).
    """

    status: str
    objective: float
    values: np.ndarray
    nodes: int = 0

    @property
    def optimal(self) -> bool:
        return self.status == "optimal"

    def __getitem__(self, var: Variable) -> float:
        return float(self.values[var.index])


class Model:
    """A mixed-integer linear program under construction."""

    def __init__(self, name: str = "", sense: str = "max") -> None:
        if sense not in ("max", "min"):
            raise ValueError(f"sense must be 'max' or 'min', got {sense!r}")
        self.name = name
        self.sense = sense
        self.variables: list[Variable] = []
        self.constraints: list[Constraint] = []
        self.objective: LinExpr = LinExpr()

    # -- building ---------------------------------------------------------------

    def add_var(
        self,
        name: str = "",
        lb: float = 0.0,
        ub: float = math.inf,
        integer: bool = False,
    ) -> Variable:
        """Add a variable with bounds ``[lb, ub]``; ``integer=True`` for
        integral (binary = integer with ``lb=0, ub=1``)."""
        if lb > ub:
            raise ValueError(f"variable {name!r}: lb {lb} > ub {ub}")
        var = Variable(
            model=self,
            index=len(self.variables),
            name=name or f"v{len(self.variables)}",
            lb=float(lb),
            ub=float(ub),
            integer=bool(integer),
        )
        self.variables.append(var)
        return var

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        if not isinstance(constraint, Constraint):
            raise TypeError(
                "add_constraint expects a comparison of linear expressions "
                f"(got {type(constraint).__name__}); did you compare two floats?"
            )
        if name:
            constraint.name = name
        self.constraints.append(constraint)
        return constraint

    def set_objective(self, expr: "LinExpr | Variable | float") -> None:
        self.objective = LinExpr._coerce(expr)

    # -- export ------------------------------------------------------------------

    def to_arrays(self) -> dict[str, np.ndarray]:
        """Standard-form arrays for the backends.

        Returns a dict with ``c`` (objective, *minimization* sense),
        ``obj_offset``, ``A_ub``/``b_ub``, ``A_eq``/``b_eq``, ``lb``,
        ``ub``, ``integrality`` (0/1 per column).  ``>=`` rows are
        negated into ``<=`` rows.
        """
        nvar = len(self.variables)
        c = np.zeros(nvar)
        for i, coef in self.objective.coeffs.items():
            c[i] = coef
        offset = self.objective.constant
        if self.sense == "max":
            c = -c

        rows_ub: list[np.ndarray] = []
        rhs_ub: list[float] = []
        rows_eq: list[np.ndarray] = []
        rhs_eq: list[float] = []
        for con in self.constraints:
            row = np.zeros(nvar)
            for i, coef in con.expr.coeffs.items():
                row[i] = coef
            rhs = -con.expr.constant
            if con.sense == "<=":
                rows_ub.append(row)
                rhs_ub.append(rhs)
            elif con.sense == ">=":
                rows_ub.append(-row)
                rhs_ub.append(-rhs)
            else:
                rows_eq.append(row)
                rhs_eq.append(rhs)

        return {
            "c": c,
            "obj_offset": np.array(offset),
            "A_ub": np.array(rows_ub) if rows_ub else np.zeros((0, nvar)),
            "b_ub": np.array(rhs_ub),
            "A_eq": np.array(rows_eq) if rows_eq else np.zeros((0, nvar)),
            "b_eq": np.array(rhs_eq),
            "lb": np.array([v.lb for v in self.variables]),
            "ub": np.array([v.ub for v in self.variables]),
            "integrality": np.array(
                [1 if v.integer else 0 for v in self.variables], dtype=int
            ),
        }

    def finish_objective(self, minimized_value: float) -> float:
        """Convert a backend's minimization optimum to the model's sense."""
        return -minimized_value if self.sense == "max" else minimized_value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Model({self.name!r}, {self.sense}, {len(self.variables)} vars, "
            f"{len(self.constraints)} constraints)"
        )
