"""Solve a :class:`repro.ilp.model.Model` with ``scipy.optimize.milp``.

SciPy's ``milp`` wraps the HiGHS branch-and-cut solver — an exact MILP
engine, standing in for the CPLEX dependency of the paper's experimental
section (see DESIGN.md, substitutions table).
"""

from __future__ import annotations

import numpy as np
from scipy import optimize, sparse

from repro.ilp.model import Model, Solution

__all__ = ["solve_with_scipy"]


def solve_with_scipy(model: Model, time_limit: float | None = None) -> Solution:
    """Solve *model* exactly with HiGHS.

    Parameters
    ----------
    model:
        The MILP to solve.
    time_limit:
        Optional wall-clock cap in seconds (HiGHS option).  On timeout
        the best incumbent is returned with status ``"optimal"`` only if
        HiGHS proved optimality; otherwise ``"unknown"``.
    """
    arr = model.to_arrays()
    nvar = arr["c"].size
    constraints = []
    if arr["A_ub"].shape[0]:
        constraints.append(
            optimize.LinearConstraint(
                sparse.csr_matrix(arr["A_ub"]), -np.inf, arr["b_ub"]
            )
        )
    if arr["A_eq"].shape[0]:
        constraints.append(
            optimize.LinearConstraint(
                sparse.csr_matrix(arr["A_eq"]), arr["b_eq"], arr["b_eq"]
            )
        )
    # Exact optimum wanted: the default HiGHS relative MIP gap (1e-4) can
    # stop at near-optimal incumbents, which matters because reliability
    # objectives distinguish solutions at tiny relative differences.
    options = {"mip_rel_gap": 0.0}
    if time_limit is not None:
        options["time_limit"] = float(time_limit)
    res = optimize.milp(
        c=arr["c"],
        constraints=constraints or None,
        bounds=optimize.Bounds(arr["lb"], arr["ub"]),
        integrality=arr["integrality"],
        options=options,
    )
    if res.status == 2:  # infeasible
        return Solution("infeasible", float("nan"), np.full(nvar, np.nan))
    if res.status == 3:  # unbounded
        return Solution("unbounded", float("nan"), np.full(nvar, np.nan))
    if not res.success or res.x is None:
        return Solution("unknown", float("nan"), np.full(nvar, np.nan))
    x = np.asarray(res.x, dtype=float)
    # Snap integer variables (HiGHS returns them within tolerance).
    mask = arr["integrality"] == 1
    x[mask] = np.round(x[mask])
    objective = model.finish_objective(float(res.fun)) + float(arr["obj_offset"])
    return Solution("optimal", objective, x)
