"""A small mixed-integer linear programming layer.

The paper solves its Section 5.4 integer program with CPLEX; offline we
substitute (a) the exact HiGHS branch-and-cut solver shipped with SciPy
(:mod:`repro.ilp.scipy_backend`) and (b) a self-contained best-first
branch-and-bound on LP relaxations (:mod:`repro.ilp.branch_bound`),
useful as a cross-check and where `scipy.optimize.milp` is unavailable.

The modeling front-end (:mod:`repro.ilp.model`) is deliberately tiny —
variables, linear expressions, constraints, one objective — just enough
to express the paper's program readably.
"""

from repro.ilp.model import LinExpr, Model, Solution, Variable
from repro.ilp.scipy_backend import solve_with_scipy
from repro.ilp.branch_bound import solve_with_branch_bound

__all__ = [
    "LinExpr",
    "Model",
    "Solution",
    "Variable",
    "solve_with_scipy",
    "solve_with_branch_bound",
]
