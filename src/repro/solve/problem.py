"""The first-class optimization problem of the paper's Section 3.

Every solver in this repository answers the same question: *given a
task chain, a platform, a period bound P, and a latency bound L, which
mapping maximizes reliability?*  Historically that question travelled
as a bare positional tuple ``(chain, platform, max_period,
max_latency)`` — re-spelled at ~60 call sites across the registry, the
harness, the cache, the cross-check, and the CLI.  :class:`Problem`
makes the question an object:

* **frozen** — a problem is a value, safe to share across threads,
  worker processes, and caches;
* **content-hashable** — :meth:`Problem.content_hash` is a stable
  SHA-256 over the canonical JSON encoding, identical across process
  restarts and machines; the result cache derives its unit keys from
  these hashes;
* **serializable** — round-trips through :mod:`repro.io` (``type:
  "Problem"``), including unbounded (infinite) bounds, so problems can
  ship to worker processes or live in files.

Benoit et al.'s companion work on bi-criteria pipeline mappings frames
the experimental search as a *family* of bounded problems swept over a
(P, L) grid; :meth:`with_bounds` is the one-liner that materializes
that family from a base instance (see
:func:`repro.solve.grid.derive_bounds_grid`).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import Any

from repro.core.chain import TaskChain
from repro.core.platform import Platform

__all__ = ["OBJECTIVES", "Problem", "encode_bound", "problem_hash"]

#: Supported optimization objectives.  ``"reliability"`` is the paper's
#: Section 3 problem (maximize reliability under period/latency bounds).
#: The converse criteria optimize one performance bound under a
#: *reliability floor* (:attr:`Problem.min_reliability`):
#:
#: * ``"period"`` — minimize the worst-case period subject to the floor
#:   and the latency bound (Section 5.2's binary-search converse);
#: * ``"latency"`` — minimize the worst-case latency subject to the
#:   floor and the period bound (Section 5.3 scope, via the Pareto DP);
#: * ``"energy"`` — minimize the Section 9 dynamic-power energy subject
#:   to the floor and both bounds (:mod:`repro.extensions.energy`).
OBJECTIVES = ("reliability", "period", "latency", "energy")


def encode_bound(value: float) -> "float | str":
    """JSON-safe encoding of a period/latency bound: finite floats pass
    through, ``inf`` (an unbounded problem) becomes the string
    ``"inf"`` so canonical JSON (``allow_nan=False``) accepts it.  The
    single encoding shared by the :mod:`repro.io` codec, the result
    cache's key tokens, and the CLI manifests."""
    value = float(value)
    return value if math.isfinite(value) else repr(value)


@dataclass(frozen=True)
class Problem:
    """One Section 3 instance: what to map, onto what, within which bounds.

    Attributes
    ----------
    chain:
        The pipelined application (a linear task chain).
    platform:
        The distributed platform (processors, links, replication cap).
    max_period, max_latency:
        The real-time bounds P and L; ``inf`` (the default) leaves the
        corresponding criterion unbounded.
    objective:
        What to optimize within the bounds (see :data:`OBJECTIVES`).
        ``"reliability"`` maximizes reliability; ``"period"``,
        ``"latency"``, and ``"energy"`` minimize their criterion
        subject to the remaining bounds and the reliability floor.
    min_reliability:
        Reliability floor in ``[0, 1)`` for the converse objectives:
        a mapping is feasible only if its reliability is at least this
        value.  ``0.0`` (the default) means "no floor".  Meaningless —
        and therefore rejected — for ``objective="reliability"``, where
        reliability is the criterion being maximized, not a constraint.
    """

    chain: TaskChain
    platform: Platform
    max_period: float = math.inf
    max_latency: float = math.inf
    objective: str = "reliability"
    min_reliability: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.chain, TaskChain):
            raise TypeError(f"chain must be a TaskChain, got {type(self.chain).__name__}")
        if not isinstance(self.platform, Platform):
            raise TypeError(f"platform must be a Platform, got {type(self.platform).__name__}")
        for name in ("max_period", "max_latency"):
            value = getattr(self, name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(f"{name} must be a number, got {value!r}")
            value = float(value)
            if math.isnan(value) or value <= 0:
                raise ValueError(f"{name} must be > 0 (inf = unbounded), got {value!r}")
            object.__setattr__(self, name, value)
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {self.objective!r}; supported: {OBJECTIVES}"
            )
        floor = self.min_reliability
        if isinstance(floor, bool) or not isinstance(floor, (int, float)):
            raise ValueError(f"min_reliability must be a number, got {floor!r}")
        floor = float(floor)
        if math.isnan(floor) or not 0.0 <= floor < 1.0:
            raise ValueError(
                f"min_reliability must lie in [0, 1) (0 = no floor), got {floor!r}"
            )
        object.__setattr__(self, "min_reliability", floor)
        if self.objective == "reliability" and floor != 0.0:
            raise ValueError(
                "min_reliability is a constraint for the converse objectives "
                "('period', 'latency', 'energy'); with objective='reliability' "
                "the criterion itself is maximized — leave the floor at 0.0"
            )

    # -- structure -------------------------------------------------------

    @property
    def bounded(self) -> bool:
        """True when at least one of the (P, L) bounds is finite."""
        return math.isfinite(self.max_period) or math.isfinite(self.max_latency)

    @property
    def homogeneous(self) -> bool:
        """True when the platform is homogeneous (Section 5 scope)."""
        return self.platform.homogeneous

    @property
    def n_tasks(self) -> int:
        return self.chain.n

    @property
    def p(self) -> int:
        return self.platform.p

    @property
    def min_log_reliability(self) -> float:
        """The reliability floor as a log-probability (``-inf`` = none).

        The internal currency of every solver (see
        :mod:`repro.util.logrel`); ``min_reliability`` stays a plain
        probability at the API boundary because that is what users
        state floors in.
        """
        from repro.util.logrel import from_reliability

        if self.min_reliability == 0.0:
            return -math.inf
        return from_reliability(self.min_reliability)

    def replace(self, **changes: Any) -> "Problem":
        """A copy with the given fields replaced (validated anew).

        The ergonomic spelling of objective switches::

            solve(problem.replace(objective="period", min_reliability=0.99))
        """
        return dataclasses.replace(self, **changes)

    def with_bounds(
        self,
        max_period: "float | None" = None,
        max_latency: "float | None" = None,
    ) -> "Problem":
        """A copy with one or both bounds replaced (``None`` keeps).

        The workhorse of grid sweeps: one base instance fans out into a
        family of bounded problems sharing chain and platform objects.
        """
        return dataclasses.replace(
            self,
            max_period=self.max_period if max_period is None else max_period,
            max_latency=self.max_latency if max_latency is None else max_latency,
        )

    def unbounded(self) -> "Problem":
        """The same instance with both bounds lifted."""
        return self.with_bounds(math.inf, math.inf)

    # -- identity --------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Encode as the tagged payload consumed by ``repro.io``."""
        from repro.io import to_dict

        return {
            "type": "Problem",
            "chain": to_dict(self.chain),
            "platform": to_dict(self.platform),
            "max_period": encode_bound(self.max_period),
            "max_latency": encode_bound(self.max_latency),
            "objective": self.objective,
            "min_reliability": self.min_reliability,
        }

    def content_hash(self) -> str:
        """Stable SHA-256 of the problem content (cached per object).

        Equal problems hash equal across process restarts — unlike
        ``hash()``, which Python salts per process — which is what lets
        the result cache key units by problem identity.
        """
        cached = self.__dict__.get("_content_hash")
        if cached is None:
            from repro.io import content_hash, to_dict

            # Hash the full io encoding (format stamp included), so
            # content_hash(problem) and problem.content_hash() agree.
            cached = content_hash(to_dict(self))
            object.__setattr__(self, "_content_hash", cached)
        return cached

    def __hash__(self) -> int:
        return hash(self.content_hash())

    def __repr__(self) -> str:
        bounds = (
            f"P<={self.max_period:g}, L<={self.max_latency:g}"
            if self.bounded
            else "unbounded"
        )
        floor = f", r>={self.min_reliability:g}" if self.min_reliability > 0.0 else ""
        return (
            f"Problem({self.chain.n} tasks on {self.platform.p} procs, "
            f"{bounds}, objective={self.objective!r}{floor})"
        )


def problem_hash(problem: Problem) -> str:
    """Module-level alias of :meth:`Problem.content_hash` (mirrors
    :func:`repro.scenarios.scenario_hash`)."""
    return problem.content_hash()
