"""The unified solver surface: ``Problem`` in, ``SolveResult`` out.

This package redesigns how the reproduction talks to its solvers.
Instead of the historical positional tuple ``(chain, platform,
max_period, max_latency)`` — re-spelled at every layer — three
first-class objects carry the whole story:

* :class:`Problem` — the frozen, content-hashable Section 3 instance
  (chain + platform + period/latency bounds + objective), with
  :func:`solve` as the one-call facade over the method registry;
* :class:`Planner` / :class:`Plan` — scenario-aware method selection:
  which registered methods apply to a workload, in which order, and a
  recorded reason for every method skipped (``repro plan show``);
* :class:`BoundsGrid` / :func:`derive_bounds_grid` — quantile-derived
  (P, L) sweep grids from unbounded probe solves, so ``repro scenario
  run --grid auto`` produces paper-style feasibility curves for *any*
  scenario, not just the paper's two hand-tuned workloads.

Quickstart
----------
>>> from repro.core import Platform, TaskChain
>>> from repro.solve import Problem, solve
>>> chain = TaskChain(work=[10, 20, 15], output=[2, 3, 0])
>>> plat = Platform.homogeneous_platform(
...     4, failure_rate=1e-8, link_failure_rate=1e-5, max_replication=2)
>>> problem = Problem(chain, plat, max_period=30.0, max_latency=60.0)
>>> solve(problem).feasible                   # method="auto"
True
>>> solve(problem, method="heur-l").feasible  # any registry name
True
"""

from repro.solve.problem import OBJECTIVES, Problem, encode_bound, problem_hash
from repro.solve.facade import auto_method_name, solve
from repro.solve.planner import MethodSkip, Plan, Planner, plan_methods
from repro.solve.grid import BoundsGrid, derive_bounds_grid

__all__ = [
    "OBJECTIVES",
    "Problem",
    "encode_bound",
    "problem_hash",
    "auto_method_name",
    "solve",
    "MethodSkip",
    "Plan",
    "Planner",
    "plan_methods",
    "BoundsGrid",
    "derive_bounds_grid",
]
