"""Scenario-aware method planning: which solvers, in which order, and why.

``repro scenario run`` used to hard-code its method list; scaling the
declarative workload layer past the paper's dimensions (the ROADMAP's
``scaling-stress``-sized ensembles) needs the selection itself to be
derived from data.  The :class:`Planner` crosses a workload's
dimensions (a :class:`~repro.scenarios.spec.ScenarioSpec`, including
sweep axes) with the method registry's capability metadata
(``homogeneous_only``, ``exact``, ``cost_hint``, ``max_tasks``,
``tags``) and produces a :class:`Plan`: the applicable methods in
expensive-first order (matching the harness's pool scheduling) plus a
:class:`MethodSkip` record — *with a reason* — for every method it
dropped.  Plans are what ``repro plan show`` prints and what the
scenario-run manifest embeds, so a run is always explainable after the
fact.

Selection rules
---------------
Hard capability gates (always applied, even to an explicit method
list):

* methods that do not declare the plan's *objective* (see
  :data:`repro.solve.OBJECTIVES` and ``Method.objectives``) are
  dropped — a reliability heuristic cannot answer a period-minimizing
  plan;
* ``homogeneous_only`` methods are dropped for scenarios that generate
  heterogeneous platforms;
* methods with an intrinsic ``max_tasks`` ceiling (brute force) are
  dropped when the workload's largest chain exceeds it;
* ``exact`` methods are dropped past the planner's size thresholds
  (``max_exact_tasks`` × ``max_exact_procs``) — exact solvers on
  ``scaling-stress``-sized chains would dominate the run.

Auto-discovery rules (applied only when no explicit method list is
given):

* stochastic (``seeded``) methods are excluded unless
  ``include_stochastic=True``;
* methods tagged ``"manual"`` are never auto-selected;
* methods tagged ``"paired"`` (the paper's het-experiment heuristics)
  are auto-selected only for paired Section 8.2-style scenarios;
* among the surviving exact methods only the cheapest (by
  ``cost_hint``) is kept — they prove the same optimum, so running
  several would only re-derive the same curve slower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.obs import telemetry as obs

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.methods import Method

__all__ = ["MethodSkip", "Plan", "Planner", "plan_methods"]


@dataclass(frozen=True)
class MethodSkip:
    """One dropped method and the reason it was dropped."""

    method: str
    reason: str


@dataclass(frozen=True)
class Plan:
    """A planner verdict: what to run (ordered) and what was skipped (why).

    Attributes
    ----------
    scenario:
        The workload's name.
    spec_hash:
        The spec's content hash (:func:`repro.scenarios.scenario_hash`)
        — ties the plan to the exact workload it was made for.
    objective:
        The :data:`repro.solve.OBJECTIVES` entry the plan was built
        for; every selected method declares it.
    selected:
        Method names in execution order (expensive-first by
        ``cost_hint``, ties broken by name — the same order the
        parallel harness schedules units in).
    skipped:
        A :class:`MethodSkip` per dropped method, in candidate order.
    """

    scenario: str
    spec_hash: str
    selected: tuple[str, ...]
    skipped: tuple[MethodSkip, ...]
    objective: str = "reliability"

    def methods(self) -> "list[Method]":
        """Resolve the selected names against the live registry."""
        from repro.experiments.methods import get_method

        return [get_method(name) for name in self.selected]

    def describe(self) -> dict[str, Any]:
        """Flat JSON-ready record for manifests and ``repro plan show``."""
        from repro.experiments.methods import METHODS

        return {
            "scenario": self.scenario,
            "spec_hash": self.spec_hash,
            "objective": self.objective,
            "selected": list(self.selected),
            "batched": [
                name
                for name in self.selected
                if METHODS.get(name) is not None
                and METHODS[name].solve_batch is not None
            ],
            "skipped": [
                {"method": s.method, "reason": s.reason} for s in self.skipped
            ],
        }

    def summary(self) -> str:
        """Human-readable multi-line rendering (CLI output)."""
        from repro.experiments.methods import METHODS

        lines = [
            f"plan for scenario {self.scenario!r} "
            f"(objective {self.objective!r}, spec {self.spec_hash[:12]}…):"
        ]
        for rank, name in enumerate(self.selected, 1):
            method = METHODS.get(name)
            meta = (
                f"cost_hint={method.cost_hint:g}"
                f"{', exact' if method.exact else ''}"
                f"{', homogeneous-only' if method.homogeneous_only else ''}"
                f"{', batched' if method.solve_batch is not None else ''}"
                if method is not None
                else "?"
            )
            lines.append(f"  {rank}. {name:14s} {meta}")
        for skip in self.skipped:
            lines.append(f"  -  {skip.method:14s} skipped: {skip.reason}")
        return "\n".join(lines)


def _axis_max(value: "int | tuple[int, ...]") -> int:
    return max(value) if isinstance(value, tuple) else value


@dataclass(frozen=True)
class Planner:
    """Selects and orders registry methods for a workload.

    Parameters
    ----------
    max_exact_tasks, max_exact_procs:
        Size thresholds past which ``exact`` methods are dropped.  The
        defaults admit the paper's dimensions (15 tasks × 10
        processors) with headroom and reject ``scaling-stress``-sized
        workloads.
    include_stochastic:
        Auto-select stochastic (``seeded``) methods too.  Off by
        default: their curves are seed-dependent and their cost_hints
        dominate a default run.
    """

    max_exact_tasks: int = 18
    max_exact_procs: int = 12
    include_stochastic: bool = False

    def plan(
        self,
        scenario,
        methods: "Sequence[str | Method] | None" = None,
        objective: str = "reliability",
    ) -> Plan:
        """Build a :class:`Plan` for *scenario*.

        Parameters
        ----------
        scenario:
            A registered scenario name, a
            :class:`~repro.scenarios.spec.ScenarioSpec`, or a
            :class:`~repro.scenarios.registry.Scenario`.
        methods:
            Explicit candidates (names or :class:`Method` objects).
            When given, only the hard capability gates apply — the
            caller asked for these methods, so redundancy and
            stochasticity are their call.  ``None`` (default)
            auto-discovers candidates from the whole registry.
        objective:
            The :data:`repro.solve.OBJECTIVES` entry the plan's solves
            will carry (default: the paper's ``"reliability"``).
            Methods that do not declare it are skipped with an
            "objective unsupported" reason — a hard gate, applied even
            to explicit method lists.

        Raises
        ------
        UnknownMethodError
            For unknown explicit method names (same message as
            :func:`~repro.experiments.methods.get_method`).
        UnknownScenarioError
            For unknown scenario names.
        ValueError
            For unknown objectives.
        """
        from repro.experiments.methods import METHODS, Method, get_method
        from repro.scenarios import resolve_scenario, scenario_hash, spec_is_homogeneous
        from repro.solve.problem import OBJECTIVES

        if objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {objective!r}; supported: {OBJECTIVES}"
            )

        spec, entry = resolve_scenario(scenario)
        homogeneous = (
            entry.homogeneous if entry is not None else spec_is_homogeneous(spec)
        )
        explicit = methods is not None
        if explicit:
            candidates = [
                m if isinstance(m, Method) else get_method(m) for m in methods
            ]
        else:
            candidates = [METHODS[name] for name in sorted(METHODS)]

        n_tasks = _axis_max(spec.n_tasks)
        n_procs = _axis_max(spec.p)

        selected: list[Method] = []
        skipped: list[MethodSkip] = []
        with obs.span("planner.plan", label=spec.name):
            for method in candidates:
                reason = self._skip_reason(
                    method, homogeneous=homogeneous, paired=spec.paired,
                    n_tasks=n_tasks, n_procs=n_procs, explicit=explicit,
                    objective=objective,
                )
                if reason is None:
                    selected.append(method)
                else:
                    skipped.append(MethodSkip(method.name, reason))
                    obs.counter("planner.skip", label=method.name)

        # Expensive-first: the same order the harness submits units in,
        # so a plan's listing is also its schedule.
        selected.sort(key=lambda m: (-m.cost_hint, m.name))

        if not explicit:
            # Exact methods prove the same optimum; keep the cheapest.
            exacts = [m for m in selected if m.exact]
            if len(exacts) > 1:
                keep = min(exacts, key=lambda m: (m.cost_hint, m.name))
                for m in exacts:
                    if m is not keep:
                        selected.remove(m)
                        skipped.append(MethodSkip(
                            m.name,
                            f"redundant exact solver: {keep.name!r} "
                            f"(cost_hint {keep.cost_hint:g} vs {m.cost_hint:g}) "
                            f"proves the same optimum",
                        ))
                        obs.counter("planner.skip", label=m.name)

        obs.counter("planner.selected", len(selected))
        return Plan(
            scenario=spec.name,
            spec_hash=scenario_hash(spec),
            selected=tuple(m.name for m in selected),
            skipped=tuple(skipped),
            objective=objective,
        )

    def _skip_reason(
        self,
        method: Method,
        *,
        homogeneous: bool,
        paired: bool,
        n_tasks: int,
        n_procs: int,
        explicit: bool,
        objective: str = "reliability",
    ) -> "str | None":
        """The reason to drop *method*, or None to keep it."""
        if objective not in method.objectives:
            return (
                f"objective {objective!r} unsupported (method optimizes: "
                f"{', '.join(method.objectives)})"
            )
        if method.homogeneous_only and not homogeneous:
            return (
                "requires homogeneous platforms (Section 5 algorithm); "
                "scenario generates heterogeneous ones"
            )
        if method.max_tasks is not None and n_tasks > method.max_tasks:
            return (
                f"chain length {n_tasks} exceeds the method's declared "
                f"limit of {method.max_tasks} tasks"
            )
        if method.exact and (
            n_tasks > self.max_exact_tasks or n_procs > self.max_exact_procs
        ):
            return (
                f"scenario size {n_tasks} tasks x {n_procs} procs exceeds the "
                f"exact-method threshold ({self.max_exact_tasks} x "
                f"{self.max_exact_procs}); use heuristics at this scale"
            )
        if explicit:
            return None
        if "manual" in method.tags:
            return "manual-only method (request it explicitly with --methods)"
        if "paired" in method.tags and not paired:
            return (
                "paper-variant heuristic reserved for paired "
                "(Section 8.2-style) scenarios"
            )
        if method.seeded and not self.include_stochastic:
            return "stochastic (seeded) method; pass include_stochastic=True"
        return None


def plan_methods(
    scenario,
    methods: "Iterable[str | Method] | None" = None,
    objective: str = "reliability",
    **config,
) -> Plan:
    """One-shot convenience: ``Planner(**config).plan(scenario, methods)``."""
    return Planner(**config).plan(
        scenario,
        methods=None if methods is None else list(methods),
        objective=objective,
    )
