"""``solve(problem, method=...)`` — the one front door to every solver.

The facade resolves the method (by registry name, with ``"auto"``
picking a sensible default per platform), validates the problem against
the method's capability metadata, and runs the solve.  Errors are the
registry's own: an unknown name raises
:class:`~repro.experiments.methods.UnknownMethodError` with the exact
same message as :func:`~repro.experiments.methods.get_method`, and a
``homogeneous_only`` method on a heterogeneous platform raises the
registry's descriptive ``ValueError`` — callers never see a different
error surface than the registry they already know.

>>> from repro.core import Platform, TaskChain
>>> from repro.solve import Problem, solve
>>> chain = TaskChain(work=[10, 20, 15], output=[2, 3, 0])
>>> plat = Platform.homogeneous_platform(
...     4, failure_rate=1e-8, link_failure_rate=1e-5, max_replication=2)
>>> solve(Problem(chain, plat, max_period=30.0, max_latency=60.0)).feasible
True
"""

from __future__ import annotations

from repro.algorithms.result import SolveResult
from repro.solve.problem import Problem

__all__ = ["solve", "auto_method_name"]


def auto_method_name(problem: Problem) -> str:
    """The registry name ``method="auto"`` resolves to for *problem*.

    For the paper's ``"reliability"`` objective: the fast exact solver
    on homogeneous platforms (Section 5 scope), the combined Section 7
    heuristic otherwise.  For the converse objectives the registry is
    consulted: among the non-``manual`` methods declaring the
    objective and admitting the platform, the cheapest by ``cost_hint``
    wins (ties by name) — so a newly registered objective-native method
    is auto-discoverable without touching this function.

    Raises
    ------
    UnknownMethodError
        When no registered method supports the problem's objective on
        its platform kind (e.g. period minimization on a heterogeneous
        platform, which Section 6 proves NP-complete even to bound).
    """
    if problem.objective == "reliability":
        return "pareto-dp" if problem.homogeneous else "heuristic"
    from repro.experiments.methods import METHODS, UnknownMethodError

    candidates = [
        m
        for m in METHODS.values()
        if problem.objective in m.objectives
        and (problem.homogeneous or not m.homogeneous_only)
        and "manual" not in m.tags
    ]
    if not candidates:
        kind = "homogeneous" if problem.homogeneous else "heterogeneous"
        raise UnknownMethodError(
            f"no registered method supports objective {problem.objective!r} "
            f"on {kind} platforms; register one with "
            f"register_method(..., objectives=({problem.objective!r},)) or "
            f"request 'brute-force' explicitly for tiny instances"
        )
    return min(candidates, key=lambda m: (m.cost_hint, m.name)).name


def solve(problem: Problem, method="auto", *, seed: "int | None" = None) -> SolveResult:
    """Solve one :class:`Problem` with a registered (or ad-hoc) method.

    Parameters
    ----------
    problem:
        The instance to solve.
    method:
        A registry name (see ``repro.experiments.METHODS``), a
        :class:`~repro.experiments.methods.Method` object, or
        ``"auto"`` (default) — :func:`auto_method_name`'s choice.
    seed:
        Deterministic seed, forwarded to stochastic (``seeded``)
        methods only.

    Raises
    ------
    UnknownMethodError
        For unknown method names (identical message to the registry's
        :func:`~repro.experiments.methods.get_method`).
    ValueError
        When the problem is out of the method's declared scope (e.g. a
        Section 5 exact method on a heterogeneous platform, or an
        objective the method does not declare in ``Method.objectives``).
    """
    from repro.experiments.methods import Method, get_method

    if not isinstance(problem, Problem):
        raise TypeError(
            f"solve() takes a repro.solve.Problem, got {type(problem).__name__}; "
            f"wrap the instance: solve(Problem(chain, platform, P, L), ...)"
        )
    if isinstance(method, Method):
        resolved = method
    else:
        name = auto_method_name(problem) if method == "auto" else method
        resolved = get_method(name)
    resolved.check_problem(problem)
    return resolved.solve_problem(problem, seed=seed)
