"""Auto-derived (P, L) bounds grids: paper-style curves for any workload.

The paper's figures sweep a bound (period or latency) across the
feasibility transition of its two hand-tuned workloads; the sweep
ranges (Figures 6-15) were picked by hand to straddle that transition.
A declarative scenario has no hand to pick them — so
:func:`derive_bounds_grid` derives them from the ensemble itself:

1. solve every instance *unbounded* with a fast heuristic, and read
   off each solution's worst-case period and latency — bounds under
   which every instance is certainly (heuristically) feasible;
2. compute each instance's *analytic lower bounds* — the heaviest
   single task on the fastest processor (no mapping can have a smaller
   period) and the whole chain on the fastest processor (no mapping a
   smaller latency) — bounds at or below the feasibility frontier;
3. blend the two quantile functions: grid point ``q`` is
   ``(1-q) * quantile(lower, q) + q * quantile(upper, q)``, sweeping
   from the certainly-hard end to the certainly-easy end.

Both quantile functions are nondecreasing and the upper one dominates
the lower pointwise, so the blend is monotone — a valid sweep axis.
By construction the sweep crosses the feasibility transition: near the
0-quantile few (often zero) instances are solvable, at the 1-quantile
all of them are (every instance's own unbounded solution meets the
bound), so the solution-count curves rise across the grid exactly like
the paper's Figures 6/8/12/14 — for *any* scenario, not just the two
hand-tuned workloads the paper shipped with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.core.ensemble import Ensemble, ensembles_from_instances
from repro.obs import telemetry as obs
from repro.solve.facade import solve

__all__ = ["BoundsGrid", "derive_bounds_grid"]

#: Default number of grid points per axis.
DEFAULT_POINTS = 8

#: Default headroom multiplier for the fixed (non-swept) bound: the
#: period sweep holds latency at ``margin * max`` unbounded latency so
#: the latency criterion never interferes with the period curve (and
#: vice versa).
DEFAULT_MARGIN = 1.25


@dataclass(frozen=True)
class BoundsGrid:
    """A derived (P, L) grid: one sweep per bounded criterion.

    Attributes
    ----------
    periods, latencies:
        Quantile-derived sweep values for the period / latency bound.
    quantiles:
        The quantile levels the values were read at (shared by both
        axes).
    max_period, max_latency:
        Generous caps (ensemble max × margin) used as the *fixed* bound
        while the other axis sweeps.
    n_instances:
        Ensemble size the grid was derived from.
    method:
        Name of the method whose unbounded solves produced the data.
    """

    periods: tuple[float, ...]
    latencies: tuple[float, ...]
    quantiles: tuple[float, ...]
    max_period: float
    max_latency: float
    n_instances: int
    method: str

    def sweep(self, axis: str = "period") -> list[tuple[float, float]]:
        """The ``(max_period, max_latency)`` points of one sweep.

        ``axis="period"`` sweeps P with L held at :attr:`max_latency`
        (Figure 6 shape); ``axis="latency"`` sweeps L with P held at
        :attr:`max_period` (Figure 8 shape).
        """
        if axis == "period":
            return [(P, self.max_latency) for P in self.periods]
        if axis == "latency":
            return [(self.max_period, L) for L in self.latencies]
        raise ValueError(f"unknown sweep axis {axis!r} (use 'period' or 'latency')")

    def xs(self, axis: str = "period") -> list[float]:
        """Plot coordinates of :meth:`sweep` (the swept bound values)."""
        if axis == "period":
            return list(self.periods)
        if axis == "latency":
            return list(self.latencies)
        raise ValueError(f"unknown sweep axis {axis!r} (use 'period' or 'latency')")

    def describe(self) -> dict[str, Any]:
        """JSON-ready record for run manifests."""
        return {
            "periods": list(self.periods),
            "latencies": list(self.latencies),
            "quantiles": list(self.quantiles),
            "max_period": self.max_period,
            "max_latency": self.max_latency,
            "n_instances": self.n_instances,
            "method": self.method,
        }


def derive_bounds_grid(
    instances,
    quantiles: "Sequence[float] | None" = None,
    *,
    n_points: int = DEFAULT_POINTS,
    margin: float = DEFAULT_MARGIN,
    method: str = "heuristic",
    seed: int = 0,
    n_instances: "int | None" = None,
    cache=None,
) -> BoundsGrid:
    """Derive a (P, L) bounds grid from unbounded solves over an ensemble.

    Parameters
    ----------
    instances:
        A columnar :class:`~repro.core.ensemble.Ensemble` (or list of
        them), ``(chain, platform)`` pairs — or a declarative workload
        (a registered scenario name, a
        :class:`~repro.scenarios.spec.ScenarioSpec`, or a
        :class:`~repro.scenarios.registry.Scenario`), generated here
        with *seed* / *n_instances*.  Paired (Section 8.2-shaped)
        scenarios contribute their heterogeneous side, matching
        :func:`~repro.experiments.harness.run_sweep`.
    quantiles:
        Explicit quantile levels in [0, 1]; default ``n_points`` levels
        evenly spaced from 0 to 1.
    margin:
        Headroom multiplier for the fixed bound of each sweep.
    method:
        Registered method for the unbounded probe solves (default: the
        combined Section 7 heuristic — fast and platform-agnostic).
    seed, n_instances:
        Scenario generation knobs; ignored for explicit instance lists.
    cache:
        A :class:`~repro.experiments.cache.ResultCache`, a cache
        directory path, or ``None`` to read ``$REPRO_CACHE_DIR`` (unset
        = no caching).  The unbounded probe solves are ordinary cache
        citizens (keyed by :meth:`~repro.experiments.cache.ResultCache
        .probe_key`), so re-deriving a grid over the same ensemble —
        every warm ``--grid auto`` run — costs zero solves.
    """
    if quantiles is None:
        if n_points < 2:
            raise ValueError(f"need at least 2 grid points, got {n_points}")
        quantiles = np.linspace(0.0, 1.0, n_points)
    quantiles = tuple(float(q) for q in quantiles)
    if not quantiles:
        raise ValueError("need at least one quantile")
    if any(not 0.0 <= q <= 1.0 for q in quantiles):
        raise ValueError(f"quantiles must lie in [0, 1], got {quantiles}")
    if not margin >= 1.0:
        raise ValueError(f"margin must be >= 1 (headroom), got {margin}")

    if isinstance(instances, (list, tuple)) or isinstance(instances, Ensemble):
        ensembles = ensembles_from_instances(instances)
    else:
        from repro.scenarios import generate_ensembles, resolve_scenario

        spec, _ = resolve_scenario(instances)
        if n_instances is not None:
            spec = spec.with_(n_instances=n_instances)
        # Paired ensembles contribute their heterogeneous side — that
        # is what the views expose, matching run_sweep.
        ensembles = generate_ensembles(spec, seed=seed)
    n_total = sum(len(e) for e in ensembles)
    if not n_total:
        raise ValueError("need at least one instance to derive a grid from")

    # Probe solves go through the shared result cache when one is
    # configured (ROADMAP "grid caching"): the per-instance scalars are
    # stored under probe keys derived from ensemble row digests, so a
    # warm --grid auto run re-derives the grid without a single solve —
    # or a single materialized object.
    from repro.experiments.cache import resolve_cache
    from repro.experiments.methods import METHODS

    store = resolve_cache(cache)
    registered = METHODS.get(method)
    fingerprint = registered.fingerprint() if registered is not None else None

    def probe(view) -> "tuple[bool, float, float]":
        key = None
        if store is not None and registered is not None:
            key = store.probe_key_for(method, view.row_hash, fingerprint)
            record = store.get_record(key, method_name=method)
            if record is not None:
                try:
                    feasible, period, latency = (
                        bool(record["feasible"]),
                        float(record["period"]),
                        float(record["latency"]),
                    )
                except (KeyError, TypeError, ValueError):
                    # Malformed probe record (same recovery contract as
                    # ResultCache.get): recompute and overwrite below.
                    pass
                else:
                    obs.counter("grid.probe.cached", label=method)
                    return feasible, period, latency
        obs.counter("grid.probe.solved", label=method)
        result = solve(view.problem(), method=method)
        if result.feasible:
            ev = result.evaluation
            feasible, period, latency = (
                True,
                float(ev.worst_case_period),
                float(ev.worst_case_latency),
            )
        else:  # pragma: no cover - unbounded heuristics map
            feasible, period, latency = False, 0.0, 0.0
        if key is not None:
            store.put_record(
                key,
                {
                    "kind": "grid-probe",
                    "method": method,
                    "feasible": feasible,
                    "period": period,
                    "latency": latency,
                },
            )
        return feasible, period, latency

    hi_periods, hi_latencies = [], []
    lo_periods, lo_latencies = [], []
    with obs.span("grid.derive", label=method):
        for ensemble in ensembles:
            # Analytic lower bounds, vectorized over the ensemble
            # columns: some interval holds the heaviest task (period),
            # and every task executes somewhere along the chain
            # (latency) — no mapping beats the fastest processor on
            # either.  No objects.
            s_max = ensemble.speeds.max(axis=1)
            ens_lo_periods = ensemble.work.max(axis=1) / s_max
            ens_lo_latencies = ensemble.work.sum(axis=1) / s_max
            for view, lo_p, lo_l in zip(ensemble, ens_lo_periods, ens_lo_latencies):
                feasible, period, latency = probe(view)
                if not feasible:  # pragma: no cover - unbounded heuristics map
                    continue
                hi_periods.append(period)
                hi_latencies.append(latency)
                lo_periods.append(float(lo_p))
                lo_latencies.append(float(lo_l))
    if not hi_periods:  # pragma: no cover - defensive
        raise ValueError(
            f"method {method!r} solved no instance even unbounded; "
            f"cannot derive a grid"
        )

    def blend(lower: list[float], upper: list[float]) -> tuple[float, ...]:
        lo_q = np.quantile(np.asarray(lower), quantiles)
        hi_q = np.quantile(np.asarray(upper), quantiles)
        qs = np.asarray(quantiles)
        return tuple(float(v) for v in (1.0 - qs) * lo_q + qs * hi_q)

    return BoundsGrid(
        periods=blend(lo_periods, hi_periods),
        latencies=blend(lo_latencies, hi_latencies),
        quantiles=quantiles,
        max_period=float(max(hi_periods)) * margin,
        max_latency=float(max(hi_latencies)) * margin,
        n_instances=n_total,
        method=method,
    )
