"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``solve``
    Find the best mapping for an instance (JSON files for the chain and
    platform), with optional period/latency bounds, a choice of method,
    and a choice of objective: maximize reliability (the default), or
    minimize period/latency/energy under a ``--min-reliability`` floor
    (the tri-criteria facade; see :data:`repro.solve.OBJECTIVES`).
``evaluate``
    Print the Section 4 objectives of a mapping (JSON file).
``simulate``
    Run the fault-injecting pipeline simulator on a mapping and compare
    against the analytical values.
``figures``
    Regenerate paper figures (thin wrapper over
    :mod:`repro.experiments.figures`).
``experiment``
    Run a registered sweep experiment through the parallel,
    cache-backed harness: ``--jobs N`` fans work units out over worker
    processes, ``--cache-dir DIR`` reuses previously solved units, and
    a JSON **manifest** (``--manifest``, default
    ``repro-manifest.json``) records the seed, grid, library versions,
    elapsed time, and cache hit/miss counts of the run.  Environment
    fallbacks: ``$REPRO_JOBS``, ``$REPRO_CACHE_DIR``.
``scenario``
    The declarative workload layer (:mod:`repro.scenarios`):
    ``scenario list`` enumerates registered scenarios with their
    capability metadata, ``scenario show NAME`` prints a spec as
    re-loadable JSON, and ``scenario run NAME_OR_FILE`` generates the
    ensemble and sweeps it through the harness (same ``--jobs`` /
    ``--cache-dir`` knobs as ``experiment``; spec files may be JSON or
    TOML).  Methods default to the scenario-aware planner's selection
    (:mod:`repro.solve`); ``--grid auto`` replaces the single
    hand-picked (P, L) point with a quantile-derived multi-point grid
    (:func:`repro.solve.derive_bounds_grid`) and prints paper-style
    per-method curves.  Every run writes a self-describing JSON
    manifest (``--manifest``) recording the scenario spec hash and
    ``describe()`` record, the plan (selected methods plus skip
    reasons), the derived grid, and the per-method series.
``plan``
    The scenario-aware solver planner: ``plan show NAME_OR_FILE``
    prints which registered methods the planner selects for a
    workload, in execution order, and why it skipped the rest.
``runs``
    The run ledger (:mod:`repro.obs`): every ``scenario run`` /
    ``experiment`` invocation writes ``runs/<run_id>/{manifest.json,
    per_unit.jsonl, report.md}``; ``runs list`` tabulates them,
    ``runs show RUN`` prints one run's report (or manifest with
    ``--json``), and ``runs diff A B`` reports per-method objective
    deltas, timing deltas, and cache/batch behavior changes between
    two runs.  Run ids accept unique prefixes.  The ledger directory
    defaults to ``$REPRO_RUNS_DIR``, then ``./runs``.
``cache``
    The result cache's storage layer
    (:mod:`repro.experiments.cache`): ``cache stats`` prints a store's
    persistent on-disk totals (backend kind, entry count, bytes),
    ``cache migrate --to sqlite|files`` switches the backend in place
    with a row-digest verification pass, and ``cache vacuum`` reclaims
    dead space.  The directory defaults to ``$REPRO_CACHE_DIR``; fresh
    stores honor ``$REPRO_CACHE_BACKEND`` (``files`` default,
    ``sqlite`` for concurrent fleets).
``lint``
    The repo's own invariant checkers (:mod:`repro.analysis`): an
    AST-level pass enforcing the determinism, cache-key-completeness,
    atomic-write, registry, and telemetry contracts over the source
    tree.  ``repro lint`` exits non-zero on any unwaived finding;
    ``--format json`` emits the deterministic machine-readable report
    the ``lint-invariants`` CI job archives, and ``--list-rules``
    prints the rule catalog.
``demo``
    Solve a seeded random instance end to end — no files needed.

All inputs/outputs use the :mod:`repro.io` JSON format; single-instance
solves go through :func:`repro.solve.solve` on a
:class:`repro.solve.Problem`.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import sys

from repro import __version__
from repro.core import Platform, TaskChain, evaluate_mapping, random_chain, random_platform
from repro.core.mapping import Mapping
from repro.io import dumps, loads
from repro.obs.ledger import write_atomic
from repro.solve import Problem, solve

__all__ = ["main", "build_parser"]

#: Method choices for ``repro solve`` — all registry names now, with
#: "auto" resolved by the facade (per platform *and* objective: exact
#: on homogeneous platforms, heuristics otherwise; objective-native
#: methods for the converse criteria).
SOLVE_METHODS = (
    "auto", "ilp", "pareto-dp", "heuristic", "brute-force",
    "dp-period", "dp-latency", "energy-greedy",
)

#: Objective choices surfaced by the CLI (mirrors repro.solve.OBJECTIVES).
OBJECTIVE_CHOICES = ("reliability", "period", "latency", "energy")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reliability/performance optimization of pipelined real-time systems",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="find the best mapping for an instance")
    solve.add_argument("chain", type=pathlib.Path, help="TaskChain JSON file")
    solve.add_argument("platform", type=pathlib.Path, help="Platform JSON file")
    solve.add_argument("--max-period", type=float, default=math.inf)
    solve.add_argument("--max-latency", type=float, default=math.inf)
    solve.add_argument(
        "--method",
        choices=sorted(SOLVE_METHODS),
        default="auto",
        help="'auto' = exact on homogeneous platforms, heuristics otherwise "
        "(objective-native methods for --objective period/latency/energy)",
    )
    solve.add_argument(
        "--objective",
        choices=OBJECTIVE_CHOICES,
        default="reliability",
        help="what to optimize: maximize reliability (default) or minimize "
        "period/latency/energy under --min-reliability",
    )
    solve.add_argument(
        "--min-reliability",
        type=float,
        default=0.0,
        metavar="R",
        help="reliability floor in [0, 1) for the converse objectives "
        "(default 0 = no floor)",
    )
    solve.add_argument("--output", type=pathlib.Path, help="write the mapping JSON here")

    evaluate = sub.add_parser("evaluate", help="evaluate a mapping's objectives")
    evaluate.add_argument("mapping", type=pathlib.Path, help="Mapping JSON file")

    simulate = sub.add_parser("simulate", help="fault-injection simulation of a mapping")
    simulate.add_argument("mapping", type=pathlib.Path, help="Mapping JSON file")
    simulate.add_argument("--datasets", type=int, default=2000)
    simulate.add_argument("--seed", type=int, default=0)

    figures = sub.add_parser("figures", help="regenerate paper figures")
    figures.add_argument("names", nargs="+", help="fig6..fig15 or 'all'")
    figures.add_argument("--instances", type=int, default=20)
    figures.add_argument("--grid", choices=("reduced", "full"), default="reduced")
    figures.add_argument("--exact", choices=("ilp", "pareto-dp"), default="ilp")
    figures.add_argument("--seed", type=int, default=0)
    figures.add_argument("--jobs", type=int, default=None,
                         help="worker processes (default $REPRO_JOBS or 1)")
    figures.add_argument("--cache-dir", type=pathlib.Path, default=None,
                         help="result cache directory (default $REPRO_CACHE_DIR)")

    experiment = sub.add_parser(
        "experiment",
        help="run a registered sweep through the parallel, cache-backed harness",
    )
    experiment.add_argument(
        "experiments",
        nargs="*",
        default=["hom-period"],
        help="experiment ids (e.g. hom-period het-latency) or 'all'; "
        "default hom-period",
    )
    experiment.add_argument("--instances", type=int, default=None,
                            help="instances per experiment (default $REPRO_INSTANCES or 20)")
    experiment.add_argument("--grid", choices=("reduced", "full"), default=None,
                            help="sweep resolution (default $REPRO_GRID or reduced)")
    experiment.add_argument("--exact", choices=("ilp", "pareto-dp"), default="pareto-dp",
                            help="exact method for hom experiments (default pareto-dp)")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument("--jobs", type=int, default=None,
                            help="worker processes (default $REPRO_JOBS or 1)")
    experiment.add_argument("--cache-dir", type=pathlib.Path, default=None,
                            help="result cache directory (default $REPRO_CACHE_DIR)")
    experiment.add_argument("--manifest", type=pathlib.Path,
                            default=pathlib.Path("repro-manifest.json"),
                            help="where to write the run manifest JSON")
    experiment.add_argument("--quiet", action="store_true",
                            help="suppress the figure tables, print only the manifest path")
    experiment.add_argument("--runs-dir", type=pathlib.Path, default=None,
                            help="run-ledger directory (default $REPRO_RUNS_DIR or ./runs)")
    experiment.add_argument("--timestamp", default=None, metavar="TAG",
                            help="run_id timestamp tag (default: current UTC time; "
                            "pin it for reproducible run ids)")

    scenario = sub.add_parser(
        "scenario", help="declarative workload scenarios (list/show/run)"
    )
    ssub = scenario.add_subparsers(dest="scenario_cmd", required=True)

    ssub.add_parser("list", help="list registered scenarios and their metadata")

    show = ssub.add_parser("show", help="print one scenario's spec as JSON")
    show.add_argument("name", help="registered scenario name")

    run = ssub.add_parser(
        "run",
        help="generate a scenario's ensemble and sweep it through the harness",
    )
    run.add_argument(
        "scenario",
        help="registered scenario name, or a path to a spec file (.json/.toml)",
    )
    run.add_argument("--n-instances", type=int, default=None,
                     help="override the spec's instance count")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--methods", nargs="+", default=None, metavar="METHOD",
                     help="registered methods to sweep (default: the planner's "
                     "scenario-aware selection; see 'repro plan show')")
    run.add_argument("--grid", choices=("point", "auto"), default="point",
                     help="'point' sweeps the single --max-period/--max-latency "
                     "point; 'auto' derives a quantile (P, L) grid from "
                     "unbounded heuristic solves over the ensemble")
    run.add_argument("--grid-points", type=int, default=8,
                     help="grid points per axis for --grid auto (default 8)")
    run.add_argument("--grid-axis", choices=("period", "latency"), default="period",
                     help="which bound --grid auto sweeps (default period)")
    run.add_argument("--max-period", type=float, default=math.inf)
    run.add_argument("--max-latency", type=float, default=math.inf)
    run.add_argument("--objective", choices=OBJECTIVE_CHOICES, default="reliability",
                     help="objective carried by every solve (default reliability); "
                     "the planner only selects methods that support it")
    run.add_argument("--min-reliability", type=float, default=0.0, metavar="R",
                     help="reliability floor in [0, 1) for the converse objectives")
    run.add_argument("--jobs", type=int, default=None,
                     help="worker processes (default $REPRO_JOBS or 1)")
    run.add_argument("--cache-dir", type=pathlib.Path, default=None,
                     help="result cache directory (default $REPRO_CACHE_DIR)")
    run.add_argument("--manifest", type=pathlib.Path,
                     default=pathlib.Path("repro-scenario-manifest.json"),
                     help="where to write the self-describing run manifest JSON")
    run.add_argument("--runs-dir", type=pathlib.Path, default=None,
                     help="run-ledger directory (default $REPRO_RUNS_DIR or ./runs)")
    run.add_argument("--timestamp", default=None, metavar="TAG",
                     help="run_id timestamp tag (default: current UTC time; "
                     "pin it for reproducible run ids)")

    plan = sub.add_parser(
        "plan", help="scenario-aware method planning (show)"
    )
    psub = plan.add_subparsers(dest="plan_cmd", required=True)
    pshow = psub.add_parser(
        "show",
        help="show which methods the planner selects for a scenario, and why "
        "the rest were skipped",
    )
    pshow.add_argument(
        "scenario",
        help="registered scenario name, or a path to a spec file (.json/.toml)",
    )
    pshow.add_argument("--methods", nargs="+", default=None, metavar="METHOD",
                       help="explicit candidates (default: the whole registry)")
    pshow.add_argument("--objective", choices=OBJECTIVE_CHOICES,
                       default="reliability",
                       help="plan for this objective (methods that do not "
                       "support it are skipped with a reason)")
    pshow.add_argument("--max-exact-tasks", type=int, default=None,
                       help="size threshold past which exact methods are skipped")
    pshow.add_argument("--max-exact-procs", type=int, default=None,
                       help="processor threshold past which exact methods are skipped")
    pshow.add_argument("--include-stochastic", action="store_true",
                       help="auto-select stochastic (seeded) methods too")
    pshow.add_argument("--json", action="store_true",
                       help="print the plan as JSON instead of a table")

    runs = sub.add_parser(
        "runs", help="inspect the run ledger (list/show/diff)"
    )
    rsub = runs.add_subparsers(dest="runs_cmd", required=True)
    rlist = rsub.add_parser("list", help="tabulate every complete ledger run")
    rshow = rsub.add_parser(
        "show", help="print one run's report (or its manifest with --json)"
    )
    rshow.add_argument("run", help="run_id or unique run_id prefix")
    rdiff = rsub.add_parser(
        "diff",
        help="objective / timing / cache / batch-attribution deltas "
        "between two runs (b minus a)",
    )
    rdiff.add_argument("a", help="baseline run_id or unique prefix")
    rdiff.add_argument("b", help="comparison run_id or unique prefix")
    for sp in (rlist, rshow, rdiff):
        sp.add_argument("--runs-dir", type=pathlib.Path, default=None,
                        help="run-ledger directory (default $REPRO_RUNS_DIR or ./runs)")
        sp.add_argument("--json", action="store_true",
                        help="print machine-readable JSON instead of text")

    cache = sub.add_parser(
        "cache", help="inspect and manage the result cache (stats/migrate/vacuum)"
    )
    csub = cache.add_subparsers(dest="cache_cmd", required=True)
    cstats = csub.add_parser(
        "stats", help="persistent on-disk totals of the cache store"
    )
    cmigrate = csub.add_parser(
        "migrate", help="switch the store's backend in place, with verification"
    )
    cmigrate.add_argument("--to", required=True, choices=("files", "sqlite"),
                          help="destination backend")
    cmigrate.add_argument("--keep-source", action="store_true",
                          help="leave the source store on disk as a backup "
                          "(auto-detection then prefers the SQLite store)")
    cvacuum = csub.add_parser(
        "vacuum", help="reclaim dead space (stale temp files / free db pages)"
    )
    for sp in (cstats, cmigrate, cvacuum):
        sp.add_argument("--cache-dir", type=pathlib.Path, default=None,
                        help="cache directory (default $REPRO_CACHE_DIR)")
        sp.add_argument("--json", action="store_true",
                        help="print machine-readable JSON instead of text")

    lint = sub.add_parser(
        "lint",
        help="run the repo's AST-level invariant checkers (repro.analysis)",
    )
    lint.add_argument(
        "paths", nargs="*", type=pathlib.Path,
        help="files or directories to lint (default: the src tree next "
        "to the working directory, or the installed package source)",
    )
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      dest="fmt", help="report format (json is deterministic)")
    lint.add_argument("--rules", default=None, metavar="IDS",
                      help="comma-separated rule subset (e.g. DET001,KEY001); "
                      "waiver-audit rules only run on a full pass")
    lint.add_argument("--output", type=pathlib.Path, default=None,
                      help="also write the report to this file (atomically)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")

    demo = sub.add_parser("demo", help="solve a seeded random instance end to end")
    demo.add_argument("--tasks", type=int, default=10)
    demo.add_argument("--processors", type=int, default=8)
    demo.add_argument("--seed", type=int, default=0)
    demo.add_argument("--heterogeneous", action="store_true")
    return parser


def _load(path: pathlib.Path, expected: type) -> object:
    obj = loads(path.read_text())
    if not isinstance(obj, expected):
        raise SystemExit(f"{path} holds a {type(obj).__name__}, expected {expected.__name__}")
    return obj


def _print_solution(result, objective: str = "reliability") -> None:
    if not result.feasible:
        print(f"infeasible ({result.method})")
        return
    ev = result.evaluation
    print(f"method           : {result.method}")
    print(f"mapping          : {result.mapping}")
    print(f"failure prob     : {ev.failure_probability:.6e}")
    print(f"log reliability  : {ev.log_reliability:.6e}")
    print(f"worst-case period: {ev.worst_case_period:g}")
    print(f"worst-case latency: {ev.worst_case_latency:g}")
    if objective != "reliability":
        print(f"objective ({objective}): {result.objective_value(objective):g}")


def _cmd_solve(args) -> int:
    chain = _load(args.chain, TaskChain)
    platform = _load(args.platform, Platform)
    try:
        problem = Problem(
            chain, platform,
            max_period=args.max_period, max_latency=args.max_latency,
            objective=args.objective, min_reliability=args.min_reliability,
        )
        result = solve(problem, method=args.method)
    except ValueError as exc:
        raise SystemExit(str(exc))
    _print_solution(result, objective=args.objective)
    if result.feasible and args.output:
        write_atomic(args.output, dumps(result.mapping, indent=2))
        print(f"wrote {args.output}")
    return 0 if result.feasible else 1


def _cmd_evaluate(args) -> int:
    mapping = _load(args.mapping, Mapping)
    ev = evaluate_mapping(mapping)
    print(json.dumps(
        {
            "log_reliability": ev.log_reliability,
            "failure_probability": ev.failure_probability,
            "expected_latency": ev.expected_latency,
            "worst_case_latency": ev.worst_case_latency,
            "expected_period": ev.expected_period,
            "worst_case_period": ev.worst_case_period,
        },
        indent=2,
    ))
    return 0


def _cmd_simulate(args) -> int:
    from repro.simulation import validate_against_analytical

    mapping = _load(args.mapping, Mapping)
    report = validate_against_analytical(
        mapping, n_datasets=args.datasets, rng=args.seed
    )
    print(json.dumps({k: v for k, v in report.items() if not isinstance(v, tuple)},
                     indent=2, default=float))
    return 0 if report["all_ok"] else 1


def _cmd_figures(args) -> int:
    from repro.experiments.figures import FIGURES, run_experiment, run_figure
    from repro.experiments.report import render_figure

    wanted = list(FIGURES) if "all" in args.names else args.names
    for name in wanted:
        if name not in FIGURES:
            raise SystemExit(f"unknown figure {name!r}; choose from {sorted(FIGURES)}")
    by_exp: dict[str, list[str]] = {}
    for name in wanted:
        by_exp.setdefault(FIGURES[name][0], []).append(name)
    for exp_id, figs in by_exp.items():
        exp = run_experiment(
            exp_id,
            n_instances=args.instances,
            grid=args.grid,
            seed=args.seed,
            exact_method=args.exact,
            jobs=args.jobs,
            cache=args.cache_dir,
        )
        for name in figs:
            print(render_figure(run_figure(name, experiment_result=exp)))
            print()
    return 0


def _run_timestamp(args) -> str:
    """The run_id timestamp tag: ``--timestamp`` or the current UTC time."""
    import time

    tag = getattr(args, "timestamp", None)
    return tag if tag else time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())


def _series_record(sweep, prefix: str = "") -> dict:
    """Per-method manifest series of one sweep (counts, failures,
    objective quantiles per grid point) — the record ``runs diff``
    compares across runs.  *prefix* namespaces method names when one
    manifest aggregates several sweeps."""
    import numpy as np

    return {
        prefix + name: {
            "counts": [int(c) for c in sweep.counts(name)],
            "avg_failure": [
                None if np.isnan(v) else float(v)
                for v in sweep.average_failure(name, rule="per-method")
            ],
            "objective_quantiles": {
                f"p{round(q * 100)}": [
                    float(v) if np.isfinite(v) else None for v in row
                ]
                for q, row in zip((0.1, 0.5, 0.9), sweep.objective_quantiles(name))
            },
        }
        for name in sweep.method_names
    }


def _cmd_experiment(args) -> int:
    import platform as _platform
    import time

    import numpy as np

    from repro.experiments.cache import resolve_cache
    from repro.experiments.figures import EXPERIMENTS, run_experiment, run_figure
    from repro.experiments.harness import resolve_jobs
    from repro.experiments.report import render_figure
    from repro.obs import run_id_for, write_run
    from repro.obs import telemetry as obs

    wanted = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    for exp_id in wanted:
        if exp_id not in EXPERIMENTS:
            raise SystemExit(
                f"unknown experiment {exp_id!r}; choose from {sorted(EXPERIMENTS)}"
            )
    try:
        jobs = resolve_jobs(args.jobs)
    except ValueError as exc:
        raise SystemExit(str(exc))
    cache = resolve_cache(args.cache_dir)
    timestamp = _run_timestamp(args)

    manifest: dict = {
        "command": "experiment",
        "timestamp": timestamp,
        "experiments": wanted,
        "seed": args.seed,
        "jobs": jobs,
        "exact_method": args.exact,
        "cache_dir": str(cache.root) if cache is not None else None,
        "versions": {
            "repro": __version__,
            "numpy": np.__version__,
            "python": _platform.python_version(),
        },
        "runs": [],
    }
    series: dict = {}
    unit_events: list[dict] = []
    batch_units = 0
    seconds: dict = {}
    t0 = time.perf_counter()
    with obs.collect() as tele:
        for exp_id in wanted:
            start = time.perf_counter()
            exp = run_experiment(
                exp_id,
                n_instances=args.instances,
                grid=args.grid,
                seed=args.seed,
                exact_method=args.exact,
                jobs=jobs,
                cache=cache,
            )
            elapsed = time.perf_counter() - start
            spec = exp.spec
            exp_batch = sum(s.batch_units for s in exp.sweeps.values())
            batch_units += exp_batch
            for skey in sorted(exp.sweeps):
                sweep = exp.sweeps[skey]
                # Namespaced per experiment and suite so het runs' two
                # sweeps (and multi-experiment manifests) never collide.
                series.update(_series_record(sweep, prefix=f"{exp_id}:{skey}:"))
                for event in sweep.unit_events:
                    unit_events.append(
                        {"experiment": exp_id, "suite": skey, **event}
                    )
            seconds[exp_id] = round(elapsed, 3)
            manifest["runs"].append(
                {
                    "experiment": exp_id,
                    "n_instances": exp.n_instances,
                    "grid": exp.grid,
                    "figures": [spec.count_figure, spec.failure_figure],
                    "methods": sorted(
                        {n for sweep in exp.sweeps.values() for n in sweep.method_names}
                    ),
                    "n_points": int(exp.xs.size),
                    "seconds": round(elapsed, 3),
                    "batch_units": exp_batch,
                    "timings": {
                        skey: {k: round(v, 6) for k, v in exp.sweeps[skey].timings.items()}
                        for skey in sorted(exp.sweeps)
                    },
                    # The declarative workload behind the run, so the
                    # manifest is self-describing: spec content hash (the
                    # cache-key scenario component) plus the registry-style
                    # describe() record.
                    "scenario": _scenario_record(exp.scenario_spec, exp.scenario_key),
                    # How the paper-methods candidate set survived the
                    # planner's gates (selection is derived, not hard-coded).
                    "plan": exp.plan.describe() if exp.plan is not None else None,
                }
            )
            if not args.quiet:
                for fig in (spec.count_figure, spec.failure_figure):
                    print(render_figure(run_figure(fig, experiment_result=exp)))
                    print()
    seconds["total"] = round(time.perf_counter() - t0, 3)
    manifest["seconds"] = seconds
    manifest["series"] = series
    manifest["batch_units"] = batch_units
    manifest["cache"] = cache.stats() if cache is not None else None
    manifest["telemetry"] = tele.snapshot()
    run_id = run_id_for(
        {
            "command": "experiment",
            "experiments": wanted,
            "seed": args.seed,
            "instances": args.instances,
            "grid": args.grid,
            "exact_method": args.exact,
        },
        timestamp,
    )
    manifest["run_id"] = run_id
    run_dir = write_run(args.runs_dir, run_id, manifest, per_unit=unit_events)
    write_atomic(args.manifest, json.dumps(manifest, indent=2) + "\n")
    print(f"wrote manifest {args.manifest}")
    print(f"ledger run {run_id} -> {run_dir}")
    if cache is not None:
        print(f"cache: {cache.hits} hits, {cache.misses} misses, {cache.puts} writes")
    return 0


def _scenario_record(spec, spec_hash: "str | None", entry=None) -> "dict | None":
    """Self-describing manifest record for a scenario spec (or None).

    *entry* (the registry :class:`~repro.scenarios.registry.Scenario`,
    when the spec came from one) contributes its capability metadata
    and tags; bare specs fall back to the derived homogeneity check.
    """
    if spec is None:
        return None
    from repro.scenarios import Scenario, spec_is_homogeneous

    scenario = Scenario(
        spec=spec,
        homogeneous=entry.homogeneous if entry is not None else spec_is_homogeneous(spec),
        tags=entry.tags if entry is not None else (),
    )
    return {
        "name": spec.name,
        "spec_hash": spec_hash,
        "describe": scenario.describe(),
    }


def _resolve_scenario_token(token: str):
    """Resolve a CLI scenario argument: registry name first, then file.

    Returns ``(spec, scenario-or-None)``.
    """
    from repro.scenarios import (
        SCENARIOS,
        UnknownScenarioError,
        get_scenario,
        load_spec,
    )

    try:
        entry = get_scenario(token)
        return entry.spec, entry
    except UnknownScenarioError:
        path = pathlib.Path(token)
        if not path.exists():
            raise SystemExit(
                f"unknown scenario {token!r} and no such spec file; "
                f"registered: {sorted(SCENARIOS)}"
            )
        try:
            return load_spec(path), None
        except (ValueError, OSError, json.JSONDecodeError) as exc:
            raise SystemExit(f"cannot load scenario spec {path}: {exc}")


def _cmd_scenario(args) -> int:
    from repro.experiments.harness import run_sweep
    from repro.scenarios import SCENARIOS, generate_ensembles, scenario_hash

    if args.scenario_cmd == "list":
        header = f"{'name':20s} {'inst':>5s} {'tasks':>9s} {'procs':>7s} {'mode':>12s}  hom pair  tags"
        print(header)
        print("-" * len(header))
        for name in sorted(SCENARIOS):
            d = SCENARIOS[name].describe()
            fmt = lambda v: "x".join(map(str, v)) if isinstance(v, tuple) else str(v)
            print(
                f"{d['name']:20s} {d['n_instances']:>5d} {fmt(d['n_tasks']):>9s} "
                f"{fmt(d['p']):>7s} {d['rng_mode']:>12s}  "
                f"{'yes' if d['homogeneous'] else ' no'} "
                f"{'yes' if d['paired'] else ' no'}  {','.join(d['tags'])}"
            )
        return 0

    if args.scenario_cmd == "show":
        spec, entry = _resolve_scenario_token(args.name)
        print(dumps(spec, indent=2))
        if entry is not None:
            print(
                f"# homogeneous={entry.homogeneous} paired={entry.paired} "
                f"tags={','.join(entry.tags) or '-'} "
                f"variants={len(spec.variants())}",
                file=sys.stderr,
            )
        return 0

    # scenario run
    import platform as _platform
    import time

    import numpy as np

    from repro.experiments.cache import resolve_cache
    from repro.obs import run_id_for, write_run
    from repro.obs import telemetry as obs
    from repro.solve import Planner, derive_bounds_grid, encode_bound

    spec, entry = _resolve_scenario_token(args.scenario)
    if args.n_instances is not None:
        try:
            spec = spec.with_(n_instances=args.n_instances)
        except ValueError as exc:
            raise SystemExit(str(exc))
    spec_hash = scenario_hash(spec)
    timestamp = _run_timestamp(args)
    t_run = time.perf_counter()
    collector = obs.Telemetry()

    # The scenario-aware planner picks and orders the methods —
    # explicitly requested ones still pass through its hard capability
    # gates, so e.g. an exact solver on a heterogeneous scenario (or a
    # reliability heuristic under --objective period) is skipped with a
    # recorded reason instead of crashing the sweep.
    with obs.collect(collector):
        plan = Planner().plan(
            entry if entry is not None and entry.spec == spec else spec,
            methods=args.methods,
            objective=args.objective,
        )
    for skip in plan.skipped:
        if args.methods:
            print(f"note: skipping {skip.method}: {skip.reason}", file=sys.stderr)
    if not plan.selected:
        reasons = "; ".join(f"{s.method}: {s.reason}" for s in plan.skipped)
        raise SystemExit(f"no applicable methods for scenario {spec.name!r} ({reasons})")
    methods = plan.methods()

    t0 = time.perf_counter()
    # Columnar generation: the ensembles' rows materialize lazily, so a
    # fully cached run never builds a TaskChain or Platform object.
    # Paired ensembles' views expose the heterogeneous side directly.
    instances = generate_ensembles(spec, seed=args.seed)
    gen_seconds = time.perf_counter() - t0
    n = sum(len(e) for e in instances)
    paired_note = " (paired: sweeping the heterogeneous side)" if spec.paired else ""
    print(
        f"scenario {spec.name!r}: {n} instances "
        f"({len(spec.variants())} variant(s)), generated in {gen_seconds:.3f}s"
        f"{paired_note}"
    )
    print(f"plan: {', '.join(plan.selected)} "
          f"({len(plan.skipped)} skipped; see 'repro plan show {args.scenario}')")

    # One cache shared by the grid probes and the sweep units, so the
    # manifest's hit/miss counters cover the whole run.
    cache = resolve_cache(args.cache_dir)

    grid_record = None
    grid_seconds = 0.0
    if args.grid == "auto":
        t0 = time.perf_counter()
        try:
            with obs.collect(collector):
                grid = derive_bounds_grid(
                    instances, n_points=args.grid_points, seed=args.seed,
                    cache=cache,
                )
        except ValueError as exc:
            raise SystemExit(str(exc))
        grid_seconds = time.perf_counter() - t0
        bounds = grid.sweep(args.grid_axis)
        xs = grid.xs(args.grid_axis)
        grid_record = {"mode": "auto", "axis": args.grid_axis, **grid.describe()}
        print(
            f"derived {args.grid_axis} grid: {len(bounds)} points in "
            f"[{xs[0]:g}, {xs[-1]:g}] "
            f"(quantiles of unbounded {grid.method!r} solves, {grid_seconds:.3f}s)"
        )
    else:
        bounds = [(args.max_period, args.max_latency)]
        xs = None
        grid_record = {
            "mode": "point",
            "max_period": encode_bound(args.max_period),
            "max_latency": encode_bound(args.max_latency),
        }

    t0 = time.perf_counter()
    try:
        with obs.collect(collector):
            sweep = run_sweep(
                instances,
                methods,
                bounds,
                xs=xs,
                jobs=args.jobs,
                cache=cache,
                scenario_key=spec_hash,
                objective=args.objective,
                min_reliability=args.min_reliability,
            )
    except ValueError as exc:
        raise SystemExit(str(exc))
    sweep_seconds = time.perf_counter() - t0

    def fmt_value(value) -> str:
        return "-" if np.isnan(value) else f"{value:.3e}"

    if len(bounds) == 1:
        P, L = bounds[0]
        print(f"sweep point: period <= {P:g}, latency <= {L:g} ({sweep_seconds:.3f}s)")
        print(
            f"{'method':14s} {'solved':>8s}  {'avg failure':>12s}  "
            f"{args.objective} p10/p50/p90 (solved)"
        )
        for name in sweep.method_names:
            count = int(sweep.counts(name)[0])
            avg = sweep.average_failure(name, rule="per-method")[0]
            avg_text = f"{avg:.3e}" if count else "-"
            q10, q50, q90 = sweep.objective_quantiles(name)[:, 0]
            print(
                f"{name:14s} {count:>4d}/{n:<4d} {avg_text:>12s}  "
                f"{fmt_value(q10)} / {fmt_value(q50)} / {fmt_value(q90)}"
            )
    else:
        from repro.experiments.figures import FigureResult
        from repro.experiments.report import render_series_table

        print(f"sweep: {len(bounds)} points x {len(methods)} methods ({sweep_seconds:.3f}s)")
        for metric, series in (
            ("count", {m: sweep.counts(m) for m in sweep.method_names}),
            ("failure", {
                m: sweep.average_failure(m, rule="per-method")
                for m in sweep.method_names
            }),
        ):
            what = "solutions" if metric == "count" else "avg failure (per-method)"
            fig = FigureResult(
                figure=what, experiment=spec.name, metric=metric,
                xs=sweep.xs, series=series, n_instances=n, grid="auto",
            )
            print(f"\n{what} vs {args.grid_axis} bound:")
            print(render_series_table(fig, x_label=args.grid_axis))
        # Per-point quantiles of the *achieved* objective (ROADMAP
        # "objective-aware sweep aggregations"): how good the optimum
        # is across the ensemble, not just how often one exists.
        for name in sweep.method_names:
            q = sweep.objective_quantiles(name)
            fig = FigureResult(
                figure="objective", experiment=spec.name, metric="objective",
                xs=sweep.xs,
                series={"p10": q[0], "p50": q[1], "p90": q[2]},
                n_instances=n, grid="auto",
            )
            print(f"\nachieved {args.objective} quantiles for {name} "
                  f"vs {args.grid_axis} bound:")
            print(render_series_table(fig, x_label=args.grid_axis))

    # Per-phase wall-clock (satellite of the run ledger): generation,
    # grid derivation, the sweep, the whole command, and each method's
    # attributed solve time from the sweep's per-unit events.
    seconds = {
        "generate": round(gen_seconds, 3),
        "grid": round(grid_seconds, 3),
        "sweep": round(sweep_seconds, 3),
        "total": round(time.perf_counter() - t_run, 3),
    }
    for name, value in sorted(sweep.method_seconds().items()):
        seconds[f"solve[{name}]"] = round(value, 6)

    manifest = {
        "command": "scenario-run",
        "timestamp": timestamp,
        "scenario": _scenario_record(spec, spec_hash, entry),
        "seed": args.seed,
        "n_instances": n,
        "objective": args.objective,
        "min_reliability": args.min_reliability,
        "plan": plan.describe(),
        "grid": grid_record,
        "points": [[encode_bound(P), encode_bound(L)] for P, L in bounds],
        "series": _series_record(sweep),
        "seconds": seconds,
        "batch_units": sweep.batch_units,
        "timings": {k: round(v, 6) for k, v in sweep.timings.items()},
        "cache": cache.stats() if cache is not None else None,
        "telemetry": collector.snapshot(),
        "versions": {
            "repro": __version__,
            "numpy": np.__version__,
            "python": _platform.python_version(),
        },
    }
    run_id = run_id_for(
        {
            "command": "scenario-run",
            "scenario": spec_hash,
            "seed": args.seed,
            "n_instances": n,
            "methods": list(plan.selected),
            "objective": args.objective,
            "min_reliability": args.min_reliability,
            "grid": {
                "mode": args.grid,
                "axis": args.grid_axis,
                "points": args.grid_points,
            },
        },
        timestamp,
    )
    manifest["run_id"] = run_id
    run_dir = write_run(args.runs_dir, run_id, manifest, per_unit=sweep.unit_events)
    write_atomic(args.manifest, json.dumps(manifest, indent=2) + "\n")
    print(f"\nwrote manifest {args.manifest}")
    print(f"ledger run {run_id} -> {run_dir}")
    return 0


def _cmd_plan(args) -> int:
    from repro.solve import Planner

    spec, entry = _resolve_scenario_token(args.scenario)
    config = {}
    if args.max_exact_tasks is not None:
        config["max_exact_tasks"] = args.max_exact_tasks
    if args.max_exact_procs is not None:
        config["max_exact_procs"] = args.max_exact_procs
    if args.include_stochastic:
        config["include_stochastic"] = True
    try:
        plan = Planner(**config).plan(
            entry if entry is not None else spec,
            methods=args.methods,
            objective=args.objective,
        )
    except (KeyError, ValueError) as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(json.dumps(plan.describe(), indent=2))
    else:
        print(plan.summary())
    return 0


def _cmd_runs(args) -> int:
    from repro.obs import diff_runs, list_runs, load_run, render_diff, resolve_runs_dir

    if args.runs_cmd == "list":
        rows = list_runs(args.runs_dir)
        if args.json:
            print(json.dumps(rows, indent=2))
            return 0
        if not rows:
            print(f"no runs under {resolve_runs_dir(args.runs_dir)}")
            return 0
        header = (
            f"{'run_id':32s} {'command':13s} {'scenario':18s} "
            f"{'inst':>5s} {'seconds':>8s} {'cache h/m':>10s} {'batch':>6s}"
        )
        print(header)
        print("-" * len(header))
        for row in rows:
            seconds = row["seconds"]
            hits, misses = row["cache_hits"], row["cache_misses"]
            print(
                f"{row['run_id']:32s} {str(row['command'] or '-'):13s} "
                f"{str(row['scenario'] or '-'):18s} "
                f"{str(row['n_instances'] if row['n_instances'] is not None else '-'):>5s} "
                f"{f'{seconds:.3f}' if isinstance(seconds, (int, float)) else '-':>8s} "
                f"{(f'{hits}/{misses}' if hits is not None else '-'):>10s} "
                f"{str(row['batch_units'] if row['batch_units'] is not None else '-'):>6s}"
            )
        return 0

    try:
        if args.runs_cmd == "show":
            record = load_run(args.run, args.runs_dir)
            if args.json:
                print(json.dumps(record.manifest, indent=2, sort_keys=True))
            else:
                print(record.report, end="")
            return 0
        a = load_run(args.a, args.runs_dir)
        b = load_run(args.b, args.runs_dir)
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(str(exc))
    diff = diff_runs(a, b)
    print(json.dumps(diff, indent=2) if args.json else render_diff(diff))
    return 0


def _cmd_cache(args) -> int:
    from repro.experiments.cache import detect_backend_kind, migrate_cache, resolve_backend

    root = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if not root:
        raise SystemExit(
            "no cache directory: pass --cache-dir or set $REPRO_CACHE_DIR"
        )
    root = pathlib.Path(root)

    if args.cache_cmd == "migrate":
        try:
            report = migrate_cache(root, to=args.to, keep_source=args.keep_source)
        except (ValueError, RuntimeError) as exc:
            raise SystemExit(str(exc))
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            source = "kept" if args.keep_source else "removed"
            print(
                f"migrated {report['entries']} entries "
                f"{report['from']} -> {report['to']} "
                f"(verified {report['verified']} row digests); source {source}"
            )
        return 0

    backend = resolve_backend(root)
    try:
        if args.cache_cmd == "stats":
            report = dict(backend.storage_stats())
            report["root"] = str(root)
            report["detected"] = detect_backend_kind(root)
        else:  # vacuum
            report = dict(backend.vacuum())
            report["root"] = str(root)
    finally:
        backend.close()
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        width = max(len(field) for field in report)
        for field in sorted(report):
            print(f"{field:{width}s} : {report[field]}")
    return 0


def _cmd_lint(args) -> int:
    from repro.analysis import RULES, render_json, render_text, run_lint

    if args.list_rules:
        width = max(len(rule) for rule in RULES)
        for rule in sorted(RULES):
            print(f"{rule:{width}s}  {RULES[rule]}")
        return 0

    paths = list(args.paths)
    if not paths:
        # Default target: the source tree of the working copy when run
        # from a checkout, else the installed package itself.
        src = pathlib.Path("src")
        if (src / "repro").is_dir():
            paths = [src]
        else:
            paths = [pathlib.Path(__file__).parent]
    rules = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
    try:
        findings = run_lint(paths, rules=rules)
    except (FileNotFoundError, ValueError) as exc:
        raise SystemExit(str(exc))
    report = render_json(findings) if args.fmt == "json" else render_text(findings)
    print(report, end="")
    if args.output:
        write_atomic(args.output, report)
    return 1 if findings else 0


def _cmd_demo(args) -> int:
    import numpy as np

    rng = np.random.default_rng(args.seed)
    chain = random_chain(args.tasks, rng)
    if args.heterogeneous:
        platform = random_platform(args.processors, rng)
    else:
        platform = Platform.homogeneous_platform(
            args.processors,
            failure_rate=1e-8,
            link_failure_rate=1e-5,
            max_replication=3,
        )
    print(f"instance: {chain}, {platform}")
    base = Problem(chain, platform)
    ev_bounds = solve(base).evaluation  # unbounded, method="auto"
    P = ev_bounds.worst_case_period * 1.2
    L = ev_bounds.worst_case_latency * 1.2
    print(f"derived bounds: period <= {P:g}, latency <= {L:g}\n")
    _print_solution(solve(base.with_bounds(max_period=P, max_latency=L)))
    return 0


COMMANDS = {
    "solve": _cmd_solve,
    "evaluate": _cmd_evaluate,
    "simulate": _cmd_simulate,
    "figures": _cmd_figures,
    "experiment": _cmd_experiment,
    "scenario": _cmd_scenario,
    "plan": _cmd_plan,
    "runs": _cmd_runs,
    "cache": _cmd_cache,
    "lint": _cmd_lint,
    "demo": _cmd_demo,
}


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
