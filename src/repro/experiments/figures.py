"""One configuration and runner per evaluation figure (Figures 6-15).

The paper's five experiments each produce two figures (a solution-count
plot and an average-failure-probability plot), so figures come in pairs
sharing one sweep:

=============  =====================================  ==================
Experiment     Sweep                                  Figures
=============  =====================================  ==================
hom-period     hom, L = 750, P in [1, 500]            6 (count), 7 (fail)
hom-latency    hom, P = 250, L in [500, 1100]         8 (count), 9 (fail)
hom-linked     hom, L = 3P, P in [150, 350]           10 (count), 11 (fail)
het-period     het vs hom5, L = 150, P in [1, 150]    12 (count), 13 (fail)
het-latency    het vs hom5, P = 50, L in [50, 250]    14 (count), 15 (fail)
=============  =====================================  ==================

Grid sizes: ``grid="reduced"`` (default; minutes on a laptop) or
``grid="full"`` (the paper's resolution).  Instance counts default to 20
(reduced) / 100 (full = the paper's count).  Environment overrides
``REPRO_INSTANCES`` and ``REPRO_GRID`` apply when parameters are left
``None`` — convenient for the benchmark suite.  The sweep execution
knobs are inherited from :mod:`repro.experiments.harness`:
``jobs``/``$REPRO_JOBS`` fans units out over worker processes and
``cache``/``$REPRO_CACHE_DIR`` makes repeated runs (sibling figures,
benches, the CLI) reuse solved units instead of recomputing them.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.experiments.harness import SweepResult, run_sweep
from repro.scenarios import generate_ensemble, get_scenario, scenario_hash
from repro.solve.planner import Plan, Planner

__all__ = [
    "EXPERIMENTS",
    "FIGURES",
    "ExperimentSpec",
    "FigureResult",
    "run_experiment",
    "run_figure",
]


def _grid(lo: float, hi: float, reduced_points: int, full_step: float, grid: str) -> np.ndarray:
    if grid == "full":
        return np.arange(lo, hi + full_step / 2, full_step, dtype=float)
    if grid == "reduced":
        return np.linspace(lo, hi, reduced_points)
    raise ValueError(f"unknown grid {grid!r} (use 'reduced' or 'full')")


@dataclass(frozen=True)
class ExperimentSpec:
    """Configuration of one paired-figure experiment."""

    id: str
    kind: str  # "hom" or "het"
    description: str
    #: grid name -> sweep coordinates.
    sweep: Callable[[str], np.ndarray]
    #: sweep coordinate -> (max_period, max_latency).
    bounds: Callable[[float], tuple[float, float]]
    count_figure: str = ""
    failure_figure: str = ""
    #: Averaging rule for the failure figure.
    failure_rule: str = "common"


EXPERIMENTS: dict[str, ExperimentSpec] = {
    "hom-period": ExperimentSpec(
        id="hom-period",
        kind="hom",
        description="homogeneous, L = 750, sweep period bound (Figs. 6-7)",
        sweep=lambda g: _grid(20.0, 500.0, 13, 10.0, g),
        bounds=lambda P: (P, 750.0),
        count_figure="fig6",
        failure_figure="fig7",
        failure_rule="common",
    ),
    "hom-latency": ExperimentSpec(
        id="hom-latency",
        kind="hom",
        description="homogeneous, P = 250, sweep latency bound (Figs. 8-9)",
        sweep=lambda g: _grid(500.0, 1100.0, 13, 10.0, g),
        bounds=lambda L: (250.0, L),
        count_figure="fig8",
        failure_figure="fig9",
        failure_rule="common",
    ),
    "hom-linked": ExperimentSpec(
        id="hom-linked",
        kind="hom",
        description="homogeneous, L = 3P, sweep period bound (Figs. 10-11)",
        sweep=lambda g: _grid(150.0, 350.0, 11, 5.0, g),
        bounds=lambda P: (P, 3.0 * P),
        count_figure="fig10",
        failure_figure="fig11",
        failure_rule="common",
    ),
    "het-period": ExperimentSpec(
        id="het-period",
        kind="het",
        description="het vs hom(speed 5), L = 150, sweep period (Figs. 12-13)",
        sweep=lambda g: _grid(10.0, 150.0, 13, 3.0, g),
        bounds=lambda P: (P, 150.0),
        count_figure="fig12",
        failure_figure="fig13",
        failure_rule="per-method",
    ),
    "het-latency": ExperimentSpec(
        id="het-latency",
        kind="het",
        description="het vs hom(speed 5), P = 50, sweep latency (Figs. 14-15)",
        sweep=lambda g: _grid(50.0, 250.0, 11, 4.0, g),
        bounds=lambda L: (50.0, L),
        count_figure="fig14",
        failure_figure="fig15",
        failure_rule="per-method",
    ),
}

#: figure id -> (experiment id, metric)
FIGURES: dict[str, tuple[str, str]] = {}
for _spec in EXPERIMENTS.values():
    FIGURES[_spec.count_figure] = (_spec.id, "count")
    FIGURES[_spec.failure_figure] = (_spec.id, "failure")


@dataclass
class ExperimentResult:
    """Raw sweeps of one experiment (hom: one sweep; het: two sweeps
    whose curve labels carry ``_het`` / ``_hom`` suffixes).

    ``scenario_spec`` / ``scenario_key`` identify the declarative
    workload the suites were materialized from (the sized
    ``section8-*`` spec and its content hash) — the manifest written
    by ``python -m repro experiment`` embeds both, so a run record is
    self-describing.  ``plan`` records how the paper-methods candidate
    set survived :meth:`repro.solve.Planner.plan` (the method list is
    derived, not hard-coded — skip reasons included).
    """

    spec: ExperimentSpec
    xs: np.ndarray
    sweeps: dict[str, SweepResult]
    n_instances: int
    grid: str
    exact_method: str
    scenario_spec: "object | None" = None
    scenario_key: "str | None" = None
    plan: "Plan | None" = None


@dataclass
class FigureResult:
    """One figure's series, ready for printing or plotting."""

    figure: str
    experiment: str
    metric: str  # "count" or "failure"
    xs: np.ndarray
    series: dict[str, np.ndarray]
    n_instances: int
    grid: str


def _env_default(value, env: str, fallback, cast):
    if value is not None:
        return value
    raw = os.environ.get(env)
    return cast(raw) if raw else fallback


def run_experiment(
    experiment: str,
    n_instances: int | None = None,
    grid: str | None = None,
    seed: int = 0,
    exact_method: str = "ilp",
    jobs: int | None = None,
    cache=None,
) -> ExperimentResult:
    """Run one paired-figure experiment and return its raw sweeps.

    Parameters
    ----------
    exact_method:
        ``"ilp"`` (the paper's reference) or ``"pareto-dp"`` (same
        optima, faster) — used only by the homogeneous experiments.
    jobs:
        Worker processes for the sweep fan-out (``None`` reads
        ``$REPRO_JOBS``; results are identical for any value).
    cache:
        Result cache (a :class:`~repro.experiments.cache.ResultCache`
        or directory path; ``None`` reads ``$REPRO_CACHE_DIR``).
    """
    if experiment not in EXPERIMENTS:
        raise ValueError(
            f"unknown experiment {experiment!r}; available: {sorted(EXPERIMENTS)}"
        )
    spec = EXPERIMENTS[experiment]
    n_instances = _env_default(n_instances, "REPRO_INSTANCES", 20, int)
    grid = _env_default(grid, "REPRO_GRID", "reduced", str)
    xs = spec.sweep(grid)
    bounds = [spec.bounds(float(x)) for x in xs]

    # The paper's methods per experiment kind are an explicit *candidate*
    # set; the scenario-aware planner — not this module — decides which
    # of them actually run (hard capability gates, expensive-first
    # order), so a plan with skip reasons documents every figure run.
    if spec.kind == "hom":
        candidates = [exact_method, "heur-l", "heur-p"]
        scn = get_scenario("section8-hom").spec.with_(n_instances=n_instances)
    else:
        # The "-paper" variants select best reliability before checking
        # bounds — the reading of Section 7 that reproduces Fig. 12's
        # non-monotone heterogeneous curves (identical on hom platforms).
        candidates = ["heur-l-paper", "heur-p-paper"]
        scn = get_scenario("section8-het").spec.with_(n_instances=n_instances)
    plan = Planner().plan(scn, methods=candidates)
    if not plan.selected:  # pragma: no cover - paper dims pass the gates
        reasons = "; ".join(f"{s.method}: {s.reason}" for s in plan.skipped)
        raise ValueError(
            f"planner rejected every candidate method for {experiment!r} ({reasons})"
        )
    methods = plan.methods()
    scn_hash = scenario_hash(scn)

    sweeps: dict[str, SweepResult] = {}
    if spec.kind == "hom":
        # The Section 8.1 suite as a columnar ensemble from its
        # declarative spec (rows bit-identical to the legacy
        # homogeneous_suite for any seed).
        ensemble = generate_ensemble(scn, seed=seed)
        sweeps["hom"] = run_sweep(
            ensemble, methods, bounds, xs=xs, jobs=jobs, cache=cache,
            scenario_key=scn_hash,
        )
    else:
        # A paired ensemble's views expose the heterogeneous side; its
        # hom_counterpart() is the columnar speed-5 twin.  One scenario
        # hash for both sides: the unit keys already hash each
        # instance's platform, so het/hom units cannot collide — and a
        # direct run_sweep("section8-het", ...) shares this cache.
        ensemble = generate_ensemble(scn, seed=seed)
        sweeps["het"] = run_sweep(
            ensemble, methods, bounds, xs=xs, jobs=jobs, cache=cache,
            scenario_key=scn_hash,
        )
        sweeps["hom"] = run_sweep(
            ensemble.hom_counterpart(), methods, bounds, xs=xs, jobs=jobs,
            cache=cache, scenario_key=scn_hash,
        )
    return ExperimentResult(
        spec=spec,
        xs=xs,
        sweeps=sweeps,
        n_instances=n_instances,
        grid=grid,
        exact_method=exact_method,
        scenario_spec=scn,
        scenario_key=scn_hash,
        plan=plan,
    )


def run_figure(
    figure: str,
    n_instances: int | None = None,
    grid: str | None = None,
    seed: int = 0,
    exact_method: str = "ilp",
    experiment_result: ExperimentResult | None = None,
    jobs: int | None = None,
    cache=None,
) -> FigureResult:
    """Produce one figure's series (running its experiment if needed).

    Pass ``experiment_result`` to reuse the sweep already computed for
    the figure's sibling (e.g. Fig. 7 reusing Fig. 6's run).
    """
    if figure not in FIGURES:
        raise ValueError(f"unknown figure {figure!r}; available: {sorted(FIGURES)}")
    exp_id, metric = FIGURES[figure]
    if experiment_result is None:
        experiment_result = run_experiment(
            exp_id,
            n_instances=n_instances,
            grid=grid,
            seed=seed,
            exact_method=exact_method,
            jobs=jobs,
            cache=cache,
        )
    elif experiment_result.spec.id != exp_id:
        raise ValueError(
            f"experiment result is for {experiment_result.spec.id!r}, "
            f"figure {figure} needs {exp_id!r}"
        )
    spec = experiment_result.spec
    series: dict[str, np.ndarray] = {}
    if spec.kind == "hom":
        sweep = experiment_result.sweeps["hom"]
        for name in sweep.method_names:
            label = "ilp" if name == experiment_result.exact_method else name
            if metric == "count":
                series[label] = sweep.counts(name)
            else:
                series[label] = sweep.average_failure(name, rule=spec.failure_rule)
    else:
        for plat_kind in ("het", "hom"):
            sweep = experiment_result.sweeps[plat_kind]
            for name in sweep.method_names:
                label = f"{name.removesuffix('-paper')}_{plat_kind}"
                if metric == "count":
                    series[label] = sweep.counts(name)
                else:
                    series[label] = sweep.average_failure(name, rule=spec.failure_rule)
    return FigureResult(
        figure=figure,
        experiment=exp_id,
        metric=metric,
        xs=experiment_result.xs,
        series=series,
        n_instances=experiment_result.n_instances,
        grid=experiment_result.grid,
    )
