"""The validation-chain experiment: every representation of reliability
must tell one story.

DESIGN.md commits to a validation chain —

    brute force  ⊇  Pareto-DP  ⊇  ILP(HiGHS)  ⊇  ILP(branch-and-bound)
    Eq. (9)  ==  routed RBD (series-parallel  ==  factoring  ==  enumeration)
    simulation  ~  Eq. (9)   (within confidence intervals)

— and, since the facade went tri-criteria, the converse-objective links

    dp-period   ==  brute force(objective="period")
    dp-latency  ==  brute force(objective="latency")
    energy-greedy  ⊆  brute force(objective="energy")   (bounds + floor honored)

— and the unit tests check each link on fixed instances.  This module
runs the *whole chain* over a randomized instance population and
produces a machine-checkable report, so a regression anywhere in the
stack shows up as a disagreement count.  It doubles as a benchmark
target (`benchmarks/bench_crosscheck.py`) and as the recommended smoke
test after modifying any numerical code.

Each instance's check is independent and fully determined by one
integer seed (drawn via :func:`repro.util.rng.spawn_seeds`), so the
population fans out over a process pool: ``jobs > 1`` (or
``$REPRO_JOBS``) runs instances concurrently and merges per-instance
records in instance order — the report is identical to the serial one.

The population defaults to this module's own brute-force-friendly
random instances, but any *homogeneous* declarative scenario
(:mod:`repro.scenarios`) can supply the distributions instead
(``scenario=...``): its work/output/speed/failure draws are used at
the cross-check's small sizes, with period/latency bounds derived per
instance from an unbounded heuristic solve.  Heterogeneous scenarios
are rejected up front — the chain's exact solvers are Section 5
algorithms, and running them out of scope would report false
disagreements.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core import random_chain
from repro.core.evaluation import mapping_log_reliability
from repro.core.platform import Platform
from repro.io import from_dict, to_dict
from repro.rbd import (
    exact_log_reliability_enumeration,
    exact_log_reliability_factoring,
    rbd_with_routing,
    series_parallel_log_reliability,
)
from repro.simulation import simulate_mapping
from repro.solve import Problem, solve
from repro.util.rng import ensure_rng, spawn_seeds

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.scenarios.registry import Scenario
    from repro.scenarios.spec import ScenarioSpec

__all__ = ["CrosscheckReport", "run_crosscheck"]

#: Relative tolerance for exact-method agreement on log-reliabilities.
EXACT_RTOL = 1e-6


@dataclass
class CrosscheckReport:
    """Aggregate outcome of one cross-check run."""

    instances: int = 0
    solver_disagreements: int = 0
    heuristic_violations: int = 0
    rbd_disagreements: int = 0
    simulation_outliers: int = 0
    objective_disagreements: int = 0
    details: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True iff no hard invariant was violated (simulation outliers
        are tolerated at the ~5% CI rate, checked by the caller)."""
        return (
            self.solver_disagreements == 0
            and self.heuristic_violations == 0
            and self.rbd_disagreements == 0
            and self.objective_disagreements == 0
        )

    def summary(self) -> str:
        return (
            f"{self.instances} instances: "
            f"{self.solver_disagreements} solver disagreements, "
            f"{self.heuristic_violations} heuristic violations, "
            f"{self.rbd_disagreements} RBD disagreements, "
            f"{self.objective_disagreements} objective disagreements, "
            f"{self.simulation_outliers} simulation CI misses"
        )


def _close(a: float, b: float) -> bool:
    if a == b:
        return True
    if not (math.isfinite(a) and math.isfinite(b)):
        return False
    return abs(a - b) <= EXACT_RTOL * max(abs(a), abs(b), 1e-300)


def _check_instance(
    seed: int,
    n_tasks: int,
    p: int,
    simulate: bool,
    instance: "tuple[dict, dict] | None" = None,
    objectives: bool = True,
) -> dict:
    """Run the full validation chain on one seeded instance.

    Module-level and driven by a plain integer seed so it can run in a
    worker process; returns a flat record the parent merges into the
    :class:`CrosscheckReport` in instance order.  When *instance*
    carries ``(chain, platform)`` JSON payloads (the scenario-driven
    population), those are used instead of this function's own random
    instance, and the (P, L) bounds are derived from an unbounded
    heuristic solve so they land in the feasibility transition region
    regardless of the scenario's cost scales.
    """
    rng = np.random.default_rng(seed)
    record = {
        "solver_disagreement": False,
        "heuristic_violation": False,
        "rbd_disagreement": False,
        "simulation_outlier": False,
        "objective_disagreement": False,
        "details": [],
    }
    if instance is not None:
        chain = from_dict(instance[0])
        platform = from_dict(instance[1])
        reference = solve(Problem(chain, platform), method="heuristic")
        if not reference.feasible:  # pragma: no cover - unbounded heur always maps
            record["details"].append("unbounded heuristic found no mapping")
            return record
        ev = reference.evaluation
        P = float(ev.worst_case_period) * float(rng.uniform(0.8, 2.0))
        L = float(ev.worst_case_latency) * float(rng.uniform(0.8, 2.0))
    else:
        chain = random_chain(n_tasks, rng)
        K = int(rng.integers(1, 4))
        platform = Platform.homogeneous_platform(
            p,
            failure_rate=10.0 ** -float(rng.uniform(2, 8)),
            link_failure_rate=10.0 ** -float(rng.uniform(2, 5)),
            max_replication=K,
        )
        P = float(rng.uniform(40, 400))
        L = float(rng.uniform(150, 900))
    problem = Problem(chain, platform, max_period=P, max_latency=L)

    # --- exact solver agreement ---------------------------------
    bf = solve(problem, method="brute-force")
    pd = solve(problem, method="pareto-dp")
    hi = solve(problem, method="ilp")
    bb = solve(problem, method="ilp-bb")
    values = [bf, pd, hi, bb]
    if len({v.feasible for v in values}) != 1 or (
        bf.feasible
        and not all(
            _close(v.log_reliability, bf.log_reliability) for v in values
        )
    ):
        record["solver_disagreement"] = True
        record["details"].append(
            f"solvers disagree: {[v.log_reliability for v in values]}"
        )
        return record

    # --- heuristic sanity -----------------------------------------
    heur = solve(problem, method="heuristic")
    if heur.feasible and (
        not bf.feasible or heur.log_reliability > bf.log_reliability + 1e-12
    ):
        record["heuristic_violation"] = True
        record["details"].append("heuristic beat the optimum or bounds")

    if not bf.feasible:
        return record
    mapping = bf.mapping
    assert mapping is not None

    # --- converse objectives (tri-criteria facade) ----------------
    # A floor strictly below the bounded optimum keeps every converse
    # problem feasible (the bf mapping itself witnesses it), so the
    # exact methods must agree with the objective-aware oracle.
    if objectives:
        floor_ell = bf.log_reliability * float(rng.uniform(1.0, 2.0))
        floor = float(math.exp(floor_ell))
        if floor >= 1.0:  # pragma: no cover - positive failure rates
            floor = 0.0
        for objective, exact_name, bound_kw in (
            ("period", "dp-period", {"max_latency": L}),
            ("latency", "dp-latency", {"max_period": P}),
        ):
            converse = Problem(
                chain, platform,
                objective=objective, min_reliability=floor, **bound_kw,
            )
            oracle = solve(converse, method="brute-force")
            exact = solve(converse, method=exact_name)
            if exact.feasible != oracle.feasible or (
                oracle.feasible
                and not _close(
                    exact.objective_value(objective),
                    oracle.objective_value(objective),
                )
            ):
                record["objective_disagreement"] = True
                record["details"].append(
                    f"{exact_name} disagrees with brute force: "
                    f"{exact.objective_value(objective)} vs "
                    f"{oracle.objective_value(objective)}"
                )
        energy_problem = Problem(
            chain, platform,
            max_period=P, max_latency=L,
            objective="energy", min_reliability=floor,
        )
        oracle = solve(energy_problem, method="brute-force")
        greedy = solve(energy_problem, method="energy-greedy")
        if greedy.feasible:
            ev = greedy.evaluation
            assert ev is not None
            # The greedy may miss a feasible mapping (it is a Section 7
            # heuristic at heart) but must never undercut the exact
            # optimum or violate the bounds/floor it was given.
            if (
                not ev.meets(
                    max_period=P, max_latency=L,
                    min_log_reliability=energy_problem.min_log_reliability,
                )
                or greedy.objective_value("energy")
                < oracle.objective_value("energy") * (1.0 - EXACT_RTOL)
            ):
                record["objective_disagreement"] = True
                record["details"].append(
                    f"energy-greedy beat the oracle or broke its bounds: "
                    f"{greedy.objective_value('energy')} vs "
                    f"{oracle.objective_value('energy')}"
                )

    # --- RBD representations -------------------------------------
    want = mapping_log_reliability(mapping)
    rbd = rbd_with_routing(mapping)
    candidates = [
        series_parallel_log_reliability(rbd),
        exact_log_reliability_factoring(rbd),
    ]
    if rbd.n_blocks <= 20:
        candidates.append(exact_log_reliability_enumeration(rbd))
    if not all(_close(c, want) for c in candidates):
        record["rbd_disagreement"] = True
        record["details"].append(f"RBD evaluators disagree: {candidates} vs {want}")

    # --- simulation ------------------------------------------------
    if simulate:
        summary = simulate_mapping(mapping, n_datasets=1500, rng=rng)
        if not summary.reliability_consistent:
            record["simulation_outlier"] = True
    return record


def run_crosscheck(
    n_instances: int = 10,
    seed: int = 0,
    n_tasks: int = 5,
    p: int = 4,
    simulate: bool = True,
    jobs: "int | None" = None,
    scenario: "str | ScenarioSpec | Scenario | None" = None,
    objectives: bool = True,
    runs_dir: "str | None" = None,
    run_timestamp: "str | None" = None,
) -> CrosscheckReport:
    """Run the full validation chain over a random instance population.

    Instance sizes default to brute-force-friendly values; every exact
    method solves the same :class:`~repro.solve.Problem` per instance,
    at randomized (P, L) bounds, through the
    :func:`repro.solve.solve` facade.  With ``jobs > 1`` (or
    ``$REPRO_JOBS``) instances run in worker processes; the report is
    identical to a serial run.

    Parameters
    ----------
    objectives:
        Also validate the converse-objective links (period-/latency-
        minimizing DPs against the objective-aware brute force, and the
        energy greedy's bounds/optimality invariants) at a randomized
        reliability floor below each instance's bounded optimum.  On
        by default; switch off to time the reliability chain alone.
    scenario:
        Optional scenario-driven population: a registered scenario
        name, a bare :class:`~repro.scenarios.spec.ScenarioSpec` (e.g.
        loaded from a file), or a registry
        :class:`~repro.scenarios.registry.Scenario` — anything
        :func:`repro.scenarios.resolve_scenario` accepts.  ``None``
        (default) keeps this module's own uniform random population.

        A scenario's *distributions* (work, output, speeds, failure
        rates) drive the population at this function's
        brute-force-friendly sizes: ``n_tasks``/``p`` override the
        spec's dimensions, which would dwarf the exact solvers, and
        sweep-axis specs are sampled evenly across their variants so
        every regime retains coverage.  Per-instance (P, L) bounds are
        derived from an unbounded heuristic solve, so they land in the
        feasibility transition region regardless of the scenario's
        cost scales.  The scenario must generate homogeneous platforms
        (the registry's ``homogeneous`` capability gate, or
        :func:`~repro.scenarios.spec.spec_is_homogeneous` for bare
        specs): the chain's exact solvers are Section 5 algorithms,
        and running them out of scope would report false
        disagreements — heterogeneous scenarios raise ``ValueError``
        up front.
    runs_dir:
        When given, write the report to the run ledger
        (:mod:`repro.obs.ledger`) under this directory: a manifest with
        the aggregate counts plus one ``per_unit.jsonl`` line per
        checked instance.  ``run_timestamp`` pins the run_id's
        timestamp tag (defaults to the current UTC time).
    """
    from repro.experiments.harness import resolve_jobs

    jobs = resolve_jobs(jobs)
    payloads: "list[tuple[dict, dict] | None]" = [None] * n_instances
    if scenario is not None:
        from repro.scenarios import (
            generate_ensembles,
            resolve_scenario,
            spec_is_homogeneous,
        )

        spec, entry = resolve_scenario(scenario)
        homogeneous = entry.homogeneous if entry is not None else spec_is_homogeneous(spec)
        if not homogeneous:
            raise ValueError(
                f"cross-check needs a homogeneous scenario (the exact solvers "
                f"implement Section 5 algorithms); scenario {spec.name!r} "
                f"generates heterogeneous platforms"
            )
        sized = spec.with_(n_tasks=n_tasks, p=p, n_instances=n_instances)
        views = [v for e in generate_ensembles(sized, seed=seed) for v in e]
        if len(views) > n_instances:
            # Sweep-axis specs expand to len(variants) * n_instances
            # instances; keep the population at n_instances but sample
            # it evenly so every variant regime retains coverage
            # instead of silently checking only the first variant.
            chosen = np.linspace(0, len(views) - 1, n_instances).round().astype(int)
            views = [views[i] for i in chosen]
        # The chosen rows materialize here (and only here) — the
        # cross-check genuinely solves every instance.
        payloads = [(to_dict(v.chain), to_dict(v.platform)) for v in views]
    master = ensure_rng(seed)
    seeds = spawn_seeds(master, n_instances)
    if jobs == 1 or n_instances <= 1:
        records = [
            _check_instance(s, n_tasks, p, simulate, inst, objectives)
            for s, inst in zip(seeds, payloads)
        ]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, n_instances)) as pool:
            records = list(
                pool.map(
                    _check_instance,
                    seeds,
                    [n_tasks] * n_instances,
                    [p] * n_instances,
                    [simulate] * n_instances,
                    payloads,
                    [objectives] * n_instances,
                )
            )
    report = CrosscheckReport()
    for record in records:
        report.instances += 1
        report.solver_disagreements += record["solver_disagreement"]
        report.heuristic_violations += record["heuristic_violation"]
        report.rbd_disagreements += record["rbd_disagreement"]
        report.simulation_outliers += record["simulation_outlier"]
        report.objective_disagreements += record["objective_disagreement"]
        report.details.extend(record["details"])

    if runs_dir is not None:
        import time

        from repro.obs import run_id_for, write_run

        scenario_name = None
        if scenario is not None:
            from repro.scenarios import resolve_scenario

            scenario_name = resolve_scenario(scenario)[0].name
        identity = {
            "command": "crosscheck",
            "seed": seed,
            "n_instances": n_instances,
            "n_tasks": n_tasks,
            "p": p,
            "simulate": simulate,
            "objectives": objectives,
            "scenario": scenario_name,
        }
        timestamp = run_timestamp or time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
        manifest = {
            **identity,
            "timestamp": timestamp,
            "scenario": scenario_name,
            "clean": report.clean,
            "summary": report.summary(),
            "counts": {
                "solver_disagreements": report.solver_disagreements,
                "heuristic_violations": report.heuristic_violations,
                "rbd_disagreements": report.rbd_disagreements,
                "simulation_outliers": report.simulation_outliers,
                "objective_disagreements": report.objective_disagreements,
            },
        }
        per_unit = [
            {
                "instance": index,
                "source": "check",
                "clean": not any(
                    record[flag]
                    for flag in (
                        "solver_disagreement",
                        "heuristic_violation",
                        "rbd_disagreement",
                        "objective_disagreement",
                    )
                ),
                **{key: value for key, value in record.items() if key != "details"},
            }
            for index, record in enumerate(records)
        ]
        write_run(
            runs_dir, run_id_for(identity, timestamp), manifest, per_unit=per_unit
        )
    return report
