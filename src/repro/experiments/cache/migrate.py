"""Stream a cache store between backends, with verification.

``repro cache migrate --to sqlite`` (or ``--to files``) is the one
sanctioned way to switch a cache directory's backend: backend
auto-detection (:func:`~repro.experiments.cache.backend.detect_backend_kind`)
keys on what is on disk, so a directory must hold exactly one store.
Migration therefore streams every entry into the destination, verifies
the copy, and then consumes the source.

Verification is a full second scan of the destination compared against
the source by row digest (:func:`~repro.experiments.cache.backend.payload_digest`
over the raw entry text — which :meth:`store_text` copied verbatim, so
a clean migration is byte-identical, not merely equivalent).  On any
mismatch the destination is removed and the source left untouched.
"""

from __future__ import annotations

import os
import pathlib

from repro.experiments.cache.backend import (
    detect_backend_kind,
    make_backend,
    payload_digest,
)

__all__ = ["migrate_cache"]


def migrate_cache(
    root: "str | os.PathLike[str]",
    to: str,
    keep_source: bool = False,
) -> dict:
    """Move the store under *root* to the *to* backend in place.

    Returns a report dict (``from``/``to``/``entries``/``verified``/
    ``source_removed``) — what ``repro cache migrate`` prints.  With
    *keep_source* the source store survives as a backup; note the
    directory then holds both stores and auto-detection prefers the
    SQLite one.
    """
    root = pathlib.Path(root)
    if to not in ("files", "sqlite"):
        raise ValueError(f"unknown migration target {to!r}; use 'files' or 'sqlite'")
    source_kind = detect_backend_kind(root)
    if source_kind is None:
        raise ValueError(f"no cache store found under {root}")
    if source_kind == to:
        raise ValueError(f"cache at {root} already uses the {to!r} backend")

    source = make_backend(source_kind, root)
    dest = make_backend(to, root)
    try:
        digests = {}
        for key, text in source.scan():
            dest.store_text(key, text)
            digests[key] = payload_digest(text)

        copied = {key: payload_digest(text) for key, text in dest.scan()}
        if copied != digests:
            missing = sorted(set(digests) - set(copied))
            torn = sorted(
                k for k in set(digests) & set(copied) if digests[k] != copied[k]
            )
            dest.clear()
            raise RuntimeError(
                f"migration verification failed ({len(missing)} missing, "
                f"{len(torn)} mismatched row digests); source left untouched"
            )

        if not keep_source:
            source.clear()
        return {
            "root": str(root),
            "from": source_kind,
            "to": to,
            "entries": len(digests),
            "verified": len(copied),
            "source_removed": not keep_source,
        }
    finally:
        source.close()
        dest.close()
