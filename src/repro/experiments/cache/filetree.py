"""File-per-key backend — the original cache layout.

One JSON file per entry::

    <root>/<key[:2]>/<key>.json

Writes are atomic (``tempfile.mkstemp`` in the destination directory +
``os.replace``), so concurrent runs sharing a cache directory never
observe a partial entry.  Zero shared state beyond the filesystem: no
handles, nothing to pickle, works on any shared POSIX mount.  Its
weakness — one inode per entry and rename-level write concurrency —
is what the :mod:`~repro.experiments.cache.sqlite` backend exists to
fix for fleet-scale sweeps.
"""

from __future__ import annotations

import os
import pathlib
import tempfile
from typing import Iterator

from repro.experiments.cache.backend import decode_payload, encode_payload

__all__ = ["FileTreeBackend"]


class FileTreeBackend:
    """See the module docstring; protocol in
    :class:`~repro.experiments.cache.backend.CacheBackend`."""

    kind = "files"

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self.root = pathlib.Path(root)

    def path(self, key: str) -> pathlib.Path:
        """Where *key*'s entry lives (two-hex-char fan-out directories)."""
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> "dict | None":
        try:
            text = self.path(key).read_text()
        except FileNotFoundError:
            return None
        return decode_payload(text)

    def store(self, key: str, payload: dict) -> None:
        self.store_text(key, encode_payload(payload))

    def store_text(self, key: str, text: str) -> None:
        """Atomic write: temp file in the destination dir + ``os.replace``."""
        path = self.path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def discard(self, key: str) -> None:
        try:
            self.path(key).unlink()
        except OSError:
            pass

    def scan(self) -> "Iterator[tuple[str, str]]":
        if not self.root.is_dir():
            return
        for prefix in sorted(p for p in self.root.iterdir() if p.is_dir()):
            for entry in sorted(prefix.glob("*.json")):
                yield entry.stem, entry.read_text()

    def storage_stats(self) -> dict:
        entries = 0
        size = 0
        if self.root.is_dir():
            for entry in self.root.rglob("*.json"):
                entries += 1
                size += entry.stat().st_size
        return {"backend": self.kind, "entries": entries, "bytes": size}

    def vacuum(self) -> dict:
        """Sweep leftovers an interrupted writer can leave behind:
        orphaned ``*.tmp`` files and fan-out directories emptied by
        corrupt-entry recovery."""
        removed_tmp = 0
        removed_dirs = 0
        if self.root.is_dir():
            for tmp in list(self.root.rglob("*.tmp")):
                try:
                    tmp.unlink()
                    removed_tmp += 1
                except OSError:
                    pass
            for prefix in list(self.root.iterdir()):
                if prefix.is_dir():
                    try:
                        prefix.rmdir()
                        removed_dirs += 1
                    except OSError:  # not empty — still holds entries
                        pass
        return {
            "backend": self.kind,
            "removed_tmp": removed_tmp,
            "removed_dirs": removed_dirs,
        }

    def clear(self) -> None:
        if not self.root.is_dir():
            return
        for entry in list(self.root.rglob("*.json")):
            try:
                entry.unlink()
            except OSError:
                pass
        self.vacuum()

    def close(self) -> None:
        pass
