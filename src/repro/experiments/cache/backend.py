"""Storage protocol shared by the result-cache backends.

:class:`repro.experiments.cache.ResultCache` owns key derivation,
record validation, and the per-process hit/miss counters; a *backend*
owns only bytes-at-rest.  The protocol is deliberately narrow — a
keyed text store with a deterministic full scan — so a backend can be
a file tree, a SQLite database, or anything else that can promise
atomic per-key visibility.

Canonical encoding
------------------
Both shipped backends persist one entry as the same canonical text,
``json.dumps(payload, sort_keys=True)`` (:func:`encode_payload`).
Content-hash keys are derived upstream from ingredients, never from
stored bytes, but the *entries* being byte-identical across backends
is what makes migration verifiable: :func:`repro.experiments.cache.migrate_cache`
compares :func:`payload_digest` row digests between the source and
destination scans, and a file→sqlite→file round trip reproduces the
original tree bit for bit.

Error contract
--------------
``load`` returns ``None`` for an absent key and raises ``ValueError``
(or ``OSError``) for an entry that exists but cannot be decoded —
:class:`~repro.experiments.cache.ResultCache` maps the former to a
plain miss and the latter to its ``corrupt`` counter before
discarding the entry.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from typing import Iterator, Protocol, runtime_checkable

__all__ = [
    "CacheBackend",
    "decode_payload",
    "detect_backend_kind",
    "encode_payload",
    "make_backend",
    "payload_digest",
]


def encode_payload(payload: dict) -> str:
    """The canonical entry text: sorted-keys JSON.

    Every store path routes through this (or persists text produced by
    it), so two backends holding the same records hold the same bytes.
    """
    return json.dumps(payload, sort_keys=True)


def decode_payload(text: str) -> dict:
    """Decode canonical entry text, raising ``ValueError`` when the
    stored bytes are not a JSON object (torn write, disk damage)."""
    try:
        payload = json.loads(text)
    except ValueError as exc:
        raise ValueError(f"undecodable cache entry: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValueError("cache entry is not a JSON object")
    return payload


def payload_digest(text: str) -> str:
    """Row digest used by the migration verification pass."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@runtime_checkable
class CacheBackend(Protocol):
    """What :class:`~repro.experiments.cache.ResultCache` needs from storage."""

    #: Backend selector token ("files", "sqlite") — also the telemetry
    #: label on the per-backend ``cache.backend.*`` counters.
    kind: str
    #: Directory the store lives under.
    root: pathlib.Path

    def load(self, key: str) -> "dict | None":
        """Record stored under *key*, ``None`` if absent; raises
        ``ValueError``/``OSError`` on an undecodable entry."""

    def store(self, key: str, payload: dict) -> None:
        """Persist *payload* under *key* (canonical encoding), atomically:
        a concurrent reader sees the old entry, the new one, or none —
        never a torn one."""

    def store_text(self, key: str, text: str) -> None:
        """Persist pre-encoded entry text verbatim (the migration path —
        copying text instead of re-encoding keeps row bytes identical)."""

    def scan(self) -> "Iterator[tuple[str, str]]":
        """Yield every ``(key, entry_text)`` in deterministic (sorted key)
        order — the substrate for migration and its verification pass."""

    def discard(self, key: str) -> None:
        """Drop *key* if present (corrupt-entry recovery); absent is fine."""

    def storage_stats(self) -> dict:
        """Persistent on-disk totals (entry count, bytes) — what
        ``repro cache stats`` reports without a live sweep.  Never
        creates the store."""

    def vacuum(self) -> dict:
        """Reclaim dead space (stale temp files / free database pages);
        returns a small report dict."""

    def clear(self) -> None:
        """Remove the whole store from disk (migration consumes the
        source so backend auto-detection stays unambiguous)."""

    def close(self) -> None:
        """Release any held handles; the store itself stays on disk."""


def make_backend(kind: str, root: "str | os.PathLike[str]") -> CacheBackend:
    """Instantiate a backend by its selector token."""
    from repro.experiments.cache.filetree import FileTreeBackend
    from repro.experiments.cache.sqlite import SQLiteBackend

    kinds = {"files": FileTreeBackend, "sqlite": SQLiteBackend}
    try:
        factory = kinds[kind]
    except KeyError:
        raise ValueError(
            f"unknown cache backend {kind!r}; expected one of {sorted(kinds)}"
        ) from None
    return factory(root)


def detect_backend_kind(root: "str | os.PathLike[str]") -> "str | None":
    """What store already lives under *root*: ``"sqlite"`` if it holds a
    ``cache.db``, ``"files"`` if it holds a file-tree entry, ``None``
    when empty or absent (nothing to preserve — any backend may start
    fresh)."""
    from repro.experiments.cache.sqlite import DB_NAME

    root = pathlib.Path(root)
    if (root / DB_NAME).exists():
        return "sqlite"
    if root.is_dir() and next(root.glob("??/*.json"), None) is not None:
        return "files"
    return None
