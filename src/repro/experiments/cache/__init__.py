"""On-disk result cache for bound sweeps — pluggable storage backends.

The paper's evaluation recomputes the same ``method x instance x
bounds`` solves for every figure, bench, and cross-check run.  This
package gives them a shared, content-addressed store so a sweep
computed once is free forever after.

Architecture
------------
:class:`ResultCache` owns the *meaning* of the cache — key derivation,
record validation, corrupt-entry recovery, hit/miss counters — and
delegates bytes-at-rest to a :class:`~repro.experiments.cache.backend.CacheBackend`:

* :class:`~repro.experiments.cache.filetree.FileTreeBackend`
  (``kind="files"``, the default) — one JSON file per key under
  ``<root>/<key[:2]>/<key>.json``, atomic via mkstemp + ``os.replace``;
* :class:`~repro.experiments.cache.sqlite.SQLiteBackend`
  (``kind="sqlite"``) — a single ``<root>/cache.db`` in WAL mode with
  ``BEGIN IMMEDIATE`` writers and a ``schema_version`` table, built
  for fleets of concurrent sweep processes.

Both persist identical bytes (sorted-keys CACHE_FORMAT JSON), so keys
*and* record payloads are bit-identical across backends and
:func:`migrate_cache` / ``repro cache migrate`` can verify a switch by
row digest.  Backend choice: ``ResultCache(root, backend=...)``
explicitly, else whatever store already lives under ``root``, else
``$REPRO_CACHE_BACKEND``, else the file tree (see
:func:`resolve_backend`).

Keys
----
``key = sha256(method name, instance digest, objective fields,
per-point bound tokens, seed, package version)`` via
:func:`repro.io.content_hash`.  The *instance digest*
(:func:`repro.core.ensemble.instance_digest`) is a raw-array-bytes
hash shared by the columnar :class:`~repro.core.ensemble.Ensemble`
rows and materialized ``(chain, platform)`` pairs — deriving keys from
it means a warm sweep over an ensemble never builds a model object or
a JSON payload, and an ensemble sweep and its materialized twin hit
the exact same entries.  Keys are stable across process restarts, and
automatically invalidated when any ingredient (chain, platform,
bounds, objective, method identity, per-unit seed, repro release)
changes, because a different key simply never matches.  Each entry
holds::

    {"repro_cache": CACHE_FORMAT, "method": ..., "n_points": ...,
     "solved": [...bools...], "failure": [...floats...],
     "objective_values": [...floats...]}

``objective_values`` records each point's achieved objective value
(:meth:`repro.algorithms.result.SolveResult.objective_value`) so the
sweep aggregations can report quantiles of the optimum, not just
solved counts.

Next to sweep units the cache also stores **grid-probe records**
(:meth:`ResultCache.put_record` under :meth:`ResultCache.probe_key`):
the per-instance unbounded-solve scalars
:func:`repro.solve.derive_bounds_grid` needs, so ``--grid auto`` is
free on a warm cache.

Corrupted or truncated entries (interrupted writes, disk faults) are
treated as misses and discarded, so recovery is automatic: the unit is
recomputed and rewritten.  Each such recovery also increments the
dedicated :attr:`ResultCache.corrupt` counter — a corrupt entry *is* a
miss for control flow, but a run whose manifest shows nonzero
``corrupt`` had cache entries damaged on disk, which plain miss counts
used to hide.

Environment
-----------
``REPRO_CACHE_DIR``
    Default cache directory for the harness/figures/benches when no
    explicit ``cache`` argument is given.  Unset means "no cache".
``REPRO_CACHE_BACKEND``
    Backend for *fresh* cache directories: ``files`` (default) or
    ``sqlite``.  A directory already holding a store keeps its backend
    regardless — switching is an explicit ``repro cache migrate``.

Statistics (:attr:`ResultCache.hits` / ``misses`` / ``puts`` /
``corrupt``) feed the run manifest written by ``python -m repro
experiment``; persistent on-disk totals come from the backend via
:meth:`ResultCache.storage_stats` (``repro cache stats``).
"""

from __future__ import annotations

import math
import os
import pathlib
import warnings
from typing import Sequence

import numpy as np

from repro.core.ensemble import instance_digest
from repro.experiments.cache.backend import (
    CacheBackend,
    detect_backend_kind,
    make_backend,
)
from repro.experiments.cache.filetree import FileTreeBackend
from repro.experiments.cache.migrate import migrate_cache
from repro.experiments.cache.sqlite import SQLiteBackend
from repro.io import content_hash
from repro.obs import telemetry as obs
from repro.solve.problem import Problem, encode_bound

__all__ = [
    "CACHE_FORMAT",
    "CacheBackend",
    "FileTreeBackend",
    "ResultCache",
    "SQLiteBackend",
    "migrate_cache",
    "resolve_backend",
    "resolve_cache",
    "unit_arrays",
    "unit_record",
]

#: Bumped to 2 with the :mod:`repro.solve` redesign (keys derived from
#: per-point Problem content hashes), to 3 with the tri-criteria facade
#: (objective/floor fields in every Problem payload, grid-probe
#: records), and to 4 with the columnar ensemble core: keys are now
#: derived from raw-array *instance digests* instead of JSON Problem
#: payload hashes, and entries carry per-point achieved objective
#: values.  The one-release format-3 legacy-read path was removed in
#: 1.4.0; pre-columnar entries simply miss and recompute.  Storage
#: layout is versioned separately per backend (the SQLite backend's
#: ``schema_version`` table).
CACHE_FORMAT = 4


class ResultCache:
    """Content-addressed store of per-unit sweep results.

    Parameters
    ----------
    root:
        Cache directory (created on first write).  Optional when an
        instantiated *backend* is given.
    backend:
        Storage backend: a :class:`CacheBackend` instance, a kind
        token (``"files"`` / ``"sqlite"``) to open at *root*, or None
        to auto-select via :func:`resolve_backend`.

    Attributes
    ----------
    hits, misses, puts:
        Lookup/store counters since construction — the "zero solves on a
        warm cache" acceptance check reads these.
    corrupt:
        How many lookups found an entry on disk but could not use it
        (bad JSON, wrong format, wrong shape).  Every corrupt lookup
        also counts as a miss — the unit recomputes either way — but a
        nonzero ``corrupt`` means cache entries were damaged, not
        merely absent.
    """

    def __init__(
        self,
        root: "str | os.PathLike[str] | None" = None,
        backend: "CacheBackend | str | None" = None,
    ) -> None:
        if backend is None:
            if root is None:
                raise TypeError("ResultCache() needs a root directory or a backend")
            backend = resolve_backend(root)
        elif isinstance(backend, str):
            if root is None:
                raise TypeError(
                    f"ResultCache(backend={backend!r}) needs a root directory"
                )
            backend = make_backend(backend, root)
        self.backend = backend
        self.root = pathlib.Path(backend.root)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt = 0

    # -- keys ------------------------------------------------------------

    def unit_key_for(
        self,
        method_name: str,
        base_digest: str,
        bounds: Sequence[tuple[float, float]],
        seed: "int | None" = None,
        fingerprint: "str | None" = None,
        scenario: "str | None" = None,
        objective: str = "reliability",
        min_reliability: float = 0.0,
    ) -> str:
        """Content hash identifying one work unit's result.

        A unit is one method run on one instance over a family of sweep
        points.  *base_digest* is the instance's raw-array content
        digest (:func:`repro.core.ensemble.instance_digest` — an
        :class:`~repro.core.ensemble.Ensemble` row hash, or the same
        digest computed from a materialized pair), so key derivation
        involves no object or JSON construction; each point contributes
        its (P, L) bound tokens, and the problem-level *objective* and
        *min_reliability* fields are explicit ingredients.

        The package version and the method's implementation
        *fingerprint* (:meth:`Method.fingerprint`) are part of the
        key, so neither a solver fix in a new release nor an edited or
        re-registered method ever replays stale arrays from a shared
        cache directory.

        When the sweep was materialized from a declarative scenario,
        *scenario* carries the spec's content hash
        (:func:`repro.scenarios.scenario_hash`) and becomes part of the
        key: two workloads that happen to generate an identical
        instance still keep separate entries, and editing a spec's
        generative fields can never replay arrays computed for the old
        workload.

        Keys are backend-independent: the same unit resolves to the
        same key in a file tree and in a ``cache.db``.
        """
        from repro import __version__

        ingredients = {
            "repro_cache": CACHE_FORMAT,
            "repro_version": __version__,
            "method": method_name,
            "fingerprint": fingerprint,
            "seed": seed,
            "objective": objective,
            "min_reliability": float(min_reliability),
        }
        if scenario is not None:
            ingredients["scenario"] = scenario
        return content_hash(
            ingredients,
            base_digest,
            [[encode_bound(float(P)), encode_bound(float(L))] for P, L in bounds],
        )

    def unit_key(
        self,
        method_name: str,
        problems: Sequence[Problem],
        seed: "int | None" = None,
        fingerprint: "str | None" = None,
        scenario: "str | None" = None,
    ) -> str:
        """:meth:`unit_key_for` spelled over a materialized Problem family.

        The family shares one instance (chain + platform + objective);
        each member contributes its (P, L) bounds.  Produces exactly
        the key an :class:`~repro.core.ensemble.Ensemble`-driven sweep
        derives for the same instance — the bit-identity contract
        between the columnar and materialized paths.
        """
        if not problems:
            raise ValueError("a work unit needs at least one Problem")
        base = problems[0]
        return self.unit_key_for(
            method_name,
            _pair_digest(base.chain, base.platform),
            [(p.max_period, p.max_latency) for p in problems],
            seed=seed,
            fingerprint=fingerprint,
            scenario=scenario,
            objective=base.objective,
            min_reliability=base.min_reliability,
        )

    def probe_key_for(
        self,
        method_name: str,
        base_digest: str,
        fingerprint: "str | None" = None,
    ) -> str:
        """Content hash identifying one grid-probe solve's record.

        :func:`repro.solve.derive_bounds_grid` solves every ensemble
        instance once, unbounded, and keeps the solution's worst-case
        period and latency — scalars a sweep unit does not store.  The
        probe key addresses that record: same ingredients as
        :meth:`unit_key_for` (method identity, package version, the
        instance digest) under a distinct ``kind`` tag, so probe
        records and sweep units can never collide.
        """
        from repro import __version__

        return content_hash(
            {
                "repro_cache": CACHE_FORMAT,
                "repro_version": __version__,
                "kind": "grid-probe",
                "method": method_name,
                "fingerprint": fingerprint,
            },
            base_digest,
        )

    def probe_key(
        self,
        method_name: str,
        problem: Problem,
        fingerprint: "str | None" = None,
    ) -> str:
        """:meth:`probe_key_for` spelled over a materialized Problem."""
        return self.probe_key_for(
            method_name,
            _pair_digest(problem.chain, problem.platform),
            fingerprint=fingerprint,
        )

    # -- lookup / store --------------------------------------------------

    def get_record(
        self,
        key: str,
        method_name: "str | None" = None,
        n_points: "int | None" = None,
    ) -> "dict | None":
        """Return the record stored under *key*, or None on a miss.

        The one lookup path for sweep units and grid probes alike.
        With *n_points* the record must additionally decode as a sweep
        unit of that many points (:func:`unit_arrays`) before it counts
        as a hit.  A malformed entry — undecodable bytes, wrong format
        stamp, wrong shape — counts as a miss *and* a :attr:`corrupt`
        lookup and is discarded, so the recomputed unit overwrites it.

        *method_name* labels the telemetry counters
        (``cache.hit[heur-l]``, ...) when a collector is installed —
        the per-method cache breakdown run manifests report.  The
        backend-kind twin counters (``cache.backend.hit[sqlite]``, ...)
        are emitted alongside.
        """
        try:
            payload = self.backend.load(key)
            if payload is not None:
                if payload.get("repro_cache") != CACHE_FORMAT:
                    raise ValueError("cache format mismatch")
                if n_points is not None:
                    unit_arrays(payload, n_points)
        except (ValueError, KeyError, TypeError, OSError):
            # Corrupted entry: recover by dropping it and recomputing.
            self.misses += 1
            self.corrupt += 1
            obs.counter("cache.corrupt", label=method_name)
            obs.counter("cache.backend.corrupt", label=self.backend.kind)
            self.backend.discard(key)
            return None
        if payload is None:
            self.misses += 1
            obs.counter("cache.miss", label=method_name)
            obs.counter("cache.backend.miss", label=self.backend.kind)
            return None
        self.hits += 1
        obs.counter("cache.hit", label=method_name)
        obs.counter("cache.backend.hit", label=self.backend.kind)
        return payload

    def put_record(self, key: str, record: dict) -> None:
        """Store a JSON-able record atomically.

        The format stamp is added here; everything else is the
        caller's payload (for sweep units, built by :func:`unit_record`).
        Atomicity is the backend's: temp file + rename for the file
        tree, an immediate transaction for SQLite — either way a
        concurrent reader never observes a torn entry.
        """
        self.backend.store(key, {"repro_cache": CACHE_FORMAT, **record})
        self.puts += 1
        obs.counter("cache.backend.put", label=self.backend.kind)

    # -- deprecated tuple-shaped shims -----------------------------------

    def get(
        self, key: str, n_points: int, method_name: "str | None" = None
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray | None, dict | None] | None":
        """Deprecated: use :meth:`get_record` + :func:`unit_arrays`.

        The old tuple-shaped lookup, kept one release as a shim over
        the record API.
        """
        warnings.warn(
            "ResultCache.get() is deprecated; use "
            "get_record(key, n_points=...) and unit_arrays()",
            DeprecationWarning,
            stacklevel=2,
        )
        record = self.get_record(key, method_name=method_name, n_points=n_points)
        if record is None:
            return None
        return unit_arrays(record, n_points)

    def put(
        self,
        key: str,
        solved: np.ndarray,
        failure: np.ndarray,
        objective_values: "np.ndarray | None" = None,
        method_name: str = "",
        info: "dict | None" = None,
    ) -> None:
        """Deprecated: use :meth:`put_record` + :func:`unit_record`.

        The old array-argument store, kept one release as a shim over
        the record API.
        """
        warnings.warn(
            "ResultCache.put() is deprecated; use "
            "put_record(key, unit_record(...))",
            DeprecationWarning,
            stacklevel=2,
        )
        self.put_record(
            key,
            unit_record(
                solved,
                failure,
                objective_values,
                method_name=method_name,
                info=info,
            ),
        )

    # -- bookkeeping -----------------------------------------------------

    def stats(self) -> dict:
        """Counter snapshot for manifests and logs.

        ``hit_rate`` is ``hits / (hits + misses)``, or None before any
        lookup — manifests report it directly instead of every reader
        re-deriving it.
        """
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "corrupt": self.corrupt,
            "hit_rate": self.hits / lookups if lookups else None,
        }

    def storage_stats(self) -> dict:
        """Persistent on-disk totals from the backend (entry count,
        bytes, and for SQLite the schema version) — meaningful without
        a live sweep, unlike the process-local :meth:`stats`."""
        return self.backend.storage_stats()

    def reset(self) -> None:
        """Zero the counters (entries on disk are untouched).

        Lets one shared cache report per-phase stats: reset between a
        cold and a warm leg and each leg's manifest sees only its own
        lookups.
        """
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ResultCache({str(self.root)!r}, backend={self.backend.kind!r}, "
            f"hits={self.hits}, misses={self.misses})"
        )


def unit_record(
    solved: np.ndarray,
    failure: np.ndarray,
    objective_values: "np.ndarray | None" = None,
    method_name: str = "",
    info: "dict | None" = None,
) -> dict:
    """Build the canonical sweep-unit record from result arrays.

    *info* carries the unit's solve-detail record (search probe totals,
    a convergence flag) when the method reported one, so a warm run's
    ledger still attributes convergence per unit.  Entries without one
    omit the field entirely — the batched and per-row paths keep
    writing byte-identical payloads for methods that report no details.
    """
    record = {
        "method": method_name,
        "n_points": int(len(solved)),
        "solved": [bool(s) for s in solved],
        "failure": [float(f) for f in failure],
        "objective_values": None
        if objective_values is None
        else [_encode_value(v) for v in objective_values],
    }
    if info is not None:
        record["info"] = info
    return record


def unit_arrays(
    record: dict, n_points: int
) -> "tuple[np.ndarray, np.ndarray, np.ndarray | None, dict | None]":
    """Decode a sweep-unit record into ``(solved, failure,
    objective_values, info)`` arrays.

    ``objective_values`` is None for entries stored without them;
    ``info`` is the per-unit solve detail record when present.  Raises
    (``ValueError`` / ``KeyError`` / ``TypeError``) on anything
    malformed — :meth:`ResultCache.get_record` uses this as the unit
    validity check, mapping failures to its ``corrupt`` counter.
    """
    if record["repro_cache"] != CACHE_FORMAT:
        raise ValueError("cache format mismatch")
    solved = np.asarray(record["solved"], dtype=bool)
    failure = np.asarray(record["failure"], dtype=float)
    if solved.shape != (n_points,) or failure.shape != (n_points,):
        raise ValueError("cache entry shape mismatch")
    objective_values = None
    if record.get("objective_values") is not None:
        # float() also decodes the "inf" tokens _encode_value writes.
        objective_values = np.array(
            [float(v) for v in record["objective_values"]], dtype=float
        )
        if objective_values.shape != (n_points,):
            raise ValueError("cache entry shape mismatch")
    info = record.get("info")
    if info is not None and not isinstance(info, dict):
        raise ValueError("cache entry info mismatch")
    return solved, failure, objective_values, info


def _pair_digest(chain, platform) -> str:
    """A materialized pair's :func:`instance_digest` — the one digest
    spelling shared by unit keys and probe keys, so the two can never
    drift apart ingredient-wise."""
    return instance_digest(
        chain.work,
        chain.output,
        platform.speeds,
        platform.failure_rates,
        platform.bandwidth,
        platform.link_failure_rate,
        platform.max_replication,
    )


def _encode_value(value: float) -> "float | str":
    """JSON-safe float encoding for objective values (inf -> "inf")."""
    value = float(value)
    return value if math.isfinite(value) else repr(value)


def resolve_backend(
    root: "str | os.PathLike[str]", kind: "str | None" = None
) -> CacheBackend:
    """Pick the storage backend for the store at *root*.

    Precedence: explicit *kind* > whatever store already lives on disk
    (a ``cache.db`` means sqlite, fan-out entries mean files) >
    ``$REPRO_CACHE_BACKEND`` > the file tree.  On-disk state outranks
    the environment so flipping ``$REPRO_CACHE_BACKEND`` never silently
    cold-starts an existing store — switching backends is an explicit
    ``repro cache migrate``.
    """
    if kind is None:
        kind = detect_backend_kind(root)
    if kind is None:
        kind = os.environ.get("REPRO_CACHE_BACKEND") or "files"
    return make_backend(kind, root)


def resolve_cache(
    cache: "ResultCache | str | os.PathLike[str] | None",
) -> "ResultCache | None":
    """Normalize a harness ``cache`` argument.

    ``None`` falls back to ``$REPRO_CACHE_DIR`` (no cache when unset); a
    path becomes a :class:`ResultCache` (backend via
    :func:`resolve_backend`); an existing cache passes through (so
    callers can share one counter across sweeps).
    """
    if isinstance(cache, ResultCache):
        return cache
    if cache is None:
        env = os.environ.get("REPRO_CACHE_DIR")
        if not env:
            return None
        cache = env
    return ResultCache(cache)
