"""SQLite backend — one ``cache.db``, WAL mode, transactional writers.

The file-tree backend is safe under concurrency but pays one inode and
one rename per entry; a fleet of sweep processes hammering a shared
cache directory turns that into metadata pressure.  This backend keeps
the whole store in a single SQLite database::

    <root>/cache.db          (plus SQLite's -wal / -shm sidecars)

* **WAL journal** — readers never block the writer and vice versa;
  lookups during a concurrent sweep see a consistent snapshot.
* **``BEGIN IMMEDIATE`` writers** — every mutation takes the write
  lock up front and commits or rolls back atomically, so a reader
  observes an entry fully or not at all: the transactional equivalent
  of the file tree's mkstemp + ``os.replace``.
* **``schema_version`` table** — future format bumps become schema
  migrations instead of cold caches; an unknown on-disk version raises
  instead of guessing.

Entries are rows of ``entries(key TEXT PRIMARY KEY, payload TEXT)``
holding exactly the canonical sorted-keys JSON the file tree holds, so
stores are byte-identical across backends and a migration round trip
is verifiable by row digest.

Process model: connections are opened lazily and keyed to the owning
PID; pickling drops the handle (``__getstate__``), so a backend that
crosses a process boundary — worker shards, ``ProcessPoolExecutor``
fan-out — reopens its own connection in the child instead of sharing
a file descriptor across a fork.
"""

from __future__ import annotations

import os
import pathlib
import sqlite3
from typing import Iterator

from repro.experiments.cache.backend import decode_payload, encode_payload

__all__ = ["DB_NAME", "SCHEMA_VERSION", "SQLiteBackend"]

#: Database filename under the cache root — also the marker
#: :func:`~repro.experiments.cache.backend.detect_backend_kind` keys on.
DB_NAME = "cache.db"

#: On-disk schema version (independent of CACHE_FORMAT, which stamps
#: record *payloads*).  Bump when the table layout changes and add a
#: migration step in :mod:`~repro.experiments.cache.migrate`.
SCHEMA_VERSION = 1

#: How long a writer waits for the write lock before giving up —
#: generous because the stress regime is many short transactions, not
#: long holders.
_BUSY_TIMEOUT_S = 30.0


class SQLiteBackend:
    """See the module docstring; protocol in
    :class:`~repro.experiments.cache.backend.CacheBackend`."""

    kind = "sqlite"

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self.root = pathlib.Path(root)
        self._conn: "sqlite3.Connection | None" = None
        self._pid: "int | None" = None

    @property
    def db_path(self) -> pathlib.Path:
        return self.root / DB_NAME

    # -- connection management -------------------------------------------

    def connection(self) -> sqlite3.Connection:
        """The calling process's connection, opened (and the schema
        ensured) on first use.  A PID mismatch means we were carried
        across a fork: the inherited handle is abandoned unreleased —
        closing it here could checkpoint under the parent — and a fresh
        one is opened for this process."""
        pid = os.getpid()
        if self._conn is None or self._pid != pid:
            self.root.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                self.db_path, timeout=_BUSY_TIMEOUT_S, isolation_level=None
            )
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            _ensure_schema(conn)
            self._conn = conn
            self._pid = pid
        return self._conn

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_conn"] = None  # handles never cross a pickle boundary
        state["_pid"] = None
        return state

    def close(self) -> None:
        if self._conn is not None and self._pid == os.getpid():
            self._conn.close()
        self._conn = None
        self._pid = None

    # -- storage protocol ------------------------------------------------

    def load(self, key: str) -> "dict | None":
        row = (
            self.connection()
            .execute("SELECT payload FROM entries WHERE key = ?", (key,))
            .fetchone()
        )
        if row is None:
            return None
        return decode_payload(row[0])

    def store(self, key: str, payload: dict) -> None:
        self.store_text(key, encode_payload(payload))

    def store_text(self, key: str, text: str) -> None:
        """Transactional write: ``BEGIN IMMEDIATE`` + upsert + commit."""
        conn = self.connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.execute(
                "INSERT OR REPLACE INTO entries (key, payload) VALUES (?, ?)",
                (key, text),
            )
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def discard(self, key: str) -> None:
        conn = self.connection()
        conn.execute("BEGIN IMMEDIATE")
        try:
            conn.execute("DELETE FROM entries WHERE key = ?", (key,))
            conn.execute("COMMIT")
        except BaseException:
            conn.execute("ROLLBACK")
            raise

    def scan(self) -> "Iterator[tuple[str, str]]":
        if not self.db_path.exists():
            return
        cursor = self.connection().execute(
            "SELECT key, payload FROM entries ORDER BY key"
        )
        yield from cursor

    def storage_stats(self) -> dict:
        stats = {
            "backend": self.kind,
            "entries": 0,
            "bytes": 0,
            "schema_version": None,
        }
        if not self.db_path.exists():
            return stats
        conn = self.connection()
        stats["entries"] = conn.execute("SELECT COUNT(*) FROM entries").fetchone()[0]
        stats["schema_version"] = conn.execute(
            "SELECT version FROM schema_version"
        ).fetchone()[0]
        stats["bytes"] = self._disk_bytes()
        return stats

    def vacuum(self) -> dict:
        """Checkpoint the WAL into the main database and ``VACUUM``
        free pages left by corrupt-entry deletions."""
        if not self.db_path.exists():
            return {"backend": self.kind, "bytes_before": 0, "bytes_after": 0}
        before = self._disk_bytes()
        conn = self.connection()
        conn.execute("VACUUM")
        # The rewrite itself lands in the WAL; fold it back and truncate
        # so the reclaimed space is visible on disk, not just logical.
        conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
        return {
            "backend": self.kind,
            "bytes_before": before,
            "bytes_after": self._disk_bytes(),
        }

    def clear(self) -> None:
        self.close()
        for path in self._disk_paths():
            try:
                path.unlink()
            except OSError:
                pass

    # -- internals -------------------------------------------------------

    def _disk_paths(self) -> "list[pathlib.Path]":
        base = str(self.db_path)
        return [pathlib.Path(base + suffix) for suffix in ("", "-wal", "-shm")]

    def _disk_bytes(self) -> int:
        total = 0
        for path in self._disk_paths():
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total


def _ensure_schema(conn: sqlite3.Connection) -> None:
    """Create (or verify) the schema inside one immediate transaction,
    so racing first writers serialize instead of tripping over each
    other's half-created tables."""
    conn.execute("BEGIN IMMEDIATE")
    try:
        conn.execute(
            "CREATE TABLE IF NOT EXISTS schema_version (version INTEGER NOT NULL)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS entries "
            "(key TEXT PRIMARY KEY, payload TEXT NOT NULL)"
        )
        row = conn.execute("SELECT version FROM schema_version").fetchone()
        if row is None:
            conn.execute(
                "INSERT INTO schema_version (version) VALUES (?)",
                (SCHEMA_VERSION,),
            )
        elif row[0] != SCHEMA_VERSION:
            raise ValueError(
                f"cache.db carries schema version {row[0]}; this release "
                f"reads version {SCHEMA_VERSION} — migrate or clear the cache"
            )
        conn.execute("COMMIT")
    except BaseException:
        conn.execute("ROLLBACK")
        raise
