"""Bound-sweep runner: columnar, parallel, cache-backed, deterministic.

For a suite of instances and a list of sweep points ``(P, L)``, run each
method on each instance at each point and aggregate the statistics the
paper plots:

* **number of solutions** — instances for which the method found a
  mapping within the bounds (Figures 6, 8, 10, 12, 14);
* **average failure probability** — with two averaging rules, both used
  by the paper:

  - ``"common"`` (Figures 7, 9, 11): average over the instances where
    *both heuristics* found a solution ("the average failure
    probability of the instances where both heuristics have found a
    solution", Section 8.1) — every curve is averaged over that same
    instance set;
  - ``"per-method"`` (Figures 13, 15): each curve averages over the
    instances *it* solved ("the average values are then not computed on
    the same set of instances", Section 8.2);

* **achieved objective quantiles** — per-point p10/p50/p90 of the
  solved instances' :meth:`~repro.algorithms.result.SolveResult
  .objective_value` (the optimal reliability/period/latency/energy
  across the ensemble), so converse-objective curves carry the same
  richness as the Figure 6 ones.

Execution model
---------------
Instances travel as columnar ensembles
(:class:`repro.core.ensemble.Ensemble`): scenario arguments generate
them natively, explicit ``(chain, platform)`` lists are grouped into
them, and rows only materialize ``TaskChain``/``Platform`` objects when
a solver actually runs.  The sweep decomposes into independent **work
units** — one registered method run on one instance across the whole
bounds list.  Units are

* **batched**: methods that carry a
  :attr:`~repro.experiments.methods.Method.solve_batch` kernel solve
  all of an ensemble's uncached, unseeded units in one columnar call
  per ``(method, ensemble)`` group — bit-identical to the per-row
  path (same arrays, same cache entries), just without the Python
  loop.  Kernels cover reliability floors, the converse objectives
  (``dp-period``/``dp-latency``), and the heterogeneous searches; one
  that does not cover a shape (say, a finite latency bound on
  ``dp-period``) raises
  :class:`~repro.algorithms.batch.BatchUnsupported` with a
  machine-readable ``reason`` — under ``batch="auto"`` those units
  fall back to per-row solves (counted per reason in telemetry and
  attributed in the ledger), under forced ``batch=True`` the sweep
  raises instead of silently degrading;
* **cached**: each unit's ``(solved, failure, objective_values)``
  arrays are stored under a content hash derived from the method name,
  the instance's raw-array *row digest*
  (:meth:`~repro.core.ensemble.Ensemble.row_hash`), the objective
  fields, the per-unit seed, and — for sweeps materialized from a
  declarative scenario (:mod:`repro.scenarios`) — the scenario spec's
  content hash (:mod:`repro.experiments.cache`).  A warm sweep
  therefore touches only array bytes: no objects, no JSON;
* **parallel**: with ``jobs > 1``, uncached units fan out over a
  :class:`concurrent.futures.ProcessPoolExecutor` in **columnar
  shards**: workers receive the method *name* plus one payload per
  shard carrying the raw rows of several instances (closures do not
  pickle; registry names and arrays do), rebuild a small ensemble, and
  return per-unit arrays — results land back by unit index, so
  parallel output is **bit-identical** to the serial path.  Expensive
  units (by :attr:`Method.cost_hint`) are submitted first so they do
  not straggle at the tail of the pool queue;
* **seeded**: stochastic methods (``Method.seeded``) get a
  deterministic per-unit seed via :func:`repro.util.rng.stable_seed`,
  derived from the unit's content — identical whether the unit runs
  serially, in a worker, or is replayed from cache.

Environment
-----------
``REPRO_JOBS``
    Default worker count when ``jobs`` is ``None`` (default 1 =
    serial).
``REPRO_CACHE_DIR``
    Default cache directory when ``cache`` is ``None`` (unset = no
    caching).
``REPRO_CACHE_BACKEND``
    Storage backend for fresh cache directories (``files`` default,
    ``sqlite`` for fleet-shared stores).  Cache lookups and stores
    happen only in the parent process — worker shards receive columnar
    payloads, never a cache handle — and the SQLite backend drops its
    connection on pickling regardless, so handles never cross a
    process boundary either way.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.algorithms.batch import BatchUnsupported
from repro.core.ensemble import Ensemble, InstanceView, ensembles_from_instances
from repro.experiments.cache import (
    ResultCache,
    resolve_cache,
    unit_arrays,
    unit_record,
)
from repro.experiments.methods import METHODS, Method, UnknownMethodError, get_method
from repro.obs import telemetry as obs
from repro.solve.problem import Problem
from repro.util.rng import stable_seed

__all__ = ["SweepResult", "run_sweep", "resolve_jobs"]

#: Shard sizing: aim for this many shards per worker (load balancing
#: headroom) without exceeding _SHARD_MAX units per payload.
_SHARD_WAVES = 4
_SHARD_MAX = 32


@dataclass
class SweepResult:
    """Raw sweep data plus the paper's aggregations.

    Attributes
    ----------
    xs:
        The sweep coordinate (one per sweep point) — a period or a
        latency bound, depending on the experiment.
    method_names:
        Curve labels, in run order.
    solved:
        Boolean array ``(n_methods, n_points, n_instances)``.
    failure:
        Failure probability array, same shape (1.0 where unsolved).
    objective_values:
        Achieved objective value array, same shape — what
        :meth:`~repro.algorithms.result.SolveResult.objective_value`
        returned per solve (0.0 / ``inf`` fill where unsolved,
        matching its conventions).
    objective:
        The :data:`repro.solve.OBJECTIVES` entry the sweep carried.
    batch_units:
        How many work units the batched kernels served (0 when no
        method carries one, the shapes were unsupported, batching was
        disabled, or every unit came from cache) — diagnostics only,
        the arrays are bit-identical either way.
    timings:
        Phase wall-clock breakdown of the sweep (``total``,
        ``cache_lookup``, ``batch``, ``solve`` seconds) — structured
        data the run ledger derives its timing records from.
    unit_events:
        One record per work unit, in deterministic ``(method,
        instance)`` order: ``method``, ``instance`` (flat index),
        ``source`` (``"cache"`` / ``"batch"`` / ``"parent"`` /
        ``"worker"``), ``solved`` count, ``seconds`` where measured
        (batch-served units carry the kernel group's amortized share
        and ``batch_group``; cache hits carry ``None``), a
        ``batch_fallback`` reason string
        (:attr:`~repro.algorithms.batch.BatchUnsupported.reason`) for
        units whose kernel refused the shape, and — for search methods
        that report them — per-unit ``probes`` totals and a
        ``converged`` flag.
        This is the ledger's ``per_unit.jsonl``, derived from data
        rather than log scraping.
    """

    xs: np.ndarray
    method_names: list[str]
    solved: np.ndarray
    failure: np.ndarray
    objective_values: "np.ndarray | None" = None
    objective: str = "reliability"
    batch_units: int = 0
    timings: dict = field(default_factory=dict)
    unit_events: list = field(default_factory=list)

    def method_seconds(self) -> dict[str, float]:
        """Measured per-method solve wall-clock, summed over units.

        Cache-served units contribute nothing (they cost no solve);
        batch-served units contribute their amortized kernel share.
        """
        out: dict[str, float] = {}
        for event in self.unit_events:
            seconds = event.get("seconds")
            if seconds is not None:
                out[event["method"]] = out.get(event["method"], 0.0) + seconds
        return out

    def counts(self, method: str) -> np.ndarray:
        """Solutions found per sweep point (the Fig. 6-style series)."""
        return self.solved[self._idx(method)].sum(axis=1)

    def average_failure(
        self, method: str, rule: str = "common", heuristics: Sequence[str] = ("heur-l", "heur-p")
    ) -> np.ndarray:
        """Average failure probability per sweep point (Fig. 7 style).

        ``rule="common"`` averages over instances solved by *all* of
        *heuristics* (the paper's hom rule); ``rule="per-method"`` over
        instances solved by *method* itself (the het rule).  Points with
        an empty averaging set yield NaN (plotted as gaps).
        """
        i = self._idx(method)
        if rule == "common":
            mask = np.ones(self.solved.shape[1:], dtype=bool)
            for h in heuristics:
                if h in self.method_names:
                    mask &= self.solved[self._idx(h)]
            # The method itself must also have solved the instance for
            # its failure probability to be meaningful.
            mask = mask & self.solved[i]
        elif rule == "per-method":
            mask = self.solved[i]
        else:
            raise ValueError(f"unknown averaging rule {rule!r}")
        sums = np.where(mask, self.failure[i], 0.0).sum(axis=1)
        counts = mask.sum(axis=1)
        with np.errstate(invalid="ignore"):
            return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)

    def objective_quantiles(
        self, method: str, quantiles: Sequence[float] = (0.1, 0.5, 0.9)
    ) -> np.ndarray:
        """Per-point quantiles of the achieved objective value.

        Returns a ``(len(quantiles), n_points)`` array of quantiles of
        :attr:`objective_values` over the instances *method* solved at
        each point (NaN where it solved none) — p10/p50/p90 by
        default, the spread the converse-objective curves plot
        alongside solved counts.
        """
        if self.objective_values is None:
            raise ValueError(
                "this sweep recorded no objective values (constructed "
                "without them)"
            )
        i = self._idx(method)
        qs = [float(q) for q in quantiles]
        if any(not 0.0 <= q <= 1.0 for q in qs):
            raise ValueError(f"quantiles must lie in [0, 1], got {quantiles!r}")
        mask = self.solved[i]
        values = self.objective_values[i]
        out = np.full((len(qs), mask.shape[0]), np.nan)
        for pt in range(mask.shape[0]):
            picked = values[pt, mask[pt]]
            if picked.size:
                out[:, pt] = np.quantile(picked, qs)
        return out

    def _idx(self, method: str) -> int:
        try:
            return self.method_names.index(method)
        except ValueError:
            raise UnknownMethodError(
                f"method {method!r} not in sweep; curves available: "
                f"{self.method_names}"
            ) from None


def resolve_jobs(jobs: "int | None") -> int:
    """Normalize a ``jobs`` argument: ``None`` -> ``$REPRO_JOBS`` -> 1."""
    if jobs is None:
        jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _unit_problems(
    base: Problem, bounds: Sequence[tuple[float, float]]
) -> list[Problem]:
    """The unit's Problem family: one bounded copy of *base* per point."""
    return [base.with_bounds(max_period=P, max_latency=L) for P, L in bounds]


def _unit_arrays(
    method: Method,
    view: InstanceView,
    bounds: Sequence[tuple[float, float]],
    seed: "int | None",
    objective: str,
    min_reliability: float,
) -> "tuple[np.ndarray, np.ndarray, np.ndarray, dict | None]":
    """Run one work unit: one method on one instance over all bounds.

    The single computation shared verbatim by the serial path and the
    worker processes — the reason ``jobs=1`` and ``jobs=N`` agree bit
    for bit.  Materializes the view's chain/platform here (and only
    here): cached units never reach this function.

    Returns ``(solved, failure, objective_values, info)`` where *info*
    aggregates the solve details search methods report — total
    ``probes`` across the unit's points and a ``converged`` flag
    (False when any point's search exhausted its budget) — or ``None``
    for methods that report neither.
    """
    base = view.problem(objective=objective, min_reliability=min_reliability)
    solved = np.zeros(len(bounds), dtype=bool)
    failure = np.ones(len(bounds), dtype=float)
    objective_values = np.empty(len(bounds), dtype=float)
    probes = 0
    converged: "bool | None" = None
    for pi, problem in enumerate(_unit_problems(base, bounds)):
        res = method.solve_problem(
            problem, seed=stable_seed(seed, pi) if method.seeded else None
        )
        solved[pi] = res.feasible
        if res.feasible:
            failure[pi] = res.evaluation.failure_probability
        objective_values[pi] = res.objective_value(objective)
        details = res.details
        if details:
            probes += int(details.get("probes", 0) or 0)
            if "converged" in details:
                converged = bool(details["converged"]) and (converged is not False)
    if probes == 0 and converged is None:
        return solved, failure, objective_values, None
    info: dict = {"probes": probes}
    if converged is not None:
        info["converged"] = converged
    return solved, failure, objective_values, info


def _unpack_batch(out, n_rows: int):
    """Normalize a ``solve_batch`` return to ``(solved, failure, values, infos)``.

    Kernels return three per-row arrays, or four items where the
    fourth is a per-row list of info dicts (the ``probes`` /
    ``converged`` aggregates the per-row path derives from solve
    details) — see :attr:`~repro.experiments.methods.Method
    .solve_batch`.  The three-tuple form means "no info", exactly like
    a per-row unit whose solves report no details.
    """
    if len(out) == 4:
        solved, failure, values, infos = out
        infos = list(infos)
        if len(infos) != n_rows:
            raise ValueError(
                f"solve_batch returned {len(infos)} info entries for "
                f"{n_rows} rows"
            )
    else:
        solved, failure, values = out
        infos = [None] * n_rows
    return solved, failure, values, infos


def _solve_shard_payload(
    method_name: str,
    fingerprint: str,
    shard: dict,
    bounds: Sequence[tuple[float, float]],
    seeds: Sequence["int | None"],
    objective: str,
    min_reliability: float,
    try_batch: bool = True,
    collect_telemetry: bool = False,
) -> "tuple[list[tuple], dict | None]":
    """Worker-side entry point: rebuild a columnar shard and run its units.

    Module-level (picklable) and name-addressed: the worker resolves
    the method from its own registry and reassembles a small
    :class:`~repro.core.ensemble.Ensemble` from the shard's raw rows,
    so no closure — and no per-instance object graph — ever crosses
    the process boundary.  The fingerprint handshake guards spawn-start
    workers: if this process's registry binds *method_name* to
    different code than the parent's (a missing or differently
    re-registered method), raise UnknownMethodError so the parent
    recomputes the shard itself instead of silently using the wrong
    solver.

    Returns ``(unit_results, telemetry_snapshot)``.  Each unit result
    is ``(solved, failure, objective_values, info, source, seconds)``
    — plain lists/floats, so the payload pickles anywhere.  When
    *collect_telemetry* is set (the parent has a collector installed),
    the worker aggregates its own spans/counters into a snapshot the
    parent merges; otherwise the snapshot is ``None`` and nothing is
    collected.
    """
    method = get_method(method_name)
    if method.fingerprint() != fingerprint:
        raise UnknownMethodError(
            f"method {method_name!r} resolves to different code in this "
            f"worker than in the parent process"
        )
    ensemble = Ensemble(
        work=shard["work"],
        output=shard["output"],
        speeds=shard["speeds"],
        failure_rates=shard["failure_rates"],
        bandwidth=shard["bandwidth"],
        link_failure_rate=shard["link_failure_rate"],
        max_replication=shard["max_replication"],
    )

    def run_units() -> "list[tuple]":
        if try_batch and method.solve_batch is not None and all(s is None for s in seeds):
            # The batched path covers the whole shard or none of it; a
            # kernel that rejects the shape drops to the per-unit loop.
            t0 = time.perf_counter()
            try:
                with obs.span("sweep.batch", label=method_name):
                    solved, failure, objective_values, infos = _unpack_batch(
                        method.solve_batch(
                            ensemble,
                            bounds,
                            rows=list(range(len(seeds))),
                            objective=objective,
                            min_reliability=min_reliability,
                        ),
                        len(seeds),
                    )
            except BatchUnsupported as exc:
                obs.counter("sweep.batch_unsupported", len(seeds), label=method_name)
                obs.counter("sweep.units.fallback", len(seeds), label=exc.reason)
            else:
                share = (time.perf_counter() - t0) / max(len(seeds), 1)
                return [
                    (
                        [bool(s) for s in solved[j]],
                        [float(f) for f in failure[j]],
                        [float(v) for v in objective_values[j]],
                        infos[j],
                        "batch",
                        share,
                    )
                    for j in range(len(seeds))
                ]
        out = []
        for j, seed in enumerate(seeds):
            t0 = time.perf_counter()
            with obs.span("sweep.unit", label=method_name):
                solved, failure, objective_values, info = _unit_arrays(
                    method, ensemble[j], bounds, seed, objective, min_reliability
                )
            out.append(
                (
                    [bool(s) for s in solved],
                    [float(f) for f in failure],
                    [float(v) for v in objective_values],
                    info,
                    "worker",
                    time.perf_counter() - t0,
                )
            )
        return out

    if not collect_telemetry:
        return run_units(), None
    with obs.collect() as telemetry:
        results = run_units()
    return results, telemetry.snapshot()


def _shard_payload(ensemble: Ensemble, rows: Sequence[int]) -> dict:
    """Columnar payload for a shard: the raw rows the units need."""
    rows = list(rows)
    if ensemble.platform_shared:
        # One stored platform row serves every unit — ship it once.
        speeds = np.asarray(ensemble.speeds[:1])
        rates = np.asarray(ensemble.failure_rates[:1])
    else:
        speeds = ensemble.speeds[rows]
        rates = ensemble.failure_rates[rows]
    return {
        "work": ensemble.work[rows],
        "output": ensemble.output[rows],
        "speeds": speeds,
        "failure_rates": rates,
        "bandwidth": ensemble.bandwidth,
        "link_failure_rate": ensemble.link_failure_rate,
        "max_replication": ensemble.max_replication,
    }


def _unit_seed(
    method: Method,
    view: InstanceView,
    bounds: Sequence[tuple[float, float]],
    objective: str,
    min_reliability: float,
) -> "int | None":
    """Deterministic per-unit seed for stochastic methods (else None)."""
    if not method.seeded:
        return None
    return stable_seed(
        "sweep-unit",
        method.name,
        view.row_hash,
        objective,
        float(min_reliability),
        tuple((float(P), float(L)) for P, L in bounds),
    )


def _resolve_instances(
    instances, seed: int, n_instances: "int | None", scenario_key: "str | None"
) -> tuple["list[Ensemble]", "str | None"]:
    """Normalize an instances argument to columnar ensembles.

    An :class:`~repro.core.ensemble.Ensemble` (or a list of them)
    passes through; plain ``(chain, platform)`` lists are grouped into
    ensembles (:func:`repro.core.ensemble.ensembles_from_instances`)
    preserving order.  A scenario name,
    :class:`~repro.scenarios.spec.ScenarioSpec`, or
    :class:`~repro.scenarios.registry.Scenario` is generated here
    (seeded by *seed*, optionally overriding the spec's instance
    count), and the spec's content hash becomes the sweep's cache-key
    scenario component — unless the caller pinned *scenario_key*
    explicitly.  Paired (Section 8.2-shaped) ensembles contribute
    their heterogeneous side (their views); sweep
    :meth:`~repro.core.ensemble.Ensemble.hom_counterpart` separately
    (as :func:`repro.experiments.figures.run_experiment` does) to
    compare against the homogeneous counterparts.
    """
    if isinstance(instances, Ensemble):
        return [instances], scenario_key
    if isinstance(instances, (list, tuple)):
        return ensembles_from_instances(instances), scenario_key
    from repro.scenarios import generate_ensembles, resolve_scenario, scenario_hash

    spec, _ = resolve_scenario(instances)
    if n_instances is not None:
        spec = spec.with_(n_instances=n_instances)
    ensembles = generate_ensembles(spec, seed=seed)
    if scenario_key is None:
        scenario_key = scenario_hash(spec)
    return ensembles, scenario_key


def run_sweep(
    instances: "Ensemble | Sequence | str",
    methods: Sequence[Method],
    bounds: Sequence[tuple[float, float]],
    xs: Sequence[float] | None = None,
    *,
    jobs: "int | None" = None,
    cache: "ResultCache | str | os.PathLike[str] | None" = None,
    seed: int = 0,
    n_instances: "int | None" = None,
    scenario_key: "str | None" = None,
    objective: str = "reliability",
    min_reliability: float = 0.0,
    batch: "bool | str" = "auto",
) -> SweepResult:
    """Run every method on every instance at every bound point.

    Parameters
    ----------
    instances:
        A columnar :class:`~repro.core.ensemble.Ensemble` (or list of
        them), ``(chain, platform)`` pairs — or a declarative
        workload: a registered scenario name (``"section8-hom"``), a
        :class:`~repro.scenarios.spec.ScenarioSpec`, or a
        :class:`~repro.scenarios.registry.Scenario`.  Scenario
        ensembles are generated with *seed* (and *n_instances*, when
        given), and the spec's content hash is folded into every unit's
        cache key — a repeated sweep over the same named scenario is
        served entirely from cache.  All forms derive identical cache
        keys for identical instances, so an ensemble sweep and its
        materialized twin share entries bit for bit.
    methods:
        The methods to compare (a heterogeneous platform with a
        homogeneous-only method raises immediately).
    bounds:
        ``(max_period, max_latency)`` per sweep point.
    xs:
        Plot coordinates for the sweep points (defaults to the varying
        bound, detected automatically; falls back to the point index).
    jobs:
        Worker processes for the fan-out; ``None`` reads
        ``$REPRO_JOBS`` (default 1 = serial).  Results are identical
        for any value.
    cache:
        A :class:`~repro.experiments.cache.ResultCache`, a cache
        directory path, or ``None`` to read ``$REPRO_CACHE_DIR`` (unset
        = no caching).
    seed, n_instances:
        Scenario generation knobs; ignored for explicit instance lists.
    scenario_key:
        Explicit cache-key scenario component (overrides the derived
        spec hash; used by the experiment runners to distinguish the
        two sides of a paired scenario).
    objective, min_reliability:
        Carried by every unit's solves, so a sweep can count e.g. how
        many instances admit a period-minimizing mapping above a
        reliability floor as the latency bound varies — and aggregate
        the achieved optima (:meth:`SweepResult.objective_quantiles`).
        Both are cache-key ingredients, so sweeps over different
        objectives (or floors) never share entries.  Methods that do
        not declare the objective raise up front, exactly like a
        homogeneous-only method on a heterogeneous platform — plan
        with :meth:`repro.solve.Planner.plan` to pre-filter.
    batch:
        ``"auto"`` (default) serves uncached, unseeded units of
        :attr:`~repro.experiments.methods.Method.solve_batch` methods
        through one columnar kernel call per ``(method, ensemble)``
        group, falling back to per-row solves for shapes a kernel
        refuses; ``True`` demands the kernels — any refusal raises
        ``ValueError`` naming each refused cell and its
        :attr:`~repro.algorithms.batch.BatchUnsupported.reason`
        (methods without a kernel still run per-row either way);
        ``False`` forces the per-row path.  Results are bit-identical
        in every mode (cache entries included) — the knob exists for
        diagnostics and the equivalence tests.
        :attr:`SweepResult.batch_units` reports how many units the
        kernels served.
    """
    ensembles, scenario_key = _resolve_instances(instances, seed, n_instances, scenario_key)
    views: list[InstanceView] = [v for e in ensembles for v in e]
    if not views:
        raise ValueError("need at least one instance")
    if not bounds:
        raise ValueError("need at least one sweep point")
    # Mirror Problem's own validation up front: bases materialize
    # lazily now, so a bad floor must not first surface mid-sweep (or
    # silently land in cache keys).
    from repro.solve.problem import OBJECTIVES

    if objective not in OBJECTIVES:
        raise ValueError(f"unknown objective {objective!r}; supported: {OBJECTIVES}")
    min_reliability = float(min_reliability)
    if math.isnan(min_reliability) or not 0.0 <= min_reliability < 1.0:
        raise ValueError(
            f"min_reliability must lie in [0, 1) (0 = no floor), got {min_reliability!r}"
        )
    if objective == "reliability" and min_reliability != 0.0:
        raise ValueError(
            "min_reliability is a constraint for the converse objectives "
            "('period', 'latency', 'energy'); with objective='reliability' "
            "the criterion itself is maximized — leave the floor at 0.0"
        )
    # Capability checks run once per ensemble over the raw columns —
    # no instance materializes just to be validated.
    for method in methods:
        for ensemble in ensembles:
            method.check_ensemble(ensemble, objective=objective)

    if xs is None:
        periods = {p for p, _ in bounds}
        latencies = {l for _, l in bounds}
        if len(periods) >= len(latencies):
            xs_arr = np.array([p for p, _ in bounds], dtype=float)
        else:
            xs_arr = np.array([l for _, l in bounds], dtype=float)
    else:
        if len(xs) != len(bounds):
            raise ValueError("xs must align with bounds")
        xs_arr = np.asarray(xs, dtype=float)

    if batch not in (True, False, "auto"):
        raise ValueError(f"batch must be True, False, or 'auto', got {batch!r}")

    jobs = resolve_jobs(jobs)
    store = resolve_cache(cache)
    bounds = [(float(P), float(L)) for P, L in bounds]
    t_sweep = time.perf_counter()
    timings: dict[str, float] = {}
    unit_events: list[dict] = []

    def registered(method: Method) -> bool:
        # Registry-resolved methods are the ones addressable by name:
        # they may be cached (keyed by name + implementation
        # fingerprint) and shipped to worker processes.  Ad-hoc Method
        # objects run in the parent, uncached.
        return METHODS.get(method.name) is method

    fingerprints = {m.name: m.fingerprint() for m in methods if registered(m)}

    n_m, n_pts, n_inst = len(methods), len(bounds), len(views)
    solved = np.zeros((n_m, n_pts, n_inst), dtype=bool)
    failure = np.ones((n_m, n_pts, n_inst), dtype=float)
    objective_values = np.full(
        (n_m, n_pts, n_inst), 0.0 if objective == "reliability" else np.inf
    )

    # Resolve cached units first; everything else becomes pending work.
    t0 = time.perf_counter()
    pending: list[tuple[int, int, "int | None", "str | None"]] = []
    with obs.span("sweep.cache_lookup"):
        for mi, method in enumerate(methods):
            for ii, view in enumerate(views):
                unit_seed = _unit_seed(method, view, bounds, objective, min_reliability)
                key = None
                if store is not None and registered(method):
                    key = store.unit_key_for(
                        method.name,
                        view.row_hash,
                        bounds,
                        seed=unit_seed,
                        fingerprint=fingerprints[method.name],
                        scenario=scenario_key,
                        objective=objective,
                        min_reliability=min_reliability,
                    )
                    hit = store.get_record(key, method_name=method.name, n_points=n_pts)
                    if hit is not None:
                        unit_solved, unit_failure, unit_values, unit_info = unit_arrays(
                            hit, n_pts
                        )
                        solved[mi, :, ii] = unit_solved
                        failure[mi, :, ii] = unit_failure
                        if unit_values is not None:
                            objective_values[mi, :, ii] = unit_values
                            event = {
                                "method": method.name,
                                "instance": ii,
                                "source": "cache",
                                "solved": int(unit_solved.sum()),
                                "seconds": None,
                            }
                            if unit_info:
                                event.update(unit_info)
                            unit_events.append(event)
                            obs.counter("sweep.units.cached", label=method.name)
                            continue
                        # An entry without objective values (stored
                        # through the bare put() API) cannot serve the
                        # new aggregations; recompute it below.
                pending.append((mi, ii, unit_seed, key))
    timings["cache_lookup"] = time.perf_counter() - t0

    # The units whose batch kernel refused the shape: their per-row
    # recomputation is a *fallback*, and the ledger says why (the
    # BatchUnsupported reason class).  Refused groups are remembered so
    # worker shards skip the doomed kernel retry.
    fallback_units: dict[tuple[int, int], str] = {}
    refused: list[tuple[str, str, int]] = []
    refused_groups: set[tuple[int, int]] = set()

    def finish(mi: int, ii: int, key: "str | None",
               unit_solved: np.ndarray, unit_failure: np.ndarray,
               unit_values: np.ndarray, info: "dict | None" = None,
               source: str = "parent", seconds: "float | None" = None,
               batch_group: "int | None" = None) -> None:
        solved[mi, :, ii] = unit_solved
        failure[mi, :, ii] = unit_failure
        objective_values[mi, :, ii] = unit_values
        if store is not None and key is not None:
            store.put_record(key, unit_record(unit_solved, unit_failure, unit_values,
                                              method_name=methods[mi].name, info=info))
        event = {
            "method": methods[mi].name,
            "instance": ii,
            "source": source,
            "solved": int(np.asarray(unit_solved).sum()),
            "seconds": seconds,
        }
        if batch_group is not None:
            event["batch_group"] = batch_group
        reason = fallback_units.get((mi, ii))
        if reason is not None:
            event["batch_fallback"] = reason
        if info:
            event.update(info)
        unit_events.append(event)
        obs.counter(f"sweep.units.{source}", label=methods[mi].name)

    def run_local(unit: tuple) -> None:
        mi, ii, unit_seed, key = unit
        t0 = time.perf_counter()
        with obs.span("sweep.unit", label=methods[mi].name):
            arrays = _unit_arrays(
                methods[mi], views[ii], bounds, unit_seed, objective, min_reliability
            )
        finish(mi, ii, key, *arrays, seconds=time.perf_counter() - t0)

    # Flat unit index -> (owning ensemble, row within it).
    ensemble_of: list[int] = []
    row_of: list[int] = []
    for ei, ensemble in enumerate(ensembles):
        ensemble_of.extend([ei] * len(ensemble))
        row_of.extend(range(len(ensemble)))

    # Batched path: solve whole (method, ensemble) groups in one
    # kernel call.  Only unseeded units qualify (per-unit seeds are a
    # per-row concept), and a kernel that rejects the shape leaves its
    # group pending for the per-row machinery below.
    batch_units = 0
    t0 = time.perf_counter()
    if batch in (True, "auto"):
        groups: dict[tuple[int, int], list[tuple]] = {}
        for unit in pending:
            mi, ii, unit_seed, _key = unit
            if unit_seed is None and methods[mi].solve_batch is not None:
                groups.setdefault((mi, ensemble_of[ii]), []).append(unit)
        served: set[tuple] = set()
        for (mi, ei), units in groups.items():
            t_group = time.perf_counter()
            try:
                with obs.span("sweep.batch", label=methods[mi].name):
                    (group_solved, group_failure, group_values,
                     group_infos) = _unpack_batch(
                        methods[mi].solve_batch(
                            ensembles[ei],
                            bounds,
                            rows=[row_of[u[1]] for u in units],
                            objective=objective,
                            min_reliability=min_reliability,
                        ),
                        len(units),
                    )
            except BatchUnsupported as exc:
                # Attribution: these units now fall back to the
                # per-row machinery below, and the ledger records why.
                for u in units:
                    fallback_units[(u[0], u[1])] = exc.reason
                refused.append((methods[mi].name, exc.reason, len(units)))
                refused_groups.add((mi, ei))
                obs.counter("sweep.batch_unsupported", len(units),
                            label=methods[mi].name)
                obs.counter("sweep.units.fallback", len(units),
                            label=exc.reason)
                continue
            share = (time.perf_counter() - t_group) / max(len(units), 1)
            for r, unit in enumerate(units):
                finish(
                    unit[0], unit[1], unit[3],
                    np.asarray(group_solved[r], dtype=bool),
                    np.asarray(group_failure[r], dtype=float),
                    np.asarray(group_values[r], dtype=float),
                    info=group_infos[r],
                    source="batch", seconds=share, batch_group=len(units),
                )
                served.add(unit)
            batch_units += len(units)
        if refused and batch is True:
            cells = "; ".join(
                f"{name} ({n} units): {reason}" for name, reason, n in refused
            )
            raise ValueError(
                "batch=True demands the kernels, but some refused their "
                f"shapes — {cells}. Use batch='auto' to let uncovered "
                "units fall back to per-row solves."
            )
        if served:
            pending = [u for u in pending if u not in served]
    timings["batch"] = time.perf_counter() - t0

    # Expensive methods first: with a shared pool, a 10x-cost ILP unit
    # submitted last would serialize the tail of the run.
    pending.sort(key=lambda u: (-methods[u[0]].cost_hint, u[0], u[1]))

    # Only registry-resolvable methods can be addressed by name in a
    # worker; ad-hoc Method objects fall back to the parent process.
    if jobs > 1 and len(pending) > 1:
        remote = [u for u in pending if registered(methods[u[0]])]
    else:
        remote = []
    remote_set = set(remote)
    local = [u for u in pending if u not in remote_set]

    t0 = time.perf_counter()
    if not remote:
        for unit in local:
            run_local(unit)
    else:
        # Group the remote units into columnar shards: one payload
        # ships several instances' raw rows for one (method, ensemble)
        # pair.
        shard_size = max(1, min(_SHARD_MAX, -(-len(remote) // (jobs * _SHARD_WAVES))))
        shards: list[list[tuple]] = []
        open_shards: dict[tuple[int, int], list[tuple]] = {}
        for unit in remote:
            mi, ii = unit[0], unit[1]
            group = (mi, ensemble_of[ii])
            shard = open_shards.get(group)
            if shard is None or len(shard) >= shard_size:
                shard = []
                shards.append(shard)
                open_shards[group] = shard
            shard.append(unit)

        collect_telemetry = obs.active() is not None
        with ProcessPoolExecutor(max_workers=min(jobs, len(shards))) as pool:
            futures = {}
            for shard in shards:
                mi = shard[0][0]
                ei = ensemble_of[shard[0][1]]
                ensemble = ensembles[ei]
                fut = pool.submit(
                    _solve_shard_payload,
                    methods[mi].name,
                    fingerprints[methods[mi].name],
                    _shard_payload(ensemble, [row_of[u[1]] for u in shard]),
                    bounds,
                    [u[2] for u in shard],
                    objective,
                    min_reliability,
                    # A group the parent's kernel already refused would
                    # refuse again in the worker — skip the retry (and
                    # the double-counted fallback telemetry).
                    batch in (True, "auto") and (mi, ei) not in refused_groups,
                    collect_telemetry,
                )
                futures[fut] = shard
            # The parent works through its own (unpicklable) units while
            # the pool churns, then drains the futures.
            for unit in local:
                run_local(unit)
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for fut in done:
                    shard = futures[fut]
                    try:
                        results, worker_telemetry = fut.result()
                    except UnknownMethodError:
                        # Spawn-start workers re-import the registry
                        # and may miss (or re-bind) methods registered
                        # at runtime; redo the shard here rather than
                        # fail the sweep or run the wrong code.
                        for unit in shard:
                            run_local(unit)
                        continue
                    active = obs.active()
                    if active is not None:
                        active.merge(worker_telemetry)
                    for (mi, ii, _unit_seed_, key), unit_result in zip(shard, results):
                        (unit_solved, unit_failure, unit_values,
                         unit_info, source, unit_seconds) = unit_result
                        if source == "batch":
                            batch_units += 1
                        finish(mi, ii, key,
                               np.asarray(unit_solved, dtype=bool),
                               np.asarray(unit_failure, dtype=float),
                               np.asarray(unit_values, dtype=float),
                               info=unit_info,
                               source="batch" if source == "batch" else "worker",
                               seconds=unit_seconds,
                               batch_group=len(shard) if source == "batch" else None)
    timings["solve"] = time.perf_counter() - t0
    timings["total"] = time.perf_counter() - t_sweep

    # Worker completion order is nondeterministic; the ledger's
    # per-unit record is not.
    method_order = {m.name: mi for mi, m in enumerate(methods)}
    unit_events.sort(key=lambda e: (method_order[e["method"]], e["instance"]))

    return SweepResult(
        xs=xs_arr,
        method_names=[m.name for m in methods],
        solved=solved,
        failure=failure,
        objective_values=objective_values,
        objective=objective,
        batch_units=batch_units,
        timings={k: float(v) for k, v in timings.items()},
        unit_events=unit_events,
    )
