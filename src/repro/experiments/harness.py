"""Bound-sweep runner: solution counts and averaged failure probabilities.

For a suite of instances and a list of sweep points ``(P, L)``, run each
method on each instance at each point and aggregate the two statistics
the paper plots:

* **number of solutions** — instances for which the method found a
  mapping within the bounds (Figures 6, 8, 10, 12, 14);
* **average failure probability** — with two averaging rules, both used
  by the paper:

  - ``"common"`` (Figures 7, 9, 11): average over the instances where
    *both heuristics* found a solution ("the average failure
    probability of the instances where both heuristics have found a
    solution", Section 8.1) — every curve is averaged over that same
    instance set;
  - ``"per-method"`` (Figures 13, 15): each curve averages over the
    instances *it* solved ("the average values are then not computed on
    the same set of instances", Section 8.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.chain import TaskChain
from repro.core.platform import Platform
from repro.experiments.methods import Method

__all__ = ["SweepResult", "run_sweep"]


@dataclass
class SweepResult:
    """Raw sweep data plus the paper's aggregations.

    Attributes
    ----------
    xs:
        The sweep coordinate (one per sweep point) — a period or a
        latency bound, depending on the experiment.
    method_names:
        Curve labels, in run order.
    solved:
        Boolean array ``(n_methods, n_points, n_instances)``.
    failure:
        Failure probability array, same shape (1.0 where unsolved).
    """

    xs: np.ndarray
    method_names: list[str]
    solved: np.ndarray
    failure: np.ndarray

    def counts(self, method: str) -> np.ndarray:
        """Solutions found per sweep point (the Fig. 6-style series)."""
        return self.solved[self._idx(method)].sum(axis=1)

    def average_failure(
        self, method: str, rule: str = "common", heuristics: Sequence[str] = ("heur-l", "heur-p")
    ) -> np.ndarray:
        """Average failure probability per sweep point (Fig. 7 style).

        ``rule="common"`` averages over instances solved by *all* of
        *heuristics* (the paper's hom rule); ``rule="per-method"`` over
        instances solved by *method* itself (the het rule).  Points with
        an empty averaging set yield NaN (plotted as gaps).
        """
        i = self._idx(method)
        if rule == "common":
            mask = np.ones(self.solved.shape[1:], dtype=bool)
            for h in heuristics:
                if h in self.method_names:
                    mask &= self.solved[self._idx(h)]
            # The method itself must also have solved the instance for
            # its failure probability to be meaningful.
            mask = mask & self.solved[i]
        elif rule == "per-method":
            mask = self.solved[i]
        else:
            raise ValueError(f"unknown averaging rule {rule!r}")
        sums = np.where(mask, self.failure[i], 0.0).sum(axis=1)
        counts = mask.sum(axis=1)
        with np.errstate(invalid="ignore"):
            return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)

    def _idx(self, method: str) -> int:
        try:
            return self.method_names.index(method)
        except ValueError:
            raise ValueError(
                f"method {method!r} not in sweep ({self.method_names})"
            ) from None


def run_sweep(
    instances: Sequence[tuple[TaskChain, Platform]],
    methods: Sequence[Method],
    bounds: Sequence[tuple[float, float]],
    xs: Sequence[float] | None = None,
) -> SweepResult:
    """Run every method on every instance at every bound point.

    Parameters
    ----------
    instances:
        ``(chain, platform)`` pairs.
    methods:
        The methods to compare (a heterogeneous platform with a
        homogeneous-only method raises immediately).
    bounds:
        ``(max_period, max_latency)`` per sweep point.
    xs:
        Plot coordinates for the sweep points (defaults to the varying
        bound, detected automatically; falls back to the point index).
    """
    if not instances:
        raise ValueError("need at least one instance")
    if not bounds:
        raise ValueError("need at least one sweep point")
    for method in methods:
        if method.homogeneous_only:
            for _, platform in instances:
                if not platform.homogeneous:
                    raise ValueError(
                        f"method {method.name!r} requires homogeneous platforms"
                    )

    if xs is None:
        periods = {p for p, _ in bounds}
        latencies = {l for _, l in bounds}
        if len(periods) >= len(latencies):
            xs_arr = np.array([p for p, _ in bounds], dtype=float)
        else:
            xs_arr = np.array([l for _, l in bounds], dtype=float)
    else:
        if len(xs) != len(bounds):
            raise ValueError("xs must align with bounds")
        xs_arr = np.asarray(xs, dtype=float)

    n_m, n_pts, n_inst = len(methods), len(bounds), len(instances)
    solved = np.zeros((n_m, n_pts, n_inst), dtype=bool)
    failure = np.ones((n_m, n_pts, n_inst), dtype=float)
    for mi, method in enumerate(methods):
        for pi, (P, L) in enumerate(bounds):
            for ii, (chain, platform) in enumerate(instances):
                res = method.solve(chain, platform, P, L)
                solved[mi, pi, ii] = res.feasible
                if res.feasible:
                    failure[mi, pi, ii] = res.evaluation.failure_probability
    return SweepResult(
        xs=xs_arr,
        method_names=[m.name for m in methods],
        solved=solved,
        failure=failure,
    )
