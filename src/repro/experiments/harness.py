"""Bound-sweep runner: parallel, cache-backed, deterministic.

For a suite of instances and a list of sweep points ``(P, L)``, run each
method on each instance at each point and aggregate the two statistics
the paper plots:

* **number of solutions** — instances for which the method found a
  mapping within the bounds (Figures 6, 8, 10, 12, 14);
* **average failure probability** — with two averaging rules, both used
  by the paper:

  - ``"common"`` (Figures 7, 9, 11): average over the instances where
    *both heuristics* found a solution ("the average failure
    probability of the instances where both heuristics have found a
    solution", Section 8.1) — every curve is averaged over that same
    instance set;
  - ``"per-method"`` (Figures 13, 15): each curve averages over the
    instances *it* solved ("the average values are then not computed on
    the same set of instances", Section 8.2).

Execution model
---------------
The sweep decomposes into independent **work units** — one registered
method run on one instance across the whole bounds list.  Internally a
unit is a family of :class:`repro.solve.Problem` objects (one per
sweep point, sharing the instance's chain and platform) handed to
:meth:`Method.solve_problem`.  Units are

* **cached**: each unit's ``(solved, failure)`` arrays are stored under
  a content hash derived from the method name, the per-point *Problem
  hashes*, the per-unit seed, and — for sweeps materialized from a
  declarative scenario (:mod:`repro.scenarios`) — the scenario spec's
  content hash (:mod:`repro.experiments.cache`), so figures, benches,
  and cross-checks share work instead of recomputing;
* **parallel**: with ``jobs > 1``, uncached units fan out over a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Workers receive the
  method *name* plus a JSON payload of the unit's base Problem
  (closures do not pickle; registry names and Problems do), and
  results land back by unit index — so parallel output is
  **bit-identical** to the serial path.  Expensive units (by
  :attr:`Method.cost_hint`) are submitted first so they do not
  straggle at the tail of the pool queue;
* **seeded**: stochastic methods (``Method.seeded``) get a
  deterministic per-unit seed via :func:`repro.util.rng.stable_seed`,
  derived from the unit's content — identical whether the unit runs
  serially, in a worker, or is replayed from cache.

Environment
-----------
``REPRO_JOBS``
    Default worker count when ``jobs`` is ``None`` (default 1 =
    serial).
``REPRO_CACHE_DIR``
    Default cache directory when ``cache`` is ``None`` (unset = no
    caching).
"""

from __future__ import annotations

import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.chain import TaskChain
from repro.core.platform import Platform
from repro.experiments.cache import ResultCache, resolve_cache
from repro.experiments.methods import METHODS, Method, UnknownMethodError, get_method
from repro.io import from_dict, to_dict
from repro.solve.problem import Problem
from repro.util.rng import stable_seed

__all__ = ["SweepResult", "run_sweep", "resolve_jobs"]


@dataclass
class SweepResult:
    """Raw sweep data plus the paper's aggregations.

    Attributes
    ----------
    xs:
        The sweep coordinate (one per sweep point) — a period or a
        latency bound, depending on the experiment.
    method_names:
        Curve labels, in run order.
    solved:
        Boolean array ``(n_methods, n_points, n_instances)``.
    failure:
        Failure probability array, same shape (1.0 where unsolved).
    """

    xs: np.ndarray
    method_names: list[str]
    solved: np.ndarray
    failure: np.ndarray

    def counts(self, method: str) -> np.ndarray:
        """Solutions found per sweep point (the Fig. 6-style series)."""
        return self.solved[self._idx(method)].sum(axis=1)

    def average_failure(
        self, method: str, rule: str = "common", heuristics: Sequence[str] = ("heur-l", "heur-p")
    ) -> np.ndarray:
        """Average failure probability per sweep point (Fig. 7 style).

        ``rule="common"`` averages over instances solved by *all* of
        *heuristics* (the paper's hom rule); ``rule="per-method"`` over
        instances solved by *method* itself (the het rule).  Points with
        an empty averaging set yield NaN (plotted as gaps).
        """
        i = self._idx(method)
        if rule == "common":
            mask = np.ones(self.solved.shape[1:], dtype=bool)
            for h in heuristics:
                if h in self.method_names:
                    mask &= self.solved[self._idx(h)]
            # The method itself must also have solved the instance for
            # its failure probability to be meaningful.
            mask = mask & self.solved[i]
        elif rule == "per-method":
            mask = self.solved[i]
        else:
            raise ValueError(f"unknown averaging rule {rule!r}")
        sums = np.where(mask, self.failure[i], 0.0).sum(axis=1)
        counts = mask.sum(axis=1)
        with np.errstate(invalid="ignore"):
            return np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)

    def _idx(self, method: str) -> int:
        try:
            return self.method_names.index(method)
        except ValueError:
            raise UnknownMethodError(
                f"method {method!r} not in sweep; curves available: "
                f"{self.method_names}"
            ) from None


def resolve_jobs(jobs: "int | None") -> int:
    """Normalize a ``jobs`` argument: ``None`` -> ``$REPRO_JOBS`` -> 1."""
    if jobs is None:
        jobs = int(os.environ.get("REPRO_JOBS", "1") or "1")
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _unit_problems(
    base: Problem, bounds: Sequence[tuple[float, float]]
) -> list[Problem]:
    """The unit's Problem family: one bounded copy of *base* per point."""
    return [base.with_bounds(max_period=P, max_latency=L) for P, L in bounds]


def _unit_arrays(
    method: Method,
    base: Problem,
    bounds: Sequence[tuple[float, float]],
    seed: "int | None",
) -> tuple[np.ndarray, np.ndarray]:
    """Run one work unit: one method on one instance over all bounds.

    The single computation shared verbatim by the serial path and the
    worker processes — the reason ``jobs=1`` and ``jobs=N`` agree bit
    for bit.
    """
    solved = np.zeros(len(bounds), dtype=bool)
    failure = np.ones(len(bounds), dtype=float)
    for pi, problem in enumerate(_unit_problems(base, bounds)):
        res = method.solve_problem(
            problem, seed=stable_seed(seed, pi) if method.seeded else None
        )
        solved[pi] = res.feasible
        if res.feasible:
            failure[pi] = res.evaluation.failure_probability
    return solved, failure


def _solve_unit_payload(
    method_name: str,
    fingerprint: str,
    problem_payload: dict,
    bounds: Sequence[tuple[float, float]],
    seed: "int | None",
) -> tuple[list[bool], list[float]]:
    """Worker-side entry point: rebuild the unit from a JSON payload.

    Module-level (picklable) and name-addressed: the worker resolves the
    method from its own registry and the base :class:`Problem` from its
    :mod:`repro.io` payload, so no closure ever crosses the process
    boundary.  The fingerprint handshake guards spawn-start workers: if
    this process's registry binds *method_name* to different code than
    the parent's (a missing or differently re-registered method), raise
    UnknownMethodError so the parent recomputes the unit itself instead
    of silently using the wrong solver.
    """
    method = get_method(method_name)
    if method.fingerprint() != fingerprint:
        raise UnknownMethodError(
            f"method {method_name!r} resolves to different code in this "
            f"worker than in the parent process"
        )
    base = from_dict(problem_payload)
    solved, failure = _unit_arrays(method, base, bounds, seed)
    return [bool(s) for s in solved], [float(f) for f in failure]


def _unit_seed(method: Method, base: Problem,
               bounds: Sequence[tuple[float, float]]) -> "int | None":
    """Deterministic per-unit seed for stochastic methods (else None)."""
    if not method.seeded:
        return None
    return stable_seed(
        "sweep-unit",
        method.name,
        base.content_hash(),
        tuple((float(P), float(L)) for P, L in bounds),
    )


def _resolve_instances(
    instances, seed: int, n_instances: "int | None", scenario_key: "str | None"
) -> tuple[list, "str | None"]:
    """Materialize a scenario argument into ``(chain, platform)`` pairs.

    Plain instance lists pass through untouched.  A scenario name,
    :class:`~repro.scenarios.spec.ScenarioSpec`, or
    :class:`~repro.scenarios.registry.Scenario` is generated here
    (seeded by *seed*, optionally overriding the spec's instance
    count), and the spec's content hash becomes the sweep's cache-key
    scenario component — unless the caller pinned *scenario_key*
    explicitly.  Paired (Section 8.2-shaped) scenarios contribute their
    heterogeneous side; sweep the two sides separately (as
    :func:`repro.experiments.figures.run_experiment` does) to compare
    against the homogeneous counterparts.
    """
    if isinstance(instances, (list, tuple)):
        return list(instances), scenario_key
    from repro.scenarios import generate_instances, resolve_scenario, scenario_hash

    spec, _ = resolve_scenario(instances)
    if n_instances is not None:
        spec = spec.with_(n_instances=n_instances)
    generated = generate_instances(spec, seed=seed)
    if spec.paired:
        generated = [(pair.chain, pair.het_platform) for pair in generated]
    if scenario_key is None:
        scenario_key = scenario_hash(spec)
    return generated, scenario_key


def run_sweep(
    instances: "Sequence[tuple[TaskChain, Platform]] | str",
    methods: Sequence[Method],
    bounds: Sequence[tuple[float, float]],
    xs: Sequence[float] | None = None,
    *,
    jobs: "int | None" = None,
    cache: "ResultCache | str | os.PathLike[str] | None" = None,
    seed: int = 0,
    n_instances: "int | None" = None,
    scenario_key: "str | None" = None,
    objective: str = "reliability",
    min_reliability: float = 0.0,
) -> SweepResult:
    """Run every method on every instance at every bound point.

    Parameters
    ----------
    instances:
        ``(chain, platform)`` pairs — or a declarative workload: a
        registered scenario name (``"section8-hom"``), a
        :class:`~repro.scenarios.spec.ScenarioSpec`, or a
        :class:`~repro.scenarios.registry.Scenario`.  Scenario
        ensembles are generated with *seed* (and *n_instances*, when
        given), and the spec's content hash is folded into every unit's
        cache key — a repeated sweep over the same named scenario is
        served entirely from cache.
    methods:
        The methods to compare (a heterogeneous platform with a
        homogeneous-only method raises immediately).
    bounds:
        ``(max_period, max_latency)`` per sweep point.
    xs:
        Plot coordinates for the sweep points (defaults to the varying
        bound, detected automatically; falls back to the point index).
    jobs:
        Worker processes for the fan-out; ``None`` reads
        ``$REPRO_JOBS`` (default 1 = serial).  Results are identical
        for any value.
    cache:
        A :class:`~repro.experiments.cache.ResultCache`, a cache
        directory path, or ``None`` to read ``$REPRO_CACHE_DIR`` (unset
        = no caching).
    seed, n_instances:
        Scenario generation knobs; ignored for explicit instance lists.
    scenario_key:
        Explicit cache-key scenario component (overrides the derived
        spec hash; used by the experiment runners to distinguish the
        two sides of a paired scenario).
    objective, min_reliability:
        Forwarded to every unit's base :class:`~repro.solve.Problem`,
        so a sweep can count e.g. how many instances admit a
        period-minimizing mapping above a reliability floor as the
        latency bound varies.  Both are part of the Problem content
        the cache keys hash, so sweeps over different objectives (or
        floors) never share entries.  Methods that do not declare the
        objective raise up front, exactly like a homogeneous-only
        method on a heterogeneous platform — plan with
        :meth:`repro.solve.Planner.plan` to pre-filter.
    """
    instances, scenario_key = _resolve_instances(instances, seed, n_instances, scenario_key)
    if not instances:
        raise ValueError("need at least one instance")
    if not bounds:
        raise ValueError("need at least one sweep point")
    # One unbounded base Problem per instance; each unit bounds it per
    # sweep point (the Problem family is also what the cache hashes).
    bases = [
        Problem(
            chain, platform,
            objective=objective, min_reliability=min_reliability,
        )
        for chain, platform in instances
    ]
    for method in methods:
        for base in bases:
            method.check_problem(base)

    if xs is None:
        periods = {p for p, _ in bounds}
        latencies = {l for _, l in bounds}
        if len(periods) >= len(latencies):
            xs_arr = np.array([p for p, _ in bounds], dtype=float)
        else:
            xs_arr = np.array([l for _, l in bounds], dtype=float)
    else:
        if len(xs) != len(bounds):
            raise ValueError("xs must align with bounds")
        xs_arr = np.asarray(xs, dtype=float)

    jobs = resolve_jobs(jobs)
    store = resolve_cache(cache)
    bounds = [(float(P), float(L)) for P, L in bounds]

    def registered(method: Method) -> bool:
        # Registry-resolved methods are the ones addressable by name:
        # they may be cached (keyed by name + implementation
        # fingerprint) and shipped to worker processes.  Ad-hoc Method
        # objects run in the parent, uncached.
        return METHODS.get(method.name) is method

    fingerprints = {m.name: m.fingerprint() for m in methods if registered(m)}

    n_m, n_pts, n_inst = len(methods), len(bounds), len(instances)
    solved = np.zeros((n_m, n_pts, n_inst), dtype=bool)
    failure = np.ones((n_m, n_pts, n_inst), dtype=float)

    # Resolve cached units first; everything else becomes pending work.
    pending: list[tuple[int, int, "int | None", "str | None"]] = []
    for mi, method in enumerate(methods):
        for ii, base in enumerate(bases):
            seed = _unit_seed(method, base, bounds)
            key = None
            if store is not None and registered(method):
                key = store.unit_key(
                    method.name, _unit_problems(base, bounds), seed,
                    fingerprint=fingerprints[method.name],
                    scenario=scenario_key,
                )
                hit = store.get(key, n_pts)
                if hit is not None:
                    solved[mi, :, ii], failure[mi, :, ii] = hit
                    continue
            pending.append((mi, ii, seed, key))

    def finish(mi: int, ii: int, key: "str | None",
               unit_solved: np.ndarray, unit_failure: np.ndarray) -> None:
        solved[mi, :, ii] = unit_solved
        failure[mi, :, ii] = unit_failure
        if store is not None and key is not None:
            store.put(key, unit_solved, unit_failure, method_name=methods[mi].name)

    # Expensive methods first: with a shared pool, a 10x-cost ILP unit
    # submitted last would serialize the tail of the run.
    pending.sort(key=lambda u: (-methods[u[0]].cost_hint, u[0], u[1]))

    # Only registry-resolvable methods can be addressed by name in a
    # worker; ad-hoc Method objects fall back to the parent process.
    if jobs > 1 and len(pending) > 1:
        remote = [u for u in pending if registered(methods[u[0]])]
    else:
        remote = []
    remote_set = set(remote)
    local = [u for u in pending if u not in remote_set]

    if not remote:
        for mi, ii, seed, key in local:
            finish(mi, ii, key, *_unit_arrays(methods[mi], bases[ii], bounds, seed))
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(remote))) as pool:
            futures = {}
            for mi, ii, seed, key in remote:
                fut = pool.submit(
                    _solve_unit_payload,
                    methods[mi].name,
                    fingerprints[methods[mi].name],
                    to_dict(bases[ii]),
                    bounds,
                    seed,
                )
                futures[fut] = (mi, ii, seed, key)
            # The parent works through its own (unpicklable) units while
            # the pool churns, then drains the futures.
            for mi, ii, seed, key in local:
                finish(mi, ii, key, *_unit_arrays(methods[mi], bases[ii], bounds, seed))
            outstanding = set(futures)
            while outstanding:
                done, outstanding = wait(outstanding, return_when=FIRST_COMPLETED)
                for fut in done:
                    mi, ii, seed, key = futures[fut]
                    try:
                        unit_solved, unit_failure = fut.result()
                    except UnknownMethodError:
                        # Spawn-start workers re-import the registry and
                        # may miss (or re-bind) methods registered at
                        # runtime; redo the unit here rather than fail
                        # the sweep or run the wrong code.
                        finish(mi, ii, key,
                               *_unit_arrays(methods[mi], bases[ii], bounds, seed))
                        continue
                    finish(mi, ii, key,
                           np.asarray(unit_solved, dtype=bool),
                           np.asarray(unit_failure, dtype=float))

    return SweepResult(
        xs=xs_arr,
        method_names=[m.name for m in methods],
        solved=solved,
        failure=failure,
    )
