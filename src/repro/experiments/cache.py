"""On-disk result cache for bound sweeps.

The paper's evaluation recomputes the same ``method x instance x
bounds`` solves for every figure, bench, and cross-check run.  This
module gives them a shared, content-addressed store so a sweep computed
once is free forever after.

Layout
------
One JSON file per *work unit* — one method run on one instance over a
full bounds list::

    <cache_dir>/<key[:2]>/<key>.json

where ``key = sha256(method name, instance digest, objective fields,
per-point bound tokens, seed, package version)`` via
:func:`repro.io.content_hash`.  The *instance digest*
(:func:`repro.core.ensemble.instance_digest`) is a raw-array-bytes
hash shared by the columnar :class:`~repro.core.ensemble.Ensemble`
rows and materialized ``(chain, platform)`` pairs — deriving keys from
it means a warm sweep over an ensemble never builds a model object or
a JSON payload, and an ensemble sweep and its materialized twin hit
the exact same entries.  Keys are stable across process restarts, and
automatically invalidated when any ingredient (chain, platform,
bounds, objective, method identity, per-unit seed, repro release)
changes, because a different key simply never matches.  Each entry
holds::

    {"repro_cache": CACHE_FORMAT, "method": ..., "n_points": ...,
     "solved": [...bools...], "failure": [...floats...],
     "objective_values": [...floats...]}

``objective_values`` records each point's achieved objective value
(:meth:`repro.algorithms.result.SolveResult.objective_value`) so the
sweep aggregations can report quantiles of the optimum, not just
solved counts.

Next to sweep units the cache also stores **grid-probe records**
(:meth:`ResultCache.put_record` under :meth:`ResultCache.probe_key`):
the per-instance unbounded-solve scalars
:func:`repro.solve.derive_bounds_grid` needs, so ``--grid auto`` is
free on a warm cache.

Corrupted or truncated entries (interrupted writes, disk faults) are
treated as misses and deleted, so recovery is automatic: the unit is
recomputed and rewritten.  Each such recovery also increments the
dedicated :attr:`ResultCache.corrupt` counter — a corrupt entry *is* a
miss for control flow, but a run whose manifest shows nonzero
``corrupt`` had cache files damaged on disk, which plain miss counts
used to hide.  Writes go through a temp file + ``os.replace`` so
concurrent runs sharing a cache directory never observe a partial
entry.

Environment
-----------
``REPRO_CACHE_DIR``
    Default cache directory for the harness/figures/benches when no
    explicit ``cache`` argument is given.  Unset means "no cache".

Statistics (:attr:`ResultCache.hits` / ``misses`` / ``puts`` /
``corrupt``) feed the run manifest written by ``python -m repro
experiment``.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
import tempfile
from typing import Sequence

import numpy as np

from repro.core.ensemble import instance_digest
from repro.io import content_hash
from repro.obs import telemetry as obs
from repro.solve.problem import Problem, encode_bound

__all__ = [
    "CACHE_FORMAT",
    "ResultCache",
    "resolve_cache",
]

#: Bumped to 2 with the :mod:`repro.solve` redesign (keys derived from
#: per-point Problem content hashes), to 3 with the tri-criteria facade
#: (objective/floor fields in every Problem payload, grid-probe
#: records), and to 4 with the columnar ensemble core: keys are now
#: derived from raw-array *instance digests* instead of JSON Problem
#: payload hashes, and entries carry per-point achieved objective
#: values.  The one-release format-3 legacy-read path was removed in
#: 1.4.0; pre-columnar entries simply miss and recompute.
CACHE_FORMAT = 4


class ResultCache:
    """Content-addressed store of per-unit sweep results.

    Parameters
    ----------
    root:
        Cache directory (created on first write).

    Attributes
    ----------
    hits, misses, puts:
        Lookup/store counters since construction — the "zero solves on a
        warm cache" acceptance check reads these.
    corrupt:
        How many lookups found an entry on disk but could not use it
        (bad JSON, wrong format, wrong shape).  Every corrupt lookup
        also counts as a miss — the unit recomputes either way — but a
        nonzero ``corrupt`` means cache files were damaged, not merely
        absent.
    """

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt = 0

    # -- keys ------------------------------------------------------------

    def unit_key_for(
        self,
        method_name: str,
        base_digest: str,
        bounds: Sequence[tuple[float, float]],
        seed: "int | None" = None,
        fingerprint: "str | None" = None,
        scenario: "str | None" = None,
        objective: str = "reliability",
        min_reliability: float = 0.0,
    ) -> str:
        """Content hash identifying one work unit's result.

        A unit is one method run on one instance over a family of sweep
        points.  *base_digest* is the instance's raw-array content
        digest (:func:`repro.core.ensemble.instance_digest` — an
        :class:`~repro.core.ensemble.Ensemble` row hash, or the same
        digest computed from a materialized pair), so key derivation
        involves no object or JSON construction; each point contributes
        its (P, L) bound tokens, and the problem-level *objective* and
        *min_reliability* fields are explicit ingredients.

        The package version and the method's implementation
        *fingerprint* (:meth:`Method.fingerprint`) are part of the
        key, so neither a solver fix in a new release nor an edited or
        re-registered method ever replays stale arrays from a shared
        cache directory.

        When the sweep was materialized from a declarative scenario,
        *scenario* carries the spec's content hash
        (:func:`repro.scenarios.scenario_hash`) and becomes part of the
        key: two workloads that happen to generate an identical
        instance still keep separate entries, and editing a spec's
        generative fields can never replay arrays computed for the old
        workload.
        """
        from repro import __version__

        ingredients = {
            "repro_cache": CACHE_FORMAT,
            "repro_version": __version__,
            "method": method_name,
            "fingerprint": fingerprint,
            "seed": seed,
            "objective": objective,
            "min_reliability": float(min_reliability),
        }
        if scenario is not None:
            ingredients["scenario"] = scenario
        return content_hash(
            ingredients,
            base_digest,
            [[encode_bound(float(P)), encode_bound(float(L))] for P, L in bounds],
        )

    def unit_key(
        self,
        method_name: str,
        problems: Sequence[Problem],
        seed: "int | None" = None,
        fingerprint: "str | None" = None,
        scenario: "str | None" = None,
    ) -> str:
        """:meth:`unit_key_for` spelled over a materialized Problem family.

        The family shares one instance (chain + platform + objective);
        each member contributes its (P, L) bounds.  Produces exactly
        the key an :class:`~repro.core.ensemble.Ensemble`-driven sweep
        derives for the same instance — the bit-identity contract
        between the columnar and materialized paths.
        """
        if not problems:
            raise ValueError("a work unit needs at least one Problem")
        base = problems[0]
        return self.unit_key_for(
            method_name,
            _pair_digest(base.chain, base.platform),
            [(p.max_period, p.max_latency) for p in problems],
            seed=seed,
            fingerprint=fingerprint,
            scenario=scenario,
            objective=base.objective,
            min_reliability=base.min_reliability,
        )

    def probe_key_for(
        self,
        method_name: str,
        base_digest: str,
        fingerprint: "str | None" = None,
    ) -> str:
        """Content hash identifying one grid-probe solve's record.

        :func:`repro.solve.derive_bounds_grid` solves every ensemble
        instance once, unbounded, and keeps the solution's worst-case
        period and latency — scalars a sweep unit does not store.  The
        probe key addresses that record: same ingredients as
        :meth:`unit_key_for` (method identity, package version, the
        instance digest) under a distinct ``kind`` tag, so probe
        records and sweep units can never collide.
        """
        from repro import __version__

        return content_hash(
            {
                "repro_cache": CACHE_FORMAT,
                "repro_version": __version__,
                "kind": "grid-probe",
                "method": method_name,
                "fingerprint": fingerprint,
            },
            base_digest,
        )

    def probe_key(
        self,
        method_name: str,
        problem: Problem,
        fingerprint: "str | None" = None,
    ) -> str:
        """:meth:`probe_key_for` spelled over a materialized Problem."""
        return self.probe_key_for(
            method_name,
            _pair_digest(problem.chain, problem.platform),
            fingerprint=fingerprint,
        )

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    # -- lookup / store --------------------------------------------------

    def get(
        self, key: str, n_points: int, method_name: "str | None" = None
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray | None, dict | None] | None":
        """Return ``(solved, failure, objective_values, info)``, or None.

        ``objective_values`` is None for entries stored without them
        (direct :meth:`put` calls); ``info`` is the per-unit solve
        detail record (search probe counts, convergence) when the
        entry stored one.  A malformed entry (bad JSON, wrong version,
        wrong length) counts as a miss *and* a :attr:`corrupt` lookup,
        and is deleted so the recomputed unit overwrites it.

        *method_name* labels the telemetry counters
        (``cache.hit[heur-l]``, ...) when a collector is installed —
        the per-method cache breakdown run manifests report.
        """
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            arrays = self._unit_arrays_from(payload, n_points)
        except FileNotFoundError:
            self.misses += 1
            obs.counter("cache.miss", label=method_name)
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # Corrupted entry: recover by dropping it and recomputing.
            self.misses += 1
            self.corrupt += 1
            obs.counter("cache.corrupt", label=method_name)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        obs.counter("cache.hit", label=method_name)
        return arrays

    @staticmethod
    def _unit_arrays_from(
        payload: dict, n_points: int
    ) -> "tuple[np.ndarray, np.ndarray, np.ndarray | None, dict | None]":
        if payload["repro_cache"] != CACHE_FORMAT:
            raise ValueError("cache format mismatch")
        solved = np.asarray(payload["solved"], dtype=bool)
        failure = np.asarray(payload["failure"], dtype=float)
        if solved.shape != (n_points,) or failure.shape != (n_points,):
            raise ValueError("cache entry shape mismatch")
        objective_values = None
        if payload.get("objective_values") is not None:
            # float() also decodes the "inf" tokens _encode_value writes.
            objective_values = np.array(
                [float(v) for v in payload["objective_values"]], dtype=float
            )
            if objective_values.shape != (n_points,):
                raise ValueError("cache entry shape mismatch")
        info = payload.get("info")
        if info is not None and not isinstance(info, dict):
            raise ValueError("cache entry info mismatch")
        return solved, failure, objective_values, info

    def put(
        self,
        key: str,
        solved: np.ndarray,
        failure: np.ndarray,
        objective_values: "np.ndarray | None" = None,
        method_name: str = "",
        info: "dict | None" = None,
    ) -> None:
        """Store one unit's arrays atomically (temp file + rename).

        *info* carries the unit's solve-detail record (search probe
        totals, a convergence flag) when the method reported one, so a
        warm run's ledger still attributes convergence per unit.
        Entries without one omit the field entirely — the batched and
        per-row paths keep writing byte-identical payloads for methods
        that report no details.
        """
        record = {
            "method": method_name,
            "n_points": int(len(solved)),
            "solved": [bool(s) for s in solved],
            "failure": [float(f) for f in failure],
            "objective_values": None
            if objective_values is None
            else [_encode_value(v) for v in objective_values],
        }
        if info is not None:
            record["info"] = info
        self.put_record(key, record)

    # -- generic records (grid probes) -----------------------------------

    def get_record(self, key: str, method_name: "str | None" = None) -> "dict | None":
        """Return a JSON record stored by :meth:`put_record`, or None.

        Same recovery contract as :meth:`get`: malformed or
        wrong-format entries count as misses and are deleted.
        *method_name* labels the telemetry counters like :meth:`get`.
        """
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            if payload.get("repro_cache") != CACHE_FORMAT:
                raise ValueError("cache format mismatch")
        except FileNotFoundError:
            self.misses += 1
            obs.counter("cache.miss", label=method_name)
            return None
        except (ValueError, KeyError, TypeError, OSError):
            self.misses += 1
            self.corrupt += 1
            obs.counter("cache.corrupt", label=method_name)
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        obs.counter("cache.hit", label=method_name)
        return payload

    def put_record(self, key: str, record: dict) -> None:
        """Store a JSON-able record atomically (temp file + rename).

        The format stamp is added here; everything else is the
        caller's payload.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"repro_cache": CACHE_FORMAT, **record}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.puts += 1

    # -- bookkeeping -----------------------------------------------------

    def stats(self) -> dict:
        """Counter snapshot for manifests and logs.

        ``hit_rate`` is ``hits / (hits + misses)``, or None before any
        lookup — manifests report it directly instead of every reader
        re-deriving it.
        """
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "corrupt": self.corrupt,
            "hit_rate": self.hits / lookups if lookups else None,
        }

    def reset(self) -> None:
        """Zero the counters (entries on disk are untouched).

        Lets one shared cache report per-phase stats: reset between a
        cold and a warm leg and each leg's manifest sees only its own
        lookups.
        """
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.corrupt = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache({str(self.root)!r}, hits={self.hits}, misses={self.misses})"


def _pair_digest(chain, platform) -> str:
    """A materialized pair's :func:`instance_digest` — the one digest
    spelling shared by unit keys and probe keys, so the two can never
    drift apart ingredient-wise."""
    return instance_digest(
        chain.work,
        chain.output,
        platform.speeds,
        platform.failure_rates,
        platform.bandwidth,
        platform.link_failure_rate,
        platform.max_replication,
    )


def _encode_value(value: float) -> "float | str":
    """JSON-safe float encoding for objective values (inf -> "inf")."""
    value = float(value)
    return value if math.isfinite(value) else repr(value)


def resolve_cache(cache: "ResultCache | str | os.PathLike[str] | None") -> "ResultCache | None":
    """Normalize a harness ``cache`` argument.

    ``None`` falls back to ``$REPRO_CACHE_DIR`` (no cache when unset); a
    path becomes a :class:`ResultCache`; an existing cache passes
    through (so callers can share one counter across sweeps).
    """
    if isinstance(cache, ResultCache):
        return cache
    if cache is None:
        env = os.environ.get("REPRO_CACHE_DIR")
        if not env:
            return None
        cache = env
    return ResultCache(cache)
