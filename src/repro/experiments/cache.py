"""On-disk result cache for bound sweeps.

The paper's evaluation recomputes the same ``method x instance x
bounds`` solves for every figure, bench, and cross-check run.  This
module gives them a shared, content-addressed store so a sweep computed
once is free forever after.

Layout
------
One JSON file per *work unit* — one method run on one instance over a
full bounds list::

    <cache_dir>/<key[:2]>/<key>.json

where ``key = sha256(method name, base Problem hash, per-point bound
tokens, seed, package version)`` via :func:`repro.io.content_hash` — a
unit is one method run over a family of :class:`repro.solve.Problem`
objects (one per sweep point, sharing chain and platform), and the key
is derived from the shared base problem's content hash plus each
point's bounds.  Keys are stable across process restarts, and
automatically invalidated when any ingredient (chain, platform,
bounds, objective, method identity, per-unit seed, repro release)
changes, because a different key simply never matches.  Each entry
holds::

    {"repro_cache": CACHE_FORMAT, "method": ..., "n_points": ...,
     "solved": [...bools...], "failure": [...floats...]}

Next to sweep units the cache also stores **grid-probe records**
(:meth:`ResultCache.put_record` under :meth:`ResultCache.probe_key`):
the per-instance unbounded-solve scalars
:func:`repro.solve.derive_bounds_grid` needs, so ``--grid auto`` is
free on a warm cache.

Corrupted or truncated entries (interrupted writes, disk faults) are
treated as misses and deleted, so recovery is automatic: the unit is
recomputed and rewritten.  Writes go through a temp file + ``os.replace``
so concurrent runs sharing a cache directory never observe a partial
entry.

Environment
-----------
``REPRO_CACHE_DIR``
    Default cache directory for the harness/figures/benches when no
    explicit ``cache`` argument is given.  Unset means "no cache".

Statistics (:attr:`ResultCache.hits` / ``misses`` / ``puts``) feed the
run manifest written by ``python -m repro experiment``.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
from typing import Sequence

import numpy as np

from repro.io import content_hash
from repro.solve.problem import Problem, encode_bound

__all__ = ["CACHE_FORMAT", "ResultCache", "resolve_cache"]

#: Bumped to 2 with the :mod:`repro.solve` redesign (keys derived from
#: per-point Problem content hashes), and to 3 with the tri-criteria
#: facade: Problem payloads gained ``objective``/``min_reliability``
#: fields (all content hashes moved) and the cache now also stores
#: grid-probe records (:meth:`ResultCache.put_record`) next to sweep
#: units.  Format-2 entries can never be addressed by format-3 keys.
CACHE_FORMAT = 3


class ResultCache:
    """Content-addressed store of per-unit sweep results.

    Parameters
    ----------
    root:
        Cache directory (created on first write).

    Attributes
    ----------
    hits, misses, puts:
        Lookup/store counters since construction — the "zero solves on a
        warm cache" acceptance check reads these.
    """

    def __init__(self, root: "str | os.PathLike[str]") -> None:
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0
        self.puts = 0

    # -- keys ------------------------------------------------------------

    def unit_key(
        self,
        method_name: str,
        problems: Sequence[Problem],
        seed: "int | None" = None,
        fingerprint: "str | None" = None,
        scenario: "str | None" = None,
    ) -> str:
        """Content hash identifying one work unit's result.

        A unit is one method run over a family of
        :class:`~repro.solve.Problem` objects — one per sweep point,
        sharing chain and platform.  The key is derived from the
        problems' content: the shared *base* (chain + platform +
        objective) is hashed once via
        :meth:`~repro.solve.Problem.content_hash`, and each point
        contributes its (P, L) bound tokens — so every ingredient is
        covered without re-serializing the instance once per sweep
        point.

        The package version and the method's implementation
        *fingerprint* (:meth:`Method.fingerprint`) are part of the
        key, so neither a solver fix in a new release nor an edited or
        re-registered method ever replays stale arrays from a shared
        cache directory.

        When the sweep was materialized from a declarative scenario,
        *scenario* carries the spec's content hash
        (:func:`repro.scenarios.scenario_hash`) and becomes part of the
        key: two workloads that happen to generate an identical
        instance still keep separate entries, and editing a spec's
        generative fields can never replay arrays computed for the old
        workload.
        """
        from repro import __version__

        if not problems:
            raise ValueError("a work unit needs at least one Problem")
        ingredients = {
            "repro_cache": CACHE_FORMAT,
            "repro_version": __version__,
            "method": method_name,
            "fingerprint": fingerprint,
            "seed": seed,
        }
        if scenario is not None:
            ingredients["scenario"] = scenario
        return content_hash(
            ingredients,
            problems[0].unbounded().content_hash(),
            [
                [encode_bound(p.max_period), encode_bound(p.max_latency)]
                for p in problems
            ],
        )

    def probe_key(
        self,
        method_name: str,
        problem: Problem,
        fingerprint: "str | None" = None,
    ) -> str:
        """Content hash identifying one grid-probe solve's record.

        :func:`repro.solve.derive_bounds_grid` solves every ensemble
        instance once, unbounded, and keeps the solution's worst-case
        period and latency — scalars a sweep unit does not store.  The
        probe key addresses that record: same ingredients as
        :meth:`unit_key` (method identity, package version, the
        problem's content hash) under a distinct ``kind`` tag, so probe
        records and sweep units can never collide.
        """
        from repro import __version__

        return content_hash(
            {
                "repro_cache": CACHE_FORMAT,
                "repro_version": __version__,
                "kind": "grid-probe",
                "method": method_name,
                "fingerprint": fingerprint,
            },
            problem.content_hash(),
        )

    def _path(self, key: str) -> pathlib.Path:
        return self.root / key[:2] / f"{key}.json"

    # -- lookup / store --------------------------------------------------

    def get(self, key: str, n_points: int) -> "tuple[np.ndarray, np.ndarray] | None":
        """Return ``(solved, failure)`` arrays, or None on miss.

        A malformed entry (bad JSON, wrong version, wrong length) counts
        as a miss and is deleted so the recomputed unit overwrites it.
        """
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            if payload["repro_cache"] != CACHE_FORMAT:
                raise ValueError("cache format mismatch")
            solved = np.asarray(payload["solved"], dtype=bool)
            failure = np.asarray(payload["failure"], dtype=float)
            if solved.shape != (n_points,) or failure.shape != (n_points,):
                raise ValueError("cache entry shape mismatch")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            # Corrupted entry: recover by dropping it and recomputing.
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return solved, failure

    def put(self, key: str, solved: np.ndarray, failure: np.ndarray, method_name: str = "") -> None:
        """Store one unit's arrays atomically (temp file + rename)."""
        self.put_record(
            key,
            {
                "method": method_name,
                "n_points": int(len(solved)),
                "solved": [bool(s) for s in solved],
                "failure": [float(f) for f in failure],
            },
        )

    # -- generic records (grid probes) -----------------------------------

    def get_record(self, key: str) -> "dict | None":
        """Return a JSON record stored by :meth:`put_record`, or None.

        Same recovery contract as :meth:`get`: malformed or
        wrong-format entries count as misses and are deleted.
        """
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            if payload.get("repro_cache") != CACHE_FORMAT:
                raise ValueError("cache format mismatch")
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError, OSError):
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.hits += 1
        return payload

    def put_record(self, key: str, record: dict) -> None:
        """Store a JSON-able record atomically (temp file + rename).

        The format stamp is added here; everything else is the
        caller's payload.
        """
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"repro_cache": CACHE_FORMAT, **record}
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.puts += 1

    # -- bookkeeping -----------------------------------------------------

    def stats(self) -> dict:
        """Counter snapshot for manifests and logs."""
        return {"hits": self.hits, "misses": self.misses, "puts": self.puts}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultCache({str(self.root)!r}, hits={self.hits}, misses={self.misses})"


def resolve_cache(cache: "ResultCache | str | os.PathLike[str] | None") -> "ResultCache | None":
    """Normalize a harness ``cache`` argument.

    ``None`` falls back to ``$REPRO_CACHE_DIR`` (no cache when unset); a
    path becomes a :class:`ResultCache`; an existing cache passes
    through (so callers can share one counter across sweeps).
    """
    if isinstance(cache, ResultCache):
        return cache
    if cache is None:
        env = os.environ.get("REPRO_CACHE_DIR")
        if not env:
            return None
        cache = env
    return ResultCache(cache)
