"""The Section 8 experimental harness.

Everything needed to regenerate Figures 6-15:

* :mod:`repro.experiments.instances` — the random instance suites with
  the paper's exact distributions (homogeneous, and heterogeneous/
  homogeneous counterpart pairs);
* :mod:`repro.experiments.methods` — a pluggable registry
  (:func:`register_method`) over the compared methods (ILP, Heur-L,
  Heur-P, our exact Pareto DP, brute force, annealing) with capability
  metadata; methods solve :class:`repro.solve.Problem` objects, and
  the :func:`repro.solve.solve` facade / scenario-aware
  :class:`repro.solve.Planner` sit on top of this registry;
* :mod:`repro.experiments.harness` — parallel, cache-backed bound
  sweeps, solution counting, and the paper's two failure-probability
  averaging rules;
* :mod:`repro.experiments.cache` — the content-addressed on-disk
  result cache shared by figures, benches, and the CLI;
* :mod:`repro.experiments.figures` — one configuration per figure and
  the runners that produce its series;
* :mod:`repro.experiments.report` — ASCII rendering and JSON dumps;
* :mod:`repro.experiments.crosscheck` — the whole-stack validation
  chain over a randomized (or scenario-driven) instance population.

Workloads beyond the paper's two suites are declared, not coded: the
harness, the cross-check, and the CLI all accept scenario names or
specs from :mod:`repro.scenarios` (``run_sweep("long-chain", ...)``),
with the spec's content hash folded into the result-cache keys.
"""

from repro.experiments.instances import (
    HOM_DEFAULTS,
    HET_DEFAULTS,
    homogeneous_suite,
    heterogeneous_suite,
)
from repro.experiments.methods import (
    METHODS,
    Method,
    UnknownMethodError,
    get_method,
    register_method,
)
from repro.experiments.cache import ResultCache
from repro.experiments.crosscheck import CrosscheckReport, run_crosscheck
from repro.experiments.harness import SweepResult, run_sweep
from repro.experiments.figures import (
    EXPERIMENTS,
    FIGURES,
    FigureResult,
    run_experiment,
    run_figure,
)
from repro.experiments.report import render_series_table, series_to_json

__all__ = [
    "HOM_DEFAULTS",
    "HET_DEFAULTS",
    "homogeneous_suite",
    "heterogeneous_suite",
    "METHODS",
    "Method",
    "UnknownMethodError",
    "get_method",
    "register_method",
    "ResultCache",
    "CrosscheckReport",
    "run_crosscheck",
    "SweepResult",
    "run_sweep",
    "EXPERIMENTS",
    "FIGURES",
    "FigureResult",
    "run_experiment",
    "run_figure",
    "render_series_table",
    "series_to_json",
]
