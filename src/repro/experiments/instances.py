"""Random instance suites with the Section 8 distributions.

Homogeneous experiments (Section 8.1): 100 instances of 15 tasks on 10
processors; ``w ~ U[1, 100]``, ``o ~ U[1, 10]`` (integers), speed 1,
bandwidth 1, ``lambda_p = 1e-8``, ``lambda_l = 1e-5``, ``K = 3``.

Heterogeneous experiments (Section 8.2): same chains; processor speeds
``~ U[1, 100]``, constant ``lambda_u = 1e-8``; and for each instance a
*homogeneous counterpart* platform of speed 5 ("a second instance is
created with the same chain of tasks and a homogeneous platform of
speed 5").

These two suites are also available declaratively as the registered
scenarios ``"section8-hom"`` and ``"section8-het"``
(:mod:`repro.scenarios.builtin`); the scenario layer's per-instance RNG
mode reproduces the functions here **bit for bit** under the same seed
— its columnar :class:`repro.core.ensemble.Ensemble` rows materialize
to exactly these objects (``tests/test_scenarios.py`` and
``tests/test_ensemble.py`` pin the equivalence), so the two code paths
cross-check each other.  Prefer the scenario form for anything beyond
the paper's exact suites (new distributions, sweeps, paired regimes);
the functions below remain the canonical Section 8 reference
implementation, deliberately untouched by the columnar refactor.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.core.chain import TaskChain
from repro.core.generate import random_chain, random_platform
from repro.core.platform import Platform
from repro.util.rng import ensure_rng, spawn

__all__ = [
    "HOM_DEFAULTS",
    "HET_DEFAULTS",
    "HetInstancePair",
    "homogeneous_suite",
    "heterogeneous_suite",
]

#: Section 8.1 parameters.
HOM_DEFAULTS = dict(
    n_instances=100,
    n_tasks=15,
    p=10,
    K=3,
    speed=1.0,
    bandwidth=1.0,
    proc_failure_rate=1e-8,
    link_failure_rate=1e-5,
    work_range=(1.0, 100.0),
    output_range=(1.0, 10.0),
)

#: Section 8.2 parameters (hom counterpart speed included).
HET_DEFAULTS = dict(
    n_instances=100,
    n_tasks=15,
    p=10,
    K=3,
    speed_range=(1.0, 100.0),
    hom_speed=5.0,
    bandwidth=1.0,
    proc_failure_rate=1e-8,
    link_failure_rate=1e-5,
    work_range=(1.0, 100.0),
    output_range=(1.0, 10.0),
)


def homogeneous_suite(
    n_instances: int = 100,
    n_tasks: int = 15,
    p: int = 10,
    K: int = 3,
    seed: int = 0,
    speed: float = 1.0,
    bandwidth: float = 1.0,
    proc_failure_rate: float = 1e-8,
    link_failure_rate: float = 1e-5,
    work_range: tuple[float, float] = (1.0, 100.0),
    output_range: tuple[float, float] = (1.0, 10.0),
) -> list[tuple[TaskChain, Platform]]:
    """The Section 8.1 instance suite (seeded, reproducible).

    Each instance gets an independent child RNG stream, so truncating
    or extending the suite never changes earlier instances.
    """
    master = ensure_rng(seed)
    streams = spawn(master, n_instances)
    platform = Platform.homogeneous_platform(
        p,
        speed=speed,
        failure_rate=proc_failure_rate,
        bandwidth=bandwidth,
        link_failure_rate=link_failure_rate,
        max_replication=K,
    )
    return [
        (
            random_chain(
                n_tasks, rng, work_range=work_range, output_range=output_range
            ),
            platform,
        )
        for rng in streams
    ]


@dataclass(frozen=True)
class HetInstancePair:
    """One Section 8.2 instance: a chain with its heterogeneous platform
    and the homogeneous counterpart of speed 5."""

    chain: TaskChain
    het_platform: Platform
    hom_platform: Platform


def heterogeneous_suite(
    n_instances: int = 100,
    n_tasks: int = 15,
    p: int = 10,
    K: int = 3,
    seed: int = 0,
    speed_range: tuple[float, float] = (1.0, 100.0),
    hom_speed: float = 5.0,
    bandwidth: float = 1.0,
    proc_failure_rate: float = 1e-8,
    link_failure_rate: float = 1e-5,
    work_range: tuple[float, float] = (1.0, 100.0),
    output_range: tuple[float, float] = (1.0, 10.0),
) -> list[HetInstancePair]:
    """The Section 8.2 paired suite (seeded, reproducible)."""
    master = ensure_rng(seed)
    streams = spawn(master, n_instances)
    hom_platform = Platform.homogeneous_platform(
        p,
        speed=hom_speed,
        failure_rate=proc_failure_rate,
        bandwidth=bandwidth,
        link_failure_rate=link_failure_rate,
        max_replication=K,
    )
    pairs = []
    for rng in streams:
        chain = random_chain(
            n_tasks, rng, work_range=work_range, output_range=output_range
        )
        het = random_platform(
            p,
            rng,
            speed_range=speed_range,
            failure_rate=proc_failure_rate,
            bandwidth=bandwidth,
            link_failure_rate=link_failure_rate,
            max_replication=K,
        )
        pairs.append(HetInstancePair(chain, het, hom_platform))
    return pairs
