"""Method registry: a uniform, extensible interface for the harness.

A :class:`Method` maps a :class:`repro.solve.Problem` — the frozen,
content-hashable Section 3 instance (chain + platform + period/latency
bounds + objective) — to a
:class:`~repro.algorithms.result.SolveResult`.  Methods live in a
process-wide registry so the sweep runner, the planner, the cache, and
the CLI can all refer to them *by name* — which is also what lets the
parallel harness ship work units to worker processes as plain strings
instead of unpicklable closures.

The front door for one-off solves is the facade::

    from repro.solve import Problem, solve

    problem = Problem(chain, platform, max_period=250.0, max_latency=750.0)
    result = solve(problem, method="pareto-dp")     # or method="auto"

Built-in methods:

* ``"ilp"`` — the Section 5.4 integer program (exact, homogeneous only);
  the paper's yardstick in Figures 6-11.  ``"ilp-bb"`` is the same
  model on the pure-python branch-and-bound backend (cross-check use).
* ``"pareto-dp"`` — our exact combinatorial solver (homogeneous only);
  same optima as ``"ilp"``, several times faster — handy for full-scale
  regeneration.
* ``"heur-l"`` / ``"heur-p"`` — the Section 7 heuristics (any platform);
  ``"heuristic"`` runs both and keeps the best feasible candidate.
* ``"heur-l-paper"`` / ``"heur-p-paper"`` — the paper's heterogeneous
  reading of Section 7 (see the inline note below).
* ``"brute-force"`` — exhaustive search for tiny instances (the
  cross-check's ground truth; guarded by a search-space budget).
  Objective-aware: it answers *any* :data:`repro.solve.OBJECTIVES`
  entry exactly, which is what the converse-objective cross-checks
  compare against.
* ``"anneal"`` — the simulated-annealing extension; *stochastic*, so the
  harness hands it a deterministic per-unit seed (see
  :func:`repro.util.rng.stable_seed`).

Objective-native methods (the tri-criteria facade; every method above
supports only the paper's ``"reliability"`` objective unless noted):

* ``"dp-period"`` — minimize the period under a reliability floor and
  a latency bound (Section 5.2's converse, generalized;
  :func:`repro.algorithms.minimize_period`); exact, homogeneous only.
* ``"dp-latency"`` — minimize the latency under a reliability floor
  and a period bound (:func:`repro.algorithms.minimize_latency`, a
  final-frontier scan of the Pareto DP); exact, homogeneous only.
* ``"energy-greedy"`` — minimize the Section 9 dynamic-power energy
  under both bounds and a floor
  (:func:`repro.extensions.energy.minimize_energy`); heuristic, any
  platform.

Extending the registry::

    @register_method("my-method", exact=False, cost_hint=2.0)
    def _my_solve(problem):
        return ...  # a SolveResult for problem.chain on problem.platform

Capability metadata drives validation (``homogeneous_only`` methods
refuse heterogeneous platforms up front), scheduling (the parallel
harness submits high-``cost_hint`` units first so expensive solves do
not straggle at the end of the pool queue), and *planning*: the
scenario-aware :class:`repro.solve.Planner` reads ``homogeneous_only``,
``exact``, ``cost_hint``, ``max_tasks``, and ``tags`` to select and
order the methods applicable to a workload, recording a skip reason for
every method it drops.

Migration note
--------------
Before the :mod:`repro.solve` redesign, solve callables took the bare
positional tuple ``(chain, platform, max_period, max_latency)``.  Thin
deprecation shims keep that style working — registering a
positional-signature callable, or calling a method positionally, emits
a :class:`DeprecationWarning` (once per call site) and adapts to the
Problem API.  See the README's migration table; internal code is fully
migrated and the test suite runs with ``-W error::DeprecationWarning``.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import math
import sys
import types
import warnings
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.algorithms import (
    brute_force_best,
    heuristic_best,
    heuristic_solve_batch,
    ilp_best,
    pareto_dp_best,
)
from repro.algorithms.batch_dp import batch_minimize_latency, batch_minimize_period
from repro.algorithms.batch_search import search_solve_batch
from repro.algorithms.result import SolveResult
from repro.core.platform import Platform
from repro.solve.problem import Problem

__all__ = [
    "Method",
    "METHODS",
    "UnknownMethodError",
    "get_method",
    "register_method",
]

_POSITIONAL_CALL_MSG = (
    "calling a Method with the positional (chain, platform, max_period, "
    "max_latency) signature is deprecated; build a repro.solve.Problem and "
    "use Method.solve_problem(problem) or repro.solve.solve(problem, method=...)"
)

_POSITIONAL_REGISTER_MSG = (
    "solve callable {name} uses the deprecated positional (chain, platform, "
    "max_period, max_latency) signature; define it as fn(problem) taking a "
    "repro.solve.Problem instead"
)


def _warn_deprecated(message: str) -> None:
    """Emit a DeprecationWarning attributed to the caller *outside*
    this module.

    The shims are reached through varying internal depths (``
    method.solve(...)`` directly, ``method(...)`` via ``__call__``,
    registration via the decorator and the dataclass ``__init__``), so
    a fixed ``stacklevel`` would pin every warning to one line of this
    file — deduplicating *all* un-migrated call sites into a single
    report and pointing users at library code.  Walking to the first
    external frame keeps the documented once-per-call-site contract
    honest.
    """
    level = 2
    frame = sys._getframe(1)
    while frame is not None and frame.f_globals.get("__name__") == __name__:
        frame = frame.f_back
        level += 1
    warnings.warn(message, DeprecationWarning, stacklevel=level)


class UnknownMethodError(KeyError, ValueError):
    """Raised when a method name is not in the registry (or a sweep).

    Subclasses both :class:`KeyError` (the registry is a mapping) and
    :class:`ValueError` (historical behaviour), so callers catching
    either keep working.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


def _takes_problem(fn: Callable) -> bool:
    """Heuristically classify a solve callable's signature.

    Problem-style callables take a single *required* positional
    parameter (conventionally named ``problem``; trailing defaulted
    parameters like ``seed=None`` don't count); legacy callables take
    the four positional ``(chain, platform, max_period, max_latency)``.
    Objects without an inspectable signature are assumed problem-style
    (the canonical form).
    """
    try:
        params = list(inspect.signature(fn).parameters.values())
    except (TypeError, ValueError):  # builtins, C callables
        return True
    positional = [
        p
        for p in params
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
    ]
    if positional and positional[0].name in ("problem", "prob"):
        return True
    required = [p for p in positional if p.default is p.empty]
    return len(required) < 2


def _as_canonical(fn: Callable) -> Callable:
    """Normalize a solve callable to the canonical dual-entry form.

    The returned callable's primary signature is ``(problem, **kw)``;
    it also still accepts the legacy positional ``(chain, platform,
    max_period, max_latency)`` form, emitting a
    :class:`DeprecationWarning` at the caller's line (so with default
    warning filters each un-migrated call site warns exactly once).

    Legacy-signature *callables* are adapted too: registering one warns
    once at the registration site, after which every Problem routed to
    it is unpacked into the old four arguments.  Idempotent — an
    already-canonical callable (e.g. one lifted off another
    :class:`Method`) passes through unchanged, keeping fingerprints and
    ``replace=True`` re-registration stable.
    """
    if getattr(fn, "__repro_canonical__", False):
        return fn
    if _takes_problem(fn):
        inner, legacy = fn, None
    else:
        inner, legacy = None, fn
        _warn_deprecated(
            _POSITIONAL_REGISTER_MSG.format(name=getattr(fn, "__qualname__", repr(fn)))
        )

    @functools.wraps(fn)
    def canonical(*args, **kwargs):
        if args and isinstance(args[0], Problem):
            problem = args[0]
            if inner is not None:
                return inner(problem, *args[1:], **kwargs)
            return legacy(
                problem.chain, problem.platform,
                problem.max_period, problem.max_latency, **kwargs,
            )
        _warn_deprecated(_POSITIONAL_CALL_MSG)
        chain, platform, *rest = args
        P = float(rest[0]) if len(rest) > 0 else kwargs.pop("max_period", math.inf)
        L = float(rest[1]) if len(rest) > 1 else kwargs.pop("max_latency", math.inf)
        if inner is not None:
            return inner(Problem(chain, platform, P, L), **kwargs)
        return legacy(chain, platform, P, L, **kwargs)

    canonical.__repro_canonical__ = True
    return canonical


@dataclass(frozen=True)
class Method:
    """A named mapping-search method usable in solves, plans, and sweeps.

    Attributes
    ----------
    name:
        Registry key and curve label.
    solve:
        The canonical solve callable: ``(problem) -> SolveResult``
        (stochastic methods additionally accept a ``seed`` keyword).
        Legacy positional-signature callables are adapted on
        construction with a :class:`DeprecationWarning`; positional
        *calls* keep working through a warning shim.
    exact:
        True for provably optimal solvers, False for heuristics.
    homogeneous_only:
        True when the method's theory only covers homogeneous platforms
        (the Section 5 algorithms); such methods refuse heterogeneous
        platforms with a clear error (:meth:`check_platform`).
    cost_hint:
        Relative cost of one solve (heuristics ~1).  The parallel
        harness schedules expensive units first to balance the pool,
        and the planner orders selected methods expensive-first.
    seeded:
        True when ``solve`` is stochastic and takes a ``seed`` keyword;
        the harness derives a deterministic per-unit seed so parallel
        and serial runs stay bit-identical.
    max_tasks:
        Optional hard ceiling on chain length (e.g. brute force's
        search-space budget); the planner skips the method for larger
        workloads.  ``None`` = no intrinsic limit.
    tags:
        Free-form capability labels.  The planner understands
        ``"manual"`` (never auto-selected; must be requested
        explicitly) and ``"paired"`` (auto-selected only for paired
        Section 8.2-style scenarios).
    objectives:
        The :data:`repro.solve.OBJECTIVES` entries the method can
        optimize (default: the paper's ``"reliability"`` only).
        :meth:`check_problem` refuses problems with any other
        objective, and the planner skips the method for
        objective-mismatched plans with a recorded reason.
    solve_batch:
        Optional batched entry point — ``(ensemble, bounds, *, rows,
        objective, min_reliability) -> (solved, failure,
        objective_values)`` arrays of shape ``(len(rows),
        len(bounds))``, bit-identical to looping :attr:`solve` over
        the rows.  Kernels whose scalar twin records per-unit details
        (probe counts, convergence flags) return a 4-tuple instead —
        ``(..., infos)`` with one per-row info dict (or ``None``) in
        ``rows`` order, byte-identical to what the harness would have
        accumulated from the per-row results.  The sweep harness calls
        it per ``(method, ensemble)`` group; a kernel that does not
        cover the shape raises
        :class:`repro.algorithms.batch.BatchUnsupported` (whose
        ``reason`` the harness counts per fallback class) and every
        row falls back to the per-instance path.  ``None`` (default)
        means "no batched path".
    """

    name: str
    solve: Callable[..., SolveResult]
    exact: bool
    homogeneous_only: bool
    cost_hint: float = 1.0
    seeded: bool = False
    max_tasks: "int | None" = None
    tags: tuple[str, ...] = ()
    objectives: tuple[str, ...] = ("reliability",)
    solve_batch: "Callable | None" = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "solve", _as_canonical(self.solve))
        object.__setattr__(self, "tags", tuple(self.tags))
        from repro.solve.problem import OBJECTIVES

        objectives = tuple(self.objectives)
        if not objectives:
            raise ValueError(f"method {self.name!r} must support at least one objective")
        unknown = [o for o in objectives if o not in OBJECTIVES]
        if unknown:
            raise ValueError(
                f"method {self.name!r} declares unknown objectives {unknown}; "
                f"supported: {OBJECTIVES}"
            )
        object.__setattr__(self, "objectives", objectives)

    def solve_problem(self, problem: Problem, *, seed: "int | None" = None) -> SolveResult:
        """Solve one :class:`~repro.solve.Problem` (the canonical path).

        *seed* is forwarded only to stochastic (:attr:`seeded`)
        methods; deterministic methods ignore it.
        """
        if self.seeded:
            return self.solve(problem, seed=seed)
        return self.solve(problem)

    def check_platform(self, platform: Platform) -> None:
        """Raise a descriptive error if *platform* is out of scope."""
        if self.homogeneous_only and not platform.homogeneous:
            raise ValueError(
                f"method {self.name!r} requires homogeneous platforms "
                f"(it implements a Section 5 algorithm); got a "
                f"heterogeneous platform with {platform.p} processors. "
                f"Use a heuristic method (e.g. 'heur-l', 'heur-p') instead."
            )

    def check_problem(self, problem: Problem) -> None:
        """Raise a descriptive error if *problem* is out of scope."""
        self._check_objective(problem.objective)
        self.check_platform(problem.platform)
        self._check_size(problem.n_tasks)

    def check_ensemble(self, ensemble, objective: str = "reliability") -> None:
        """Raise a descriptive error if any ensemble row is out of scope.

        The columnar twin of :meth:`check_problem`: objective and chain
        length are checked once for the whole
        :class:`~repro.core.ensemble.Ensemble`, and homogeneity is read
        off the columns — a heterogeneous row only materializes its
        :class:`Platform` to raise the usual descriptive error.
        """
        self._check_objective(objective)
        self._check_size(ensemble.n_tasks)
        if self.homogeneous_only and not ensemble.all_homogeneous:
            offending = int(np.argmin(ensemble.homogeneous_rows()))
            self.check_platform(ensemble.platform(offending))

    def _check_objective(self, objective: str) -> None:
        if objective not in self.objectives:
            raise ValueError(
                f"method {self.name!r} does not support objective "
                f"{objective!r} (it supports: "
                f"{', '.join(self.objectives)}); see repro.solve.OBJECTIVES "
                f"for objective-native methods"
            )

    def _check_size(self, n_tasks: int) -> None:
        if self.max_tasks is not None and n_tasks > self.max_tasks:
            raise ValueError(
                f"method {self.name!r} handles chains of at most "
                f"{self.max_tasks} tasks; got {n_tasks}"
            )

    def fingerprint(self) -> str:
        """Implementation fingerprint of the solve callable.

        A registry *name* does not identify an implementation: a user
        can re-register a name, or edit a registered function between
        runs.  The harness therefore pairs the name with this digest —
        bytecode plus constants plus closure-cell values — in cache
        keys (so edited code never replays stale arrays) and in the
        worker handshake (so a spawn-started worker that resolves the
        name to *different* code refuses the unit instead of silently
        running the wrong solver).

        Only stable values are hashed: bytecode, nested functions, and
        captured primitives.  Mutable captured objects (a stats dict, a
        logger) reduce to their type name — their runtime *state* is
        not part of the implementation, and hashing it would churn the
        key on every call.
        """
        digest = hashlib.sha256()
        _PRIMITIVES = (str, bytes, int, float, complex, bool, type(None))

        def visit(obj) -> None:
            if isinstance(obj, types.CodeType):
                digest.update(obj.co_code)
                for const in obj.co_consts:
                    visit(const)
            elif isinstance(obj, types.FunctionType):
                visit(obj.__code__)
                for cell in obj.__closure__ or ():
                    try:
                        visit(cell.cell_contents)
                    except ValueError:  # empty cell
                        pass
            elif isinstance(obj, _PRIMITIVES):
                digest.update(repr(obj).encode())
            elif isinstance(obj, (tuple, frozenset)):
                for item in obj:
                    visit(item)
            else:
                digest.update(f"<{type(obj).__qualname__}>".encode())
            digest.update(b"\x1f")

        visit(self.solve)
        if self.solve_batch is not None:
            # The batched path must agree with solve bit for bit, but
            # its code is still part of the implementation a cache key
            # vouches for — edits to the kernel invalidate entries.
            digest.update(b"batch\x1e")
            visit(self.solve_batch)
        return digest.hexdigest()

    def __call__(self, *args, **kwargs) -> SolveResult:
        """Alias of :attr:`solve`: ``method(problem)`` is the canonical
        call; the positional legacy form warns and adapts."""
        return self.solve(*args, **kwargs)


#: The process-wide registry (name -> Method).  Mutate only through
#: :func:`register_method`.
METHODS: dict[str, Method] = {}


def register_method(
    name: str,
    *,
    exact: bool = False,
    homogeneous_only: bool = False,
    cost_hint: float = 1.0,
    seeded: bool = False,
    max_tasks: "int | None" = None,
    tags: "tuple[str, ...] | list[str]" = (),
    objectives: "tuple[str, ...] | list[str]" = ("reliability",),
    solve_batch: "Callable | None" = None,
    replace: bool = False,
) -> Callable[[Callable], Method]:
    """Decorator registering a solve callable as a named :class:`Method`.

    The callable takes a :class:`repro.solve.Problem` (legacy
    positional signatures are adapted with a DeprecationWarning).
    ``solve_batch`` optionally attaches a batched kernel (see
    :attr:`Method.solve_batch`) that must reproduce ``fn`` row by row,
    bit for bit.  Duplicate names are rejected (``ValueError``) unless
    ``replace=True`` — re-registering silently would let one experiment
    corrupt another's curves and cache keys.  Returns the
    :class:`Method` record, so the decorated name is the method object
    itself (its ``solve`` attribute holds the canonical callable).
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"method name must be a non-empty string, got {name!r}")

    def deco(fn: Callable) -> Method:
        if name in METHODS and not replace:
            raise ValueError(
                f"method {name!r} is already registered "
                f"(pass replace=True to override)"
            )
        method = Method(
            name=name,
            solve=fn,
            exact=exact,
            homogeneous_only=homogeneous_only,
            cost_hint=cost_hint,
            seeded=seeded,
            max_tasks=max_tasks,
            tags=tuple(tags),
            objectives=tuple(objectives),
            solve_batch=solve_batch,
        )
        METHODS[name] = method
        return method

    return deco


def get_method(name: str) -> Method:
    """Look up a registered method by name.

    Raises
    ------
    UnknownMethodError
        With the sorted list of known names — a ``KeyError`` (and, for
        backward compatibility, a ``ValueError``).
    """
    try:
        return METHODS[name]
    except KeyError:
        raise UnknownMethodError(
            f"unknown method {name!r}; available: {sorted(METHODS)}"
        ) from None


# --------------------------------------------------------------------------
# Built-in methods
# --------------------------------------------------------------------------


@register_method("ilp", exact=True, homogeneous_only=True, cost_hint=10.0)
def _ilp(problem):
    return ilp_best(
        problem.chain, problem.platform,
        max_period=problem.max_period, max_latency=problem.max_latency,
    )


@register_method(
    "ilp-bb", exact=True, homogeneous_only=True, cost_hint=30.0, tags=("manual",)
)
def _ilp_bb(problem):
    return ilp_best(
        problem.chain, problem.platform,
        max_period=problem.max_period, max_latency=problem.max_latency,
        backend="branch-bound",
    )


@register_method("pareto-dp", exact=True, homogeneous_only=True, cost_hint=3.0)
def _pareto(problem):
    return pareto_dp_best(
        problem.chain, problem.platform,
        max_period=problem.max_period, max_latency=problem.max_latency,
    )


def _heur(which, selection, allocation="auto"):
    def solve(problem):
        return heuristic_best(
            problem.chain,
            problem.platform,
            max_period=problem.max_period,
            max_latency=problem.max_latency,
            which=which,
            selection=selection,
            allocation=allocation,
        )

    return solve


# The standard heuristics carry the columnar kernel: on
# homogeneous-rows ensembles (reliability objective, no floor) the
# harness solves whole row groups in one call, bit-identical to the
# per-row path; other shapes raise BatchUnsupported and fall back.
register_method("heur-l", solve_batch=heuristic_solve_batch("heur-l"))(
    _heur("heur-l", "feasible-best")
)
register_method("heur-p", solve_batch=heuristic_solve_batch("heur-p"))(
    _heur("heur-p", "feasible-best")
)

# Both Section 7 heuristics, best feasible candidate kept — the CLI's
# default on heterogeneous platforms.  "manual" keeps the planner from
# auto-selecting it next to its own components heur-l / heur-p.
register_method(
    "heuristic", cost_hint=1.5, tags=("manual",),
    solve_batch=heuristic_solve_batch("both"),
)(
    _heur("both", "feasible-best")
)

# The paper's heterogeneous experiment code: the Section 7.2 allocation
# (period-filtered) on *both* platforms of each pair, and
# best-reliability-then-check-bounds selection (see the heuristic_best
# docstring) — the source of Fig. 12's non-monotone curves.  The
# planner auto-selects these only for paired (Section 8.2) scenarios.
register_method("heur-l-paper", tags=("paired",))(
    _heur("heur-l", "best-then-check", allocation="het")
)
register_method("heur-p-paper", tags=("paired",))(
    _heur("heur-p", "best-then-check", allocation="het")
)


# No max_tasks cap: the real constraint is brute_force_best's own
# search-space budget, which depends on p and K as well as the chain
# length — a plain task count would reject instances the budget admits.
# Objective-aware: the oracle the converse objectives cross-check against.
@register_method(
    "brute-force", exact=True, cost_hint=100.0, tags=("manual",),
    objectives=("reliability", "period", "latency", "energy"),
)
def _brute_force(problem):
    return brute_force_best(
        problem.chain, problem.platform,
        max_period=problem.max_period, max_latency=problem.max_latency,
        objective=problem.objective,
        min_log_reliability=problem.min_log_reliability,
    )


# --------------------------------------------------------------------------
# Objective-native methods (the tri-criteria facade)
# --------------------------------------------------------------------------


# Binary search re-running an exact reliability DP per probe: O(log n^2)
# probes of Algorithm 2 (or the Pareto DP when a latency bound is set).
# The batched kernel covers the Algorithm 2 cell (all latency bounds
# infinite); finite-latency points fall back to the per-row Pareto probe.
@register_method(
    "dp-period", exact=True, homogeneous_only=True, cost_hint=8.0,
    objectives=("period",), solve_batch=batch_minimize_period,
)
def _dp_period(problem):
    from repro.algorithms.dp_period import minimize_period

    return minimize_period(
        problem.chain, problem.platform,
        min_log_reliability=problem.min_log_reliability,
        max_period=problem.max_period, max_latency=problem.max_latency,
    )


# One Pareto-DP run plus a final-frontier scan — same worst case as
# pareto-dp, slightly cheaper in practice (no per-point bound sweep).
@register_method(
    "dp-latency", exact=True, homogeneous_only=True, cost_hint=5.0,
    objectives=("latency",), solve_batch=batch_minimize_latency,
)
def _dp_latency(problem):
    from repro.algorithms.pareto_dp import minimize_latency

    return minimize_latency(
        problem.chain, problem.platform,
        min_log_reliability=problem.min_log_reliability,
        max_period=problem.max_period, max_latency=problem.max_latency,
    )


# Binary search over Section 7 heuristic solves — the heterogeneous
# converse-objective gap-closer: period minimization where the Section 5
# dp-period theory does not apply.  Heuristic (the probes are), any
# platform; on homogeneous platforms "auto" still prefers the exact,
# cheaper dp-period.
@register_method(
    "het-period-search", cost_hint=12.0, objectives=("period",),
    solve_batch=search_solve_batch("period"),
)
def _het_period_search(problem):
    from repro.extensions.period_search import minimize_period_search

    return minimize_period_search(
        problem.chain, problem.platform,
        min_log_reliability=problem.min_log_reliability,
        max_period=problem.max_period, max_latency=problem.max_latency,
    )


# The latency twin, completing method="auto" coverage of every
# (objective x platform-kind) cell; on homogeneous platforms "auto"
# still prefers the exact, cheaper dp-latency.
@register_method(
    "het-latency-search", cost_hint=12.0, objectives=("latency",),
    solve_batch=search_solve_batch("latency"),
)
def _het_latency_search(problem):
    from repro.extensions.latency_search import minimize_latency_search

    return minimize_latency_search(
        problem.chain, problem.platform,
        min_log_reliability=problem.min_log_reliability,
        max_period=problem.max_period, max_latency=problem.max_latency,
    )


# Section 7 heuristic seeds + replica thinning; any platform.
@register_method("energy-greedy", cost_hint=2.0, objectives=("energy",))
def _energy_greedy(problem):
    from repro.extensions.energy import minimize_energy

    return minimize_energy(
        problem.chain, problem.platform,
        max_period=problem.max_period, max_latency=problem.max_latency,
        min_log_reliability=problem.min_log_reliability,
    )


@register_method("anneal", cost_hint=20.0, seeded=True)
def _anneal(problem, seed=None):
    from repro.extensions.annealing import anneal_mapping

    return anneal_mapping(
        problem.chain, problem.platform,
        max_period=problem.max_period, max_latency=problem.max_latency,
        iterations=500, rng=seed,
    )
