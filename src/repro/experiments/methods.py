"""Uniform method interface for the experiment harness.

A :class:`Method` maps ``(chain, platform, max_period, max_latency)`` to
a :class:`~repro.algorithms.result.SolveResult`.  Registered methods:

* ``"ilp"`` — the Section 5.4 integer program (exact, homogeneous only);
  the paper's yardstick in Figures 6-11.
* ``"pareto-dp"`` — our exact combinatorial solver (homogeneous only);
  same optima as ``"ilp"``, several times faster — handy for full-scale
  regeneration.
* ``"heur-l"`` / ``"heur-p"`` — the Section 7 heuristics (any platform).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.algorithms import heuristic_best, ilp_best, pareto_dp_best
from repro.algorithms.result import SolveResult
from repro.core.chain import TaskChain
from repro.core.platform import Platform

__all__ = ["Method", "METHODS", "get_method"]


@dataclass(frozen=True)
class Method:
    """A named mapping-search method usable in bound sweeps."""

    name: str
    solve: Callable[[TaskChain, Platform, float, float], SolveResult]
    exact: bool
    homogeneous_only: bool


def _ilp(chain, platform, P, L):
    return ilp_best(chain, platform, max_period=P, max_latency=L)


def _pareto(chain, platform, P, L):
    return pareto_dp_best(chain, platform, max_period=P, max_latency=L)


def _heur(which, selection, allocation="auto"):
    def solve(chain, platform, P, L):
        return heuristic_best(
            chain,
            platform,
            max_period=P,
            max_latency=L,
            which=which,
            selection=selection,
            allocation=allocation,
        )

    return solve


METHODS: dict[str, Method] = {
    "ilp": Method("ilp", _ilp, exact=True, homogeneous_only=True),
    "pareto-dp": Method("pareto-dp", _pareto, exact=True, homogeneous_only=True),
    "heur-l": Method(
        "heur-l", _heur("heur-l", "feasible-best"), exact=False, homogeneous_only=False
    ),
    "heur-p": Method(
        "heur-p", _heur("heur-p", "feasible-best"), exact=False, homogeneous_only=False
    ),
    # The paper's heterogeneous experiment code: the Section 7.2
    # allocation (period-filtered) on *both* platforms of each pair, and
    # best-reliability-then-check-bounds selection (see the
    # heuristic_best docstring) — the source of Fig. 12's non-monotone
    # curves.
    "heur-l-paper": Method(
        "heur-l-paper",
        _heur("heur-l", "best-then-check", allocation="het"),
        exact=False,
        homogeneous_only=False,
    ),
    "heur-p-paper": Method(
        "heur-p-paper",
        _heur("heur-p", "best-then-check", allocation="het"),
        exact=False,
        homogeneous_only=False,
    ),
}


def get_method(name: str) -> Method:
    """Look up a registered method by name."""
    try:
        return METHODS[name]
    except KeyError:
        raise ValueError(
            f"unknown method {name!r}; available: {sorted(METHODS)}"
        ) from None
