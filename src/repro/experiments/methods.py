"""Method registry: a uniform, extensible interface for the harness.

A :class:`Method` maps ``(chain, platform, max_period, max_latency)`` to
a :class:`~repro.algorithms.result.SolveResult`.  Methods live in a
process-wide registry so the sweep runner, the cache, and the CLI can
all refer to them *by name* — which is also what lets the parallel
harness ship work units to worker processes as plain strings instead of
unpicklable closures.

Built-in methods:

* ``"ilp"`` — the Section 5.4 integer program (exact, homogeneous only);
  the paper's yardstick in Figures 6-11.
* ``"pareto-dp"`` — our exact combinatorial solver (homogeneous only);
  same optima as ``"ilp"``, several times faster — handy for full-scale
  regeneration.
* ``"heur-l"`` / ``"heur-p"`` — the Section 7 heuristics (any platform).
* ``"heur-l-paper"`` / ``"heur-p-paper"`` — the paper's heterogeneous
  reading of Section 7 (see the inline note below).
* ``"anneal"`` — the simulated-annealing extension; *stochastic*, so the
  harness hands it a deterministic per-unit seed (see
  :func:`repro.util.rng.stable_seed`).

Extending the registry::

    @register_method("my-method", exact=False, cost_hint=2.0)
    def _my_solve(chain, platform, P, L):
        return ...  # a SolveResult

Capability metadata drives both validation (``homogeneous_only`` methods
refuse heterogeneous platforms up front) and scheduling: the parallel
harness submits high-``cost_hint`` units first so expensive solves do
not straggle at the end of the pool queue.
"""

from __future__ import annotations

import hashlib
import types
from dataclasses import dataclass
from typing import Callable

from repro.algorithms import heuristic_best, ilp_best, pareto_dp_best
from repro.algorithms.result import SolveResult
from repro.core.chain import TaskChain
from repro.core.platform import Platform

__all__ = [
    "Method",
    "METHODS",
    "UnknownMethodError",
    "get_method",
    "register_method",
]


class UnknownMethodError(KeyError, ValueError):
    """Raised when a method name is not in the registry (or a sweep).

    Subclasses both :class:`KeyError` (the registry is a mapping) and
    :class:`ValueError` (historical behaviour), so callers catching
    either keep working.
    """

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0] if self.args else ""


@dataclass(frozen=True)
class Method:
    """A named mapping-search method usable in bound sweeps.

    Attributes
    ----------
    name:
        Registry key and curve label.
    solve:
        ``(chain, platform, max_period, max_latency) -> SolveResult``.
        Stochastic methods additionally accept a ``seed`` keyword.
    exact:
        True for provably optimal solvers, False for heuristics.
    homogeneous_only:
        True when the method's theory only covers homogeneous platforms
        (the Section 5 algorithms); such methods refuse heterogeneous
        platforms with a clear error (:meth:`check_platform`).
    cost_hint:
        Relative cost of one solve (heuristics ~1).  The parallel
        harness schedules expensive units first to balance the pool.
    seeded:
        True when ``solve`` is stochastic and takes a ``seed`` keyword;
        the harness derives a deterministic per-unit seed so parallel
        and serial runs stay bit-identical.
    """

    name: str
    solve: Callable[[TaskChain, Platform, float, float], SolveResult]
    exact: bool
    homogeneous_only: bool
    cost_hint: float = 1.0
    seeded: bool = False

    def check_platform(self, platform: Platform) -> None:
        """Raise a descriptive error if *platform* is out of scope."""
        if self.homogeneous_only and not platform.homogeneous:
            raise ValueError(
                f"method {self.name!r} requires homogeneous platforms "
                f"(it implements a Section 5 algorithm); got a "
                f"heterogeneous platform with {platform.p} processors. "
                f"Use a heuristic method (e.g. 'heur-l', 'heur-p') instead."
            )

    def fingerprint(self) -> str:
        """Implementation fingerprint of the solve callable.

        A registry *name* does not identify an implementation: a user
        can re-register a name, or edit a registered function between
        runs.  The harness therefore pairs the name with this digest —
        bytecode plus constants plus closure-cell values — in cache
        keys (so edited code never replays stale arrays) and in the
        worker handshake (so a spawn-started worker that resolves the
        name to *different* code refuses the unit instead of silently
        running the wrong solver).

        Only stable values are hashed: bytecode, nested functions, and
        captured primitives.  Mutable captured objects (a stats dict, a
        logger) reduce to their type name — their runtime *state* is
        not part of the implementation, and hashing it would churn the
        key on every call.
        """
        digest = hashlib.sha256()
        _PRIMITIVES = (str, bytes, int, float, complex, bool, type(None))

        def visit(obj) -> None:
            if isinstance(obj, types.CodeType):
                digest.update(obj.co_code)
                for const in obj.co_consts:
                    visit(const)
            elif isinstance(obj, types.FunctionType):
                visit(obj.__code__)
                for cell in obj.__closure__ or ():
                    try:
                        visit(cell.cell_contents)
                    except ValueError:  # empty cell
                        pass
            elif isinstance(obj, _PRIMITIVES):
                digest.update(repr(obj).encode())
            elif isinstance(obj, (tuple, frozenset)):
                for item in obj:
                    visit(item)
            else:
                digest.update(f"<{type(obj).__qualname__}>".encode())
            digest.update(b"\x1f")

        visit(self.solve)
        return digest.hexdigest()

    def __call__(self, chain, platform, P, L, **kwargs) -> SolveResult:
        return self.solve(chain, platform, P, L, **kwargs)


#: The process-wide registry (name -> Method).  Mutate only through
#: :func:`register_method`.
METHODS: dict[str, Method] = {}


def register_method(
    name: str,
    *,
    exact: bool = False,
    homogeneous_only: bool = False,
    cost_hint: float = 1.0,
    seeded: bool = False,
    replace: bool = False,
) -> Callable[[Callable], Method]:
    """Decorator registering a solve callable as a named :class:`Method`.

    Duplicate names are rejected (``ValueError``) unless
    ``replace=True`` — re-registering silently would let one experiment
    corrupt another's curves and cache keys.  Returns the
    :class:`Method` record, so the decorated name is the method object
    itself (its ``solve`` attribute holds the original callable).
    """
    if not name or not isinstance(name, str):
        raise ValueError(f"method name must be a non-empty string, got {name!r}")

    def deco(fn: Callable) -> Method:
        if name in METHODS and not replace:
            raise ValueError(
                f"method {name!r} is already registered "
                f"(pass replace=True to override)"
            )
        method = Method(
            name=name,
            solve=fn,
            exact=exact,
            homogeneous_only=homogeneous_only,
            cost_hint=cost_hint,
            seeded=seeded,
        )
        METHODS[name] = method
        return method

    return deco


def get_method(name: str) -> Method:
    """Look up a registered method by name.

    Raises
    ------
    UnknownMethodError
        With the sorted list of known names — a ``KeyError`` (and, for
        backward compatibility, a ``ValueError``).
    """
    try:
        return METHODS[name]
    except KeyError:
        raise UnknownMethodError(
            f"unknown method {name!r}; available: {sorted(METHODS)}"
        ) from None


# --------------------------------------------------------------------------
# Built-in methods
# --------------------------------------------------------------------------


@register_method("ilp", exact=True, homogeneous_only=True, cost_hint=10.0)
def _ilp(chain, platform, P, L):
    return ilp_best(chain, platform, max_period=P, max_latency=L)


@register_method("pareto-dp", exact=True, homogeneous_only=True, cost_hint=3.0)
def _pareto(chain, platform, P, L):
    return pareto_dp_best(chain, platform, max_period=P, max_latency=L)


def _heur(which, selection, allocation="auto"):
    def solve(chain, platform, P, L):
        return heuristic_best(
            chain,
            platform,
            max_period=P,
            max_latency=L,
            which=which,
            selection=selection,
            allocation=allocation,
        )

    return solve


register_method("heur-l")(_heur("heur-l", "feasible-best"))
register_method("heur-p")(_heur("heur-p", "feasible-best"))

# The paper's heterogeneous experiment code: the Section 7.2 allocation
# (period-filtered) on *both* platforms of each pair, and
# best-reliability-then-check-bounds selection (see the heuristic_best
# docstring) — the source of Fig. 12's non-monotone curves.
register_method("heur-l-paper")(_heur("heur-l", "best-then-check", allocation="het"))
register_method("heur-p-paper")(_heur("heur-p", "best-then-check", allocation="het"))


@register_method("anneal", cost_hint=20.0, seeded=True)
def _anneal(chain, platform, P, L, seed=None):
    from repro.extensions.annealing import anneal_mapping

    return anneal_mapping(
        chain, platform, max_period=P, max_latency=L, iterations=500, rng=seed
    )
