"""Rendering of figure series: ASCII tables and JSON dumps.

The benchmark harness prints, for every figure, the same series the
paper plots — x coordinate against one column per curve — and can dump
them as JSON for EXPERIMENTS.md bookkeeping.
"""

from __future__ import annotations

import json
import math
from typing import Any

import numpy as np

from repro.experiments.figures import FigureResult

__all__ = [
    "render_series_table",
    "series_to_json",
    "render_figure",
    "ascii_chart",
]


def _fmt(value: float, metric: str) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "-"
    if metric == "count":
        return f"{int(value)}"
    return f"{value:.3e}"


def render_series_table(result: FigureResult, x_label: str | None = None) -> str:
    """Tabulate one figure's series as aligned ASCII columns."""
    labels = list(result.series)
    x_label = x_label or ("bound")
    header = [x_label, *labels]
    rows = [header]
    for i, x in enumerate(result.xs):
        row = [f"{x:g}"]
        for label in labels:
            row.append(_fmt(float(result.series[label][i]), result.metric))
        rows.append(row)
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    lines = []
    for ri, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if ri == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def render_figure(result: FigureResult) -> str:
    """Header plus table — the standard bench output block."""
    what = "number of solutions" if result.metric == "count" else "average failure probability"
    title = (
        f"{result.figure} [{result.experiment}]: {what} "
        f"({result.n_instances} instances, grid={result.grid})"
    )
    return f"{title}\n{render_series_table(result)}"


def ascii_chart(result: FigureResult, height: int = 12, width: int = 64) -> str:
    """Plot a figure's series as an ASCII chart (one glyph per curve).

    Count figures use a linear y-axis; failure figures a log10 axis
    (mirroring the paper's log-scale plots).  NaN points are gaps.
    Overlapping curves show the glyph of the last series drawn.
    """
    if height < 3 or width < 8:
        raise ValueError("chart needs height >= 3 and width >= 8")
    glyphs = "oxs+*#%@"
    labels = list(result.series)
    xs = np.asarray(result.xs, dtype=float)

    def transform(vals: np.ndarray) -> np.ndarray:
        if result.metric == "count":
            return vals.astype(float)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.log10(np.where(vals > 0, vals, np.nan))

    ys = {label: transform(np.asarray(v, dtype=float)) for label, v in result.series.items()}
    flat = np.concatenate([v[~np.isnan(v)] for v in ys.values()] or [np.array([0.0])])
    if flat.size == 0:
        return "(no data points)"
    lo, hi = float(flat.min()), float(flat.max())
    if hi - lo < 1e-12:
        hi = lo + 1.0
    grid_rows = [[" "] * width for _ in range(height)]
    x_lo, x_hi = float(xs.min()), float(xs.max())
    x_span = max(x_hi - x_lo, 1e-12)
    for li, label in enumerate(labels):
        glyph = glyphs[li % len(glyphs)]
        for x, y in zip(xs, ys[label]):
            if math.isnan(y):
                continue
            col = int((x - x_lo) / x_span * (width - 1))
            row = int((y - lo) / (hi - lo) * (height - 1))
            grid_rows[height - 1 - row][col] = glyph
    y_top = f"{hi:.3g}" if result.metric == "count" else f"1e{hi:+.1f}"
    y_bot = f"{lo:.3g}" if result.metric == "count" else f"1e{lo:+.1f}"
    lines = [f"{y_top:>9} +" + "".join(grid_rows[0])]
    for row in grid_rows[1:-1]:
        lines.append(" " * 9 + " |" + "".join(row))
    lines.append(f"{y_bot:>9} +" + "".join(grid_rows[-1]))
    lines.append(" " * 11 + f"{x_lo:<10g}{'':^{max(width - 20, 0)}}{x_hi:>10g}")
    legend = "  ".join(
        f"{glyphs[i % len(glyphs)]}={label}" for i, label in enumerate(labels)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)


def series_to_json(result: FigureResult) -> str:
    """Serialize a figure result to JSON (NaN -> null)."""
    payload: dict[str, Any] = {
        "figure": result.figure,
        "experiment": result.experiment,
        "metric": result.metric,
        "n_instances": result.n_instances,
        "grid": result.grid,
        "x": [float(x) for x in result.xs],
        "series": {
            label: [None if math.isnan(float(v)) else float(v) for v in values]
            for label, values in result.series.items()
        },
    }
    return json.dumps(payload, indent=2)
