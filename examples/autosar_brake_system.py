#!/usr/bin/env python3
"""An Autosar-style automotive function (the paper's motivating example).

Section 1 motivates the model with the Autosar architecture: ECUs on a
bus running pipelined functions "from the sensor to the actuator", each
with an end-to-end latency bound, a period, and a reliability
requirement.  This example models an anti-lock-brake-style function:

    wheel-speed acquisition -> filtering -> slip estimation ->
    control law -> arbitration -> hydraulic pressure actuation

on a 6-ECU platform, and asks the library for the most reliable
deployment meeting a 10 ms period (100 Hz control) and a 25 ms
end-to-end deadline, under a 1e-9-per-hour certification target.

Time unit: 1 ms.  Failure rates: ~1e-6/hour transient faults per ECU
(a conservative automotive figure) = 2.8e-13 per ms; the CAN-FD style
bus is noisier, 1e-4/hour = 2.8e-11 per ms.

Run:  python examples/autosar_brake_system.py
"""

import math

from repro import Platform, TaskChain, heuristic_best, pareto_dp_best
from repro.util import logrel

# Work in ms-on-a-reference-ECU; output sizes in bus-time ms.
TASKS = [
    ("wheel-speed acquisition", 1.2, 0.4),
    ("signal filtering", 2.5, 0.4),
    ("slip estimation", 3.0, 0.6),
    ("control law", 2.2, 0.5),
    ("torque arbitration", 1.5, 0.3),
    ("pressure actuation", 0.8, 0.0),  # actuator driver: o_n = 0
]

chain = TaskChain(
    work=[w for _, w, _ in TASKS],
    output=[o for _, _, o in TASKS],
)

ECU_RATE_PER_MS = 1e-6 / 3.6e6  # 1e-6 per hour
BUS_RATE_PER_MS = 1e-4 / 3.6e6

platform = Platform.homogeneous_platform(
    6,
    speed=1.0,
    failure_rate=ECU_RATE_PER_MS,
    bandwidth=1.0,
    link_failure_rate=BUS_RATE_PER_MS,
    max_replication=3,
)

PERIOD_MS = 10.0
DEADLINE_MS = 25.0
# Certification target: < 1e-9 failures per hour of operation.  At 100
# executions per second, that is 3.6e5 data sets per hour, so the
# per-data-set failure probability must stay below:
TARGET_PER_DATASET = 1e-9 / (3600.0 * 1000.0 / PERIOD_MS)

print("Autosar-style brake function")
print("-" * 64)
for (name, w, o), _ in zip(TASKS, range(len(TASKS))):
    print(f"  {name:26s}  work {w:4.1f} ms   output {o:3.1f} ms")
print(f"\nbounds: period <= {PERIOD_MS} ms, end-to-end <= {DEADLINE_MS} ms")
print(f"per-data-set failure target: {TARGET_PER_DATASET:.2e}\n")

# Exact tri-criteria optimum.
exact = pareto_dp_best(chain, platform, max_period=PERIOD_MS, max_latency=DEADLINE_MS)
heur = heuristic_best(chain, platform, max_period=PERIOD_MS, max_latency=DEADLINE_MS)

for name, res in (("exact (Pareto DP)", exact), ("heuristics", heur)):
    if not res.feasible:
        print(f"{name}: no deployment meets the bounds")
        continue
    ev = res.evaluation
    print(f"{name}:")
    for j, (iv, procs) in enumerate(res.mapping):
        stage = ", ".join(TASKS[t][0] for t in iv.tasks)
        print(f"  stage {j}: ECUs {list(procs)} <- {stage}")
    print(f"  failure probability per data set: {ev.failure_probability:.3e}")
    print(f"  worst-case period:  {ev.worst_case_period:5.2f} ms")
    print(f"  worst-case latency: {ev.worst_case_latency:5.2f} ms")
    verdict = "MEETS" if ev.failure_probability <= TARGET_PER_DATASET else "MISSES"
    print(f"  certification target: {verdict} ({TARGET_PER_DATASET:.2e})\n")

# How much does replication buy?  Compare to the best single-replica
# deployment (max_replication = 1).
bare = Platform.homogeneous_platform(
    6,
    speed=1.0,
    failure_rate=ECU_RATE_PER_MS,
    bandwidth=1.0,
    link_failure_rate=BUS_RATE_PER_MS,
    max_replication=1,
)
no_rep = pareto_dp_best(chain, bare, max_period=PERIOD_MS, max_latency=DEADLINE_MS)
if no_rep.feasible and exact.feasible:
    gain = no_rep.evaluation.failure_probability / exact.evaluation.failure_probability
    print(
        f"replication reduces the failure probability by a factor {gain:.1e} "
        f"({no_rep.evaluation.failure_probability:.2e} -> "
        f"{exact.evaluation.failure_probability:.2e})"
    )
