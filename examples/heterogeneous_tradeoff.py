#!/usr/bin/env python3
"""Tri-criteria trade-off exploration on a heterogeneous platform.

Sweeps the period bound for a fixed latency bound on a 12-processor
heterogeneous platform (Section 8.2 style), showing how the Section 7
heuristics trade reliability against the real-time constraints, and —
using the Section 9 energy extension — what each schedule costs in
energy, exposing the reliability/energy tension of replication.

Run:  python examples/heterogeneous_tradeoff.py
"""

import numpy as np

from repro import Platform, TaskChain, heuristic_best, random_chain
from repro.algorithms.heuristics import heur_p_intervals
from repro.extensions import energy_aware_alloc_het, mapping_energy
from repro.core.evaluation import evaluate_mapping

rng = np.random.default_rng(2026)
chain = random_chain(12, rng, work_range=(10, 80), output_range=(1, 8))
platform = Platform(
    speeds=rng.integers(2, 40, size=12).astype(float),
    failure_rates=[1e-7] * 12,
    bandwidth=1.0,
    link_failure_rate=1e-5,
    max_replication=3,
)

LATENCY = 120.0

print(f"chain: {chain}")
print(f"platform speeds: {sorted(platform.speeds.tolist())}")
print(f"latency bound: {LATENCY}\n")

print("period   feasible  failure-prob   WL      m  replicas  energy")
print("-" * 66)
for period in (10.0, 15.0, 20.0, 30.0, 45.0, 60.0, 90.0):
    res = heuristic_best(chain, platform, max_period=period, max_latency=LATENCY)
    if not res.feasible:
        print(f"{period:6.1f}   no")
        continue
    ev = res.evaluation
    energy = mapping_energy(res.mapping, alpha=2.0)
    print(
        f"{period:6.1f}   yes       {ev.failure_probability:.3e}   "
        f"{ev.worst_case_latency:6.1f}  {res.mapping.m}  "
        f"{res.mapping.processors_used:8d}  {energy:8.0f}"
    )

# ---------------------------------------------------------------------------
# Energy-bounded allocation: fix the division Heur-P picks for m = 4 and
# sweep the energy budget, showing the reliability/energy Pareto front.
# ---------------------------------------------------------------------------
partition = heur_p_intervals(chain, 4)
unlimited = energy_aware_alloc_het(chain, platform, partition, alpha=2.0)
assert unlimited is not None
full_energy = mapping_energy(unlimited, alpha=2.0)

print("\nenergy budget sweep (fixed Heur-P division into 4 intervals):")
print("budget(frac)  replicas  failure-prob")
print("-" * 40)
for frac in (0.4, 0.55, 0.7, 0.85, 1.0):
    m = energy_aware_alloc_het(
        chain, platform, partition, max_energy=full_energy * frac, alpha=2.0
    )
    if m is None:
        print(f"{frac:11.2f}   infeasible")
        continue
    ev = evaluate_mapping(m)
    print(f"{frac:11.2f}   {m.processors_used:8d}  {ev.failure_probability:.3e}")
