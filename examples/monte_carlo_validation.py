#!/usr/bin/env python3
"""Validate the Section 4 closed forms with the discrete-event simulator.

The paper computes reliability (Eq. (9)), latency (Eqs. (3)/(5)/(7)),
and period (Eqs. (6)/(8)) analytically.  Here we *execute* a mapping on
the fault-injecting pipeline simulator and compare:

* the empirical per-data-set success rate against Eq. (9) (with a
  Wilson confidence interval);
* the mean/max latency of completed data sets against EL and WL;
* the steady-state completion period against the injection period.

Failure rates are inflated (1e-3-ish) so that faults actually occur in
a few thousand data sets — at the paper's 1e-8 nothing would fail in
any feasible simulation, which is exactly why the paper evaluates
reliability analytically.

Run:  python examples/monte_carlo_validation.py
"""

from repro import Interval, Mapping, Platform, TaskChain
from repro.simulation import simulate_mapping, validate_against_analytical

chain = TaskChain(work=[12.0, 20.0, 9.0], output=[3.0, 5.0, 0.0])
platform = Platform(
    speeds=[2.0, 1.0, 3.0, 1.5, 2.5],
    failure_rates=[8e-3, 5e-3, 9e-3, 6e-3, 7e-3],
    bandwidth=1.0,
    link_failure_rate=2e-3,
    max_replication=2,
)
mapping = Mapping(
    chain,
    platform,
    [
        (Interval(0, 1), (0, 1)),
        (Interval(1, 2), (2, 3)),
        (Interval(2, 3), (4,)),
    ],
)

print(f"mapping: {mapping}\n")

summary = simulate_mapping(mapping, n_datasets=20_000, rng=7)
lo, hi = summary.reliability_interval
ana = summary.analytical

print("reliability (per data set)")
print(f"  Eq. (9) analytical : {ana.reliability:.6f}")
print(f"  simulated          : {summary.simulated_reliability:.6f}")
print(f"  95% Wilson interval: [{lo:.6f}, {hi:.6f}]")
print(f"  consistent         : {summary.reliability_consistent}\n")

print("latency (completed data sets)")
print(f"  EL (Eq. 5) : {ana.expected_latency:.3f}")
print(f"  mean sim   : {summary.mean_latency:.3f}")
print(f"  WL (Eq. 7) : {ana.worst_case_latency:.3f}")
print(f"  max sim    : {summary.max_latency:.3f}\n")

print("period")
print(f"  injection (WP, Eq. 8): {summary.run.period:.3f}")
print(f"  observed steady state: {summary.observed_period:.3f}\n")

report = validate_against_analytical(mapping, n_datasets=20_000, rng=11)
print("validation verdicts:")
for key in ("reliability_ok", "latency_ok", "period_ok", "all_ok"):
    print(f"  {key:15s}: {report[key]}")
