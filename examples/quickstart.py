#!/usr/bin/env python3
"""Quickstart: map a small pipelined real-time system.

Builds a 6-task chain, maps it onto an 8-processor platform with every
algorithm in the library, and prints the reliability / latency / period
trade-offs each one achieves.

Run:  python examples/quickstart.py
"""

from repro import (
    Platform,
    TaskChain,
    optimize_reliability,
    optimize_reliability_period,
)
from repro.solve import Problem, solve

# ---------------------------------------------------------------------------
# 1. The application: a chain of 6 tasks (work, output-data-size pairs).
#    The last task's output is 0 by convention (it actuates directly).
# ---------------------------------------------------------------------------
chain = TaskChain(
    work=[30.0, 45.0, 25.0, 60.0, 40.0, 20.0],
    output=[4.0, 6.0, 2.0, 8.0, 3.0, 0.0],
)

# ---------------------------------------------------------------------------
# 2. The platform: 8 identical processors, Shatz-Wang transient faults
#    (rate 1e-8 per time unit), links at rate 1e-5, and at most K = 3
#    replicas per interval (the bounded multi-port constraint).
# ---------------------------------------------------------------------------
platform = Platform.homogeneous_platform(
    8,
    speed=1.0,
    failure_rate=1e-8,
    bandwidth=1.0,
    link_failure_rate=1e-5,
    max_replication=3,
)

MAX_PERIOD = 80.0
MAX_LATENCY = 240.0


def describe(name, result):
    if not result.feasible:
        print(f"{name:28s}  infeasible")
        return
    ev = result.evaluation
    mapping = result.mapping
    shape = " | ".join(
        f"[{iv.start}..{iv.stop - 1}]x{len(procs)}" for iv, procs in mapping
    )
    print(
        f"{name:28s}  fail={ev.failure_probability:.3e}  "
        f"P={ev.worst_case_period:6.1f}  L={ev.worst_case_latency:6.1f}  {shape}"
    )


print(f"chain: {chain}")
print(f"platform: {platform}")
print(f"bounds: period <= {MAX_PERIOD}, latency <= {MAX_LATENCY}\n")

# Mono-criterion optimum (Algorithm 1): the most reliable mapping, any cost.
describe("Algorithm 1 (reliability)", optimize_reliability(chain, platform))

# Bi-criteria optimum (Algorithm 2): most reliable within the period bound.
describe(
    "Algorithm 2 (rel | period)",
    optimize_reliability_period(chain, platform, max_period=MAX_PERIOD),
)

# ---------------------------------------------------------------------------
# 3. Tri-criteria solves go through the unified Problem/solve() API:
#    one frozen Problem, any registered method by name.
# ---------------------------------------------------------------------------
problem = Problem(chain, platform, max_period=MAX_PERIOD, max_latency=MAX_LATENCY)

# Exact optima: the Section 5.4 ILP and our Pareto DP agree.
describe("ILP (rel | period+latency)", solve(problem, method="ilp"))
describe("Pareto DP (exact)", solve(problem, method="pareto-dp"))

# The polynomial heuristics of Section 7 ("heuristic" runs both).
describe("Heur-P + Heur-L (best)", solve(problem, method="heuristic"))

# On an instance this small, brute force can confirm everything.
describe("brute force (oracle)", solve(problem, method="brute-force"))
