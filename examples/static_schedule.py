#!/usr/bin/env python3
"""Static periodic schedules and the deadline model (paper Section 1).

Builds a mapping for a small chain, derives its canonical static
schedule — data set K starts stage j at `S_j + K*P` — prints the ASCII
Gantt chart, and verifies the paper's deadline statement: once the
schedule's period and latency respect the bounds, every data set K
(entering at K*P) meets its deadline K*P + L.

Run:  python examples/static_schedule.py
"""

from repro import Platform, TaskChain, optimize_reliability_period
from repro.core.schedule import build_schedule

chain = TaskChain(work=[12.0, 18.0, 8.0, 10.0], output=[3.0, 5.0, 2.0, 0.0])
platform = Platform.homogeneous_platform(
    8,
    speed=1.0,
    failure_rate=1e-8,
    bandwidth=1.0,
    link_failure_rate=1e-5,
    max_replication=2,
)

PERIOD = 20.0
DEADLINE = 70.0

res = optimize_reliability_period(chain, platform, max_period=PERIOD)
assert res.feasible
mapping = res.mapping
print(f"mapping: {mapping}")
print(f"failure probability: {res.evaluation.failure_probability:.3e}\n")

sched = build_schedule(mapping, period=PERIOD)
print(sched.gantt(n_datasets=3))
print()

print(f"schedule latency (WL): {sched.latency:g}")
print(f"deadline bound L     : {DEADLINE:g}")
print(f"meets all deadlines  : {sched.meets_deadlines(DEADLINE)}\n")

print("data set   enters   completes   deadline   slack")
for k in range(4):
    enter = k * PERIOD
    done = sched.completion_time(k)
    deadline = enter + DEADLINE
    print(f"{k:8d}   {enter:6.1f}   {done:9.1f}   {deadline:8.1f}   {deadline - done:5.1f}")
