#!/usr/bin/env python3
"""Regenerate any of the paper's evaluation figures (Figures 6-15).

Usage:
    python examples/reproduce_figures.py fig6 [fig7 ...] [options]
    python examples/reproduce_figures.py all --instances 100 --grid full

Options:
    --instances N   instances per experiment (default 20; paper: 100)
    --grid G        'reduced' (default) or 'full' (paper resolution)
    --exact M       'ilp' (default) or 'pareto-dp' (faster, same optima)
    --seed S        master seed (default 0)
    --json DIR      also dump each figure's series as JSON into DIR

Figure pairs share one sweep (e.g. fig6/fig7), which is computed once.
"""

import argparse
import pathlib
import sys

from repro.experiments.figures import EXPERIMENTS, FIGURES, run_experiment, run_figure
from repro.experiments.report import ascii_chart, render_figure, series_to_json


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("figures", nargs="+", help="fig6..fig15, or 'all'")
    parser.add_argument("--instances", type=int, default=20)
    parser.add_argument("--grid", choices=("reduced", "full"), default="reduced")
    parser.add_argument("--exact", choices=("ilp", "pareto-dp"), default="ilp")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", type=pathlib.Path, default=None)
    args = parser.parse_args(argv)

    wanted = list(FIGURES) if "all" in args.figures else args.figures
    for fig in wanted:
        if fig not in FIGURES:
            parser.error(f"unknown figure {fig!r}; choose from {sorted(FIGURES)}")

    # Group requested figures by experiment so each sweep runs once.
    by_experiment: dict[str, list[str]] = {}
    for fig in wanted:
        by_experiment.setdefault(FIGURES[fig][0], []).append(fig)

    for exp_id, figs in by_experiment.items():
        spec = EXPERIMENTS[exp_id]
        print(f"== running experiment {exp_id}: {spec.description}")
        exp = run_experiment(
            exp_id,
            n_instances=args.instances,
            grid=args.grid,
            seed=args.seed,
            exact_method=args.exact,
        )
        for fig in figs:
            result = run_figure(fig, experiment_result=exp)
            print()
            print(render_figure(result))
            print()
            print(ascii_chart(result))
            print()
            if args.json is not None:
                args.json.mkdir(parents=True, exist_ok=True)
                path = args.json / f"{fig}.json"
                path.write_text(series_to_json(result))
                print(f"   wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
