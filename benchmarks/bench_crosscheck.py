"""The full validation chain as a benchmark: cost of certainty.

Runs `repro.experiments.crosscheck.run_crosscheck` — four exact solvers,
three RBD evaluators, the heuristics, and the simulator on a shared
population — and asserts zero hard disagreements.  The timing shows what
a complete cross-validation pass costs.
"""

from benchmarks.conftest import bench_config, emit
from repro.experiments.crosscheck import run_crosscheck


def test_crosscheck(benchmark):
    cfg = bench_config()
    n = max(4, cfg["n_instances"] // 4)
    report = benchmark.pedantic(
        lambda: run_crosscheck(n_instances=n, seed=cfg["seed"]),
        rounds=1,
        iterations=1,
    )
    emit()
    emit(report.summary())
    for line in report.details:
        emit("  !", line)
    assert report.clean, report.summary()
    # Simulation misses follow the ~5% CI rate; allow generous slack.
    assert report.simulation_outliers <= max(2, n // 3)
