"""Figure 12 — number of solutions vs period bound: heterogeneous vs
homogeneous-counterpart platforms (L = 150).

Asserted shape (Section 8.2): "Both heuristics find far more results
with heterogeneous platforms than with homogeneous platforms" — the het
curves dominate the hom curves pointwise and reach (nearly) all
instances at large periods, while a large fraction of instances is
never solved on the hom counterpart.
"""

import numpy as np

from benchmarks.conftest import bench_config, run_count_bench, emit
from repro.experiments.figures import run_figure
from repro.experiments.report import render_figure


def test_fig12_het_solutions_vs_period(benchmark):
    exp = run_count_bench(benchmark, "het-period")
    fig = run_figure("fig12", experiment_result=exp)
    emit()
    emit(render_figure(fig))

    n = bench_config()["n_instances"]
    for h in ("heur-l", "heur-p"):
        het = fig.series[f"{h}_het"]
        hom = fig.series[f"{h}_hom"]
        # Het dominates hom pointwise.
        assert np.all(het >= hom), h
        # All (or nearly all) instances solved on het at the largest P.
        assert het[-1] >= 0.9 * n, h
        # A big chunk of instances is never solved on hom.
        assert hom[-1] <= 0.7 * n, h
