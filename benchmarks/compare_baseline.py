"""Benchmark-regression gate: compare --json bench results to a baseline.

Usage::

    python benchmarks/compare_baseline.py benchmarks/baseline.json \
        bench-facade.json bench-scenarios.json

The baseline file pins, per metric, the expected value, the direction
in which *worse* lies, and a relative tolerance::

    {
      "default_tolerance": 0.25,
      "metrics": {
        "bench_solve_facade.facade_vs_direct_ratio": {
          "value": 1.02, "direction": "lower"
        },
        "bench_scenario_generation.batched_us_per_instance": {
          "value": 45.0, "direction": "lower", "tolerance": 3.0
        }
      }
    }

``direction: "lower"`` means lower is better (a *rise* regresses);
``"higher"`` means higher is better (a *drop* regresses).  A metric
fails when its regression exceeds its tolerance (the top-level
``default_tolerance`` — 25% per the CI policy — unless overridden:
absolute wall-time metrics get looser gates because CI machines vary,
while ratio metrics measured in-process are held to the default).
Result metrics missing from the baseline are reported but never fail —
add them to the baseline to start gating them.  Baseline metrics
missing from the results fail, so the gate cannot silently go blind.

Exit code 0 = within tolerance, 1 = regression (or malformed input).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def load_results(paths: "list[pathlib.Path]") -> dict:
    """Merge ``{bench: {metric: value}}`` files into flat dotted keys."""
    flat: dict[str, float] = {}
    for path in paths:
        payload = json.loads(path.read_text())
        for bench, metrics in payload.items():
            if not isinstance(metrics, dict):
                raise ValueError(f"{path}: bench {bench!r} is not a metrics dict")
            for metric, value in metrics.items():
                flat[f"{bench}.{metric}"] = float(value)
    return flat


def regression(value: float, base: float, direction: str) -> float:
    """Relative movement toward *worse* (negative = improvement)."""
    if base == 0:
        raise ValueError("baseline value must be nonzero")
    if direction == "lower":
        return (value - base) / abs(base)
    if direction == "higher":
        return (base - value) / abs(base)
    raise ValueError(f"unknown direction {direction!r} (use 'lower' or 'higher')")


def compare(baseline: dict, results: dict) -> "tuple[list[str], bool]":
    """Render a report and return (lines, ok)."""
    default_tol = float(baseline.get("default_tolerance", 0.25))
    lines = [
        f"{'metric':55s} {'baseline':>10s} {'current':>10s} "
        f"{'change':>8s} {'tol':>6s}  verdict"
    ]
    ok = True
    for name, spec in sorted(baseline.get("metrics", {}).items()):
        base = float(spec["value"])
        direction = spec.get("direction", "lower")
        tol = float(spec.get("tolerance", default_tol))
        if name not in results:
            lines.append(f"{name:55s} {base:10.3f} {'MISSING':>10s} {'':>8s} "
                         f"{tol:6.0%}  FAIL (metric not reported)")
            ok = False
            continue
        value = results[name]
        reg = regression(value, base, direction)
        verdict = "ok" if reg <= tol else "FAIL"
        if reg > tol:
            ok = False
        arrow = "+" if value >= base else "-"
        lines.append(
            f"{name:55s} {base:10.3f} {value:10.3f} "
            f"{arrow}{abs(value - base) / abs(base):7.1%} {tol:6.0%}  {verdict}"
        )
    for name in sorted(set(results) - set(baseline.get("metrics", {}))):
        lines.append(f"{name:55s} {'-':>10s} {results[name]:10.3f} "
                     f"{'':>8s} {'':>6s}  (ungated)")
    return lines, ok


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=pathlib.Path, help="committed baseline JSON")
    parser.add_argument("results", type=pathlib.Path, nargs="+",
                        help="one or more --json bench outputs")
    args = parser.parse_args(argv)
    try:
        baseline = json.loads(args.baseline.read_text())
        results = load_results(args.results)
        lines, ok = compare(baseline, results)
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
        print(f"benchmark comparison failed: {exc}", file=sys.stderr)
        return 1
    print("\n".join(lines))
    if not ok:
        print("\nbenchmark regression detected (see FAIL rows above)", file=sys.stderr)
        return 1
    print("\nall gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
