"""Overhead of the Problem/solve() facade vs direct algorithm calls.

The :mod:`repro.solve` redesign routes every solve through three extra
layers — :class:`~repro.solve.Problem` construction, registry lookup +
capability checks in :func:`~repro.solve.solve`, and the canonical
dual-entry wrapper around each method's callable.  This bench measures
each layer on a paper-sized instance (15 tasks x 10 processors) and
asserts the stack adds only a small fraction on top of the underlying
heuristic solve, plus reports the planner's one-off cost (amortized
over a whole sweep, not paid per solve).

Dual entry points: a pytest-benchmark test (the CI "Facade overhead
bench" step) and a ``--json`` script mode for the benchmark-regression
gate::

    PYTHONPATH=src python benchmarks/bench_solve_facade.py --json out.json

The JSON carries machine-portable *ratio* metrics (facade time over
direct time, and so on) that ``benchmarks/compare_baseline.py`` checks
against the committed ``benchmarks/baseline.json``.
"""

import time

from repro.algorithms import heuristic_best
from repro.core import Platform
from repro.experiments import get_method
from repro.scenarios import generate_ensemble, get_scenario
from repro.solve import Problem, plan_methods, solve

try:
    from benchmarks.conftest import emit
except ImportError:  # script mode: no pytest plumbing to bypass
    def emit(*parts):
        print(" ".join(str(p) for p in parts))

ROUNDS = 30
BATCH = 10
P, L = 250.0, 750.0

#: Regression-gate metric names (see run_facade_bench).
BENCH_NAME = "bench_solve_facade"


def _time_interleaved(fns: dict) -> dict:
    """Per-call seconds for each labelled thunk, measured in alternating
    batches so CPU frequency drift hits every path equally."""
    for fn in fns.values():  # warm-up (imports, caches)
        fn()
    totals = dict.fromkeys(fns, 0.0)
    for _ in range(ROUNDS):
        for label, fn in fns.items():
            t0 = time.perf_counter()
            for _ in range(BATCH):
                fn()
            totals[label] += time.perf_counter() - t0
    return {label: total / (ROUNDS * BATCH) for label, total in totals.items()}


def run_facade_bench() -> dict:
    """Measure the facade stack and return the regression-gate metrics.

    All gate metrics are ratios against the direct ``heuristic_best``
    call on the same instance in the same process, so they compare
    across machines; ``direct_us`` is informational only.
    """
    chain, platform = generate_ensemble(
        get_scenario("section8-hom").spec.with_(n_instances=1), seed=3
    )[0]
    problem = Problem(chain, platform, max_period=P, max_latency=L)
    method = get_method("heur-l")

    timed = _time_interleaved({
        "direct": lambda: heuristic_best(
            chain, platform, max_period=P, max_latency=L,
            which="heur-l", selection="feasible-best",
        ),
        "method": lambda: method.solve_problem(problem),
        "facade": lambda: solve(problem, method="heur-l"),
    })
    direct, via_method, via_facade = timed["direct"], timed["method"], timed["facade"]
    construct = _time_interleaved(
        {"c": lambda: Problem(chain, platform, max_period=P, max_latency=L)}
    )["c"]
    plan = _time_interleaved({"p": lambda: plan_methods("section8-hom")})["p"]

    # Platform/TaskChain hash caching: hashing an object repeatedly
    # (dict/set-heavy sweep code) must cost a dictionary probe, not a
    # re-serialization of both arrays on every call.
    def fresh_platform_hash():
        return hash(Platform(
            speeds=platform.speeds, failure_rates=platform.failure_rates,
            bandwidth=platform.bandwidth,
            link_failure_rate=platform.link_failure_rate,
            max_replication=platform.max_replication,
        ))

    hash_timed = _time_interleaved({
        "cached": lambda: hash(platform),
        "fresh": fresh_platform_hash,
    })
    rehash_ratio = hash_timed["cached"] / hash_timed["fresh"]

    emit()
    emit(f"solve facade overhead ({chain.n} tasks x {platform.p} procs, "
         f"{ROUNDS} rounds)")
    emit("path                         per call")
    for label, secs in (
        ("direct heuristic_best", direct),
        ("Method.solve_problem", via_method),
        ("solve(problem, method=...)", via_facade),
        ("Problem construction", construct),
        ("plan_methods (per sweep)", plan),
        ("hash(platform) cached", hash_timed["cached"]),
        ("hash(platform) fresh object", hash_timed["fresh"]),
    ):
        emit(f"{label:27s} {secs * 1e6:9.1f} us")
    emit(f"facade overhead vs direct: {(via_facade - direct) / direct * 100:+.2f}%")
    emit(f"cached rehash vs fresh construct+hash: {rehash_ratio:.3f}x")

    return {
        "facade_vs_direct_ratio": via_facade / direct,
        "method_vs_direct_ratio": via_method / direct,
        "construct_vs_direct_ratio": construct / direct,
        "rehash_vs_fresh_ratio": rehash_ratio,
        "direct_us": direct * 1e6,
    }


def test_facade_overhead_is_negligible(benchmark):
    metrics = run_facade_bench()

    # "Negligible": the whole facade stack (Problem + registry lookup +
    # wrapper + capability check) must stay a small fraction of one
    # heuristic solve.  25% is a very generous ceiling for CI noise —
    # typical overhead is well under 5%.
    assert metrics["facade_vs_direct_ratio"] < 1.25
    assert metrics["method_vs_direct_ratio"] < 1.25
    # Problem construction is micro-scale, orders below a solve.
    assert metrics["construct_vs_direct_ratio"] < 0.1
    # Regression gate for the cached digests: rehashing an existing
    # Platform must be far cheaper than construct+first-hash (it used
    # to re-serialize both arrays per call).
    assert metrics["rehash_vs_fresh_ratio"] < 0.5

    chain, platform = generate_ensemble(
        get_scenario("section8-hom").spec.with_(n_instances=1), seed=3
    )[0]
    problem = Problem(chain, platform, max_period=P, max_latency=L)
    benchmark(lambda: solve(problem, method="heur-l"))


if __name__ == "__main__":
    try:
        from benchmarks.jsonbench import main
    except ImportError:  # plain `python benchmarks/bench_*.py` execution
        from jsonbench import main

    main(BENCH_NAME, run_facade_bench)
