"""Ablation — interval mappings vs the Section 1 baselines.

The paper's opening argument: interval mappings dominate one-to-one
mappings (communication overhead, and they exist when n > p) and allow
period/latency trade-offs a monolithic mapping cannot.  Measured here
on a suite of homogeneous instances: feasibility counts and reliability
of the exact interval mapping vs the one-to-one and single-interval
baselines, at a moderate (P, L) operating point.
"""

import numpy as np

from benchmarks.conftest import bench_config, emit
from repro.algorithms import one_to_one_best, pareto_dp_best, single_interval_best
from repro.core import Platform, random_chain


def test_baseline_mappings(benchmark):
    cfg = bench_config()
    n_inst = max(8, cfg["n_instances"] // 2)
    rng = np.random.default_rng(cfg["seed"])
    # 8 tasks on 10 processors so one-to-one is *possible* (n <= p).
    platform = Platform.homogeneous_platform(
        10, failure_rate=1e-8, link_failure_rate=1e-5, max_replication=3
    )
    P, L = 150.0, 450.0

    counts = {"interval": 0, "one-to-one": 0, "single": 0}
    wins = 0
    comparisons = 0
    for k in range(n_inst):
        chain = random_chain(8, np.random.default_rng(rng.integers(2**63)))
        interval = pareto_dp_best(chain, platform, max_period=P, max_latency=L)
        o2o = one_to_one_best(chain, platform, max_period=P, max_latency=L)
        mono = single_interval_best(chain, platform, max_period=P, max_latency=L)
        counts["interval"] += interval.feasible
        counts["one-to-one"] += o2o.feasible
        counts["single"] += mono.feasible
        # Interval mapping dominates wherever a baseline is feasible.
        for base in (o2o, mono):
            if base.feasible:
                comparisons += 1
                assert interval.feasible
                assert interval.log_reliability >= base.log_reliability - 1e-15
                if interval.log_reliability > base.log_reliability:
                    wins += 1

    emit()
    emit(f"feasible at P={P}, L={L} over {n_inst} instances: {counts}")
    emit(f"strict reliability wins of interval mapping: {wins}/{comparisons}")
    # The paper's claim: interval mappings solve at least as many
    # instances as either baseline.
    assert counts["interval"] >= counts["one-to-one"]
    assert counts["interval"] >= counts["single"]

    chain = random_chain(8, rng=1)
    benchmark(
        lambda: one_to_one_best(chain, platform, max_period=P, max_latency=L)
    )
