"""Figure 6 — number of solutions vs period bound (hom, L = 750).

Paper findings asserted here: the exact method dominates both
heuristics everywhere and its count is non-decreasing in the period
bound; Heur-P finds at least as many solutions as Heur-L over the
low-to-medium period range (the crossover regime of Section 8.1).
"""

import numpy as np

from benchmarks.conftest import run_count_bench, emit
from repro.experiments.figures import run_figure
from repro.experiments.report import render_figure


def test_fig06_solutions_vs_period(benchmark):
    exp = run_count_bench(benchmark, "hom-period")
    fig = run_figure("fig6", experiment_result=exp)
    emit()
    emit(render_figure(fig))

    ilp = fig.series["ilp"]
    heur_l = fig.series["heur-l"]
    heur_p = fig.series["heur-p"]

    # Exact dominates the heuristics and is monotone in the bound.
    assert np.all(ilp >= heur_l)
    assert np.all(ilp >= heur_p)
    assert np.all(np.diff(ilp) >= 0)
    # Heur-P at least matches Heur-L on the lower half of the sweep.
    half = len(fig.xs) // 2
    assert heur_p[:half].sum() >= heur_l[:half].sum()
    # Someone eventually finds solutions (L = 750 admits ~half).
    assert ilp[-1] > 0
