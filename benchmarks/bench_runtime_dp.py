"""Runtime — the Theorem 1/2 dynamic programs.

Times Algorithm 1 and Algorithm 2 at the paper's scale (n = 15,
p = 10) and at a larger scale to exhibit the O(n^2 p K) growth; prints
a small scaling table.
"""

import time

import pytest

from repro.algorithms import optimize_reliability, optimize_reliability_period
from repro.core import Platform, random_chain

from benchmarks.conftest import emit


def make_instance(n, p, K=3):
    chain = random_chain(n, rng=7)
    plat = Platform.homogeneous_platform(
        p, failure_rate=1e-8, link_failure_rate=1e-5, max_replication=K
    )
    return chain, plat


@pytest.mark.parametrize("n,p", [(15, 10), (40, 20), (80, 30)])
def test_runtime_algorithm1(benchmark, n, p):
    chain, plat = make_instance(n, p)
    result = benchmark(optimize_reliability, chain, plat)
    assert result.feasible


def test_runtime_algorithm2(benchmark):
    chain, plat = make_instance(15, 10)
    result = benchmark(optimize_reliability_period, chain, plat, 250.0)
    assert result.feasible or not result.feasible  # runs to completion


def test_dp_scaling_table(benchmark):
    """Print wall-clock growth across sizes; assert superlinear but
    tractable growth (the quadratic-in-n bound)."""
    rows = []
    for n, p in ((10, 8), (20, 12), (40, 16), (80, 24)):
        chain, plat = make_instance(n, p)
        t0 = time.perf_counter()
        optimize_reliability(chain, plat)
        rows.append((n, p, time.perf_counter() - t0))
    emit()
    emit("n    p   seconds")
    for n, p, secs in rows:
        emit(f"{n:<4d} {p:<3d} {secs:.4f}")
    # 8x the tasks should cost far less than the 512x of a cubic blowup.
    assert rows[-1][2] < max(rows[0][2], 1e-4) * 1024

    chain, plat = make_instance(15, 10)
    benchmark(optimize_reliability, chain, plat)
