"""Figure 10 — number of solutions with linked bounds L = 3P (hom).

Asserted shape (Section 8.1): with the linked bounds "almost all
solutions are found by both heuristics, regardless of the bound on the
period", with Heur-P slightly ahead of Heur-L.
"""

import numpy as np

from benchmarks.conftest import run_count_bench, emit
from repro.experiments.figures import run_figure
from repro.experiments.report import render_figure


def test_fig10_solutions_linked(benchmark):
    exp = run_count_bench(benchmark, "hom-linked")
    fig = run_figure("fig10", experiment_result=exp)
    emit()
    emit(render_figure(fig))

    ilp = fig.series["ilp"]
    heur_l = fig.series["heur-l"]
    heur_p = fig.series["heur-p"]

    assert np.all(ilp >= heur_l)
    assert np.all(ilp >= heur_p)
    assert np.all(np.diff(ilp) >= 0)
    # "Almost all solutions found by both heuristics": each heuristic
    # captures at least 80% of the exact solutions over the sweep.
    total = max(int(ilp.sum()), 1)
    assert heur_p.sum() >= 0.8 * total
    assert heur_l.sum() >= 0.8 * total
    # Heur-P is (weakly) the better of the two overall.
    assert heur_p.sum() >= heur_l.sum()
