"""Figure 7 — average failure probability vs period bound (hom, L = 750).

Asserted shape (Section 8.1): on the common instance set, the exact
method's average failure probability lower-bounds both heuristics', and
Heur-P stays closer to the optimum than Heur-L on average.
"""

import numpy as np

from benchmarks.conftest import run_failure_bench, emit
from repro.experiments.report import render_figure


def test_fig07_failure_vs_period(benchmark):
    _, fig = run_failure_bench(benchmark, "hom-period", "fig7")
    emit()
    emit(render_figure(fig))

    ilp = fig.series["ilp"]
    heur_l = fig.series["heur-l"]
    heur_p = fig.series["heur-p"]
    defined = ~(np.isnan(ilp) | np.isnan(heur_l) | np.isnan(heur_p))
    assert defined.any(), "no sweep point had solutions from both heuristics"

    # The optimum lower-bounds both heuristics on the common set.
    assert np.all(ilp[defined] <= heur_l[defined] + 1e-18)
    assert np.all(ilp[defined] <= heur_p[defined] + 1e-18)
    # Heur-P tracks the optimum more closely than Heur-L overall.
    assert heur_p[defined].mean() <= heur_l[defined].mean() + 1e-18
    # Everything is a probability.
    for series in (ilp, heur_l, heur_p):
        vals = series[defined]
        assert np.all((vals >= 0) & (vals <= 1))
