"""Throughput of the batched solving kernels vs the per-row loop.

The batched layer (:mod:`repro.algorithms.batch`) evaluates a Section 7
heuristic across every row of a columnar ensemble in one kernel call —
shared interval enumeration, batched log-reliability arithmetic,
vectorized feasibility masks — where the per-row path runs one
object-level ``heuristic_best`` solve per instance.  This bench runs
the same 1000-instance cold sweep through both paths into fresh caches
and checks the contract that makes the speedup safe to take: the two
runs are **bit-identical** (solved flags, failure probabilities,
objective values, and cache entries under the same keys).

Metrics:

* ``batch_speedup`` — looped seconds over batched seconds (the
  machine-portable headline; the acceptance floor is 5x);
* ``batched_units_per_s`` / ``looped_units_per_s`` — informational
  absolute throughput.

Dual entry points: a pytest-benchmark test and a ``--json`` script mode
for the benchmark-regression gate::

    PYTHONPATH=src python benchmarks/bench_batch_solve.py --json out.json
"""

import tempfile
import time

import numpy as np

from repro.experiments import ResultCache, get_method, run_sweep
from repro.scenarios import generate_ensemble

try:
    from benchmarks.conftest import emit
except ImportError:  # script mode: no pytest plumbing to bypass
    def emit(*parts):
        print(" ".join(str(p) for p in parts))

N_INSTANCES = 1000
BOUNDS = [(150.0, 750.0), (250.0, 750.0), (400.0, 750.0)]
METHOD = "heur-l"

#: Regression-gate metric names (see run_batch_solve_bench).
BENCH_NAME = "bench_batch_solve"


def run_batch_solve_bench() -> dict:
    """Cold-sweep the ensemble looped and batched; return gate metrics."""
    ensemble = generate_ensemble("section8-hom", n_instances=N_INSTANCES, seed=17)
    methods = [get_method(METHOD)]
    n_units = N_INSTANCES

    with tempfile.TemporaryDirectory() as looped_dir, \
            tempfile.TemporaryDirectory() as batched_dir:
        looped_cache = ResultCache(looped_dir)
        t0 = time.perf_counter()
        looped = run_sweep(ensemble, methods, BOUNDS, cache=looped_cache, batch=False)
        looped_seconds = time.perf_counter() - t0
        assert looped.batch_units == 0 and looped_cache.puts == n_units

        batched_cache = ResultCache(batched_dir)
        t0 = time.perf_counter()
        batched = run_sweep(ensemble, methods, BOUNDS, cache=batched_cache)
        batched_seconds = time.perf_counter() - t0
        assert batched.batch_units == n_units and batched_cache.puts == n_units

        # The contract that makes the speedup safe to take: counts,
        # failures, objective values, and cache keys all bit-identical.
        assert np.array_equal(looped.solved, batched.solved)
        assert np.array_equal(looped.failure, batched.failure)
        assert np.array_equal(looped.objective_values, batched.objective_values)
        looped_keys = {p.name for p in looped_cache.root.rglob("*.json")}
        batched_keys = {p.name for p in batched_cache.root.rglob("*.json")}
        assert looped_keys == batched_keys and len(looped_keys) == n_units

    emit()
    emit(f"batched solving, {N_INSTANCES} instances x {METHOD} "
         f"x {len(BOUNDS)} points (section8-hom, cold caches)")
    emit(f"looped:  {looped_seconds:8.3f}s  ({n_units / looped_seconds:8.1f} units/s)")
    emit(f"batched: {batched_seconds:8.3f}s  ({n_units / batched_seconds:8.1f} units/s)")
    emit(f"batch speedup: {looped_seconds / batched_seconds:.1f}x")

    return {
        "batch_speedup": looped_seconds / batched_seconds,
        "batched_units_per_s": n_units / batched_seconds,
        "looped_units_per_s": n_units / looped_seconds,
    }


def test_batch_solve_throughput(benchmark):
    metrics = run_batch_solve_bench()
    # The acceptance floor: one kernel call across 1000 rows must beat
    # 1000 object-level solves by at least 5x.
    assert metrics["batch_speedup"] > 5.0

    ensemble = generate_ensemble("section8-hom", n_instances=200, seed=17)
    methods = [get_method(METHOD)]
    benchmark(lambda: run_sweep(ensemble, methods, BOUNDS))


if __name__ == "__main__":
    try:
        from benchmarks.jsonbench import main
    except ImportError:  # plain `python benchmarks/bench_*.py` execution
        from jsonbench import main

    main(BENCH_NAME, run_batch_solve_bench)
