"""Throughput of the batched solving kernels vs the per-row loop.

The batched layer (:mod:`repro.algorithms.batch` and its converse
siblings :mod:`repro.algorithms.batch_dp` /
:mod:`repro.algorithms.batch_search`) evaluates a solve cell across
every row of a columnar ensemble in one kernel call — shared interval
enumeration, batched log-reliability arithmetic, vectorized
feasibility masks, lane-vectorized DP tables, lockstep bisection —
where the per-row path runs one object-level solve per instance.
This bench runs the same cold sweeps through both paths and checks the
contract that makes each speedup safe to take: the two runs are
**bit-identical** (solved flags, failure probabilities, objective
values, and — where caches are in play — cache entries under the same
keys).

Metrics (per kernel cell; the acceptance floor is 5x on each):

* ``batch_speedup`` — heur-l on homogeneous rows, cold caches (the
  original headline cell);
* ``floor_speedup`` — heur-l under a reliability floor, kernel-level
  (``run_sweep`` rejects floored *reliability* sweeps, so this cell is
  measured against the ``heuristic_best`` loop directly);
* ``batch_dp_period_speedup`` — the lane-vectorized Algorithm 2 DP
  (``dp-period``) vs the per-row converse binary search;
* ``het_batch_speedup`` — heur-l on heterogeneous rows (lockstep
  Section 7.2 allocation) vs the per-row loop;
* ``batched_units_per_s`` / ``looped_units_per_s`` — informational
  absolute throughput of the headline cell.

Dual entry points: a pytest-benchmark test and a ``--json`` script mode
for the benchmark-regression gate::

    PYTHONPATH=src python benchmarks/bench_batch_solve.py --json out.json
"""

import math
import tempfile
import time

import numpy as np

from repro.algorithms import batch_heuristic_best, heuristic_best
from repro.experiments import ResultCache, get_method, run_sweep
from repro.scenarios import generate_ensemble
from repro.util.logrel import from_reliability

try:
    from benchmarks.conftest import emit
except ImportError:  # script mode: no pytest plumbing to bypass
    def emit(*parts):
        print(" ".join(str(p) for p in parts))

N_INSTANCES = 1000
BOUNDS = [(150.0, 750.0), (250.0, 750.0), (400.0, 750.0)]
METHOD = "heur-l"

#: The converse/floor/het cells run smaller ensembles: their per-row
#: legs are far more expensive than a heur-l solve, and the speedup
#: ratio is stable well before 1000 rows.
FLOOR_N = 400
DP_N = 300
HET_N = 300
PERIOD_BOUNDS = [(150.0, math.inf), (250.0, math.inf), (400.0, math.inf)]

#: Regression-gate metric names (see run_batch_solve_bench).
BENCH_NAME = "bench_batch_solve"


def _sweep_pair_seconds(ensemble, method_name, bounds, objective,
                        n_units) -> "tuple[float, float]":
    """Time the same cacheless cold sweep looped then batched, and
    assert the bit-identity contract."""
    methods = [get_method(method_name)]
    t0 = time.perf_counter()
    looped = run_sweep(ensemble, methods, bounds, batch=False,
                       objective=objective)
    looped_seconds = time.perf_counter() - t0
    t0 = time.perf_counter()
    batched = run_sweep(ensemble, methods, bounds, objective=objective)
    batched_seconds = time.perf_counter() - t0
    assert looped.batch_units == 0 and batched.batch_units == n_units
    assert np.array_equal(looped.solved, batched.solved)
    assert np.array_equal(looped.failure, batched.failure)
    assert np.array_equal(looped.objective_values, batched.objective_values)
    return looped_seconds, batched_seconds


def _floor_cell_seconds() -> "tuple[float, float]":
    """The floored heuristic cell, measured at kernel level."""
    ensemble = generate_ensemble("section8-hom", n_instances=FLOOR_N, seed=17)
    floor = 0.5
    t0 = time.perf_counter()
    solved, failure, values = batch_heuristic_best(
        ensemble, BOUNDS, which=METHOD, min_reliability=floor
    )
    batched_seconds = time.perf_counter() - t0
    ell = from_reliability(floor)
    t0 = time.perf_counter()
    for i, (chain, platform) in enumerate(ensemble):
        for pt, (P, L) in enumerate(BOUNDS):
            res = heuristic_best(
                chain, platform, max_period=P, max_latency=L,
                which=METHOD, selection="feasible-best",
                min_log_reliability=ell,
            )
            assert bool(solved[i, pt]) == res.feasible
            assert float(failure[i, pt]) == res.failure_probability
    looped_seconds = time.perf_counter() - t0
    return looped_seconds, batched_seconds


def run_batch_solve_bench() -> dict:
    """Cold-sweep each kernel cell looped and batched; return metrics."""
    ensemble = generate_ensemble("section8-hom", n_instances=N_INSTANCES, seed=17)
    methods = [get_method(METHOD)]
    n_units = N_INSTANCES

    with tempfile.TemporaryDirectory() as looped_dir, \
            tempfile.TemporaryDirectory() as batched_dir:
        looped_cache = ResultCache(looped_dir)
        t0 = time.perf_counter()
        looped = run_sweep(ensemble, methods, BOUNDS, cache=looped_cache, batch=False)
        looped_seconds = time.perf_counter() - t0
        assert looped.batch_units == 0 and looped_cache.puts == n_units

        batched_cache = ResultCache(batched_dir)
        t0 = time.perf_counter()
        batched = run_sweep(ensemble, methods, BOUNDS, cache=batched_cache)
        batched_seconds = time.perf_counter() - t0
        assert batched.batch_units == n_units and batched_cache.puts == n_units

        # The contract that makes the speedup safe to take: counts,
        # failures, objective values, and cache keys all bit-identical.
        assert np.array_equal(looped.solved, batched.solved)
        assert np.array_equal(looped.failure, batched.failure)
        assert np.array_equal(looped.objective_values, batched.objective_values)
        looped_keys = {p.name for p in looped_cache.root.rglob("*.json")}
        batched_keys = {p.name for p in batched_cache.root.rglob("*.json")}
        assert looped_keys == batched_keys and len(looped_keys) == n_units

    floor_looped, floor_batched = _floor_cell_seconds()
    dp_looped, dp_batched = _sweep_pair_seconds(
        generate_ensemble("section8-hom", n_instances=DP_N, seed=17),
        "dp-period", PERIOD_BOUNDS, "period", DP_N,
    )
    het_looped, het_batched = _sweep_pair_seconds(
        generate_ensemble("high-heterogeneity", n_instances=HET_N, seed=17),
        METHOD, BOUNDS, "reliability", HET_N,
    )

    emit()
    emit(f"batched solving, {N_INSTANCES} instances x {METHOD} "
         f"x {len(BOUNDS)} points (section8-hom, cold caches)")
    emit(f"looped:  {looped_seconds:8.3f}s  ({n_units / looped_seconds:8.1f} units/s)")
    emit(f"batched: {batched_seconds:8.3f}s  ({n_units / batched_seconds:8.1f} units/s)")
    emit(f"batch speedup: {looped_seconds / batched_seconds:.1f}x")
    emit()
    emit("per-cell speedups (looped s / batched s):")
    emit(f"floored heur-l ({FLOOR_N} rows):      "
         f"{floor_looped:7.3f} / {floor_batched:7.3f} = "
         f"{floor_looped / floor_batched:.1f}x")
    emit(f"dp-period ({DP_N} rows):             "
         f"{dp_looped:7.3f} / {dp_batched:7.3f} = {dp_looped / dp_batched:.1f}x")
    emit(f"het heur-l ({HET_N} rows):           "
         f"{het_looped:7.3f} / {het_batched:7.3f} = "
         f"{het_looped / het_batched:.1f}x")

    return {
        "batch_speedup": looped_seconds / batched_seconds,
        "floor_speedup": floor_looped / floor_batched,
        "batch_dp_period_speedup": dp_looped / dp_batched,
        "het_batch_speedup": het_looped / het_batched,
        "batched_units_per_s": n_units / batched_seconds,
        "looped_units_per_s": n_units / looped_seconds,
    }


def test_batch_solve_throughput(benchmark):
    metrics = run_batch_solve_bench()
    # The acceptance floor: each kernel cell must beat its per-row
    # loop by at least 5x.
    assert metrics["batch_speedup"] > 5.0
    assert metrics["floor_speedup"] > 5.0
    assert metrics["batch_dp_period_speedup"] > 5.0
    assert metrics["het_batch_speedup"] > 5.0

    ensemble = generate_ensemble("section8-hom", n_instances=200, seed=17)
    methods = [get_method(METHOD)]
    benchmark(lambda: run_sweep(ensemble, methods, BOUNDS))


if __name__ == "__main__":
    try:
        from benchmarks.jsonbench import main
    except ImportError:  # plain `python benchmarks/bench_*.py` execution
        from jsonbench import main

    main(BENCH_NAME, run_batch_solve_bench)
