"""Ablation — Algo-Alloc's greedy rule vs alternatives.

Theorem 4 says the greedy ratio rule is optimal for a fixed partition
on homogeneous platforms.  This bench verifies that at benchmark scale
against brute-force enumeration, quantifies what a naive round-robin
allocation loses, and times the greedy itself (the piece that runs
inside every heuristic candidate).
"""

import itertools

import numpy as np

from repro.algorithms.allocation import algo_alloc
from repro.core import Mapping, Platform, random_chain
from repro.core.evaluation import mapping_log_reliability
from repro.core.interval import partition_from_cuts
from repro.util import logrel

from benchmarks.conftest import emit


def setup_instance():
    chain = random_chain(12, rng=42)
    plat = Platform.homogeneous_platform(
        10, failure_rate=1e-4, link_failure_rate=1e-4, max_replication=3
    )
    partition = partition_from_cuts(12, [3, 6, 9])
    return chain, plat, partition


def brute_force_counts(chain, plat, partition):
    m, p, K = len(partition), plat.p, plat.max_replication
    best = None
    for counts in itertools.product(range(1, K + 1), repeat=m):
        if sum(counts) > p:
            continue
        nxt, assignment = 0, []
        for iv, q in zip(partition, counts):
            assignment.append((iv, tuple(range(nxt, nxt + q))))
            nxt += q
        ell = mapping_log_reliability(Mapping(chain, plat, assignment))
        best = ell if best is None else max(best, ell)
    return best


def round_robin(chain, plat, partition):
    m, p, K = len(partition), plat.p, plat.max_replication
    counts = [1] * m
    i = 0
    left = p - m
    while left > 0 and any(c < K for c in counts):
        if counts[i % m] < K:
            counts[i % m] += 1
            left -= 1
        i += 1
    nxt, assignment = 0, []
    for iv, q in zip(partition, counts):
        assignment.append((iv, tuple(range(nxt, nxt + q))))
        nxt += q
    return mapping_log_reliability(Mapping(chain, plat, assignment))


def test_ablation_allocation(benchmark):
    chain, plat, partition = setup_instance()
    greedy = mapping_log_reliability(algo_alloc(chain, plat, partition))
    brute = brute_force_counts(chain, plat, partition)
    naive = round_robin(chain, plat, partition)

    emit()
    emit("allocation   failure probability")
    for name, ell in (("greedy", greedy), ("brute", brute), ("round-robin", naive)):
        emit(f"{name:11s}  {logrel.failure(ell):.6e}")

    # Theorem 4: greedy == brute-force optimum.
    np.testing.assert_allclose(greedy, brute, rtol=1e-9)
    # Round-robin is no better (and typically worse).
    assert naive <= greedy + 1e-15

    benchmark(algo_alloc, chain, plat, partition)
