"""Runtime — the three exact tri-criteria engines.

HiGHS branch-and-cut (the CPLEX substitute), the pure-Python
branch-and-bound, and the exact Pareto DP must return the same optimum;
this bench confirms it on a paper-scale instance and times each engine.
"""

import pytest

from repro.algorithms import ilp_best, pareto_dp_best
from repro.core import Platform, random_chain

BOUNDS = dict(max_period=250.0, max_latency=900.0)


@pytest.fixture(scope="module")
def instance():
    chain = random_chain(15, rng=3)
    plat = Platform.homogeneous_platform(
        10, failure_rate=1e-8, link_failure_rate=1e-5, max_replication=3
    )
    return chain, plat


@pytest.fixture(scope="module")
def reference(instance):
    chain, plat = instance
    return pareto_dp_best(chain, plat, **BOUNDS)


def test_runtime_ilp_highs(benchmark, instance, reference):
    chain, plat = instance
    res = benchmark(lambda: ilp_best(chain, plat, **BOUNDS))
    assert res.feasible == reference.feasible
    if res.feasible:
        assert abs(res.log_reliability - reference.log_reliability) <= max(
            1e-6 * abs(reference.log_reliability), 1e-300
        )


def test_runtime_ilp_branch_bound(benchmark, instance, reference):
    chain, plat = instance
    res = benchmark.pedantic(
        lambda: ilp_best(chain, plat, backend="branch-bound", **BOUNDS),
        rounds=1,
        iterations=1,
    )
    assert res.feasible == reference.feasible
    if res.feasible:
        assert abs(res.log_reliability - reference.log_reliability) <= max(
            1e-6 * abs(reference.log_reliability), 1e-300
        )


def test_runtime_pareto_dp(benchmark, instance):
    chain, plat = instance
    res = benchmark(lambda: pareto_dp_best(chain, plat, **BOUNDS))
    assert res.method == "pareto-dp"
