"""Cost of the cache storage backends — cold stores and warm replays.

The result cache now speaks two storage dialects behind one API: the
file tree (one JSON file per key, mkstemp + rename) and SQLite (one
``cache.db`` in WAL mode, ``BEGIN IMMEDIATE`` writers).  Both must
serve the same sweeps with the same bytes; this bench pins the *price*
of that choice so a storage regression in either backend (or an
accidental divergence between them) fails the gate.

A 1000-unit section8-hom sweep runs cold into a fresh store and then
warm, per backend.  The cold leg prices entry writes (the batched
kernels make solve time small, so store cost is visible); the warm leg
prices pure lookups — the regime a shared fleet cache lives in.

Metrics:

* ``files_warm_us_per_unit`` / ``sqlite_warm_us_per_unit`` — absolute
  warm lookup cost per work unit (loosely gated: wall time varies
  across CI hardware);
* ``sqlite_vs_files_warm_ratio`` — the headline: SQLite lookups must
  stay within the same small multiple of the file tree's (ratios are
  machine-portable where absolute times are not);
* ``sqlite_vs_files_cold_ratio`` — same contract for the write path.

The bench also asserts the cross-backend bit-identity contract: both
stores end the cold leg holding identical keys and identical entry
bytes, and both warm sweeps replay identical arrays.

Dual entry points: a pytest-benchmark test and a ``--json`` script mode
for the benchmark-regression gate::

    PYTHONPATH=src python benchmarks/bench_cache_backends.py --json out.json
"""

import tempfile
import time

import numpy as np

from repro.experiments import ResultCache, get_method, run_sweep
from repro.scenarios import generate_ensemble

try:
    from benchmarks.conftest import emit
except ImportError:  # script mode: no pytest plumbing to bypass
    def emit(*parts):
        print(" ".join(str(p) for p in parts))

N_INSTANCES = 1000
BOUNDS = [(250.0, 750.0)]

#: Regression-gate metric names (see run_cache_backends_bench).
BENCH_NAME = "bench_cache_backends"


def _legs(backend: str, ensemble, methods) -> dict:
    """One backend's cold and warm sweep; returns timings + store scan."""
    n_units = len(methods) * N_INSTANCES
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp, backend=backend)
        t0 = time.perf_counter()
        cold = run_sweep(ensemble, methods, BOUNDS, cache=cache)
        cold_seconds = time.perf_counter() - t0
        assert cache.stats() == {"hits": 0, "misses": n_units, "puts": n_units,
                                 "corrupt": 0, "hit_rate": 0.0}

        warm_cache = ResultCache(tmp)  # auto-detected from the store
        assert warm_cache.backend.kind == backend
        t0 = time.perf_counter()
        warm = run_sweep(ensemble, methods, BOUNDS, cache=warm_cache)
        warm_seconds = time.perf_counter() - t0
        assert warm_cache.stats() == {"hits": n_units, "misses": 0, "puts": 0,
                                      "corrupt": 0, "hit_rate": 1.0}
        assert np.array_equal(cold.solved, warm.solved)
        assert np.array_equal(cold.failure, warm.failure)

        entries = dict(cache.backend.scan())
        assert len(entries) == N_INSTANCES
        cache.backend.close()
        warm_cache.backend.close()
    return {
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "result": cold,
        "entries": entries,
    }


def run_cache_backends_bench() -> dict:
    """Cold/warm 1000-unit sweep per backend; return the gate metrics."""
    ensemble = generate_ensemble("section8-hom", n_instances=N_INSTANCES, seed=17)
    methods = [get_method("heur-l")]
    n_units = len(methods) * N_INSTANCES

    files = _legs("files", ensemble, methods)
    sqlite = _legs("sqlite", ensemble, methods)

    # The acceptance contract: identical series, identical cache keys,
    # identical record payload bytes across backends.
    assert np.array_equal(files["result"].solved, sqlite["result"].solved)
    assert np.array_equal(files["result"].failure, sqlite["result"].failure)
    assert files["entries"] == sqlite["entries"]

    emit()
    emit(f"cache backends, {N_INSTANCES} instances x {len(methods)} method "
         f"x {len(BOUNDS)} point (section8-hom)")
    for name, legs in (("files", files), ("sqlite", sqlite)):
        emit(f"{name:6s} cold: {legs['cold_seconds']:7.3f}s   "
             f"warm: {legs['warm_seconds']:7.3f}s  "
             f"({legs['warm_seconds'] / n_units * 1e6:7.1f} us/unit)")
    emit(f"sqlite/files warm ratio: "
         f"{sqlite['warm_seconds'] / files['warm_seconds']:.2f}x")

    return {
        "files_warm_us_per_unit": files["warm_seconds"] / n_units * 1e6,
        "sqlite_warm_us_per_unit": sqlite["warm_seconds"] / n_units * 1e6,
        "sqlite_vs_files_warm_ratio": sqlite["warm_seconds"] / files["warm_seconds"],
        "sqlite_vs_files_cold_ratio": sqlite["cold_seconds"] / files["cold_seconds"],
    }


def test_cache_backends_throughput(benchmark):
    metrics = run_cache_backends_bench()
    # Both backends must serve warm sweeps in the same ballpark: a
    # 4x envelope is loose enough for CI filesystems, tight enough to
    # catch an accidental per-lookup transaction or connection churn.
    assert metrics["sqlite_vs_files_warm_ratio"] < 4.0
    assert metrics["sqlite_vs_files_cold_ratio"] < 4.0

    ensemble = generate_ensemble("section8-hom", n_instances=20, seed=17)
    methods = [get_method("heur-l")]

    def warm_sqlite_sweep():
        with tempfile.TemporaryDirectory() as tmp:
            cache = ResultCache(tmp, backend="sqlite")
            run_sweep(ensemble, methods, BOUNDS, cache=cache)
            return run_sweep(ensemble, methods, BOUNDS, cache=cache)

    benchmark(warm_sqlite_sweep)


if __name__ == "__main__":
    try:
        from benchmarks.jsonbench import main
    except ImportError:  # plain `python benchmarks/bench_*.py` execution
        from jsonbench import main

    main(BENCH_NAME, run_cache_backends_bench)
