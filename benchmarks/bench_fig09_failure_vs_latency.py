"""Figure 9 — average failure probability vs latency bound (hom, P = 250).

Asserted shape (Section 8.1): "solutions of heuristic Heur-L are less
reliable than solutions of heuristic Heur-P, and Heur-P obtains
solutions of reliability close to the optimal."
"""

import numpy as np

from benchmarks.conftest import run_failure_bench, emit
from repro.experiments.report import render_figure


def test_fig09_failure_vs_latency(benchmark):
    _, fig = run_failure_bench(benchmark, "hom-latency", "fig9")
    emit()
    emit(render_figure(fig))

    ilp = fig.series["ilp"]
    heur_l = fig.series["heur-l"]
    heur_p = fig.series["heur-p"]
    defined = ~(np.isnan(ilp) | np.isnan(heur_l) | np.isnan(heur_p))
    assert defined.any()

    assert np.all(ilp[defined] <= heur_p[defined] + 1e-18)
    assert np.all(ilp[defined] <= heur_l[defined] + 1e-18)
    assert heur_p[defined].mean() <= heur_l[defined].mean() + 1e-18
    # Heur-P close to optimal: within two orders of magnitude on
    # average, while Heur-L is typically much farther.
    ratio_p = heur_p[defined].mean() / max(ilp[defined].mean(), 1e-300)
    assert ratio_p < 1e4
