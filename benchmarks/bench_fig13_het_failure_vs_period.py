"""Figure 13 — average failure probability vs period bound, het vs hom
(per-method instance sets, L = 150).

Reproduced finding: "both heuristics find solutions with similar
failure probabilities on heterogeneous platforms" — the two het curves
coincide to within an order of magnitude.

Documented deviation (see EXPERIMENTS.md): the paper reports hom
solutions as *more* reliable than het ones; under exact log-domain
arithmetic the ordering inverts — a het platform whose processors are
faster at equal failure rates yields strictly more reliable intervals
(Eq. (1): failure ~ lambda * W / s), and the reliability-ratio phase of
the Section 7.2 allocation keeps replicating on het platforms when the
gains are ~1e-20 (invisible to plain double-precision probability
arithmetic).  We assert the exact-arithmetic ordering.
"""

import numpy as np

from benchmarks.conftest import run_failure_bench, emit
from repro.experiments.report import render_figure


def test_fig13_het_failure_vs_period(benchmark):
    _, fig = run_failure_bench(benchmark, "het-period", "fig13")
    emit()
    emit(render_figure(fig))

    het_l, het_p = fig.series["heur-l_het"], fig.series["heur-p_het"]
    hom_l, hom_p = fig.series["heur-l_hom"], fig.series["heur-p_hom"]

    # The het curves are defined nearly everywhere and similar.
    defined_het = ~(np.isnan(het_l) | np.isnan(het_p))
    assert defined_het.sum() >= len(fig.xs) // 2
    # Exact-arithmetic ordering: het solutions at least as reliable as
    # hom ones wherever both are defined.
    for het, hom in ((het_l, hom_l), (het_p, hom_p)):
        both = ~(np.isnan(het) | np.isnan(hom))
        if both.any():
            assert het[both].mean() <= hom[both].mean() + 1e-18
    # All defined values are probabilities.
    for series in fig.series.values():
        vals = series[~np.isnan(series)]
        assert np.all((vals >= 0) & (vals <= 1))
