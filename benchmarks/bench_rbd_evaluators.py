"""Runtime/accuracy — the RBD evaluator ladder.

On the no-routing RBD of a replicated mapping (the hard case routing
exists to avoid), compare: exact state enumeration, exact pivotal
factoring, the FKG cut-set lower bound, and Monte Carlo — accuracy
against the enumeration oracle, wall-clock per evaluator.
"""

import time

import pytest

from repro.core import Interval, Mapping, Platform, TaskChain
from repro.rbd import (
    cut_set_lower_bound,
    estimate_log_reliability,
    exact_log_reliability_enumeration,
    exact_log_reliability_factoring,
    rbd_without_routing,
)
from repro.util import logrel
from benchmarks.conftest import emit


@pytest.fixture(scope="module")
def mesh_rbd():
    chain = TaskChain([40.0, 60.0], [8.0, 0.0])
    plat = Platform(
        speeds=[1.0, 1.5, 2.0, 1.2],
        failure_rates=[2e-3] * 4,
        bandwidth=1.0,
        link_failure_rate=1e-3,
        max_replication=2,
    )
    mapping = Mapping(
        chain, plat, [(Interval(0, 1), (0, 1)), (Interval(1, 2), (2, 3))]
    )
    return rbd_without_routing(mapping)


def test_rbd_evaluators_agree(benchmark, mesh_rbd):
    t0 = time.perf_counter()
    exact_enum = exact_log_reliability_enumeration(mesh_rbd)
    t1 = time.perf_counter()
    exact_factor = exact_log_reliability_factoring(mesh_rbd)
    t2 = time.perf_counter()
    bound = cut_set_lower_bound(mesh_rbd)
    t3 = time.perf_counter()
    mc = estimate_log_reliability(mesh_rbd, trials=20_000, rng=5)
    t4 = time.perf_counter()

    emit()
    emit("evaluator     failure-prob   seconds")
    rows = [
        ("enumeration", logrel.failure(exact_enum), t1 - t0),
        ("factoring", logrel.failure(exact_factor), t2 - t1),
        ("cut-bound", logrel.failure(bound), t3 - t2),
        ("monte-carlo", 1 - mc.reliability, t4 - t3),
    ]
    for name, f, secs in rows:
        emit(f"{name:12s}  {f:.6e}  {secs:.4f}")

    assert exact_factor == pytest.approx(exact_enum, rel=1e-9)
    assert bound <= exact_enum + 1e-12  # FKG: never optimistic
    assert mc.consistent_with(exact_enum)

    benchmark(exact_log_reliability_factoring, mesh_rbd)
