"""Figure 11 — average failure probability with linked bounds L = 3P (hom).

Asserted shape (Section 8.1): "solutions of heuristic Heur-P are close
to the optimal in terms of failure rate, while Heur-L obtains less
satisfactory results."
"""

import numpy as np

from benchmarks.conftest import run_failure_bench, emit
from repro.experiments.report import render_figure


def test_fig11_failure_linked(benchmark):
    _, fig = run_failure_bench(benchmark, "hom-linked", "fig11")
    emit()
    emit(render_figure(fig))

    ilp = fig.series["ilp"]
    heur_l = fig.series["heur-l"]
    heur_p = fig.series["heur-p"]
    defined = ~(np.isnan(ilp) | np.isnan(heur_l) | np.isnan(heur_p))
    assert defined.any()

    assert np.all(ilp[defined] <= heur_p[defined] + 1e-18)
    assert np.all(ilp[defined] <= heur_l[defined] + 1e-18)
    assert heur_p[defined].mean() <= heur_l[defined].mean() + 1e-18
