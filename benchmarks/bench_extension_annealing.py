"""Extension bench — simulated annealing vs the Section 7 heuristics.

On heterogeneous instances (where no exact polynomial method exists,
Theorem 5), measures how much reliability the annealing search recovers
over the Heur-L/Heur-P two-step decomposition, and at what cost.
"""

import numpy as np

from benchmarks.conftest import bench_config, emit
from repro.algorithms import heuristic_best
from repro.core import random_chain, random_platform
from repro.extensions import anneal_mapping


def test_extension_annealing(benchmark):
    cfg = bench_config()
    n_inst = max(6, cfg["n_instances"] // 4)
    rng = np.random.default_rng(cfg["seed"])
    P, L = 40.0, 160.0

    improved = 0
    compared = 0
    ratios = []
    for _ in range(n_inst):
        sub = np.random.default_rng(rng.integers(2**63))
        chain = random_chain(10, sub)
        platform = random_platform(8, sub)
        heur = heuristic_best(chain, platform, max_period=P, max_latency=L)
        ann = anneal_mapping(
            chain, platform, max_period=P, max_latency=L,
            iterations=800, rng=sub,
        )
        if not heur.feasible:
            continue
        compared += 1
        # Warm-started annealing never loses to its starting point.
        assert ann.feasible
        assert ann.log_reliability >= heur.log_reliability - 1e-12
        if ann.log_reliability > heur.log_reliability * (1 - 1e-9):
            pass
        if ann.log_reliability > heur.log_reliability:
            improved += 1
            ratios.append(
                heur.evaluation.failure_probability
                / max(ann.evaluation.failure_probability, 1e-300)
            )

    emit()
    emit(
        f"annealing strictly improved {improved}/{compared} feasible instances; "
        f"median failure-probability gain "
        f"{np.median(ratios) if ratios else 1.0:.2f}x"
    )

    chain = random_chain(10, rng=3)
    platform = random_platform(8, rng=3)
    benchmark.pedantic(
        lambda: anneal_mapping(
            chain, platform, max_period=P, max_latency=L, iterations=800, rng=5
        ),
        rounds=1,
        iterations=1,
    )
