"""Figure 14 — number of solutions vs latency bound, het vs hom (P = 50).

Asserted shape (Section 8.2): for every latency bound the het platforms
admit at least as many solutions as the hom counterparts ("for a given
value of the latency bound, the number of solutions for homogeneous
platforms is clearly smaller"), and the hom curves grow with the bound.
"""

import numpy as np

from benchmarks.conftest import bench_config, run_count_bench, emit
from repro.experiments.figures import run_figure
from repro.experiments.report import render_figure


def test_fig14_het_solutions_vs_latency(benchmark):
    exp = run_count_bench(benchmark, "het-latency")
    fig = run_figure("fig14", experiment_result=exp)
    emit()
    emit(render_figure(fig))

    n = bench_config()["n_instances"]
    for h in ("heur-l", "heur-p"):
        het = fig.series[f"{h}_het"]
        hom = fig.series[f"{h}_hom"]
        assert np.all(het >= hom), h
        # Hom counterparts benefit from looser latency bounds.
        assert hom[-1] >= hom[0], h
        # Het solves (nearly) everything by the top of the sweep.
        assert het[-1] >= 0.9 * n, h
