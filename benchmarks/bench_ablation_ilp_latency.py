"""Ablation — the Section 5.4 latency constraint: "paper" vs "full".

The printed integer program bounds only the computation part of the
latency; Eq. (5)/(7) also charge one communication per interval (typo
fix #3 in DESIGN.md).  This bench measures how many additional
instances the looser printed constraint accepts — i.e. how much the
typo would distort Figure 8 — and times one full-form solve.
"""


from benchmarks.conftest import bench_config, emit
from repro.algorithms import ilp_best
from repro.experiments.instances import homogeneous_suite


def test_ablation_ilp_latency_terms(benchmark):
    cfg = bench_config()
    n = max(6, cfg["n_instances"] // 2)
    instances = homogeneous_suite(n_instances=n, seed=cfg["seed"])
    sweep = [600.0, 700.0, 800.0, 900.0]

    rows = []
    for L in sweep:
        full = sum(
            ilp_best(c, p, max_period=250.0, max_latency=L, latency_terms="full").feasible
            for c, p in instances
        )
        paper = sum(
            ilp_best(c, p, max_period=250.0, max_latency=L, latency_terms="paper").feasible
            for c, p in instances
        )
        rows.append((L, full, paper))

    emit()
    emit(f"latency bound  full-constraint  paper-constraint   ({n} instances)")
    for L, full, paper in rows:
        emit(f"{L:13g}  {full:15d}  {paper:16d}")

    # The printed (computation-only) constraint is a relaxation: it can
    # only accept more instances.
    for _, full, paper in rows:
        assert paper >= full

    chain, plat = instances[0]
    benchmark(
        ilp_best, chain, plat, 250.0, 750.0  # max_period, max_latency
    )
