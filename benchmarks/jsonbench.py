"""Script-mode plumbing for the benchmark-regression gate.

Each gated bench module exposes a ``run_*_bench() -> dict`` function
returning flat, machine-portable metrics, and calls :func:`main` when
executed as a script::

    PYTHONPATH=src python benchmarks/bench_solve_facade.py --json out.json

The output JSON maps the bench name to its metrics dict::

    {"bench_solve_facade": {"facade_vs_direct_ratio": 1.01, ...}}

``benchmarks/compare_baseline.py`` consumes one or more of these files
and checks them against the committed ``benchmarks/baseline.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
from typing import Callable


def main(name: str, runner: "Callable[[], dict]") -> None:
    """Run *runner* and emit ``{name: metrics}`` as JSON.

    ``--json PATH`` writes the file (and still prints the human
    summary the bench emits on stdout); without it the JSON goes to
    stdout after the summary.
    """
    parser = argparse.ArgumentParser(description=f"run {name} (regression-gate mode)")
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="write the metrics JSON here (default: print to stdout)",
    )
    args = parser.parse_args()
    payload = {name: runner()}
    text = json.dumps(payload, indent=2) + "\n"
    if args.json is None:
        print(text, end="")
    else:
        args.json.write_text(text)
        print(f"wrote {args.json}")
