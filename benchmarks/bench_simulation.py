"""Runtime/validation — the discrete-event pipeline simulator.

Times the simulator's event throughput on a paper-scale mapping and
validates Monte Carlo convergence to Eq. (9) at inflated failure rates
(at 1e-8 nothing fails in any feasible number of trials — the reason
the paper computes reliability analytically).
"""

import pytest

from repro.algorithms import optimize_reliability
from repro.core import Platform, random_chain, evaluate_mapping
from repro.simulation import BernoulliFaults, PipelineSimulator, simulate_mapping
from benchmarks.conftest import emit


@pytest.fixture(scope="module")
def mapping():
    chain = random_chain(15, rng=21)
    plat = Platform.homogeneous_platform(
        10, failure_rate=1e-4, link_failure_rate=1e-4, max_replication=3
    )
    return optimize_reliability(chain, plat).mapping


def test_simulator_event_throughput(benchmark, mapping):
    ev = evaluate_mapping(mapping)

    def run():
        sim = PipelineSimulator(mapping, faults=BernoulliFaults(rng=1))
        return sim.run(n_datasets=500, period=ev.worst_case_period)

    run_result = benchmark(run)
    emit()
    emit(
        f"\n{run_result.events_processed} events, "
        f"{run_result.n_completed}/{run_result.n_datasets} data sets completed"
    )
    assert run_result.events_processed > 0


def test_simulator_converges_to_eq9(benchmark, mapping):
    summary = benchmark.pedantic(
        lambda: simulate_mapping(mapping, n_datasets=4000, rng=9),
        rounds=1,
        iterations=1,
    )
    lo, hi = summary.reliability_interval
    emit()
    emit(
        f"analytic r = {summary.analytical.reliability:.6f}, "
        f"simulated = {summary.simulated_reliability:.6f}, CI = [{lo:.6f}, {hi:.6f}]"
    )
    assert summary.reliability_consistent
