"""Figure 8 — number of solutions vs latency bound (hom, P = 250).

Asserted shape (Section 8.1): the exact count dominates and is
non-decreasing in the latency bound; at low latencies both heuristics
track the exact method closely, and across the sweep Heur-P misses no
more exact solutions than Heur-L does (Heur-L's interval-size blindness
vs the period bound costs it solutions as L grows).
"""

import numpy as np

from benchmarks.conftest import run_count_bench, emit
from repro.experiments.figures import run_figure
from repro.experiments.report import render_figure


def test_fig08_solutions_vs_latency(benchmark):
    exp = run_count_bench(benchmark, "hom-latency")
    fig = run_figure("fig8", experiment_result=exp)
    emit()
    emit(render_figure(fig))

    ilp = fig.series["ilp"]
    heur_l = fig.series["heur-l"]
    heur_p = fig.series["heur-p"]

    assert np.all(ilp >= heur_l)
    assert np.all(ilp >= heur_p)
    assert np.all(np.diff(ilp) >= 0)
    # Heur-P leaves at most as many exact solutions on the table.
    assert (ilp - heur_p).sum() <= (ilp - heur_l).sum()
    assert ilp[-1] > 0
