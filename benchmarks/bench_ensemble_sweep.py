"""Throughput of the columnar sweep path — cold solves and warm replays.

``run_sweep`` now speaks :class:`repro.core.ensemble.Ensemble`
natively: unit cache keys derive from raw-array row digests, worker
shards ship columnar payloads, and instances only materialize
``TaskChain``/``Platform`` objects when a solver actually runs.  The
payoff shows on the *warm* path: a fully cached sweep is pure key
derivation plus JSON reads — no objects, no solves.  This bench runs a
Section 8.1-shaped sweep cold into a fresh cache and then warm, and
checks the bit-identity contract between the ensemble and the
materialized instance forms (same cache keys, so the warm materialized
run performs zero recomputation).

Metrics:

* ``warm_speedup`` — cold seconds over warm seconds (machine-portable
  ratio; the columnar headline);
* ``warm_us_per_unit`` — absolute warm lookup cost per work unit
  (loosely gated: wall time varies across CI hardware);
* ``cold_units_per_s`` — informational solve throughput;
* ``telemetry_overhead_ratio`` — warm 1000-instance sweep with an
  active :mod:`repro.obs` collector over the same sweep with telemetry
  disabled (best-of-3 each).  The observability contract is that spans
  and counters stay within 5% of free on the hot path.

Dual entry points: a pytest-benchmark test and a ``--json`` script mode
for the benchmark-regression gate::

    PYTHONPATH=src python benchmarks/bench_ensemble_sweep.py --json out.json
"""

import tempfile
import time

import numpy as np

from repro.experiments import ResultCache, get_method, run_sweep
from repro.obs import telemetry as obs
from repro.scenarios import generate_ensemble

try:
    from benchmarks.conftest import emit
except ImportError:  # script mode: no pytest plumbing to bypass
    def emit(*parts):
        print(" ".join(str(p) for p in parts))

N_INSTANCES = 60
N_OVERHEAD_INSTANCES = 1000
BOUNDS = [(150.0, 750.0), (250.0, 750.0), (400.0, 750.0)]

#: Regression-gate metric names (see run_ensemble_sweep_bench).
BENCH_NAME = "bench_ensemble_sweep"


def run_ensemble_sweep_bench() -> dict:
    """Run the columnar sweep cold and warm; return the gate metrics."""
    ensemble = generate_ensemble("section8-hom", n_instances=N_INSTANCES, seed=11)
    methods = [get_method("heur-l"), get_method("heur-p")]
    n_units = len(methods) * N_INSTANCES

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        t0 = time.perf_counter()
        # batch=False keeps the cold leg measuring object-level solve
        # cost, so warm_speedup retains its meaning (solve vs lookup);
        # the batched-vs-looped ratio is bench_batch_solve's metric.
        cold = run_sweep(ensemble, methods, BOUNDS, cache=cache, batch=False)
        cold_seconds = time.perf_counter() - t0
        assert cache.stats() == {"hits": 0, "misses": n_units, "puts": n_units,
                                 "corrupt": 0, "hit_rate": 0.0}

        warm_cache = ResultCache(tmp)
        t0 = time.perf_counter()
        warm = run_sweep(ensemble, methods, BOUNDS, cache=warm_cache)
        warm_seconds = time.perf_counter() - t0
        assert warm_cache.stats() == {"hits": n_units, "misses": 0, "puts": 0,
                                      "corrupt": 0, "hit_rate": 1.0}
        assert np.array_equal(cold.solved, warm.solved)
        assert np.array_equal(cold.failure, warm.failure)
        assert np.array_equal(cold.objective_values, warm.objective_values)

        # Bit-identity contract: the materialized twin derives the very
        # same unit keys, so it replays the ensemble's entries with
        # zero recomputation and identical arrays.
        mat_cache = ResultCache(tmp)
        materialized = run_sweep(ensemble.materialize(), methods, BOUNDS, cache=mat_cache)
        assert mat_cache.stats() == {"hits": n_units, "misses": 0, "puts": 0,
                                     "corrupt": 0, "hit_rate": 1.0}
        assert np.array_equal(cold.solved, materialized.solved)
        assert np.array_equal(cold.failure, materialized.failure)

    overhead_ratio = run_telemetry_overhead_bench()

    emit()
    emit(f"ensemble sweep, {N_INSTANCES} instances x {len(methods)} methods "
         f"x {len(BOUNDS)} points (section8-hom)")
    emit(f"cold: {cold_seconds:8.3f}s  ({n_units / cold_seconds:8.1f} units/s)")
    emit(f"warm: {warm_seconds:8.3f}s  ({warm_seconds / n_units * 1e6:8.1f} us/unit)")
    emit(f"warm speedup: {cold_seconds / warm_seconds:.1f}x")
    emit(f"telemetry overhead (warm, {N_OVERHEAD_INSTANCES} instances): "
         f"{overhead_ratio:.3f}x")

    return {
        "warm_speedup": cold_seconds / warm_seconds,
        "warm_us_per_unit": warm_seconds / n_units * 1e6,
        "cold_units_per_s": n_units / cold_seconds,
        "telemetry_overhead_ratio": overhead_ratio,
    }


def run_telemetry_overhead_bench() -> float:
    """Warm-sweep seconds with a live collector over seconds without.

    The warm path is where telemetry density peaks — every unit fires a
    cache-hit counter inside the lookup span, with zero solve time to
    hide behind — so it bounds the instrumentation cost everywhere
    else.  Best-of-3 per leg to shed scheduler noise.
    """
    ensemble = generate_ensemble(
        "section8-hom", n_instances=N_OVERHEAD_INSTANCES, seed=11)
    methods = [get_method("heur-l")]

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        run_sweep(ensemble, methods, BOUNDS, cache=cache)  # fill

        def warm_leg(with_telemetry: bool) -> float:
            best = float("inf")
            for _ in range(3):
                leg_cache = ResultCache(tmp)
                if with_telemetry:
                    with obs.collect():
                        t0 = time.perf_counter()
                        run_sweep(ensemble, methods, BOUNDS, cache=leg_cache)
                        best = min(best, time.perf_counter() - t0)
                else:
                    t0 = time.perf_counter()
                    run_sweep(ensemble, methods, BOUNDS, cache=leg_cache)
                    best = min(best, time.perf_counter() - t0)
            return best

        warm_leg(False)  # touch every cache file once before timing
        disabled = warm_leg(False)
        enabled = warm_leg(True)

    return enabled / disabled


def test_ensemble_sweep_throughput(benchmark):
    metrics = run_ensemble_sweep_bench()
    # A warm sweep must be far cheaper than a cold one — the whole
    # point of deriving keys from row digests.  10x is a very loose
    # floor; typical ratios are in the hundreds.
    assert metrics["warm_speedup"] > 10.0
    # The observability acceptance gate: spans + counters must stay
    # within 5% of telemetry-disabled on a warm 1000-instance sweep.
    assert metrics["telemetry_overhead_ratio"] <= 1.05

    ensemble = generate_ensemble("section8-hom", n_instances=10, seed=11)
    methods = [get_method("heur-l")]
    benchmark(lambda: run_sweep(ensemble, methods, BOUNDS))


if __name__ == "__main__":
    try:
        from benchmarks.jsonbench import main
    except ImportError:  # plain `python benchmarks/bench_*.py` execution
        from jsonbench import main

    main(BENCH_NAME, run_ensemble_sweep_bench)
