"""Figure 15 — average failure probability vs latency bound, het vs hom
(per-method instance sets, P = 50).

Reproduced finding: the het curves for the two heuristics are close to
each other ("the other ... curves are very close to each other",
Section 8.2).  As with Figure 13, the het-vs-hom reliability ordering
is asserted in its exact-arithmetic form (het at least as reliable);
see EXPERIMENTS.md for the discussion of the paper's inverted ordering.
"""

import numpy as np

from benchmarks.conftest import run_failure_bench, emit
from repro.experiments.report import render_figure


def test_fig15_het_failure_vs_latency(benchmark):
    _, fig = run_failure_bench(benchmark, "het-latency", "fig15")
    emit()
    emit(render_figure(fig))

    het_l, het_p = fig.series["heur-l_het"], fig.series["heur-p_het"]
    hom_l, hom_p = fig.series["heur-l_hom"], fig.series["heur-p_hom"]

    defined_het = ~(np.isnan(het_l) | np.isnan(het_p))
    assert defined_het.sum() >= len(fig.xs) // 2
    for het, hom in ((het_l, hom_l), (het_p, hom_p)):
        both = ~(np.isnan(het) | np.isnan(hom))
        if both.any():
            assert het[both].mean() <= hom[both].mean() + 1e-18
    for series in fig.series.values():
        vals = series[~np.isnan(series)]
        assert np.all((vals >= 0) & (vals <= 1))
