"""Ablation — routing operations vs the general (Figure 4) RBD.

The Section 9 future-work question quantified: how much reliability do
routing operations give up, and what does exact no-routing evaluation
cost?  Sweeps the replication level on a fixed chain and prints, per
level: the routed (Eq. (9)) failure probability, the exact no-routing
failure probability, the FKG cut-set bound, the number of minimal cuts,
and evaluation times.  The benchmark times the exact factoring
evaluation — the cost routing makes unnecessary.
"""


from repro.core import Interval, Mapping, Platform, TaskChain
from repro.extensions import compare_routing
from repro.util import logrel

from benchmarks.conftest import emit


def build_mapping(k: int) -> Mapping:
    chain = TaskChain([40.0, 60.0, 30.0], [8.0, 6.0, 0.0])
    p = 3 * k
    plat = Platform(
        speeds=[1.0 + 0.25 * (u % 3) for u in range(p)],
        failure_rates=[1e-4] * p,
        bandwidth=1.0,
        link_failure_rate=1e-4,
        max_replication=k,
    )
    procs = iter(range(p))
    return Mapping(
        chain,
        plat,
        [
            (Interval(0, 1), tuple(next(procs) for _ in range(k))),
            (Interval(1, 2), tuple(next(procs) for _ in range(k))),
            (Interval(2, 3), tuple(next(procs) for _ in range(k))),
        ],
    )


def test_ablation_routing(benchmark):
    rows = []
    for k in (1, 2, 3):
        cmp = compare_routing(build_mapping(k))
        rows.append(
            (
                k,
                logrel.failure(cmp.routed_log_reliability),
                logrel.failure(cmp.unrouted_exact_log_reliability),
                logrel.failure(cmp.unrouted_cutset_log_reliability),
                cmp.n_minimal_cuts,
                cmp.routing_penalty,
                cmp.unrouted_exact_seconds,
            )
        )
    emit()
    emit("replicas  f_routed    f_exact     f_cutset    cuts  penalty  t_exact[s]")
    for k, fr, fe, fc, nc, pen, te in rows:
        emit(
            f"{k:8d}  {fr:.3e}  {fe:.3e}  {fc:.3e}  {nc:4d}  {pen:7.2f}  {te:.4f}"
        )

    # Routing never gains reliability; the penalty grows with the
    # replication level (more mesh redundancy is funnelled away).
    penalties = [r[5] for r in rows]
    assert all(p >= 1.0 for p in penalties)
    assert penalties[-1] >= penalties[0]
    # The cut-set bound is never optimistic.
    for _, _, fe, fc, _, _, _ in rows:
        assert fc >= fe - 1e-18

    # Time the expensive piece: exact factoring at the highest level.
    mapping = build_mapping(3)
    from repro.rbd.build import rbd_without_routing
    from repro.rbd.evaluate import exact_log_reliability_factoring

    rbd = rbd_without_routing(mapping)
    benchmark(exact_log_reliability_factoring, rbd)
