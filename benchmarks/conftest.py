"""Shared infrastructure for the benchmark suite.

Each paper figure gets one bench module.  Figure pairs share one
experiment (e.g. Figs. 6 and 7 both come from the hom-period sweep), so
the *count* bench runs and times the full experiment, caches it, and
the sibling *failure* bench reuses the cache and times only its
aggregation — every figure keeps its own bench target without paying
for the sweep twice.

Scale knobs (also documented in DESIGN.md):

* ``REPRO_INSTANCES`` — instances per experiment (default 20; the
  paper uses 100);
* ``REPRO_GRID`` — ``reduced`` (default) or ``full`` (paper
  resolution);
* ``REPRO_EXACT`` — exact method for the homogeneous experiments:
  ``ilp`` (default, the paper's reference) or ``pareto-dp`` (same
  optima, faster).

Execution knobs (the harness reads these itself; they change *how
fast* a bench runs, never its numbers — parallel and cached runs are
bit-identical to serial ones):

* ``REPRO_JOBS`` — worker processes for the sweep fan-out (default 1 =
  serial).  Note that with a warm cache or ``jobs > 1`` a "bench" times
  the harness plumbing, not the solvers, so leave both off for solver
  timing runs;
* ``REPRO_CACHE_DIR`` — on-disk result cache directory shared across
  runs (unset = no caching; see :mod:`repro.experiments.cache` for the
  layout and the manifest written by ``python -m repro experiment``).

Every bench prints the series it regenerates — the same rows the paper
plots — and asserts the qualitative shape findings of Section 8.
"""

from __future__ import annotations

import os


from repro.experiments.figures import ExperimentResult, run_experiment

_CACHE: dict[tuple, ExperimentResult] = {}


def bench_config() -> dict:
    """Resolve the scale knobs once per process."""
    return {
        "n_instances": int(os.environ.get("REPRO_INSTANCES", "20")),
        "grid": os.environ.get("REPRO_GRID", "reduced"),
        "exact_method": os.environ.get("REPRO_EXACT", "ilp"),
        "seed": int(os.environ.get("REPRO_SEED", "0")),
    }


def get_experiment(exp_id: str, compute=True) -> ExperimentResult | None:
    """Session-cached experiment runner."""
    cfg = bench_config()
    key = (exp_id, cfg["n_instances"], cfg["grid"], cfg["exact_method"], cfg["seed"])
    if key not in _CACHE:
        if not compute:
            return None
        _CACHE[key] = run_experiment(
            exp_id,
            n_instances=cfg["n_instances"],
            grid=cfg["grid"],
            seed=cfg["seed"],
            exact_method=cfg["exact_method"],
        )
    return _CACHE[key]


def run_count_bench(benchmark, exp_id: str):
    """Time the full experiment sweep (once) and cache the result."""
    cfg = bench_config()
    key = (exp_id, cfg["n_instances"], cfg["grid"], cfg["exact_method"], cfg["seed"])

    def work():
        return run_experiment(
            exp_id,
            n_instances=cfg["n_instances"],
            grid=cfg["grid"],
            seed=cfg["seed"],
            exact_method=cfg["exact_method"],
        )

    result = benchmark.pedantic(work, rounds=1, iterations=1)
    _CACHE[key] = result
    return result


def run_failure_bench(benchmark, exp_id: str, figure: str):
    """Reuse the cached sweep; time the failure-probability aggregation."""
    from repro.experiments.figures import run_figure

    exp = get_experiment(exp_id)

    def work():
        return run_figure(figure, experiment_result=exp)

    return exp, benchmark.pedantic(work, rounds=1, iterations=1)


_PYTEST_CONFIG = None


def pytest_configure(config):
    global _PYTEST_CONFIG
    _PYTEST_CONFIG = config


def emit(*parts: object) -> None:
    """Print bench output past pytest's capture, so the regenerated
    figure series always land on the real stdout (and in tee'd logs)."""
    import sys

    text = " ".join(str(p) for p in parts)
    capman = (
        _PYTEST_CONFIG.pluginmanager.getplugin("capturemanager")
        if _PYTEST_CONFIG is not None
        else None
    )
    if capman is not None:
        with capman.global_and_fixture_disabled():
            sys.stdout.write(text + "\n")
            sys.stdout.flush()
    else:  # plain python execution
        print(text)
