"""Throughput — batched vs. per-instance scenario ensemble generation.

The scenario layer's two RNG modes trade contracts for speed: the
per-instance mode spawns one child stream per instance (legacy
bit-compatibility, prefix stability), the batched mode draws whole
``(n_instances, n_tasks)`` matrices in single numpy calls.  This bench
generates a 1000-instance ensemble both ways and reports instances per
second, plus the batched mode's speedup.

The two modes draw *different* ensembles by design (different stream
layouts), so the bench asserts distributional invariants — sizes,
ranges, reproducibility — rather than equality.
"""

import time

from repro.scenarios import generate_instances, get_scenario
from benchmarks.conftest import emit

N_INSTANCES = 1000


def _time(spec, seed=0):
    t0 = time.perf_counter()
    ensemble = generate_instances(spec, seed=seed)
    return ensemble, time.perf_counter() - t0


def test_scenario_generation_throughput(benchmark):
    base = get_scenario("high-heterogeneity").spec.with_(n_instances=N_INSTANCES)
    per_instance = base.with_(rng_mode="per-instance")
    batched = base.with_(rng_mode="batched")

    ensemble_pi, seconds_pi = _time(per_instance)
    ensemble_b, seconds_b = _time(batched)

    emit()
    emit(f"scenario generation, {N_INSTANCES} instances "
         f"({base.name}: {base.n_tasks} tasks x {base.p} procs)")
    emit("mode          seconds   instances/s")
    for mode, secs in (("per-instance", seconds_pi), ("batched", seconds_b)):
        emit(f"{mode:12s}  {secs:8.4f}  {N_INSTANCES / secs:10.0f}")
    emit(f"batched speedup: {seconds_pi / seconds_b:.1f}x")

    for ensemble in (ensemble_pi, ensemble_b):
        assert len(ensemble) == N_INSTANCES
        chain, platform = ensemble[0]
        assert chain.n == 15 and platform.p == 10
        assert not platform.homogeneous  # loguniform rates, lognormal speeds

    # Reproducibility: same spec + seed -> same ensemble.
    again, _ = _time(batched)
    assert all(
        ca == cb and pa == pb
        for (ca, pa), (cb, pb) in zip(ensemble_b, again)
    )

    benchmark(lambda: generate_instances(batched, seed=1))
