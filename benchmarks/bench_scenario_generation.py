"""Throughput — batched vs. per-instance scenario ensemble generation.

The scenario layer's two RNG modes trade contracts for speed: the
per-instance mode spawns one child stream per instance (legacy
bit-compatibility, prefix stability), the batched mode draws whole
``(n_instances, n_tasks)`` matrices in single numpy calls.  This bench
generates a 1000-instance ensemble both ways and reports instances per
second, plus the batched mode's speedup.

The two modes draw *different* ensembles by design (different stream
layouts), so the bench asserts distributional invariants — sizes,
ranges, reproducibility — rather than equality.

Dual entry points: a pytest-benchmark test and a ``--json`` script mode
for the benchmark-regression gate (see ``benchmarks/jsonbench.py``)::

    PYTHONPATH=src python benchmarks/bench_scenario_generation.py --json out.json
"""

import time

from repro.scenarios import generate_instances, get_scenario

try:
    from benchmarks.conftest import emit
except ImportError:  # script mode: no pytest plumbing to bypass
    def emit(*parts):
        print(" ".join(str(p) for p in parts))

N_INSTANCES = 1000

#: Regression-gate metric names (see run_generation_bench).
BENCH_NAME = "bench_scenario_generation"


def _time(spec, seed=0):
    t0 = time.perf_counter()
    ensemble = generate_instances(spec, seed=seed)
    return ensemble, time.perf_counter() - t0


def run_generation_bench() -> dict:
    """Generate both ways and return the regression-gate metrics.

    ``batched_speedup`` is the machine-portable headline (same
    workload, same process, two code paths); ``batched_us_per_instance``
    is absolute and therefore gated only loosely.
    """
    base = get_scenario("high-heterogeneity").spec.with_(n_instances=N_INSTANCES)
    per_instance = base.with_(rng_mode="per-instance")
    batched = base.with_(rng_mode="batched")

    ensemble_pi, seconds_pi = _time(per_instance)
    ensemble_b, seconds_b = _time(batched)

    emit()
    emit(f"scenario generation, {N_INSTANCES} instances "
         f"({base.name}: {base.n_tasks} tasks x {base.p} procs)")
    emit("mode          seconds   instances/s")
    for mode, secs in (("per-instance", seconds_pi), ("batched", seconds_b)):
        emit(f"{mode:12s}  {secs:8.4f}  {N_INSTANCES / secs:10.0f}")
    emit(f"batched speedup: {seconds_pi / seconds_b:.1f}x")

    for ensemble in (ensemble_pi, ensemble_b):
        assert len(ensemble) == N_INSTANCES
        chain, platform = ensemble[0]
        assert chain.n == 15 and platform.p == 10
        assert not platform.homogeneous  # loguniform rates, lognormal speeds

    # Reproducibility: same spec + seed -> same ensemble.
    again, _ = _time(batched)
    assert all(
        ca == cb and pa == pb
        for (ca, pa), (cb, pb) in zip(ensemble_b, again)
    )

    return {
        "batched_speedup": seconds_pi / seconds_b,
        "batched_us_per_instance": seconds_b / N_INSTANCES * 1e6,
        "per_instance_us_per_instance": seconds_pi / N_INSTANCES * 1e6,
    }


def test_scenario_generation_throughput(benchmark):
    run_generation_bench()
    batched = (
        get_scenario("high-heterogeneity")
        .spec.with_(n_instances=N_INSTANCES, rng_mode="batched")
    )
    benchmark(lambda: generate_instances(batched, seed=1))


if __name__ == "__main__":
    try:
        from benchmarks.jsonbench import main
    except ImportError:  # plain `python benchmarks/bench_*.py` execution
        from jsonbench import main

    main(BENCH_NAME, run_generation_bench)
