"""Throughput — columnar ensemble vs. materialized scenario generation.

The scenario layer's two RNG modes trade contracts for speed: the
per-instance mode spawns one child stream per instance (legacy
bit-compatibility, prefix stability), the batched mode draws whole
``(n_instances, n_tasks)`` matrices in single numpy calls.  Since the
columnar refactor both modes *store* those draws directly as an
:class:`repro.core.ensemble.Ensemble` — per-instance object
construction only happens on demand (``materialize()``), which is
where the bulk of the old generation time went.  This bench generates
a 1000-instance ensemble every way and reports instances per second,
the batched-vs-per-instance speedup, and the columnar-vs-materialized
speedup (the PR's ≥3x acceptance gate, in practice well above 10x).

The two RNG modes draw *different* ensembles by design (different
stream layouts), so the bench asserts distributional invariants —
sizes, ranges, reproducibility — rather than equality.

Dual entry points: a pytest-benchmark test and a ``--json`` script mode
for the benchmark-regression gate (see ``benchmarks/jsonbench.py``)::

    PYTHONPATH=src python benchmarks/bench_scenario_generation.py --json out.json
"""

import time

from repro.scenarios import generate_ensemble, get_scenario, materialize_instances

try:
    from benchmarks.conftest import emit
except ImportError:  # script mode: no pytest plumbing to bypass
    def emit(*parts):
        print(" ".join(str(p) for p in parts))

N_INSTANCES = 1000

#: The committed pre-columnar batched cost (us/instance) the ≥3x
#: ensemble-speedup acceptance gate compares against.
PRE_COLUMNAR_BATCHED_US = 66.0

#: Regression-gate metric names (see run_generation_bench).
BENCH_NAME = "bench_scenario_generation"


def _time(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def run_generation_bench() -> dict:
    """Generate every way and return the regression-gate metrics.

    ``batched_speedup`` and ``ensemble_vs_materialized_speedup`` are
    the machine-portable headlines (same workload, same process, two
    code paths); the ``*_us_per_instance`` metrics are absolute and
    therefore gated loosely.
    """
    base = get_scenario("high-heterogeneity").spec.with_(n_instances=N_INSTANCES)
    per_instance = base.with_(rng_mode="per-instance")
    batched = base.with_(rng_mode="batched")

    materialized_pi, seconds_pi = _time(lambda: materialize_instances(per_instance))
    materialized_b, seconds_b = _time(lambda: materialize_instances(batched))
    ensemble_b, seconds_ens = _time(lambda: generate_ensemble(batched))

    emit()
    emit(f"scenario generation, {N_INSTANCES} instances "
         f"({base.name}: {base.n_tasks} tasks x {base.p} procs)")
    emit("mode                       seconds   instances/s")
    for mode, secs in (
        ("per-instance materialized", seconds_pi),
        ("batched materialized", seconds_b),
        ("batched ensemble (columnar)", seconds_ens),
    ):
        emit(f"{mode:27s}  {secs:8.4f}  {N_INSTANCES / secs:10.0f}")
    emit(f"batched speedup: {seconds_pi / seconds_b:.1f}x")
    emit(f"columnar vs materialized: {seconds_b / seconds_ens:.1f}x")

    for ensemble in (materialized_pi, materialized_b):
        assert len(ensemble) == N_INSTANCES
        chain, platform = ensemble[0]
        assert chain.n == 15 and platform.p == 10
        assert not platform.homogeneous  # loguniform rates, lognormal speeds
    assert len(ensemble_b) == N_INSTANCES
    assert ensemble_b.n_tasks == 15 and ensemble_b.p == 10

    # The columnar ensemble holds exactly the batched draws: its rows
    # materialize to the batched-materialized instances.
    chain, platform = ensemble_b[0]
    mat_chain, mat_platform = materialized_b[0]
    assert chain == mat_chain and platform == mat_platform

    # Reproducibility: same spec + seed -> same ensemble.
    again, _ = _time(lambda: generate_ensemble(batched))
    assert again == ensemble_b

    # Acceptance gate (ISSUE 5): >= 3x over the committed pre-columnar
    # batched baseline at 1000 instances.
    ensemble_us = seconds_ens / N_INSTANCES * 1e6
    assert ensemble_us * 3.0 <= PRE_COLUMNAR_BATCHED_US, (
        f"columnar generation too slow: {ensemble_us:.1f} us/instance vs "
        f"the {PRE_COLUMNAR_BATCHED_US} us pre-columnar baseline"
    )

    return {
        "batched_speedup": seconds_pi / seconds_b,
        "ensemble_vs_materialized_speedup": seconds_b / seconds_ens,
        "ensemble_us_per_instance": ensemble_us,
        "batched_us_per_instance": seconds_b / N_INSTANCES * 1e6,
        "per_instance_us_per_instance": seconds_pi / N_INSTANCES * 1e6,
    }


def test_scenario_generation_throughput(benchmark):
    run_generation_bench()
    batched = (
        get_scenario("high-heterogeneity")
        .spec.with_(n_instances=N_INSTANCES, rng_mode="batched")
    )
    benchmark(lambda: generate_ensemble(batched, seed=1))


if __name__ == "__main__":
    try:
        from benchmarks.jsonbench import main
    except ImportError:  # plain `python benchmarks/bench_*.py` execution
        from jsonbench import main

    main(BENCH_NAME, run_generation_bench)
