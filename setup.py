"""Legacy setup shim.

The offline environment lacks the ``wheel`` package that PEP 517/660
editable installs require; this shim lets ``pip install -e .`` take the
legacy ``setup.py develop`` route.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
