"""Legacy setup shim.

The offline environment lacks the ``wheel`` package that PEP 517/660
editable installs require; this shim lets ``pip install -e .`` take the
legacy ``setup.py develop`` route.  All metadata lives in setup.cfg
(deliberately *not* pyproject.toml: its presence would switch pip to
the PEP 517 build-isolation path, which needs network access).
"""

from setuptools import setup

setup()
