# repro-lint-fixture: module=repro.algorithms.batch
"""Bad: telemetry in a kernel inner loop (TEL001) and kernel I/O (TEL002)."""

from repro import obs


def solve_batch(columns):
    totals = []
    for column in columns:
        with obs.span("kernel.column"):  # repro-lint-expect: TEL001
            totals.append(sum(column))
        obs.counter("kernel.columns", 1)  # repro-lint-expect: TEL001
    print("solved", len(totals))  # repro-lint-expect: TEL002
    return totals
