# repro-lint-fixture: module=repro.extensions.jitter
"""Bad: global-state and unseeded randomness on the solve path (DET002)."""

import random

import numpy as np


def perturb(xs):
    random.shuffle(xs)  # repro-lint-expect: DET002
    noise = np.random.rand(len(xs))  # repro-lint-expect: DET002
    rng = np.random.default_rng()  # repro-lint-expect: DET002
    return xs, noise, rng
