# repro-lint-fixture: module=repro.algorithms.profiled
"""Good: timing is the harness's job — accept it as an argument."""


def solve(problem, elapsed_seconds=0.0):
    return problem, elapsed_seconds
