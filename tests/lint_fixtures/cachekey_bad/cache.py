# repro-lint-fixture: module=repro.experiments.cache
"""Bad half of the cross-reference: the ``"objective"`` ingredient was
deleted from the cache key, so problems differing only in objective
would collide on one entry.  The findings land in ``solver.py`` —
on the reads the key no longer covers (KEY001)."""

from repro.util.hashing import content_hash


class ResultCache:
    def unit_key_for(self, unit, fingerprint):
        base_digest = unit.digest
        bounds = (unit.max_period, unit.max_latency)
        ingredients = {
            "fingerprint": fingerprint,
            "min_reliability": unit.min_reliability,
            "cache_format": 4,
        }
        if unit.scenario is not None:
            ingredients["scenario"] = unit.scenario
        return content_hash(base_digest, bounds, ingredients)
