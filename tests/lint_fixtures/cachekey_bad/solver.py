# repro-lint-fixture: module=repro.algorithms.fx_solver
"""Solve-path consumer: reads Problem fields the cache key must cover."""


def solve(problem):
    if problem.objective == "latency":  # repro-lint-expect: KEY001
        floor = problem.min_reliability
    else:
        floor = problem.min_log_reliability
    return problem.n_tasks, floor
