# repro-lint-fixture: module=repro.obs.export
"""Bad: in-place writes in an artifact module (IO001)."""

import json
import pathlib


def dump_report(path, payload):
    with open(path, "w") as fh:  # repro-lint-expect: IO001
        json.dump(payload, fh)


def dump_digest(path, digest):
    pathlib.Path(path).write_text(digest)  # repro-lint-expect: IO001
