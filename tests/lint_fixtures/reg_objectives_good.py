# repro-lint-fixture: module=repro.experiments.extra_methods
"""Good: declared objectives are a subset of repro.solve.OBJECTIVES."""

from repro.experiments.methods import register_method


@register_method("warp", objectives=("period", "latency"))
def warp(instances):
    return instances


def _drain(instances):
    return instances


register_method("drain", _drain, objectives=("reliability",))
