# repro-lint-fixture: module=repro.experiments.cache
# repro-lint-expect-at: KEY003@1
"""Bad: the cache module lost unit_key_for entirely — the completeness
checker fails loudly (KEY003) instead of silently checking nothing."""


class ResultCache:
    def __init__(self, root):
        self.root = root

    def lookup(self, key):
        return None
