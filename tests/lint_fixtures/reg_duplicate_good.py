# repro-lint-fixture: module=repro.experiments.extra_methods
"""Good: an intentional override says so with replace=True."""

from repro.experiments.methods import register_method


@register_method("hill_climb", objectives=("period",))
def hill_climb_v1(instances):
    return instances


@register_method("hill_climb", objectives=("period",), replace=True)
def hill_climb_v2(instances):
    return instances
