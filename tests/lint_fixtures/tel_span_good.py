# repro-lint-fixture: module=repro.util.logrel
"""Good: one span around the whole kernel call, no I/O inside."""

from repro import obs


def solve_batch(columns):
    totals = []
    with obs.span("kernel.batch"):
        for column in columns:
            totals.append(sum(column))
    obs.counter("kernel.columns", len(totals))
    return totals
