# repro-lint-fixture: module=repro.extensions.jitter
"""Good: all randomness flows through an explicitly seeded generator."""

import random

import numpy as np


def perturb(xs, seed):
    rng = np.random.default_rng(seed)
    legacy = random.Random(seed)
    order = rng.permutation(len(xs))
    return [xs[i] for i in order], legacy.random()
