# repro-lint-fixture: module=repro.algorithms.profiled
"""Bad: a solver that reads the wall clock (DET001)."""

import datetime
import time
from time import perf_counter as pc


def solve(problem):
    start = time.time()  # repro-lint-expect: DET001
    tick = pc()  # repro-lint-expect: DET001
    stamp = datetime.datetime.now()  # repro-lint-expect: DET001
    return start, tick, stamp
