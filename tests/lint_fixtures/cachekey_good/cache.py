# repro-lint-fixture: module=repro.experiments.cache
"""Good half of the cross-reference: every Problem field the solver
reads is covered — the instance digest (chain/platform/n_tasks), the
bound tokens, and the explicit objective / min_reliability
ingredients."""

from repro.util.hashing import content_hash


class ResultCache:
    def unit_key_for(self, unit, fingerprint):
        base_digest = unit.digest
        bounds = (unit.max_period, unit.max_latency)
        ingredients = {
            "fingerprint": fingerprint,
            "objective": unit.objective,
            "min_reliability": unit.min_reliability,
            "cache_format": 4,
        }
        if unit.scenario is not None:
            ingredients["scenario"] = unit.scenario
        return content_hash(base_digest, bounds, ingredients)
