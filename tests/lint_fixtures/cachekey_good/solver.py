# repro-lint-fixture: module=repro.algorithms.fx_solver
"""Solve-path consumer: every field read here is a key ingredient."""


def solve(problem):
    if problem.objective == "latency":
        floor = problem.min_reliability
    else:
        floor = problem.min_log_reliability
    return problem.n_tasks, floor
