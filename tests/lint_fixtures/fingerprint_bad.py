# repro-lint-fixture: module=repro.experiments.methods
"""Bad: Method.fingerprint no longer visits solve_batch (KEY002).

Editing a batched kernel would then leave every cache key unchanged and
replay stale entries — PR 6's fingerprint contract.
"""


class Method:
    def __init__(self, name, solve, solve_batch=None):
        self.name = name
        self.solve = solve
        self.solve_batch = solve_batch

    def fingerprint(self):  # repro-lint-expect: KEY002
        parts = [self.name, self.solve.__code__.co_code.hex()]
        return "|".join(parts)
