# repro-lint-fixture: module=repro.util.tidy
"""Bad: a waiver that suppresses nothing is itself a finding (WAIVE002)."""


def tidy(xs):
    # repro-lint-expect-next: WAIVE002
    total = sum(xs)  # repro-lint: disable=DET001 nothing on this line reads a clock
    return total
