# repro-lint-fixture: module=repro.experiments.cache.sqlite
"""Autocommit SQL mutations in the artifact scope: no rollback point,
and a concurrent reader can observe a torn multi-statement update."""


def store(conn, key: str, text: str) -> None:
    conn.execute(  # repro-lint-expect: IO002
        "INSERT OR REPLACE INTO entries (key, payload) VALUES (?, ?)",
        (key, text),
    )


def discard(conn, key: str) -> None:
    conn.execute("DELETE FROM entries WHERE key = ?", (key,))  # repro-lint-expect: IO002
