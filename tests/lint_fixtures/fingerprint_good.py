# repro-lint-fixture: module=repro.experiments.methods
"""Good: the fingerprint hashes the batched kernel too."""


class Method:
    def __init__(self, name, solve, solve_batch=None):
        self.name = name
        self.solve = solve
        self.solve_batch = solve_batch

    def fingerprint(self):
        parts = [self.name, self.solve.__code__.co_code.hex()]
        if self.solve_batch is not None:
            parts.append(self.solve_batch.__code__.co_code.hex())
        return "|".join(parts)
