# repro-lint-fixture: module=repro.rbd.pruning
"""Bad: iteration order of a bare set leaks into results (DET004)."""


def prune(edges):
    kept = []
    for label in {"series", "parallel", "router"}:  # repro-lint-expect: DET004
        kept.append(label)
    picks = [e for e in set(edges)]  # repro-lint-expect: DET004
    return kept, picks
