# repro-lint-fixture: module=repro.solve.tuning
"""Good: configuration arrives as an explicit argument the cache key sees."""


def worker_count(problem, jobs=1):
    return int(jobs)
