# repro-lint-fixture: module=repro.experiments.extra_methods
"""Good: seeded=True iff the callable accepts a seed."""

from repro.experiments.methods import register_method


@register_method("anneal", seeded=True)
def anneal(instances, seed):
    return instances, seed


@register_method("walk")
def walk(instances):
    return instances
