# repro-lint-fixture: module=repro.solve.tuning
"""Bad: solver behavior keyed on environment variables (DET003)."""

import os


def worker_count(problem):
    n = os.environ["REPRO_JOBS"]  # repro-lint-expect: DET003
    fallback = os.getenv("REPRO_JOBS_FALLBACK", "1")  # repro-lint-expect: DET003
    return int(n or fallback)
