# repro-lint-fixture: module=repro.util.probe
"""Good: justified waivers, in both positions, suppress their findings."""

import time


def probe():
    t0 = time.perf_counter()  # repro-lint: disable=DET001 measures probe cost, not a solver input
    # repro-lint: disable=DET001 comment-only waivers cover the next line
    t1 = time.perf_counter()
    return t1 - t0
