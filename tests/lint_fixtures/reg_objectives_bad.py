# repro-lint-fixture: module=repro.experiments.extra_methods
"""Bad: registrations whose objectives break the registry contract (REG001)."""

from repro.experiments.methods import register_method


@register_method("warp", objectives=("throughput",))  # repro-lint-expect: REG001
def warp(instances):
    return instances


def _drain(instances):
    return instances


register_method("drain", _drain, objectives=())  # repro-lint-expect: REG001
