# repro-lint-fixture: module=repro.obs.export
"""Good: the mkstemp + os.replace idiom; such helpers are exempt."""

import json
import os
import tempfile


def dump_report(path, payload):
    fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path) or ".")
    try:
        with open(fd, "w") as fh:
            json.dump(payload, fh)
        os.replace(tmp, path)
    except BaseException:
        os.unlink(tmp)
        raise
