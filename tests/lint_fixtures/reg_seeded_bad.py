# repro-lint-fixture: module=repro.experiments.extra_methods
"""Bad: seeded capability and callable signature disagree (REG002)."""

from repro.experiments.methods import register_method


@register_method("anneal", seeded=True)  # repro-lint-expect: REG002
def anneal(instances):
    return instances


@register_method("walk")  # repro-lint-expect: REG002
def walk(instances, seed=None):
    return instances, seed
