# repro-lint-fixture: module=repro.experiments.cache.sqlite
"""The sanctioned spelling: the mutation lives in a function that opens
an explicit immediate transaction — the database equivalent of the
mkstemp + os.replace idiom, so readers observe entries fully or not at
all."""


def store(conn, key: str, text: str) -> None:
    conn.execute("BEGIN IMMEDIATE")
    try:
        conn.execute(
            "INSERT OR REPLACE INTO entries (key, payload) VALUES (?, ?)",
            (key, text),
        )
        conn.execute("COMMIT")
    except BaseException:
        conn.execute("ROLLBACK")
        raise


def load(conn, key: str):
    # Reads need no transaction: WAL snapshots keep them consistent.
    return conn.execute(
        "SELECT payload FROM entries WHERE key = ?", (key,)
    ).fetchone()
