# repro-lint-fixture: module=repro.rbd.pruning
"""Good: sets are fine as membership structures; iterate them sorted."""


def prune(edges):
    kept = []
    for label in sorted({"series", "parallel", "router"}):
        kept.append(label)
    picks = [e for e in sorted(set(edges))]
    return kept, picks
