# repro-lint-fixture: module=repro.experiments.extra_methods
"""Bad: one method name registered twice without replace=True (REG003)."""

from repro.experiments.methods import register_method


@register_method("hill_climb", objectives=("period",))
def hill_climb_v1(instances):
    return instances


@register_method("hill_climb", objectives=("period",))  # repro-lint-expect: REG003
def hill_climb_v2(instances):
    return instances
