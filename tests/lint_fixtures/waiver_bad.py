# repro-lint-fixture: module=repro.util.sloppy
"""Bad: malformed waivers (WAIVE001) do not suppress anything."""

import time


def sloppy():
    # repro-lint-expect-next: WAIVE001,DET001
    t = time.time()  # repro-lint: disable=DET001
    return t


# repro-lint-expect-next: WAIVE001
# repro-lint: disable=NOPE123 unknown rule ids are rejected

# repro-lint-expect-next: WAIVE001
# repro-lint: disable=WAIVE002 the waiver-audit rules cannot be waived
