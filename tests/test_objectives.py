"""The tri-criteria facade: objective semantics on Problem, the
objective-native methods and their agreement with the objective-aware
brute force, planner/facade gating, harness/cache round-trips, and the
cached grid probes."""

import math

import numpy as np
import pytest

from repro.algorithms import (
    brute_force_best,
    minimize_latency,
    minimize_period,
)
from repro.core import Platform, TaskChain
from repro.experiments import (
    METHODS,
    get_method,
    register_method,
    run_crosscheck,
    run_sweep,
)
from repro.experiments.cache import ResultCache
from repro.experiments.figures import run_experiment
from repro.extensions.energy import mapping_energy, minimize_energy
from repro.extensions.period_search import (
    DEFAULT_MAX_PROBES,
    DEFAULT_REL_TOL,
    minimize_period_search,
)
from repro.io import dumps, loads
from repro.solve import (
    OBJECTIVES,
    Planner,
    Problem,
    auto_method_name,
    derive_bounds_grid,
    plan_methods,
    solve,
)
from repro.util.logrel import from_reliability


@pytest.fixture
def chain():
    return TaskChain([6.0, 6.0, 4.0], [1.0, 2.0, 0.0])


@pytest.fixture
def hom():
    return Platform.homogeneous_platform(
        4, failure_rate=1e-3, link_failure_rate=1e-4, max_replication=2
    )


@pytest.fixture
def het():
    return Platform(
        speeds=[2.0, 1.0, 3.0],
        failure_rates=[1e-4, 2e-4, 5e-5],
        bandwidth=2.0,
        link_failure_rate=1e-4,
        max_replication=2,
    )


class TestProblemObjectives:
    def test_objectives_tuple(self):
        assert OBJECTIVES == ("reliability", "period", "latency", "energy")

    @pytest.mark.parametrize("objective", OBJECTIVES)
    def test_io_roundtrip_every_objective(self, chain, hom, objective):
        floor = 0.9 if objective != "reliability" else 0.0
        problem = Problem(
            chain, hom, max_period=40.0, objective=objective,
            min_reliability=floor,
        )
        back = loads(dumps(problem))
        assert back == problem
        assert back.objective == objective
        assert back.min_reliability == floor

    @pytest.mark.parametrize("objective", OBJECTIVES)
    def test_content_hash_stable_across_constructions(self, chain, hom, objective):
        floor = 0.5 if objective != "reliability" else 0.0
        a = Problem(chain, hom, objective=objective, min_reliability=floor)
        b = Problem(chain, hom, objective=objective, min_reliability=floor)
        assert a.content_hash() == b.content_hash()
        assert loads(dumps(a)).content_hash() == a.content_hash()

    def test_hash_sensitive_to_objective_and_floor(self, chain, hom):
        base = Problem(chain, hom)
        hashes = {base.content_hash()}
        for objective in ("period", "latency", "energy"):
            hashes.add(base.replace(objective=objective).content_hash())
        hashes.add(
            base.replace(objective="period", min_reliability=0.5).content_hash()
        )
        assert len(hashes) == 5  # all distinct

    def test_legacy_payload_defaults_to_no_floor(self, chain, hom):
        from repro.io import from_dict

        payload = Problem(chain, hom).to_dict()
        del payload["min_reliability"]  # pre-1.2 payloads carry no floor
        back = from_dict(payload)
        assert back.min_reliability == 0.0 and back.objective == "reliability"

    def test_floor_rejected_for_reliability_objective(self, chain, hom):
        with pytest.raises(ValueError, match="min_reliability"):
            Problem(chain, hom, min_reliability=0.5)

    def test_floor_range_validated(self, chain, hom):
        for bad in (-0.1, 1.0, 1.5, float("nan")):
            with pytest.raises(ValueError):
                Problem(chain, hom, objective="period", min_reliability=bad)

    def test_unknown_objective_rejected(self, chain, hom):
        with pytest.raises(ValueError, match="unknown objective"):
            Problem(chain, hom, objective="throughput")

    def test_min_log_reliability(self, chain, hom):
        assert Problem(chain, hom).min_log_reliability == -math.inf
        p = Problem(chain, hom, objective="period", min_reliability=0.5)
        assert p.min_log_reliability == pytest.approx(math.log(0.5))

    def test_replace_and_repr(self, chain, hom):
        p = Problem(chain, hom).replace(objective="energy", min_reliability=0.9)
        assert p.objective == "energy"
        assert "r>=0.9" in repr(p) and "'energy'" in repr(p)

    def test_with_bounds_preserves_objective(self, chain, hom):
        p = Problem(chain, hom, objective="latency", min_reliability=0.25)
        q = p.with_bounds(max_period=30.0)
        assert q.objective == "latency" and q.min_reliability == 0.25


class TestFacadeRouting:
    def test_auto_per_objective(self, chain, hom, het):
        assert auto_method_name(Problem(chain, hom, objective="period")) == "dp-period"
        assert auto_method_name(Problem(chain, hom, objective="latency")) == "dp-latency"
        assert auto_method_name(Problem(chain, hom, objective="energy")) == "energy-greedy"
        assert auto_method_name(Problem(chain, het, objective="energy")) == "energy-greedy"

    def test_auto_het_period_resolves_to_search(self, chain, het):
        # Used to raise UnknownMethodError: period minimization on
        # heterogeneous platforms had no registered method until the
        # het-period-search binary search closed the gap.
        assert (
            auto_method_name(Problem(chain, het, objective="period"))
            == "het-period-search"
        )

    def test_objective_mismatch_is_value_error(self, chain, hom):
        problem = Problem(chain, hom, objective="period")
        with pytest.raises(ValueError, match="does not support objective"):
            solve(problem, method="pareto-dp")

    @pytest.mark.parametrize(
        "objective,direct",
        [
            ("period", lambda c, p, ell: minimize_period(
                c, p, min_log_reliability=ell, max_latency=40.0)),
            ("latency", lambda c, p, ell: minimize_latency(
                c, p, min_log_reliability=ell)),
            ("energy", lambda c, p, ell: minimize_energy(
                c, p, max_latency=40.0, min_log_reliability=ell)),
        ],
    )
    def test_facade_matches_direct_calls(self, chain, hom, objective, direct):
        floor = 0.9
        kwargs = {"max_latency": 40.0} if objective != "latency" else {}
        problem = Problem(
            chain, hom, objective=objective, min_reliability=floor, **kwargs
        )
        via_facade = solve(problem)
        direct_result = direct(chain, hom, from_reliability(floor))
        assert via_facade.feasible == direct_result.feasible
        assert via_facade.objective_value(objective) == pytest.approx(
            direct_result.objective_value(objective)
        )
        assert via_facade.mapping == direct_result.mapping

    def test_registry_rejects_unknown_objectives(self):
        with pytest.raises(ValueError, match="unknown objectives"):
            register_method("bad-objective-method", objectives=("speedup",))(
                lambda problem: None
            )
        assert "bad-objective-method" not in METHODS


class TestConverseAgainstBruteForce:
    """dp-period / dp-latency are exact: they must match the
    objective-aware exhaustive oracle on tiny instances."""

    def instances(self):
        rng = np.random.default_rng(7)
        for _ in range(4):
            n = int(rng.integers(2, 5))
            work = rng.uniform(1.0, 8.0, size=n)
            output = np.append(rng.uniform(0.5, 3.0, size=n - 1), 0.0)
            chain = TaskChain(work, output)
            platform = Platform.homogeneous_platform(
                int(rng.integers(2, 5)),
                failure_rate=10.0 ** -rng.uniform(2, 4),
                link_failure_rate=10.0 ** -rng.uniform(2, 4),
                max_replication=int(rng.integers(1, 3)),
            )
            yield chain, platform, rng

    def test_dp_period_agrees(self):
        for chain, platform, rng in self.instances():
            unbounded = solve(Problem(chain, platform))
            floor_ell = unbounded.log_reliability * float(rng.uniform(1.0, 3.0))
            L = float(unbounded.evaluation.worst_case_latency * rng.uniform(1.0, 1.5))
            problem = Problem(
                chain, platform, max_latency=L,
                objective="period", min_reliability=math.exp(floor_ell),
            )
            dp = solve(problem, method="dp-period")
            oracle = solve(problem, method="brute-force")
            assert dp.feasible == oracle.feasible
            if oracle.feasible:
                assert dp.objective_value("period") == pytest.approx(
                    oracle.objective_value("period")
                )

    def test_dp_latency_agrees(self):
        for chain, platform, rng in self.instances():
            unbounded = solve(Problem(chain, platform))
            floor_ell = unbounded.log_reliability * float(rng.uniform(1.0, 3.0))
            P = float(unbounded.evaluation.worst_case_period * rng.uniform(1.0, 1.5))
            problem = Problem(
                chain, platform, max_period=P,
                objective="latency", min_reliability=math.exp(floor_ell),
            )
            dp = solve(problem, method="dp-latency")
            oracle = solve(problem, method="brute-force")
            assert dp.feasible == oracle.feasible
            if oracle.feasible:
                assert dp.objective_value("latency") == pytest.approx(
                    oracle.objective_value("latency")
                )

    def test_infeasible_floor_reported(self, chain, hom):
        problem = Problem(
            chain, hom, objective="period",
            min_reliability=1.0 - 1e-12,
        )
        result = solve(problem, method="dp-period")
        oracle = solve(problem, method="brute-force")
        assert not result.feasible and not oracle.feasible

    def test_energy_greedy_never_beats_oracle(self, chain, hom):
        problem = Problem(
            chain, hom, max_period=7.0,
            objective="energy", min_reliability=0.9,
        )
        greedy = solve(problem, method="energy-greedy")
        oracle = solve(problem, method="brute-force")
        assert greedy.feasible and oracle.feasible
        assert greedy.objective_value("energy") >= oracle.objective_value("energy") - 1e-9
        ev = greedy.evaluation
        assert ev.meets(
            max_period=7.0, min_log_reliability=problem.min_log_reliability
        )
        # Thinning pays off: the greedy's energy is no worse than its
        # unthinned reliability-maximizing seed.
        seed = solve(Problem(chain, hom, max_period=7.0), method="heuristic")
        assert greedy.objective_value("energy") <= mapping_energy(seed.mapping) + 1e-9

    def test_crosscheck_objectives_clean(self):
        report = run_crosscheck(n_instances=4, simulate=False, seed=11)
        assert report.objective_disagreements == 0
        assert report.clean

    def test_brute_force_rejects_unknown_objective(self, chain, hom):
        with pytest.raises(ValueError, match="unknown objective"):
            brute_force_best(chain, hom, objective="throughput")


class TestPlannerObjectiveGating:
    def test_objective_skip_reasons_recorded(self):
        plan = plan_methods("section8-hom", objective="period")
        assert plan.objective == "period"
        # Expensive-first order: the heuristic search next to the
        # exact Section 5.2 converse, both period-native.
        assert plan.selected == ("het-period-search", "dp-period")
        reasons = {s.method: s.reason for s in plan.skipped}
        assert "objective 'period' unsupported" in reasons["pareto-dp"]
        assert "objective 'period' unsupported" in reasons["heur-l"]

    def test_objective_gate_is_hard_even_for_explicit_lists(self):
        plan = Planner().plan(
            "section8-hom", methods=["ilp", "dp-latency"], objective="latency"
        )
        assert plan.selected == ("dp-latency",)
        assert any(
            s.method == "ilp" and "objective" in s.reason for s in plan.skipped
        )

    def test_energy_selected_on_heterogeneous_scenarios(self):
        plan = plan_methods("high-heterogeneity", objective="energy")
        assert plan.selected == ("energy-greedy",)

    def test_unknown_objective_rejected(self):
        with pytest.raises(ValueError, match="unknown objective"):
            plan_methods("section8-hom", objective="speedup")

    def test_describe_carries_objective(self):
        record = plan_methods("section8-hom", objective="energy").describe()
        assert record["objective"] == "energy"


class TestHarnessObjectives:
    def test_run_sweep_objective_param(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        kwargs = dict(
            instances="section8-hom",
            methods=[get_method("dp-period")],
            bounds=[(math.inf, 850.0), (math.inf, 950.0)],
            n_instances=3,
            objective="period",
            min_reliability=0.3,
            cache=cache,
        )
        sweep = run_sweep(**kwargs)
        counts = sweep.counts("dp-period")
        assert counts.shape == (2,)
        assert counts[0] <= counts[1]  # looser latency bound solves more
        # Cache round-trip: identical sweep is served entirely from cache.
        again = run_sweep(**kwargs)
        assert cache.misses == cache.puts  # every cold unit stored once
        assert cache.hits == cache.puts  # ...and replayed once
        np.testing.assert_array_equal(sweep.solved, again.solved)
        np.testing.assert_array_equal(sweep.failure, again.failure)

    def test_objective_mismatched_method_raises_up_front(self):
        with pytest.raises(ValueError, match="does not support objective"):
            run_sweep(
                "section8-hom",
                [get_method("heur-l")],
                [(250.0, 750.0)],
                n_instances=2,
                objective="period",
            )

    def test_run_experiment_is_planner_driven(self):
        exp = run_experiment("hom-period", n_instances=2, exact_method="pareto-dp")
        assert exp.plan is not None
        assert list(exp.plan.selected) == ["pareto-dp", "heur-l", "heur-p"]
        assert exp.plan.spec_hash == exp.scenario_key
        assert exp.sweeps["hom"].method_names == list(exp.plan.selected)

    def test_run_experiment_het_plan(self):
        exp = run_experiment("het-period", n_instances=2)
        assert list(exp.plan.selected) == ["heur-l-paper", "heur-p-paper"]


class TestGridProbeCache:
    def test_warm_grid_derivation_is_solve_free(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        cold = derive_bounds_grid(
            "section8-hom", n_points=4, n_instances=4, cache=cache
        )
        assert cache.puts == 4  # one probe record per instance
        assert cache.hits == 0
        warm = derive_bounds_grid(
            "section8-hom", n_points=4, n_instances=4, cache=cache
        )
        assert cache.hits == 4
        assert cache.puts == 4  # nothing recomputed
        assert warm == cold

    def test_probe_records_keyed_by_method_identity(self, tmp_path, chain, hom):
        cache = ResultCache(tmp_path / "cache")
        problem = Problem(chain, hom)
        heur = get_method("heuristic")
        key_a = cache.probe_key("heuristic", problem, heur.fingerprint())
        key_b = cache.probe_key("heur-l", problem, get_method("heur-l").fingerprint())
        assert key_a != key_b
        unit_key = cache.unit_key("heuristic", [problem], fingerprint=heur.fingerprint())
        assert key_a != unit_key  # probe records never collide with units

    def test_corrupted_probe_record_recovers(self, tmp_path, chain, hom):
        cache = ResultCache(tmp_path / "cache")
        key = cache.probe_key("heuristic", Problem(chain, hom))
        cache.put_record(key, {"feasible": True, "period": 1.0, "latency": 2.0})
        cache.backend.store_text(key, "{not json")
        assert cache.get_record(key) is None
        assert cache.backend.load(key) is None  # dropped for recomputation

    def test_field_stripped_probe_record_recovers(self, tmp_path):
        """A well-formed record missing the probe fields must be treated
        as a miss by derive_bounds_grid (recomputed and overwritten),
        not crash the derivation."""
        cache = ResultCache(tmp_path / "cache")
        cold = derive_bounds_grid(
            "section8-hom", n_points=4, n_instances=2, cache=cache
        )
        for key, payload in list(cache.backend.scan()):
            if "grid-probe" in payload:
                cache.backend.store_text(
                    key, payload.replace('"feasible"', '"stripped"')
                )
        again = derive_bounds_grid(
            "section8-hom", n_points=4, n_instances=2, cache=cache
        )
        assert again == cold


class TestObjectiveValue:
    def test_values_match_evaluation(self, chain, hom):
        result = solve(Problem(chain, hom, max_period=8.0))
        ev = result.evaluation
        assert result.objective_value("reliability") == pytest.approx(ev.reliability)
        assert result.objective_value("period") == ev.worst_case_period
        assert result.objective_value("latency") == ev.worst_case_latency
        assert result.objective_value("energy") == pytest.approx(
            mapping_energy(result.mapping)
        )
        with pytest.raises(ValueError, match="unknown objective"):
            result.objective_value("speedup")

    def test_infeasible_values(self, chain, hom):
        result = solve(
            Problem(chain, hom, max_latency=1.0, objective="latency"),
            method="dp-latency",
        )
        assert not result.feasible
        assert result.objective_value("latency") == math.inf
        assert result.objective_value("reliability") == 0.0


class TestCliObjectives:
    def test_solve_objective_flag(self, tmp_path, capsys, chain, hom):
        from repro.cli import main

        chain_file = tmp_path / "chain.json"
        platform_file = tmp_path / "platform.json"
        chain_file.write_text(dumps(chain))
        platform_file.write_text(dumps(hom))
        code = main([
            "solve", str(chain_file), str(platform_file),
            "--objective", "period", "--min-reliability", "0.9",
            "--max-latency", "40",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "objective (period)" in out
        assert "dp-period" in out

    def test_solve_rejects_bad_floor(self, tmp_path, capsys, chain, hom):
        from repro.cli import main

        chain_file = tmp_path / "chain.json"
        platform_file = tmp_path / "platform.json"
        chain_file.write_text(dumps(chain))
        platform_file.write_text(dumps(hom))
        with pytest.raises(SystemExit, match="min_reliability"):
            main([
                "solve", str(chain_file), str(platform_file),
                "--objective", "energy", "--min-reliability", "1.5",
            ])

    def test_plan_show_objective(self, capsys):
        from repro.cli import main

        assert main(["plan", "show", "section8-hom", "--objective", "latency"]) == 0
        out = capsys.readouterr().out
        assert "dp-latency" in out and "objective 'latency' unsupported" in out

    def test_scenario_run_objective_manifest(self, tmp_path, capsys):
        import json

        from repro.cli import main

        manifest = tmp_path / "manifest.json"
        code = main([
            "scenario", "run", "section8-hom", "--n-instances", "2",
            "--objective", "period", "--min-reliability", "0.3",
            "--max-latency", "900", "--manifest", str(manifest),
        ])
        assert code == 0
        payload = json.loads(manifest.read_text())
        assert payload["objective"] == "period"
        assert payload["plan"]["selected"] == ["het-period-search", "dp-period"]
        assert payload["plan"]["objective"] == "period"


class TestHetPeriodSearch:
    """The heterogeneous converse-objective gap-closer (ISSUE 5)."""

    @pytest.fixture
    def het_instance(self):
        chain = TaskChain([6.0, 4.0, 5.0], [1.0, 2.0, 0.0])
        platform = Platform(
            speeds=[2.0, 1.0, 1.5], failure_rates=[1e-4, 1e-5, 1e-4],
            link_failure_rate=1e-5, max_replication=2,
        )
        return chain, platform

    def test_matches_oracle_on_tiny_instance(self, het_instance):
        chain, platform = het_instance
        problem = Problem(chain, platform, objective="period", min_reliability=0.5)
        search = solve(problem)  # auto -> het-period-search
        oracle = solve(problem, method="brute-force")
        assert search.method == "het-period-search" and search.feasible
        assert search.objective_value("period") >= (
            oracle.objective_value("period") - 1e-9
        )
        ev = search.evaluation
        assert ev.reliability >= 0.5

    def test_honors_latency_bound_and_period_cap(self, het_instance):
        chain, platform = het_instance
        bounded = solve(Problem(
            chain, platform, objective="period", max_latency=20.0,
        ))
        assert bounded.feasible
        assert bounded.evaluation.worst_case_latency <= 20.0
        # A period cap below the analytic floor is infeasible.
        floor = float(np.max(chain.work)) / float(np.max(platform.speeds))
        capped = solve(Problem(
            chain, platform, objective="period", max_period=floor / 2,
        ))
        assert not capped.feasible

    def test_planner_selects_it_for_het_scenarios(self):
        plan = plan_methods("high-heterogeneity", objective="period")
        assert plan.selected == ("het-period-search",)
        reasons = {s.method: s.reason for s in plan.skipped}
        assert "homogeneous" in reasons["dp-period"]

    def test_period_sweep_on_het_scenario(self):
        sweep = run_sweep(
            "high-heterogeneity",
            [get_method("het-period-search")],
            [(np.inf, np.inf)],
            n_instances=3,
            objective="period",
        )
        assert int(sweep.counts("het-period-search")[0]) == 3
        q = sweep.objective_quantiles("het-period-search")
        assert np.all(np.isfinite(q)) and np.all(q > 0)

    def test_exhausted_probe_budget_reports_not_converged(self):
        # Regression: with max_probes exhausted before the bracket met
        # rel_tol, the search returned a witness whose details were
        # indistinguishable from a converged run.
        chain = TaskChain([6.0, 6.0], [1.0, 0.0])
        platform = Platform(
            speeds=[2.0, 1.0, 1.0], failure_rates=[1e-4] * 3,
            max_replication=2,
        )
        starved = minimize_period_search(chain, platform, max_probes=1)
        assert starved.feasible
        assert starved.details["probes"] == 1
        assert starved.details["converged"] is False
        lo, hi = starved.details["bracket"]
        assert hi - lo > DEFAULT_REL_TOL * max(hi, 1.0)

    def test_default_budget_converges(self):
        chain = TaskChain([6.0, 6.0], [1.0, 0.0])
        platform = Platform(
            speeds=[2.0, 1.0, 1.0], failure_rates=[1e-4] * 3,
            max_replication=2,
        )
        result = minimize_period_search(chain, platform)
        assert result.details["converged"] is True
        assert result.details["probes"] < DEFAULT_MAX_PROBES
        lo, hi = result.details["bracket"]
        assert hi - lo <= DEFAULT_REL_TOL * max(hi, 1.0)
