"""Tests for JSON serialization (repro.io) and the CLI (repro.cli)."""

import json

import pytest

from repro.core import Interval, Mapping, Platform, TaskChain
from repro.io import FORMAT_VERSION, dumps, from_dict, loads, to_dict
from repro.cli import build_parser, main


@pytest.fixture
def chain():
    return TaskChain([4.0, 6.0, 2.0], [2.0, 1.0, 0.0])


@pytest.fixture
def platform():
    return Platform(
        speeds=[2.0, 1.0, 3.0],
        failure_rates=[1e-6, 2e-6, 5e-7],
        bandwidth=2.0,
        link_failure_rate=1e-5,
        max_replication=2,
    )


@pytest.fixture
def mapping(chain, platform):
    return Mapping(
        chain, platform, [(Interval(0, 2), (0, 1)), (Interval(2, 3), (2,))]
    )


class TestSerialization:
    def test_chain_roundtrip(self, chain):
        assert loads(dumps(chain)) == chain

    def test_platform_roundtrip(self, platform):
        assert loads(dumps(platform)) == platform

    def test_mapping_roundtrip(self, mapping):
        assert loads(dumps(mapping)) == mapping

    def test_format_version_stamped(self, chain):
        payload = to_dict(chain)
        assert payload["repro_format"] == FORMAT_VERSION

    def test_newer_format_rejected(self, chain):
        payload = to_dict(chain)
        payload["repro_format"] = FORMAT_VERSION + 1
        with pytest.raises(ValueError, match="newer"):
            from_dict(payload)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown object type"):
            from_dict({"type": "Starship"})
        with pytest.raises(ValueError, match="missing 'type'"):
            from_dict({"work": [1]})
        with pytest.raises(TypeError):
            to_dict(42)  # type: ignore[arg-type]

    def test_json_is_plain(self, mapping):
        payload = json.loads(dumps(mapping))
        assert payload["type"] == "Mapping"
        assert payload["intervals"] == [[0, 2], [2, 3]]
        assert payload["replicas"] == [[0, 1], [2]]


#: Every subcommand path (including nested ones) — each must have a
#: working --help.
HELP_PATHS = [
    [],
    ["solve"],
    ["evaluate"],
    ["simulate"],
    ["figures"],
    ["experiment"],
    ["scenario"],
    ["scenario", "list"],
    ["scenario", "show"],
    ["scenario", "run"],
    ["plan"],
    ["plan", "show"],
    ["demo"],
]


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        for cmd in ("solve", "evaluate", "simulate", "figures", "demo"):
            args = parser.parse_args(
                [cmd, "x", "y"] if cmd == "solve" else
                ([cmd, "x"] if cmd in ("evaluate", "simulate") else
                 ([cmd, "fig6"] if cmd == "figures" else [cmd]))
            )
            assert args.command == cmd

    @pytest.mark.parametrize("path", HELP_PATHS, ids=lambda p: " ".join(p) or "root")
    def test_every_subcommand_help_exits_zero(self, path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([*path, "--help"])
        assert excinfo.value.code == 0
        assert "usage" in capsys.readouterr().out.lower()

    def test_solve_roundtrip(self, tmp_path, chain, capsys):
        hom = Platform.homogeneous_platform(
            4, failure_rate=1e-8, link_failure_rate=1e-5, max_replication=2
        )
        cpath = tmp_path / "chain.json"
        ppath = tmp_path / "plat.json"
        out = tmp_path / "mapping.json"
        cpath.write_text(dumps(chain))
        ppath.write_text(dumps(hom))
        code = main(
            [
                "solve", str(cpath), str(ppath),
                "--max-period", "50", "--max-latency", "100",
                "--output", str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "failure prob" in text
        decoded = loads(out.read_text())
        assert isinstance(decoded, Mapping)

    def test_solve_infeasible_exit_code(self, tmp_path, chain):
        hom = Platform.homogeneous_platform(2, max_replication=1)
        cpath = tmp_path / "chain.json"
        ppath = tmp_path / "plat.json"
        cpath.write_text(dumps(chain))
        ppath.write_text(dumps(hom))
        code = main(["solve", str(cpath), str(ppath), "--max-period", "0.5"])
        assert code == 1

    def test_solve_heuristic_on_het(self, tmp_path, chain, platform, capsys):
        cpath = tmp_path / "chain.json"
        ppath = tmp_path / "plat.json"
        cpath.write_text(dumps(chain))
        ppath.write_text(dumps(platform))
        code = main(["solve", str(cpath), str(ppath)])
        assert code == 0
        assert "heuristic" in capsys.readouterr().out

    def test_wrong_file_type_rejected(self, tmp_path, chain):
        cpath = tmp_path / "chain.json"
        cpath.write_text(dumps(chain))
        with pytest.raises(SystemExit, match="expected Platform"):
            main(["solve", str(cpath), str(cpath)])

    def test_evaluate(self, tmp_path, mapping, capsys):
        mpath = tmp_path / "mapping.json"
        mpath.write_text(dumps(mapping))
        assert main(["evaluate", str(mpath)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert 0 <= payload["failure_probability"] <= 1
        assert payload["worst_case_latency"] >= payload["expected_latency"]

    def test_simulate(self, tmp_path, mapping, capsys):
        mpath = tmp_path / "mapping.json"
        mpath.write_text(dumps(mapping))
        code = main(["simulate", str(mpath), "--datasets", "300", "--seed", "1"])
        payload = json.loads(capsys.readouterr().out)
        assert "reliability_ok" in payload
        assert code in (0, 1)

    def test_figures_small(self, capsys):
        code = main(
            ["figures", "fig10", "--instances", "2", "--exact", "pareto-dp"]
        )
        assert code == 0
        assert "fig10 [hom-linked]" in capsys.readouterr().out

    def test_figures_unknown(self):
        with pytest.raises(SystemExit):
            main(["figures", "fig99"])

    def test_demo_homogeneous(self, capsys):
        assert main(["demo", "--tasks", "5", "--processors", "4"]) == 0
        out = capsys.readouterr().out
        assert "derived bounds" in out

    def test_demo_heterogeneous(self, capsys):
        assert main(
            ["demo", "--tasks", "5", "--processors", "4", "--heterogeneous"]
        ) == 0
        assert "heuristic" in capsys.readouterr().out


class TestScenarioCLI:
    def test_scenario_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "section8-hom" in out and "scaling-stress" in out

    def test_scenario_show_roundtrips(self, capsys):
        assert main(["scenario", "show", "section8-hom"]) == 0
        decoded = loads(capsys.readouterr().out)
        from repro.scenarios import get_scenario

        assert decoded == get_scenario("section8-hom").spec

    def test_scenario_run_registered(self, tmp_path, capsys):
        manifest = tmp_path / "m.json"
        assert main(["scenario", "run", "section8-hom", "--n-instances", "2",
                     "--manifest", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "2 instances" in out and "heur-l" in out and "pareto-dp" in out
        # The manifest is self-describing: spec hash + describe record
        # + the planner's selection with skip reasons.
        payload = json.loads(manifest.read_text())
        from repro.scenarios import get_scenario, scenario_hash

        spec = get_scenario("section8-hom").spec.with_(n_instances=2)
        assert payload["scenario"]["spec_hash"] == scenario_hash(spec)
        assert payload["scenario"]["describe"]["homogeneous"] is True
        assert payload["plan"]["selected"] == ["pareto-dp", "heur-l", "heur-p"]
        assert any("redundant exact" in s["reason"] for s in payload["plan"]["skipped"])
        assert payload["grid"]["mode"] == "point"
        assert set(payload["series"]) == {"pareto-dp", "heur-l", "heur-p"}

    def test_scenario_run_grid_auto(self, tmp_path, capsys):
        """Acceptance: --grid auto emits a multi-point (P, L) sweep with
        per-method curves and a manifest recording the derived grid."""
        manifest = tmp_path / "m.json"
        assert main(["scenario", "run", "section8-hom", "--n-instances", "3",
                     "--grid", "auto", "--grid-points", "4",
                     "--manifest", str(manifest)]) == 0
        out = capsys.readouterr().out
        assert "derived period grid: 4 points" in out
        assert "solutions vs period bound" in out
        payload = json.loads(manifest.read_text())
        assert payload["grid"]["mode"] == "auto"
        assert len(payload["grid"]["periods"]) == 4
        assert len(payload["points"]) == 4
        for series in payload["series"].values():
            assert len(series["counts"]) == 4
            # Paper-style shape: counts never decrease along the grid.
            assert series["counts"] == sorted(series["counts"])
        assert payload["scenario"]["spec_hash"]
        assert payload["plan"]["skipped"]

    def test_scenario_run_explicit_methods_gated(self, tmp_path, capsys):
        """An explicitly requested out-of-scope method is skipped with a
        reason instead of crashing the run."""
        manifest = tmp_path / "m.json"
        assert main(["scenario", "run", "high-heterogeneity", "--n-instances", "2",
                     "--methods", "pareto-dp", "heur-l",
                     "--manifest", str(manifest)]) == 0
        err = capsys.readouterr().err
        assert "skipping pareto-dp" in err
        payload = json.loads(manifest.read_text())
        assert payload["plan"]["selected"] == ["heur-l"]

    def test_scenario_run_no_applicable_methods(self, tmp_path):
        with pytest.raises(SystemExit, match="no applicable methods"):
            main(["scenario", "run", "high-heterogeneity", "--n-instances", "2",
                  "--methods", "pareto-dp",
                  "--manifest", str(tmp_path / "m.json")])

    def test_scenario_run_spec_file_roundtrip(self, tmp_path, capsys):
        """A spec written through io.py runs straight from the file."""
        from repro.scenarios import get_scenario

        spec = get_scenario("hot-spare").spec.with_(
            name="tiny-spare", n_instances=2, n_tasks=6, p=4
        )
        path = tmp_path / "spec.json"
        path.write_text(dumps(spec, indent=2))
        assert loads(path.read_text()) == spec  # io round-trip
        assert main(["scenario", "run", str(path), "--seed", "2",
                     "--manifest", str(tmp_path / "m.json")]) == 0
        out = capsys.readouterr().out
        assert "tiny-spare" in out and "2 instances" in out

    def test_scenario_run_unknown(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["scenario", "run", "no-such-workload"])

    def test_scenario_show_unknown(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["scenario", "show", "no-such-workload"])


class TestPlanCLI:
    def test_plan_show_table(self, capsys):
        assert main(["plan", "show", "section8-hom"]) == 0
        out = capsys.readouterr().out
        assert "pareto-dp" in out and "skipped:" in out
        assert "redundant exact solver" in out

    def test_plan_show_json(self, capsys):
        assert main(["plan", "show", "scaling-stress", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["selected"] == ["heur-l", "heur-p"]
        assert any(
            "exceeds the exact-method threshold" in s["reason"]
            for s in payload["skipped"]
        )

    def test_plan_show_threshold_flags(self, capsys):
        assert main(["plan", "show", "scaling-stress", "--json",
                     "--max-exact-tasks", "100", "--max-exact-procs", "64"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "pareto-dp" in payload["selected"]

    def test_plan_show_unknown_scenario(self):
        with pytest.raises(SystemExit, match="unknown scenario"):
            main(["plan", "show", "no-such-workload"])

    def test_plan_show_unknown_method(self):
        with pytest.raises(SystemExit, match="unknown method"):
            main(["plan", "show", "section8-hom", "--methods", "nope"])
